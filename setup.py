"""Legacy setup shim.

The offline environment lacks the ``wheel`` package, so PEP 660 editable
installs fail; with this shim and no ``[build-system]`` table in
``pyproject.toml``, ``pip install -e .`` falls back to ``setup.py develop``,
which works without wheel.
"""

from setuptools import setup

setup()
