"""Multi-switch fabric, discovery staleness, shortest-path routing."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sdnsim import (
    EventScheduler,
    Fabric,
    Link,
    LinkDiscovery,
    ShortestPathRouter,
    Switch,
)
from repro.sdnsim.messages import Action, FlowMod, Match, Packet

H1 = "aa:00:00:00:00:01"
H2 = "aa:00:00:00:00:02"


def triangle_fabric() -> Fabric:
    """Three switches in a triangle; hosts on port 1 of s1 and s3.

    Inter-switch ports: s1:2<->s2:2, s2:3<->s3:2, s1:3<->s3:3.
    """
    fabric = Fabric()
    for dpid in (1, 2, 3):
        fabric.add_switch(Switch(dpid, [1, 2, 3]))
    fabric.add_link(Link(1, 2, 2, 2))
    fabric.add_link(Link(2, 3, 3, 2))
    fabric.add_link(Link(1, 3, 3, 3))
    fabric.switches[1].attach_host(1, H1)
    fabric.switches[3].attach_host(1, H2)
    return fabric


class TestFabric:
    def test_duplicate_switch_rejected(self):
        fabric = Fabric()
        fabric.add_switch(Switch(1, [1]))
        with pytest.raises(SimulationError):
            fabric.add_switch(Switch(1, [1]))

    def test_link_validation(self):
        fabric = Fabric()
        fabric.add_switch(Switch(1, [1]))
        with pytest.raises(SimulationError, match="unknown switch"):
            fabric.add_link(Link(1, 1, 9, 1))
        fabric.add_switch(Switch(2, [1]))
        with pytest.raises(SimulationError, match="no port"):
            fabric.add_link(Link(1, 7, 2, 1))

    def test_frames_cross_links(self):
        fabric = triangle_fabric()
        fabric.switches[1].apply_flow_mod(
            FlowMod(dpid=1, match=Match(dst_mac=H2), actions=(Action(3),))
        )
        fabric.switches[3].apply_flow_mod(
            FlowMod(dpid=3, match=Match(dst_mac=H2), actions=(Action(1),))
        )
        fabric.inject(1, 1, Packet(src_mac=H1, dst_mac=H2))
        delivered = [
            (port, pkt.dst_mac) for port, pkt in fabric.switches[3].delivered
        ]
        assert (1, H2) in delivered

    def test_forwarding_loop_detected(self):
        fabric = triangle_fabric()
        # Program a 2-switch loop: s1 -> s2 -> s1 -> ...
        fabric.switches[1].apply_flow_mod(
            FlowMod(dpid=1, match=Match(dst_mac=H2), actions=(Action(2),))
        )
        fabric.switches[2].apply_flow_mod(
            FlowMod(dpid=2, match=Match(dst_mac=H2), actions=(Action(2),))
        )
        with pytest.raises(SimulationError, match="forwarding loop"):
            fabric.inject(1, 1, Packet(src_mac=H1, dst_mac=H2))

    def test_graph_reflects_links(self):
        graph = triangle_fabric().graph()
        assert graph.number_of_nodes() == 3
        assert graph.number_of_edges() == 6  # 3 bidirectional links


class TestDiscovery:
    def test_view_lags_fabric_changes(self):
        fabric = triangle_fabric()
        scheduler = EventScheduler()
        discovery = LinkDiscovery(fabric, scheduler, refresh_interval=5.0)
        # Add a new link after the initial snapshot.
        for dpid in (4,):
            fabric.add_switch(Switch(dpid, [1, 2]))
        fabric.add_link(Link(3, 1, 4, 2))  # reuses s3 port1? no: port1 is host
        assert 4 not in discovery.view()
        scheduler.run(until=6.0)
        assert 4 in discovery.view()

    def test_force_refresh(self):
        fabric = triangle_fabric()
        scheduler = EventScheduler()
        discovery = LinkDiscovery(fabric, scheduler, refresh_interval=60.0)
        fabric.add_switch(Switch(5, [1]))
        discovery.force_refresh()
        assert 5 in discovery.view()

    def test_invalid_interval(self):
        with pytest.raises(SimulationError):
            LinkDiscovery(triangle_fabric(), EventScheduler(), refresh_interval=0)


class TestRouting:
    def setup_routing(self):
        fabric = triangle_fabric()
        scheduler = EventScheduler()
        discovery = LinkDiscovery(fabric, scheduler, refresh_interval=5.0)
        router = ShortestPathRouter(discovery)
        return fabric, scheduler, discovery, router

    def test_shortest_path_prefers_direct_link(self):
        _, _, _, router = self.setup_routing()
        assert router.compute_path(1, 3) == [1, 3]

    def test_install_path_end_to_end(self):
        fabric, _, _, router = self.setup_routing()
        path = router.install_path(H2, dst_dpid=3, dst_port=1, src_dpid=1)
        assert path == [1, 3]
        fabric.inject(1, 1, Packet(src_mac=H1, dst_mac=H2))
        assert any(
            port == 1 and pkt.dst_mac == H2
            for port, pkt in fabric.switches[3].delivered
        )

    def test_no_path_raises(self):
        fabric = Fabric()
        fabric.add_switch(Switch(1, [1]))
        fabric.add_switch(Switch(2, [1]))
        scheduler = EventScheduler()
        router = ShortestPathRouter(LinkDiscovery(fabric, scheduler))
        with pytest.raises(SimulationError, match="no path"):
            router.compute_path(1, 2)

    def test_stale_view_blackholes_until_refresh(self):
        """The visibility-loss failure mode: the direct s1-s3 link dies, the
        stale view still routes over it, traffic blackholes; after refresh a
        reinstall goes around via s2."""
        fabric, scheduler, discovery, router = self.setup_routing()
        router.install_path(H2, dst_dpid=3, dst_port=1, src_dpid=1)
        # Kill the direct link's physical ports (both directions).
        fabric.switches[1].set_port_state(3, False)
        fabric.switches[3].set_port_state(3, False)
        fabric.inject(1, 1, Packet(src_mac=H1, dst_mac=H2, payload="lost"))
        lost = any(
            pkt.payload == "lost" for _p, pkt in fabric.switches[3].delivered
        )
        assert not lost  # blackholed through the stale path

        # Remove the dead link from the fabric, refresh discovery, reroute.
        fabric.links = [
            l for l in fabric.links
            if {(l.src_dpid, l.src_port), (l.dst_dpid, l.dst_port)}
            != {(1, 3), (3, 3)}
        ]
        fabric._egress_map.pop((1, 3), None)
        fabric._egress_map.pop((3, 3), None)
        discovery.force_refresh()
        path = router.install_path(H2, dst_dpid=3, dst_port=1, src_dpid=1)
        assert path == [1, 2, 3]
        fabric.inject(1, 1, Packet(src_mac=H1, dst_mac=H2, payload="retry"))
        assert any(
            pkt.payload == "retry" and port == 1
            for port, pkt in fabric.switches[3].delivered
        )
