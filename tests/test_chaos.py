"""Chaos-Monkey fuzzing (SS V-A takeaway)."""

from __future__ import annotations

import pytest

from repro.chaos import ChaosMonkey, Perturbation, default_perturbations
from repro.errors import ReproError
from repro.faultinjection.scenario import build_scenario
from repro.taxonomy import Symptom, Trigger


def buggy_factory():
    return build_scenario(
        mirror_broadcast=False,
        multicast_guard=False,
        gauge_cast_types=False,
        adapter_timeout=None,
    )


def hardened_factory():
    return build_scenario(input_validation=True)


class TestPerturbations:
    def test_arsenal_covers_key_triggers(self):
        triggers = {p.trigger for p in default_perturbations()}
        assert {
            Trigger.NETWORK_EVENTS,
            Trigger.CONFIGURATION,
            Trigger.EXTERNAL_CALLS,
            Trigger.HARDWARE_REBOOTS,
        } == triggers

    def test_names_unique(self):
        names = [p.name for p in default_perturbations()]
        assert len(names) == len(set(names))


class TestChaosMonkey:
    def test_deterministic_for_seed(self):
        a = ChaosMonkey(buggy_factory, seed=3).run_campaign(runs=6)
        b = ChaosMonkey(buggy_factory, seed=3).run_campaign(runs=6)
        assert [f.run_index for f in a.findings] == [f.run_index for f in b.findings]
        assert [f.perturbations for f in a.findings] == [
            f.perturbations for f in b.findings
        ]

    def test_buggy_build_yields_findings(self):
        report = ChaosMonkey(buggy_factory, seed=1).run_campaign(runs=10)
        assert report.finding_rate > 0.5
        assert report.symptoms_found()

    def test_buggy_build_finds_more_than_patched(self):
        buggy = ChaosMonkey(buggy_factory, seed=1).run_campaign(runs=15)
        patched = ChaosMonkey(build_scenario, seed=1).run_campaign(runs=15)
        assert buggy.finding_rate >= patched.finding_rate

    def test_input_validation_cuts_crashes(self):
        """SS V-A: error-guarding logic at the input boundary prevents the
        malformed-frame crash class chaos exposes."""

        def crashes(report):
            return sum(
                1 for f in report.findings
                if f.outcome.symptom is Symptom.FAIL_STOP
            )

        plain = ChaosMonkey(build_scenario, seed=1).run_campaign(runs=15)
        hardened = ChaosMonkey(hardened_factory, seed=1).run_campaign(runs=15)
        assert crashes(hardened) < crashes(plain)

    def test_trigger_coverage_recorded(self):
        report = ChaosMonkey(build_scenario, seed=2, intensity=4).run_campaign(runs=8)
        assert sum(report.triggers_exercised.values()) == 8 * 4

    def test_first_finding_lookup(self):
        report = ChaosMonkey(buggy_factory, seed=1).run_campaign(runs=10)
        crash = report.first_finding(Symptom.FAIL_STOP)
        if crash is not None:
            assert crash.outcome.symptom is Symptom.FAIL_STOP

    def test_invalid_params(self):
        with pytest.raises(ReproError):
            ChaosMonkey(build_scenario, intensity=0)
        with pytest.raises(ReproError):
            ChaosMonkey(build_scenario, perturbations=[])
        with pytest.raises(ReproError):
            ChaosMonkey(build_scenario).run_campaign(runs=0)

    def test_custom_perturbation(self):
        applied = []

        def noop(scenario, rng):
            applied.append(True)

        monkey = ChaosMonkey(
            build_scenario,
            perturbations=[Perturbation("noop", Trigger.NETWORK_EVENTS, noop)],
            intensity=2,
            seed=0,
        )
        report = monkey.run_campaign(runs=2)
        assert len(applied) == 4
        assert report.finding_rate == 0.0  # noop perturbations break nothing

    def test_run_once_crash_boundary(self):
        """An exception escaping the workload is a controller crash, not a
        chaos-campaign abort: the run still yields a classified outcome."""

        def explode(scenario, rng):
            raise RuntimeError("perturbation blew up mid-run")

        monkey = ChaosMonkey(
            build_scenario,
            perturbations=[Perturbation("explode", Trigger.NETWORK_EVENTS, explode)],
            intensity=1,
            seed=0,
        )
        names, outcome = monkey.run_once(0)
        assert names == ("explode",)
        assert outcome.symptom is Symptom.FAIL_STOP
        assert "RuntimeError" in outcome.detail
        # The whole campaign survives crashing runs and records the finding.
        report = monkey.run_campaign(runs=3)
        assert len(report.findings) == 3

    def test_hardened_knob_builds_guarded_scenarios(self):
        monkey = ChaosMonkey(seed=5, hardened=True)
        assert monkey.ledger is not None
        _, outcome = monkey.run_once(0)
        assert outcome is not None
        plain = ChaosMonkey(seed=5)
        assert plain.ledger is None

    def test_run_once_bit_for_bit_deterministic(self):
        """Two fresh monkeys with the same seed produce identical run_once
        results — perturbation names AND the full classified outcome."""
        for index in range(5):
            first = ChaosMonkey(buggy_factory, seed=11).run_once(index)
            second = ChaosMonkey(buggy_factory, seed=11).run_once(index)
            names_a, outcome_a = first
            names_b, outcome_b = second
            assert names_a == names_b
            assert outcome_a == outcome_b
            assert first == second

    def test_schedule_mode_replays_fault_schedule(self):
        from repro.adversary import FaultAction, random_schedule

        schedule = random_schedule(7, events=12, horizon=30.0)
        monkey = ChaosMonkey(seed=1, schedule=schedule)
        names, outcome = monkey.run_once(0)
        # Every schedule event is accounted for: applied or named-skipped.
        assert len(names) == len(schedule)
        channel_names = {a.value for a in FaultAction}
        for name in names:
            base = name.split("@", 1)[0].removeprefix("skipped:")
            assert base in channel_names
        # Same schedule, fresh monkey: bit-for-bit identical.
        again = ChaosMonkey(seed=1, schedule=schedule).run_once(0)
        assert again == (names, outcome)


class TestCluster:
    def test_onos_5992_case(self):
        from repro.faultinjection import run_case

        outcome = run_case("ONOS-5992")
        assert outcome.buggy.symptom is Symptom.BYZANTINE
        assert outcome.fix_removes_symptom

    def test_failover_reassigns_devices(self):
        from repro.sdnsim import ControllerCluster, EventScheduler

        scheduler = EventScheduler()
        cluster = ControllerCluster(["a", "b", "c"], scheduler)
        for dpid in range(4):
            cluster.assign_mastership(dpid)
        victim = cluster.master_of(0)
        cluster.kill_instance(victim)
        scheduler.run(until=10)
        assert cluster.orphaned_devices() == []
        assert not cluster.is_wedged()
        assert cluster.master_of(0) != victim

    def test_buggy_quorum_wedges_on_single_death(self):
        from repro.sdnsim import ControllerCluster, EventScheduler
        from repro.errors import SimulationError

        scheduler = EventScheduler()
        cluster = ControllerCluster(
            ["a", "b", "c"], scheduler, quorum_counts_live_members=False
        )
        cluster.assign_mastership(1)
        cluster.kill_instance("c")
        scheduler.run(until=10)
        assert cluster.is_wedged()
        with pytest.raises(SimulationError, match="no quorum"):
            cluster.assign_mastership(2)

    def test_majority_loss_wedges_even_fixed_cluster(self):
        from repro.sdnsim import ControllerCluster, EventScheduler

        scheduler = EventScheduler()
        cluster = ControllerCluster(["a", "b", "c"], scheduler)
        cluster.kill_instance("a")
        cluster.kill_instance("b")
        scheduler.run(until=10)
        # A single survivor of a 3-node cluster still has a live majority of
        # itself under live-member counting; leadership survives.
        assert cluster.leader == "c"

    def test_kill_leader_failover_drains_orphans(self):
        """Killing the *leader* re-elects, reassigns its devices, and leaves
        the cluster un-wedged once the election delay elapses."""
        from repro.sdnsim import ControllerCluster, EventScheduler

        scheduler = EventScheduler()
        cluster = ControllerCluster(["a", "b", "c"], scheduler)
        for dpid in range(6):
            cluster.assign_mastership(dpid)
        leader = cluster.leader
        assert leader is not None
        cluster.kill_instance(leader)
        # Before the election delay the leader's devices sit orphaned.
        assert cluster.orphaned_devices()
        scheduler.run(until=10)
        assert cluster.orphaned_devices() == []
        assert not cluster.is_wedged()
        assert cluster.leader is not None and cluster.leader != leader
        for dpid in range(6):
            master = cluster.master_of(dpid)
            assert master is not None and master != leader

    def test_sequential_kills_keep_draining_orphans(self):
        """Failover is repeatable: a second kill after the first settles
        still drains every orphan onto the last survivor."""
        from repro.sdnsim import ControllerCluster, EventScheduler

        scheduler = EventScheduler()
        cluster = ControllerCluster(["a", "b", "c"], scheduler)
        for dpid in range(4):
            cluster.assign_mastership(dpid)
        cluster.kill_instance("a")
        scheduler.run(until=10)
        assert cluster.orphaned_devices() == []
        cluster.kill_instance("b")
        scheduler.run(until=20)
        assert cluster.orphaned_devices() == []
        assert not cluster.is_wedged()
        assert all(cluster.master_of(dpid) == "c" for dpid in range(4))

    def test_buggy_quorum_never_unwedges(self):
        """ONOS-5992 regression: with total-member quorum the wedge persists
        forever — no later event clears it — while the fixed knob recovers."""
        from repro.sdnsim import ControllerCluster, EventScheduler

        for counts_live, expect_wedged in ((False, True), (True, False)):
            scheduler = EventScheduler()
            cluster = ControllerCluster(
                ["a", "b", "c"], scheduler,
                quorum_counts_live_members=counts_live,
            )
            for dpid in range(3):
                cluster.assign_mastership(dpid)
            cluster.kill_instance("a")
            scheduler.run(until=60)
            assert cluster.is_wedged() is expect_wedged
            assert bool(cluster.orphaned_devices()) is expect_wedged

    def test_duplicate_nodes_rejected(self):
        from repro.errors import SimulationError
        from repro.sdnsim import ControllerCluster, EventScheduler

        with pytest.raises(SimulationError):
            ControllerCluster(["a", "a"], EventScheduler())

    def test_single_live_node_retains_quorum(self):
        from repro.sdnsim import ControllerCluster, EventScheduler

        scheduler = EventScheduler()
        # A 1-node cluster is its own majority under both quorum bases.
        for counts_live in (True, False):
            cluster = ControllerCluster(
                ["solo"], scheduler, quorum_counts_live_members=counts_live
            )
            assert cluster.has_quorum()
            assert cluster.leader == "solo"
            assert cluster.assign_mastership(1) == "solo"

    def test_all_members_dead_is_not_wedged(self):
        from repro.sdnsim import ControllerCluster, EventScheduler

        scheduler = EventScheduler()
        cluster = ControllerCluster(["solo"], scheduler)
        cluster.kill_instance("solo")
        scheduler.run(until=10)
        assert not cluster.has_quorum()
        assert cluster.leader is None
        # Wedged means live members exist without quorum; a fully dead
        # cluster is simply down.
        assert not cluster.is_wedged()
