"""Unit coverage for the observability core: registry, exports, gates.

Covers the instrument semantics (bucket edges, label ordering, merge),
golden-output tests for both exporters, hypothesis property tests
(histogram sum/count invariants, export round-trip), the trajectory
regression gate, and the pinned public shapes of ``ArtifactCache.stats()``,
``ServingStats.to_dict()`` and the request-log ``recover()`` dict that
reports consume.
"""

from __future__ import annotations

import json
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ObservabilityError, TrajectoryGateError
from repro.observability import (
    GateRule,
    MetricsRegistry,
    TrajectoryStore,
    cache_to_metrics,
    ledger_to_metrics,
    requestlog_to_metrics,
)
from repro.observability.trajectory import DEFAULT_GATES


# -- counters / gauges ---------------------------------------------------------
def test_counter_monotone_and_labeled():
    registry = MetricsRegistry()
    counter = registry.counter("req_total", "reqs", labels=["status", "kind"])
    counter.labels(kind="query", status="ok").inc()
    counter.labels(kind="query", status="ok").inc(2.5)
    counter.labels(status="shed", kind="lint").inc()
    assert registry.value("req_total", kind="query", status="ok") == 3.5
    assert registry.value("req_total", kind="lint", status="shed") == 1.0
    # Untouched children read 0 without being created.
    assert registry.value("req_total", kind="nmf", status="ok") == 0.0
    with pytest.raises(ObservabilityError):
        counter.inc(-1)  # unlabeled use of a labeled family also illegal
    with pytest.raises(ObservabilityError):
        counter.labels(kind="query", status="ok").inc(-1)


def test_label_names_are_sorted_and_enforced():
    registry = MetricsRegistry()
    counter = registry.counter("c_total", labels=["zeta", "alpha"])
    assert counter.label_names == ("alpha", "zeta")
    with pytest.raises(ObservabilityError):
        counter.labels(alpha="x")  # missing zeta
    with pytest.raises(ObservabilityError):
        counter.labels(alpha="x", zeta="y", extra="z")


def test_gauge_moves_both_ways():
    registry = MetricsRegistry()
    gauge = registry.gauge("depth")
    gauge.set(5)
    gauge.inc(2)
    gauge.dec(4)
    assert registry.value("depth") == 3.0


def test_reregistration_identical_spec_is_idempotent():
    registry = MetricsRegistry()
    a = registry.counter("x_total", "help", labels=["k"])
    b = registry.counter("x_total", "other help", labels=["k"])
    assert a is b
    with pytest.raises(ObservabilityError):
        registry.gauge("x_total")  # kind mismatch
    with pytest.raises(ObservabilityError):
        registry.counter("x_total", labels=["k", "j"])  # label mismatch
    registry.histogram("h", buckets=[1.0, 2.0])
    with pytest.raises(ObservabilityError):
        registry.histogram("h", buckets=[1.0, 3.0])  # bucket mismatch
    with pytest.raises(ObservabilityError):
        registry.counter("bad name!")


# -- histograms ----------------------------------------------------------------
def test_histogram_bucket_edges_are_le_semantics():
    registry = MetricsRegistry()
    hist = registry.histogram("lat", buckets=[0.1, 1.0, 10.0])
    for value in (0.1, 0.10001, 1.0, 5.0, 10.0, 11.0):
        hist.observe(value)
    [sample] = [s for s in registry.to_dicts() if s["name"] == "lat"]
    # Cumulative: <=0.1 -> 1, <=1.0 -> 3, <=10.0 -> 5, +Inf -> 6.
    assert sample["buckets"] == [
        ["0.1", 1], ["1", 3], ["10", 5], ["+Inf", 6],
    ]
    assert sample["count"] == 6
    assert sample["sum"] == pytest.approx(27.20001)


def test_histogram_rejects_bad_buckets():
    registry = MetricsRegistry()
    with pytest.raises(ObservabilityError):
        registry.histogram("a", buckets=[])
    with pytest.raises(ObservabilityError):
        registry.histogram("b", buckets=[2.0, 1.0])
    with pytest.raises(ObservabilityError):
        registry.histogram("c", buckets=[1.0, 1.0])
    with pytest.raises(ObservabilityError):
        registry.histogram("d", buckets=[1.0, math.inf])


# -- exports -------------------------------------------------------------------
def _golden_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    counter = registry.counter(
        "requests_total", "Total requests", labels=["kind", "status"]
    )
    counter.labels(kind="query", status="full").inc(3)
    registry.gauge("queue_depth", "Depth", labels=["cls"]).labels(
        cls="interactive"
    ).set(7)
    hist = registry.histogram("latency_seconds", "Latency", buckets=[0.1, 1.0])
    hist.observe(0.05)
    hist.observe(5.0)
    return registry


def test_prometheus_golden_output():
    assert _golden_registry().export_prometheus() == (
        "# HELP latency_seconds Latency\n"
        "# TYPE latency_seconds histogram\n"
        'latency_seconds_bucket{le="0.1"} 1\n'
        'latency_seconds_bucket{le="1"} 1\n'
        'latency_seconds_bucket{le="+Inf"} 2\n'
        "latency_seconds_sum 5.05\n"
        "latency_seconds_count 2\n"
        "# HELP queue_depth Depth\n"
        "# TYPE queue_depth gauge\n"
        'queue_depth{cls="interactive"} 7\n'
        "# HELP requests_total Total requests\n"
        "# TYPE requests_total counter\n"
        'requests_total{kind="query",status="full"} 3\n'
    )


def test_jsonl_golden_output():
    lines = _golden_registry().export_jsonl().splitlines()
    assert lines == [
        '{"buckets":[["0.1",1],["1",1],["+Inf",2]],"count":2,'
        '"help":"Latency","labels":{},"name":"latency_seconds",'
        '"sum":5.05,"time":0.0,"type":"histogram"}',
        '{"help":"Depth","labels":{"cls":"interactive"},'
        '"name":"queue_depth","time":0.0,"type":"gauge","value":7.0}',
        '{"help":"Total requests","labels":{"kind":"query","status":"full"},'
        '"name":"requests_total","time":0.0,"type":"counter","value":3.0}',
    ]


def test_jsonl_round_trip_is_exact():
    exported = _golden_registry().export_jsonl()
    assert MetricsRegistry.from_jsonl(exported).export_jsonl() == exported


def test_registry_clock_stamps_samples():
    ticks = iter([7.25])
    registry = MetricsRegistry(clock=lambda: next(ticks))
    registry.counter("c_total").inc()
    [sample] = registry.to_dicts()
    assert sample["time"] == 7.25


def test_merge_counters_add_gauges_take_latest():
    a, b = MetricsRegistry(), MetricsRegistry()
    for registry, amount, level in ((a, 2, 1.0), (b, 3, 9.0)):
        registry.counter("c_total").inc(amount)
        registry.gauge("g").set(level)
        registry.histogram("h", buckets=[1.0]).observe(0.5)
    a.merge(b)
    assert a.value("c_total") == 5.0
    assert a.value("g") == 9.0
    [hist] = [s for s in a.to_dicts() if s["name"] == "h"]
    assert hist["count"] == 2 and hist["buckets"][0] == ["1", 2]
    bad = MetricsRegistry()
    bad.histogram("h", buckets=[2.0]).observe(0.5)
    with pytest.raises(ObservabilityError):
        a.merge(bad)


def test_thread_safety_under_workpool():
    from repro.parallel.executor import WorkPool

    registry = MetricsRegistry()
    counter = registry.counter("work_total")
    hist = registry.histogram("work_size", buckets=[10.0, 100.0])

    def work(n: int) -> int:
        for _ in range(50):
            counter.inc()
        hist.observe(float(n))
        return n

    pool = WorkPool(4, backend="thread")
    results = pool.map(work, list(range(40)))
    assert results == list(range(40))
    assert registry.value("work_total") == 2000.0
    [sample] = [s for s in registry.to_dicts() if s["name"] == "work_size"]
    assert sample["count"] == 40


# -- hypothesis properties -----------------------------------------------------
@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        min_size=1,
        max_size=80,
    )
)
def test_histogram_sum_count_invariants(values):
    registry = MetricsRegistry()
    hist = registry.histogram("h", buckets=[1.0, 100.0, 10000.0])
    for value in values:
        hist.observe(value)
    [sample] = registry.to_dicts()
    counts = [count for _, count in sample["buckets"]]
    # Cumulative counts are monotone and end at the total observation count.
    assert counts == sorted(counts)
    assert counts[-1] == len(values) == sample["count"]
    assert sample["sum"] == pytest.approx(sum(values), rel=1e-9, abs=1e-9)


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.sampled_from(["alpha_total", "beta_total", "gamma_total"]),
            st.sampled_from(["a", "b", "c"]),
            st.integers(min_value=0, max_value=1000),
        ),
        max_size=30,
    )
)
def test_export_round_trip_property(increments):
    registry = MetricsRegistry()
    for name, label, amount in increments:
        registry.counter(name, labels=["shard"]).labels(shard=label).inc(amount)
    exported = registry.export_jsonl()
    rebuilt = MetricsRegistry.from_jsonl(exported)
    assert rebuilt.export_jsonl() == exported
    assert rebuilt.export_prometheus() == registry.export_prometheus()


# -- trajectory gate -----------------------------------------------------------
def _write_trajectory(path, goodput, ratio=5.0, p99=20.0):
    TrajectoryStore(path).record({
        "bench": "serving_overload_ab",
        "goodput_hardened": goodput,
        "goodput_ratio": ratio,
        "p99_hardened": p99,
    })


def test_trajectory_record_refreshes_in_place(tmp_path):
    store = TrajectoryStore(tmp_path / "traj.json")
    assert store.record({"bench": "a", "x": 1.0}) is None
    store.record({"bench": "b", "x": 9.0})
    previous = store.record({"bench": "a", "x": 2.0})
    assert previous == {"bench": "a", "x": 1.0}
    entries = store.load()
    assert [e["bench"] for e in entries] == ["a", "b"]
    assert store.entry("a")["x"] == 2.0
    with pytest.raises(ObservabilityError):
        store.record({"x": 1.0})


def test_trajectory_baseline_accepts_itself(tmp_path):
    path = tmp_path / "traj.json"
    _write_trajectory(path, goodput=8.0)
    results = TrajectoryStore(path).check()
    assert len(results) == 3 and all(r.passed for r in results)


def test_trajectory_rejects_20pct_goodput_regression(tmp_path):
    baseline, candidate = tmp_path / "base.json", tmp_path / "cand.json"
    _write_trajectory(baseline, goodput=8.0, ratio=5.0)
    _write_trajectory(candidate, goodput=8.0 * 0.8, ratio=5.0)
    with pytest.raises(TrajectoryGateError, match="goodput_hardened"):
        TrajectoryStore(baseline).check(candidate)


def test_trajectory_accepts_within_tolerance(tmp_path):
    baseline, candidate = tmp_path / "base.json", tmp_path / "cand.json"
    _write_trajectory(baseline, goodput=8.0, p99=20.0)
    _write_trajectory(candidate, goodput=8.0 * 0.95, p99=20.0 * 1.2)
    results = TrajectoryStore(baseline).check(candidate)
    assert all(r.passed for r in results)


def test_trajectory_missing_gated_metric_is_an_error(tmp_path):
    baseline, candidate = tmp_path / "base.json", tmp_path / "cand.json"
    _write_trajectory(baseline, goodput=8.0)
    TrajectoryStore(candidate).record({"bench": "serving_overload_ab"})
    with pytest.raises(ObservabilityError, match="missing"):
        TrajectoryStore(baseline).check(candidate)


def test_committed_trajectory_passes_default_gates():
    """The seeded PR-7 entry must satisfy the committed gate rules."""
    import pathlib

    path = pathlib.Path(__file__).parent.parent / "benchmarks" / "BENCH_trajectory.json"
    results = TrajectoryStore(path).check()
    assert len(results) == len(DEFAULT_GATES)
    assert all(r.passed for r in results)


def test_gate_rule_parse_and_validation():
    rule = GateRule.parse("bench:metric:lower:0.25")
    assert (rule.bench, rule.metric, rule.direction, rule.tolerance) == (
        "bench", "metric", "lower", 0.25
    )
    for bad in ("a:b:c", "a:b:sideways:0.1", "a:b:higher:lots"):
        with pytest.raises(ObservabilityError):
            GateRule.parse(bad)


# -- pinned public shapes (regression tests) -----------------------------------
def test_artifact_cache_stats_keys_are_pinned(tmp_path):
    from repro.parallel import ArtifactCache

    cache = ArtifactCache(tmp_path / "cache")
    cache.set_clock(lambda: 100.0)
    cache.put("ns", {"k": 1}, "value")
    cache.lookup("ns", {"k": 1})
    cache.lookup("ns", {"k": 2})
    stats = cache.stats()
    assert sorted(stats) == [
        "age_max", "age_mean", "age_min", "age_tracked",
        "hits", "misses", "quarantined", "stored",
    ]
    registry = cache.metrics()
    names = {s["name"] for s in registry.to_dicts()}
    assert names == {
        "cache_hits_total", "cache_misses_total", "cache_quarantined_total",
        "cache_stored_total", "cache_age_max", "cache_age_mean",
        "cache_age_min", "cache_age_tracked",
    }
    assert registry.value("cache_hits_total") == stats["hits"]
    assert registry.value("cache_misses_total") == stats["misses"]
    # cache_to_metrics is the same projection.
    again = cache_to_metrics(cache)
    assert again.export_prometheus() == registry.export_prometheus()


def test_serving_stats_keys_are_pinned():
    from repro.serving import ServingStats

    assert sorted(ServingStats().to_dict()) == [
        "admitted", "batched_requests", "batches", "completed_full",
        "degraded_batches", "delivery_waits", "errors", "expired",
        "served_heuristic", "served_stale", "shed", "slow_clients_aborted",
        "submitted",
    ]


def test_requestlog_recover_keys_are_pinned(tmp_path):
    from repro.serving import RequestLog, recover, recover_metrics
    from repro.serving.request import RequestFactory, RequestKind

    factory = RequestFactory()
    log = RequestLog(tmp_path / "req.journal")
    first = factory.make(RequestKind.CLASSIFY, arrival=0.0, payload="a")
    second = factory.make(RequestKind.CLASSIFY, arrival=0.0, payload="b")
    log.log_admit(first)
    log.log_admit(second)
    log.log_complete(first, _ok_response(first))
    log.journal.close()  # crash: second stays in flight

    recovered = recover(tmp_path / "req.journal")
    assert sorted(recovered) == ["finished", "inflight"]
    assert recovered["finished"] == [first.req_id]
    assert recovered["inflight"] == [second.req_id]
    registry = recover_metrics(tmp_path / "req.journal")
    assert registry.value("requestlog_requests", state="finished") == 1.0
    assert registry.value("requestlog_requests", state="inflight") == 1.0


def _ok_response(request):
    from repro.serving.request import Response, ResponseStatus, ServiceTier

    return Response(
        req_id=request.req_id,
        kind=request.kind,
        status=ResponseStatus.OK,
        tier=ServiceTier.FULL,
        arrival=request.arrival,
        completed=1.0,
        latency=1.0,
    )


# -- bridges -------------------------------------------------------------------
def test_ledger_bridge_counts_and_prices():
    from repro.resilience.ledger import ResilienceEvent, ResilienceLedger
    from repro.taxonomy import Symptom, Trigger

    ledger = ResilienceLedger()
    ledger.record(ResilienceEvent.RETRY, "backend", delay=0.5,
                  trigger=Trigger.EXTERNAL_CALLS, symptom=Symptom.FAIL_STOP)
    ledger.record(ResilienceEvent.RETRY, "backend", delay=1.5)
    ledger.record(ResilienceEvent.SHED, "admission")
    ledger.record(ResilienceEvent.GIVE_UP, "deadline", delay=2.0)
    registry = ledger_to_metrics(ledger)
    assert registry.value(
        "resilience_actions_total", component="backend", event="retry"
    ) == 2.0
    assert registry.value(
        "resilience_actions_total", component="admission", event="shed"
    ) == 1.0
    assert registry.value(
        "resilience_recovery_seconds_total", component="backend", event="retry"
    ) == 2.0
    assert registry.value(
        "resilience_triggers_total", trigger=Trigger.EXTERNAL_CALLS.value
    ) == 1.0
    assert registry.value(
        "resilience_symptoms_total", symptom=Symptom.FAIL_STOP.value
    ) == 1.0


def test_requestlog_bridge_uses_pinned_keys():
    registry = requestlog_to_metrics({"finished": [1, 2, 3], "inflight": [9]})
    assert registry.value("requestlog_requests", state="finished") == 3.0
    assert registry.value("requestlog_requests", state="inflight") == 1.0


def test_fuzz_state_metrics_projection():
    from repro.fuzzing.campaign import state_metrics
    from repro.fuzzing.corpus import CorpusEntry, FuzzState

    state = FuzzState(config={})
    state.executed = 40
    state.violated_runs = 6
    state.batch_index = 1
    state.coverage = {"t1", "t2", "t3"}
    state.signatures = {"viol:a:b:0:c"}
    state.corpus = [
        CorpusEntry(entry_id=0, origin="seed", parent=None, schedule=[],
                    new_tokens=("t1", "t2"), violated=True),
        CorpusEntry(entry_id=1, origin="mutate", parent=0, schedule=[],
                    new_tokens=("t3",), violated=False),
    ]
    registry = state_metrics(state)
    assert registry.value("fuzz_schedules_total") == 40.0
    assert registry.value("fuzz_violated_runs_total") == 6.0
    assert registry.value("fuzz_batches_total") == 2.0
    assert registry.value("fuzz_coverage_tokens") == 3.0
    assert registry.value("fuzz_corpus_entries") == 2.0
    # Energy: entry0 = min(2,8)+4+1 = 7, entry1 = 1+0+1 = 2.
    assert registry.value("fuzz_corpus_energy") == 9.0
    [hist] = [
        s for s in registry.to_dicts()
        if s["name"] == "fuzz_new_tokens_per_entry"
    ]
    assert hist["count"] == 2


def test_pipeline_result_metrics_projection():
    from repro.pipeline.scaling import PipelineResult, StageTiming, result_metrics

    result = PipelineResult(seed=0, jobs=1)
    result.stages = [
        StageTiming("corpus", 0.2, cache_hit=False),
        StageTiming("tfidf", 0.05, cache_hit=True),
        StageTiming("nmf", 0.4, cache_hit=False),
    ]
    result.skipped_stages = ["nmf"]
    result.n_documents, result.n_features = 300, 1200
    registry = result_metrics(result)
    assert registry.value("pipeline_stages_total", outcome="computed") == 1.0
    assert registry.value("pipeline_stages_total", outcome="cache_hit") == 1.0
    assert registry.value("pipeline_stages_total", outcome="journal_skip") == 1.0
    assert registry.value("pipeline_documents") == 300.0


def test_jsonl_import_rejects_garbage():
    with pytest.raises(ObservabilityError, match="line 1"):
        MetricsRegistry.from_jsonl("not json\n")
    bad_type = json.dumps({
        "name": "x", "type": "mystery", "labels": {}, "value": 1,
    })
    with pytest.raises(ObservabilityError, match="mystery"):
        MetricsRegistry.from_jsonl(bad_type + "\n")
