"""Cross-module integration: the full study, end to end."""

from __future__ import annotations

import pytest

from repro import paperdata
from repro.analysis import determinism_rates, trigger_distribution
from repro.corpus import CorpusGenerator
from repro.faultinjection import FaultCampaign
from repro.frameworks.evaluator import deterministic_recovery_gap, evaluate_coverage
from repro.pipeline import AutoClassifier
from repro.taxonomy import BugType, Trigger
from repro.trackers import KeywordSeverityExtractor


def test_github_severity_extraction_recovers_critical_population(corpus):
    """SS II-B: FAUCET severities are recovered with the keyword approach.

    The generated FAUCET issues are all critical by construction; the
    extractor should agree for a solid majority of them.
    """
    extractor = KeywordSeverityExtractor()
    issues = list(corpus.github)
    recovered = sum(1 for issue in issues if extractor.is_critical(issue))
    assert recovered / len(issues) > 0.6


def test_train_on_manual_predict_whole_dataset(corpus):
    """SS VII-B / Fig 13: the classifier trained on the 150-bug manual set
    predicts triggers over the whole dataset; configuration dominates."""
    model = AutoClassifier(seed=0)
    model.fit(corpus.manual_sample.texts(), corpus.manual_sample.labels("trigger"))
    predictions = model.predict(corpus.dataset.texts())
    shares = {
        tag: predictions.count(tag) / len(predictions) for tag in set(predictions)
    }
    assert max(shares, key=shares.get) == "configuration"
    # Network events are a comparatively small contributor (paper Fig 13).
    assert shares.get("network_events", 0.0) < shares["configuration"]
    # Predictions track ground truth closely on aggregate.
    truth = trigger_distribution(corpus.dataset)
    assert shares["configuration"] == pytest.approx(
        truth[Trigger.CONFIGURATION], abs=0.08
    )


def test_fault_injector_reflects_corpus_determinism(corpus):
    """The taxonomy-driven injector and the mined corpus agree: deterministic
    faults dominate and reproduce reliably."""
    rates = determinism_rates(corpus.dataset)
    assert min(rates.values()) > 0.9
    campaign = FaultCampaign(seeds_per_fault=3).run()
    for result in campaign.deterministic_results():
        assert result.manifestation_rate == 1.0


def test_headline_conclusion_recovery_gap():
    """The paper's headline: bugs are mostly deterministic, existing systems
    detect them, but recovery from deterministic bugs is unsolved."""
    report = evaluate_coverage(seed=0)
    gap = deterministic_recovery_gap(report)
    solved = [name for name, rate in gap.items() if rate > 0.3]
    assert not solved, f"deterministic recovery unexpectedly solved by {solved}"


def test_small_corpus_full_pipeline(tmp_path):
    """A miniature end-to-end run with persisted artifacts."""
    from repro.corpus import load_dataset_jsonl, save_dataset_jsonl

    generator = CorpusGenerator(seed=42)
    study = generator.generate()
    path = tmp_path / "corpus.jsonl"
    save_dataset_jsonl(study.manual_sample, path)
    reloaded = load_dataset_jsonl(path)
    assert len(reloaded) == len(study.manual_sample)

    labels_path = tmp_path / "labels.json"
    study.manual_labels.save(labels_path)
    from repro.taxonomy import LabelStore

    store = LabelStore.load(labels_path)
    assert len(store) == len(study.manual_labels)

    rates = determinism_rates(reloaded)
    for rate in rates.values():
        assert rate > 0.8
