"""Semantic versions, ranges, CVE database, and the dependency scanner."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import VersionError
from repro.paperdata import ONOS_RELEASES
from repro.vuln import (
    CveEntry,
    DependencyScanner,
    Version,
    VersionRange,
    VulnerabilityDatabase,
    default_database,
    onos_release_manifests,
)


class TestVersion:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("1.2.3", Version(1, 2, 3)),
            ("1.2", Version(1, 2, 0)),
            ("2", Version(2, 0, 0)),
            ("v3.1.4", Version(3, 1, 4)),
            ("1.0.0-rc1", Version(1, 0, 0, "rc1")),
        ],
    )
    def test_parse(self, text, expected):
        assert Version.parse(text) == expected

    @pytest.mark.parametrize("bad", ["", "abc", "1..2", "-1.0"])
    def test_parse_rejects_garbage(self, bad):
        with pytest.raises(VersionError):
            Version.parse(bad)

    def test_ordering(self):
        assert Version.parse("1.2.3") < Version.parse("1.2.10")
        assert Version.parse("1.9.9") < Version.parse("2.0.0")

    def test_prerelease_sorts_before_release(self):
        assert Version.parse("1.0.0-rc1") < Version.parse("1.0.0")

    def test_str_roundtrip(self):
        assert str(Version.parse("1.2.3-beta")) == "1.2.3-beta"

    @given(
        st.tuples(st.integers(0, 40), st.integers(0, 40), st.integers(0, 40)),
        st.tuples(st.integers(0, 40), st.integers(0, 40), st.integers(0, 40)),
    )
    def test_ordering_matches_tuple_ordering(self, a, b):
        va, vb = Version(*a), Version(*b)
        assert (va < vb) == (a < b)

    @given(st.tuples(st.integers(0, 20), st.integers(0, 20), st.integers(0, 20)))
    def test_parse_str_roundtrip(self, triple):
        version = Version(*triple)
        assert Version.parse(str(version)) == version


class TestVersionRange:
    def test_half_open_default(self):
        r = VersionRange.parse("[1.2.0, 1.4.1)")
        assert r.contains(Version.parse("1.2.0"))
        assert r.contains(Version.parse("1.4.0"))
        assert not r.contains(Version.parse("1.4.1"))

    def test_unbounded_low(self):
        r = VersionRange.parse("[, 2.9.2)")
        assert r.contains(Version.parse("0.1.0"))
        assert not r.contains(Version.parse("2.9.2"))

    def test_exact_match(self):
        r = VersionRange.parse("1.5.0")
        assert r.contains(Version.parse("1.5.0"))
        assert not r.contains(Version.parse("1.5.1"))

    def test_inclusive_high(self):
        r = VersionRange.parse("[1.0, 2.0]")
        assert r.contains(Version.parse("2.0.0"))

    def test_empty_range_rejected(self):
        with pytest.raises(VersionError, match="empty range"):
            VersionRange(low=Version(2), high=Version(1))

    def test_malformed_rejected(self):
        with pytest.raises(VersionError):
            VersionRange.parse("[1.0)")
        with pytest.raises(VersionError):
            VersionRange.parse("")

    @given(
        st.tuples(st.integers(0, 10), st.integers(0, 10)),
        st.tuples(st.integers(11, 20), st.integers(0, 10)),
        st.tuples(st.integers(0, 25), st.integers(0, 10)),
    )
    def test_containment_consistent_with_ordering(self, lo, hi, probe):
        r = VersionRange(low=Version(*lo, 0), high=Version(*hi, 0))
        v = Version(*probe, 0)
        inside = r.contains(v)
        below = v < r.low
        above = r.high < v or v == r.high
        assert inside == (not below and not above)


class TestDatabase:
    def test_lookup_by_version(self):
        db = default_database()
        assert any(
            c.cve_id == "CVE-2018-1000615" for c in db.lookup("ovsdb", "2.8.1")
        )
        assert not db.lookup("ovsdb", "2.9.2")

    def test_unknown_package_empty(self):
        assert default_database().lookup("leftpad", "1.0") == []

    def test_duplicate_cve_rejected(self):
        entry = CveEntry("CVE-X", "p", VersionRange.parse("[, 1.0)"), 5.0, "x")
        with pytest.raises(VersionError, match="duplicate"):
            VulnerabilityDatabase([entry, entry])

    def test_cvss_bounds(self):
        with pytest.raises(VersionError):
            CveEntry("CVE-Y", "p", VersionRange.parse("[, 1.0)"), 11.0, "x")


class TestScanner:
    def test_scan_flags_vulnerable_pins(self):
        scanner = DependencyScanner()
        findings = scanner.scan({"netty": "4.0.5", "log4j": "2.13.2"})
        packages = {f.package for f in findings}
        assert "netty" in packages
        assert "log4j" not in packages

    def test_table_three_b_growth(self):
        scanner = DependencyScanner()
        results = scanner.scan_releases(onos_release_manifests())
        counts = [len(results[release]) for release in ONOS_RELEASES]
        # Vulnerability exposure grows over time (paper's Table III-b);
        # the last release finally upgrades netty, allowing a small dip.
        assert counts[-1] > counts[0]
        assert all(b >= a for a, b in zip(counts, counts[1:-1]))

    def test_ovsdb_cve_survives_partial_upgrade(self):
        """ONOS 2.0 bumps ovsdb to 2.9.0 — still short of the 2.9.2 fix."""
        scanner = DependencyScanner()
        results = scanner.scan_releases(onos_release_manifests())
        for release in ONOS_RELEASES:
            assert any(
                f.cve.cve_id == "CVE-2018-1000615" for f in results[release]
            ), release

    def test_manifests_are_cumulative(self):
        manifests = onos_release_manifests()
        for earlier, later in zip(ONOS_RELEASES, ONOS_RELEASES[1:]):
            assert set(manifests[earlier]) <= set(manifests[later])
