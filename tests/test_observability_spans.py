"""Span derivation from real PR-4 journals, plus export determinism.

The contract under test: the journal *is* the trace.  Deriving spans
from a journal file must give the same answer whether events are fed
live through the ``on_event`` hook or replayed offline; a kill-injected
CrashHarness journal must yield bit-identical attempt-0 spans before and
after the resume appends to it, with the crash window flagged as
``truncated``; and two same-seed serving runs must export byte-identical
metrics JSONL.
"""

from __future__ import annotations

import json
import shutil

import pytest

from repro.errors import ObservabilityError
from repro.observability import (
    STATUS_OK,
    STATUS_SKIPPED,
    STATUS_TRUNCATED,
    SpanBuilder,
    Tracer,
    span_tree,
    spans_from_journal,
    spans_to_jsonl,
)
from repro.recovery.journal import (
    EVENT_BEGIN,
    EVENT_COMMIT,
    EVENT_RUN_END,
    EVENT_RUN_RESUME,
    EVENT_RUN_START,
    EVENT_SKIP,
    RunJournal,
)


# -- Tracer (manual API) -------------------------------------------------------
def test_tracer_parent_links_and_determinism():
    tracer = Tracer("t1")
    root = tracer.start("run", kind="run")
    child = tracer.start("tfidf", parent_id=root.span_id)
    tracer.end(child)
    tracer.end(root)
    spans = tracer.finished()
    assert [s.name for s in spans] == ["run", "tfidf"]
    assert spans[1].parent_id == spans[0].span_id
    assert spans[0].span_id == "t1:000000"
    assert all(s.status == STATUS_OK for s in spans)
    assert spans[1].duration == 1

    # Same sequence of calls -> same span ids and ticks.
    again = Tracer("t1")
    r2 = again.start("run", kind="run")
    c2 = again.start("tfidf", parent_id=r2.span_id)
    again.end(c2)
    again.end(r2)
    assert again.finished() == spans


def test_tracer_end_of_unopened_span_raises():
    tracer = Tracer("t")
    span = tracer.start("x")
    tracer.end(span)
    with pytest.raises(ObservabilityError):
        tracer.end(span)


# -- SpanBuilder vs offline replay ---------------------------------------------
def _journaled_run(path, run_id, *, builder=None):
    """Write a small complete run, optionally feeding a live builder."""
    on_event = builder.feed if builder is not None else None
    journal = RunJournal(path, run_id, on_event=on_event)
    journal.append(EVENT_RUN_START, meta={"seed": 0})
    journal.append(EVENT_BEGIN, stage="corpus", key="k1")
    journal.append(EVENT_COMMIT, stage="corpus", key="k1", digest="d1")
    journal.append(EVENT_BEGIN, stage="tfidf", key="k2")
    journal.append(EVENT_COMMIT, stage="tfidf", key="k2", digest="d2")
    journal.append(EVENT_SKIP, stage="warm", key="k3")
    journal.append(EVENT_RUN_END, meta={"stages": 3})
    journal.close()
    return journal


def test_live_hook_equals_offline_replay(tmp_path):
    builder = SpanBuilder("run-a")
    path = tmp_path / "run-a.jsonl"
    _journaled_run(path, "run-a", builder=builder)
    live = builder.finish()
    offline = spans_from_journal(path, trace_id="run-a")
    assert live == offline
    assert spans_to_jsonl(live) == spans_to_jsonl(offline)


def test_span_mapping_semantics(tmp_path):
    path = tmp_path / "run-b.jsonl"
    _journaled_run(path, "run-b")
    spans = spans_from_journal(path)
    by_name = {s.name: s for s in spans}
    root = by_name["run"]
    assert root.kind == "run" and root.status == STATUS_OK
    assert root.parent_id is None and root.attempt == 0
    assert root.attrs["seed"] == 0 and root.attrs["stages"] == 3
    assert by_name["corpus"].status == STATUS_OK
    assert by_name["corpus"].parent_id == root.span_id
    assert by_name["corpus"].attrs == {"key": "k1", "digest": "d1"}
    # skip with no begin: instantaneous skipped span.
    warm = by_name["warm"]
    assert warm.status == STATUS_SKIPPED and warm.duration == 0
    # trace id defaults to the journal's run id.
    assert all(s.trace_id == "run-b" for s in spans)
    tree = span_tree(spans)
    assert [s.name for s in tree[root.span_id]] == ["corpus", "tfidf", "warm"]


def test_torn_tail_truncates_open_spans(tmp_path):
    path = tmp_path / "run-c.jsonl"
    journal = RunJournal(path, "run-c")
    journal.append(EVENT_RUN_START)
    journal.append(EVENT_BEGIN, stage="corpus")
    journal.append(EVENT_COMMIT, stage="corpus")
    journal.append(EVENT_BEGIN, stage="nmf")
    journal.close()  # process dies here: nmf never commits
    spans = spans_from_journal(path)
    by_name = {s.name: s for s in spans}
    assert by_name["corpus"].status == STATUS_OK
    assert by_name["nmf"].status == STATUS_TRUNCATED
    assert by_name["nmf"].end is None and by_name["nmf"].duration is None
    assert by_name["run"].status == STATUS_TRUNCATED


def test_resume_attempt_closes_prior_crash_window(tmp_path):
    path = tmp_path / "run-d.jsonl"
    journal = RunJournal(path, "run-d")
    journal.append(EVENT_RUN_START)
    journal.append(EVENT_BEGIN, stage="corpus")
    journal.append(EVENT_COMMIT, stage="corpus")
    journal.append(EVENT_BEGIN, stage="nmf")
    journal.close()
    pre_crash = spans_from_journal(path)

    journal = RunJournal(path, "run-d")
    journal.append(EVENT_RUN_RESUME, meta={"resumed_from": 3})
    journal.append(EVENT_SKIP, stage="corpus")
    journal.append(EVENT_BEGIN, stage="nmf")
    journal.append(EVENT_COMMIT, stage="nmf")
    journal.append(EVENT_RUN_END)
    journal.close()
    spans = spans_from_journal(path)

    attempts = {s.attempt for s in spans}
    assert attempts == {0, 1}
    a0 = [s for s in spans if s.attempt == 0]
    # Attempt-0 spans are bit-identical to the pre-resume derivation.
    assert a0 == pre_crash
    a1 = {s.name: s for s in spans if s.attempt == 1}
    assert a1["run"].status == STATUS_OK
    assert a1["corpus"].status == STATUS_SKIPPED  # resume re-assertion
    assert a1["nmf"].status == STATUS_OK


# -- kill-injected CrashHarness journals ---------------------------------------
KILL_AFTER = 5


@pytest.fixture(scope="module")
def killed_and_resumed(tmp_path_factory):
    """One kill-injected run: journal snapshot pre-resume, then resumed."""
    from repro.recovery.harness import CrashHarness

    harness = CrashHarness(tmp_path_factory.mktemp("span-harness"), seed=0)
    killed = harness.run_killed(KILL_AFTER)
    assert killed.killed, killed.stderr
    snapshot = killed.journal_path.with_suffix(".pre-resume")
    shutil.copy2(killed.journal_path, snapshot)
    result, _cache = harness.resume(killed)
    return killed, snapshot, result


def test_killed_journal_spans_flag_the_crash_window(killed_and_resumed):
    killed, snapshot, _result = killed_and_resumed
    spans = spans_from_journal(snapshot)
    truncated = [s for s in spans if s.status == STATUS_TRUNCATED]
    # The root is always truncated (no run-end made it to disk); the
    # in-flight stage at kill@5 is too.
    assert any(s.kind == "run" for s in truncated)
    assert all(s.end is None for s in truncated)
    assert all(s.attempt == 0 for s in spans)


def test_spans_bit_identical_across_resume(killed_and_resumed):
    killed, snapshot, result = killed_and_resumed
    pre = spans_from_journal(snapshot, trace_id=killed.run_id)
    post = spans_from_journal(killed.journal_path)
    a0 = [s for s in post if s.attempt == 0]
    assert a0 == pre
    assert spans_to_jsonl(a0) == spans_to_jsonl(pre)
    # The resume attempt completes the run: its root closed ok, every
    # journal-skipped stage shows as a skipped span.
    a1 = {s.name: s for s in post if s.attempt == 1}
    assert a1["run"].status == STATUS_OK
    for stage in result.skipped_stages:
        assert a1[stage].status == STATUS_SKIPPED
    assert not [s for s in post if s.attempt == 1 and s.status == STATUS_TRUNCATED]


def test_reference_run_derives_a_clean_tree(tmp_path):
    """An uninterrupted journaled pipeline run: all spans ok, one root."""
    from repro.parallel import ArtifactCache
    from repro.pipeline.scaling import run_pipeline

    cache = ArtifactCache(tmp_path / "cache")
    run_pipeline(
        seed=0, jobs=1, dimensions=("bug_type",), n_topics=2,
        nmf_restarts=2, cache=cache, run_id="ref",
    )
    journal = tmp_path / "cache" / ".journal" / "ref.jsonl"
    spans = spans_from_journal(journal)
    roots = [s for s in spans if s.kind == "run"]
    assert len(roots) == 1 and roots[0].status == STATUS_OK
    stages = [s for s in spans if s.kind == "stage"]
    # corpus, tfidf, nmf, one classifier stage.
    assert len(stages) == 4
    assert all(s.status == STATUS_OK for s in stages)
    assert all(s.parent_id == roots[0].span_id for s in stages)


# -- byte-identical metrics across same-seed serving runs ----------------------
def test_same_seed_serving_runs_export_identical_metrics():
    from repro.serving import StubBackend, TrafficConfig, run_arm

    traffic = TrafficConfig(seed=7, duration=20.0, base_rate=5.0,
                            burst_rate=25.0, bursts=2, burst_length=2.0)
    first, _ = run_arm(
        name="m1", hardened=True, backend=StubBackend(), traffic=traffic
    )
    second, _ = run_arm(
        name="m2", hardened=True, backend=StubBackend(), traffic=traffic
    )
    assert first.metrics_jsonl
    assert first.metrics_jsonl == second.metrics_jsonl
    # And the export is valid, reloadable JSONL.
    from repro.observability import MetricsRegistry

    registry = MetricsRegistry.from_jsonl(first.metrics_jsonl)
    assert registry.value("serving_shed_total") == first.stats["shed"]


# -- CLI smokes ----------------------------------------------------------------
def test_cli_metrics_renders_a_run_dir(tmp_path, capsys):
    from repro.__main__ import main

    run_dir = tmp_path / "run"
    _journaled_run(run_dir / ".journal" / "demo.jsonl", "demo")
    from repro.observability import MetricsRegistry

    registry = MetricsRegistry()
    registry.counter("demo_total", "Demo").inc(3)
    (run_dir / "demo_metrics.jsonl").write_text(registry.export_jsonl())

    assert main(["metrics", "--run-dir", str(run_dir)]) == 0
    out = capsys.readouterr().out
    assert "corpus" in out and "demo_total" in out

    out_file = tmp_path / "report.json"
    assert main([
        "metrics", "--run-dir", str(run_dir),
        "--format", "json", "--output", str(out_file),
    ]) == 0
    capsys.readouterr()
    payload = json.loads(out_file.read_text())
    assert payload["traces"] and payload["metrics"]


def test_cli_trajectory_check_rejects_regression(tmp_path, capsys):
    from repro.__main__ import main
    from repro.observability import TrajectoryStore

    baseline = tmp_path / "base.json"
    candidate = tmp_path / "cand.json"
    entry = {
        "bench": "serving_overload_ab",
        "goodput_hardened": 10.0,
        "goodput_ratio": 5.0,
        "p99_hardened": 20.0,
    }
    TrajectoryStore(baseline).record(entry)
    TrajectoryStore(candidate).record(
        {**entry, "goodput_hardened": 10.0 * 0.75}
    )
    assert main([
        "trajectory", "--check",
        "--file", str(baseline), "--candidate", str(candidate),
    ]) == 2
    err = capsys.readouterr().err
    assert "goodput_hardened" in err and "REGRESSION" in err

    # The same baseline accepts itself.
    assert main(["trajectory", "--check", "--file", str(baseline)]) == 0
    out = capsys.readouterr().out
    assert "trajectory check passed (3 gate(s) evaluated)" in out
