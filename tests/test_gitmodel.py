"""Commit history, burn analysis, and dependency burn-down."""

from __future__ import annotations

from datetime import datetime, timedelta

import pytest

from repro.errors import ReproError
from repro.gitmodel import (
    Commit,
    CommitHistory,
    DependencyBurndown,
    FaucetHistoryGenerator,
    RequirementsFile,
    Subsystem,
    burn_distribution,
    classify_commit,
    onos_commits_per_release,
)
from repro.paperdata import (
    FAUCET_COMMIT_SHARE,
    FAUCET_DEPENDENCY_BURNDOWN,
    ONOS_RELEASES,
)

T0 = datetime(2018, 1, 1)


def commit(sha, files, message="change", days=0):
    return Commit(
        sha=sha,
        author="dev",
        date=T0 + timedelta(days=days),
        message=message,
        files=tuple(files),
    )


class TestCommitHistory:
    def test_sorted_by_date(self):
        history = CommitHistory(
            [commit("b", ["x"], days=5), commit("a", ["x"], days=1)]
        )
        assert [c.sha for c in history] == ["a", "b"]

    def test_duplicate_shas_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            CommitHistory([commit("a", ["x"]), commit("a", ["y"])])

    def test_between_window(self):
        history = CommitHistory([commit(str(i), ["x"], days=i) for i in range(10)])
        window = history.between(T0 + timedelta(days=2), T0 + timedelta(days=5))
        assert len(window) == 3

    def test_touching_prefix(self):
        history = CommitHistory(
            [commit("a", ["faucet/valve.py"]), commit("b", ["docs/readme.md"])]
        )
        assert [c.sha for c in history.touching("faucet/")] == ["a"]

    def test_per_release_windows(self):
        history = CommitHistory([commit(str(i), ["x"], days=i) for i in range(10)])
        releases = {
            "r1": T0 + timedelta(days=3),
            "r2": T0 + timedelta(days=8),
        }
        counts = history.per_release(releases)
        assert counts == {"r1": 3, "r2": 5}


class TestBurnClassifier:
    def test_path_rules(self):
        assert classify_commit(commit("a", ["faucet/valve.py"])) is (
            Subsystem.NETWORK_FUNCTIONALITY
        )
        assert classify_commit(commit("b", ["faucet/config_parser.py"])) is (
            Subsystem.CONFIGURATION
        )
        assert classify_commit(commit("c", ["requirements.txt"])) is (
            Subsystem.EXTERNAL_ABSTRACTION
        )

    def test_keyword_fallback(self):
        c = commit("a", ["somewhere/else.py"], message="bump ryu dependency")
        assert classify_commit(c) is Subsystem.EXTERNAL_ABSTRACTION

    def test_unclassifiable_returns_none(self):
        assert classify_commit(commit("a", ["misc.py"], message="tidy")) is None

    def test_burn_distribution_requires_classifiable(self):
        with pytest.raises(ValueError):
            burn_distribution(CommitHistory([commit("a", ["misc.py"], "tidy")]))


class TestFaucetGenerator:
    def test_burn_shares_match_fig11(self):
        history = FaucetHistoryGenerator(n_commits=4000, seed=1).generate()
        dist = burn_distribution(history)
        assert dist[Subsystem.CONFIGURATION] == pytest.approx(
            FAUCET_COMMIT_SHARE["configuration"], abs=0.03
        )
        assert dist[Subsystem.NETWORK_FUNCTIONALITY] == pytest.approx(
            FAUCET_COMMIT_SHARE["network_functionality"], abs=0.03
        )
        assert dist[Subsystem.EXTERNAL_ABSTRACTION] == pytest.approx(
            FAUCET_COMMIT_SHARE["external_abstraction"], abs=0.03
        )

    def test_deterministic(self):
        a = FaucetHistoryGenerator(seed=9).generate()
        b = FaucetHistoryGenerator(seed=9).generate()
        assert [c.sha for c in a] == [c.sha for c in b]

    def test_requirements_history_matches_table_four(self):
        snapshots = FaucetHistoryGenerator(seed=2).generate_requirements_history()
        burndown = DependencyBurndown(snapshots)
        changes = burndown.version_changes()
        for package, (expected, _desc) in FAUCET_DEPENDENCY_BURNDOWN.items():
            assert changes[package] == expected, package

    def test_ranked_order(self):
        snapshots = FaucetHistoryGenerator(seed=2).generate_requirements_history()
        ranked = DependencyBurndown(snapshots).ranked()
        assert ranked[0][0] == "ryu"
        assert ranked[1][0] == "chewie"

    def test_release_cycle_for_churned_dependency(self):
        snapshots = FaucetHistoryGenerator(seed=2).generate_requirements_history()
        burndown = DependencyBurndown(snapshots)
        assert burndown.release_cycle_days("ryu") is not None
        assert burndown.release_cycle_days("ryu") < 200
        # A single-change dependency has no cycle.
        assert burndown.release_cycle_days("pbr") is None

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            FaucetHistoryGenerator(n_commits=0)
        with pytest.raises(ReproError):
            DependencyBurndown([])


class TestDependencyBurndown:
    def test_counts_only_changes(self):
        snapshots = [
            RequirementsFile(T0, {"a": "1.0"}),
            RequirementsFile(T0 + timedelta(days=1), {"a": "1.0"}),
            RequirementsFile(T0 + timedelta(days=2), {"a": "1.1"}),
            RequirementsFile(T0 + timedelta(days=3), {"a": "1.1", "b": "0.1"}),
        ]
        changes = DependencyBurndown(snapshots).version_changes()
        assert changes == {"a": 1, "b": 0}

    def test_readdition_at_new_version_not_counted_as_change(self):
        snapshots = [
            RequirementsFile(T0, {"a": "1.0"}),
            RequirementsFile(T0 + timedelta(days=1), {}),
            RequirementsFile(T0 + timedelta(days=2), {"a": "2.0"}),
        ]
        # removal then re-addition: previous snapshot lacks the key, so the
        # re-addition is an addition, not a version change.
        assert DependencyBurndown(snapshots).version_changes()["a"] == 0


def test_onos_commits_decline_after_prototyping():
    counts = onos_commits_per_release()
    assert tuple(counts) == ONOS_RELEASES
    values = list(counts.values())
    peak = max(range(len(values)), key=values.__getitem__)
    assert ONOS_RELEASES[peak] == "1.14"
    assert values[peak:] == sorted(values[peak:], reverse=True)
