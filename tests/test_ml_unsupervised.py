"""PCA, NMF, k-means, preprocessing."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.errors import NotFittedError
from repro.ml import KMeans, L2Normalizer, LabelEncoder, NMF, PCA, StandardScaler


class TestPCA:
    def test_components_are_orthonormal(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(50, 6))
        pca = PCA(n_components=4).fit(X)
        gram = pca.components_ @ pca.components_.T
        assert np.allclose(gram, np.eye(4), atol=1e-8)

    def test_variance_ratio_sorted_and_bounded(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(40, 5)) * np.array([5, 3, 1, 0.5, 0.1])
        pca = PCA(n_components=5).fit(X)
        ratios = pca.explained_variance_ratio_
        assert np.all(np.diff(ratios) <= 1e-12)
        assert 0.99 <= ratios.sum() <= 1.0 + 1e-9

    def test_first_component_captures_dominant_axis(self):
        rng = np.random.default_rng(2)
        X = np.zeros((100, 3))
        X[:, 0] = rng.normal(scale=10.0, size=100)
        X[:, 1] = rng.normal(scale=0.1, size=100)
        pca = PCA(n_components=1).fit(X)
        assert abs(pca.components_[0, 0]) > 0.99

    def test_roundtrip_on_low_rank_data(self):
        rng = np.random.default_rng(3)
        basis = rng.normal(size=(2, 5))
        X = rng.normal(size=(30, 2)) @ basis
        pca = PCA(n_components=2).fit(X)
        reconstructed = pca.inverse_transform(pca.transform(X))
        assert np.allclose(reconstructed, X, atol=1e-8)

    def test_deterministic_sign_convention(self):
        rng = np.random.default_rng(4)
        X = rng.normal(size=(20, 4))
        a = PCA(n_components=2).fit(X).components_
        b = PCA(n_components=2).fit(X.copy()).components_
        assert np.allclose(a, b)

    def test_caps_components_at_rank(self):
        X = np.random.default_rng(5).normal(size=(3, 10))
        pca = PCA(n_components=8).fit(X)
        assert pca.components_.shape[0] == 3

    def test_transform_before_fit(self):
        with pytest.raises(NotFittedError):
            PCA(2).transform(np.zeros((2, 2)))


class TestNMF:
    def test_factors_nonnegative(self):
        rng = np.random.default_rng(0)
        V = rng.uniform(0, 1, size=(20, 12))
        nmf = NMF(n_components=4, seed=0)
        W = nmf.fit_transform(V)
        assert (W >= 0).all()
        assert (nmf.components_ >= 0).all()

    def test_reconstruction_improves_over_random(self):
        rng = np.random.default_rng(1)
        W_true = rng.uniform(0, 1, size=(30, 3))
        H_true = rng.uniform(0, 1, size=(3, 10))
        V = W_true @ H_true
        nmf = NMF(n_components=3, seed=0, max_iter=400)
        nmf.fit(V)
        baseline = np.linalg.norm(V - V.mean())
        assert nmf.reconstruction_err_ < 0.25 * baseline

    def test_rejects_negative_input(self):
        with pytest.raises(ValueError, match="non-negative"):
            NMF(2).fit(np.array([[1.0, -1.0]]))

    def test_top_terms_identifies_topic_words(self):
        # Two obvious topics: docs 0-4 use terms 0-2, docs 5-9 use terms 3-5.
        V = np.zeros((10, 6))
        V[:5, :3] = 1.0
        V[5:, 3:] = 1.0
        nmf = NMF(n_components=2, seed=1).fit(V)
        names = [f"t{i}" for i in range(6)]
        topics = nmf.top_terms(names, n_terms=3)
        groups = {frozenset(t) for t in topics}
        assert frozenset({"t0", "t1", "t2"}) in groups
        assert frozenset({"t3", "t4", "t5"}) in groups

    def test_transform_with_fixed_components(self):
        rng = np.random.default_rng(2)
        V = rng.uniform(0, 1, size=(12, 8))
        nmf = NMF(n_components=3, seed=0).fit(V)
        W = nmf.transform(V[:4])
        assert W.shape == (4, 3)
        assert (W >= 0).all()

    def test_deterministic_for_seed(self):
        V = np.random.default_rng(3).uniform(0, 1, size=(10, 6))
        a = NMF(n_components=2, seed=7).fit_transform(V)
        b = NMF(n_components=2, seed=7).fit_transform(V)
        assert np.allclose(a, b)


class TestKMeans:
    def test_recovers_separated_clusters(self):
        rng = np.random.default_rng(0)
        centers = np.array([[0, 0], [10, 10], [-10, 10]])
        X = np.vstack([rng.normal(loc=c, scale=0.5, size=(30, 2)) for c in centers])
        km = KMeans(3, seed=0).fit(X)
        labels = km.predict(X)
        # Each true cluster maps to exactly one predicted cluster.
        for i in range(3):
            block = labels[i * 30 : (i + 1) * 30]
            assert len(set(block.tolist())) == 1

    def test_inertia_decreases_with_more_clusters(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(60, 2))
        inertia_2 = KMeans(2, seed=0).fit(X).inertia_
        inertia_6 = KMeans(6, seed=0).fit(X).inertia_
        assert inertia_6 < inertia_2

    def test_rejects_more_clusters_than_points(self):
        with pytest.raises(ValueError):
            KMeans(5).fit(np.zeros((3, 2)))

    def test_predict_before_fit(self):
        with pytest.raises(NotFittedError):
            KMeans(2).predict(np.zeros((2, 2)))

    def test_fit_predict_matches_labels(self):
        X = np.random.default_rng(2).normal(size=(20, 2))
        km = KMeans(2, seed=0)
        labels = km.fit_predict(X)
        assert np.array_equal(labels, km.labels_)


class TestPreprocessing:
    def test_standard_scaler_zero_mean_unit_var(self):
        X = np.random.default_rng(0).normal(loc=5, scale=3, size=(100, 4))
        Z = StandardScaler().fit_transform(X)
        assert np.allclose(Z.mean(axis=0), 0, atol=1e-9)
        assert np.allclose(Z.std(axis=0), 1, atol=1e-9)

    def test_standard_scaler_constant_feature_safe(self):
        X = np.ones((10, 2))
        Z = StandardScaler().fit_transform(X)
        assert np.isfinite(Z).all()

    def test_l2_normalizer_rows(self):
        X = np.array([[3.0, 4.0], [0.0, 0.0]])
        Z = L2Normalizer().fit_transform(X)
        assert np.allclose(np.linalg.norm(Z[0]), 1.0)
        assert np.allclose(Z[1], 0.0)

    def test_label_encoder_roundtrip(self):
        encoder = LabelEncoder().fit(["b", "a", "b", "c"])
        indices = encoder.transform(["a", "b", "c"])
        assert encoder.inverse_transform(indices) == ["a", "b", "c"]

    def test_label_encoder_unseen_label(self):
        encoder = LabelEncoder().fit(["a"])
        with pytest.raises(ValueError, match="unseen"):
            encoder.transform(["z"])

    @given(
        arrays(
            np.float64,
            st.tuples(st.integers(2, 10), st.integers(1, 5)),
            elements=st.floats(-100, 100),
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_scaler_transform_is_finite(self, X):
        Z = StandardScaler().fit_transform(X)
        assert np.isfinite(Z).all()
