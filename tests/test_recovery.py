"""Journal, checkpoint-manager, and resume semantics (crash-safe runtime)."""

from __future__ import annotations

import json

import pytest

from repro.faultinjection.campaign import FaultCampaign
from repro.parallel import ArtifactCache
from repro.pipeline.scaling import run_pipeline
from repro.recovery import (
    EVENT_BEGIN,
    EVENT_COMMIT,
    EVENT_RUN_END,
    EVENT_RUN_START,
    CheckpointManager,
    JournalError,
    RecoveryError,
    RunJournal,
    replay_journal,
    tear_file,
)
from repro.recovery.checkpoint import open_run_journal


class TestRunJournal:
    def test_append_replay_roundtrip(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunJournal(path, "r1") as journal:
            journal.append(EVENT_RUN_START, meta={"config": "abc"})
            journal.append(EVENT_BEGIN, stage="corpus", key="k1")
            journal.append(EVENT_COMMIT, stage="corpus", key="k1", digest="d1")
            journal.append(EVENT_RUN_END)
        replay = replay_journal(path)
        assert replay.run_id == "r1"
        assert [e.event for e in replay.events] == [
            EVENT_RUN_START, EVENT_BEGIN, EVENT_COMMIT, EVENT_RUN_END,
        ]
        assert [e.seq for e in replay.events] == [0, 1, 2, 3]
        assert replay.dropped == 0
        assert replay.completed
        assert replay.committed()["corpus"].digest == "d1"
        assert replay.run_config() == {"config": "abc"}

    def test_seq_continues_across_reopen(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunJournal(path, "r1") as journal:
            journal.append(EVENT_RUN_START)
        with RunJournal(path, "r1") as journal:
            entry = journal.append(EVENT_RUN_END)
        assert entry.seq == 1
        assert replay_journal(path).next_seq == 2

    def test_unknown_event_rejected(self, tmp_path):
        with RunJournal(tmp_path / "run.jsonl", "r1") as journal:
            with pytest.raises(JournalError, match="unknown journal event"):
                journal.append("checkpoint")

    def test_append_after_close_rejected(self, tmp_path):
        journal = RunJournal(tmp_path / "run.jsonl", "r1")
        journal.append(EVENT_RUN_START)
        journal.close()
        with pytest.raises(JournalError, match="closed"):
            journal.append(EVENT_RUN_END)

    def test_on_event_fires_after_durable_write(self, tmp_path):
        path = tmp_path / "run.jsonl"
        seen = []

        def observer(event):
            # The event must already be parseable from disk when the
            # callback fires — this is what makes SIGKILL-at-event-k a
            # deterministic crash model.
            on_disk = [json.loads(line) for line in path.read_text().splitlines()]
            seen.append((event.seq, on_disk[-1]["seq"]))

        with RunJournal(path, "r1", on_event=observer) as journal:
            journal.append(EVENT_RUN_START)
            journal.append(EVENT_RUN_END)
        assert seen == [(0, 0), (1, 1)]

    def test_uncommitted_names_the_interrupted_stage(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunJournal(path, "r1") as journal:
            journal.append(EVENT_RUN_START)
            journal.append(EVENT_BEGIN, stage="corpus", key="k1")
            journal.append(EVENT_COMMIT, stage="corpus", key="k1", digest="d1")
            journal.append(EVENT_BEGIN, stage="tfidf", key="k2")
        replay = replay_journal(path)
        assert replay.uncommitted() == ["tfidf"]
        assert not replay.completed


class TestReplayCorruption:
    def _journal(self, tmp_path, events=3):
        path = tmp_path / "run.jsonl"
        with RunJournal(path, "r1") as journal:
            journal.append(EVENT_RUN_START)
            for index in range(events - 1):
                journal.append(EVENT_BEGIN, stage=f"s{index}", key=f"k{index}")
        return path

    def test_torn_tail_dropped_silently(self, tmp_path):
        path = self._journal(tmp_path)
        tear_file(path, -7)  # mid-way through the final record
        replay = replay_journal(path)
        assert replay.dropped == 1
        assert len(replay.events) == 2

    def test_midfile_corruption_raises(self, tmp_path):
        path = self._journal(tmp_path)
        lines = path.read_text().splitlines(keepends=True)
        lines[1] = lines[1][:20] + "\n"
        path.write_text("".join(lines))
        with pytest.raises(JournalError, match="corrupt journal record"):
            replay_journal(path)

    def test_checksum_mismatch_raises(self, tmp_path):
        path = self._journal(tmp_path)
        lines = path.read_text().splitlines(keepends=True)
        record = json.loads(lines[1])
        record["stage"] = "tampered"  # edit without re-deriving the check
        lines[1] = json.dumps(record, sort_keys=True) + "\n"
        path.write_text("".join(lines))
        with pytest.raises(JournalError, match="corrupt journal record"):
            replay_journal(path)

    def test_sequence_gap_raises(self, tmp_path):
        path = self._journal(tmp_path)
        lines = path.read_text().splitlines(keepends=True)
        del lines[1]
        # Append a sentinel so the gap is not the (droppable) final line.
        path.write_text("".join(lines))
        with pytest.raises(JournalError, match="sequence gap"):
            replay_journal(path)

    def test_missing_journal_raises(self, tmp_path):
        with pytest.raises(JournalError, match="does not exist"):
            replay_journal(tmp_path / "absent.jsonl")

    def test_fully_torn_journal_raises(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text("{half a rec")
        with pytest.raises(JournalError, match="no intact records"):
            replay_journal(path)


class TestOpenRunJournal:
    def test_fresh_refuses_existing_journal(self, tmp_path):
        path = tmp_path / "run.jsonl"
        journal, _ = open_run_journal(path, "r1", resume=False, config_digest="c")
        journal.close()
        with pytest.raises(RecoveryError, match="already exists"):
            open_run_journal(path, "r1", resume=False, config_digest="c")

    def test_resume_refuses_config_drift(self, tmp_path):
        path = tmp_path / "run.jsonl"
        journal, _ = open_run_journal(path, "r1", resume=False, config_digest="c1")
        journal.close()
        with pytest.raises(RecoveryError, match="different configuration"):
            open_run_journal(path, "r1", resume=True, config_digest="c2")

    def test_resume_returns_committed_map(self, tmp_path):
        path = tmp_path / "run.jsonl"
        journal, _ = open_run_journal(path, "r1", resume=False, config_digest="c")
        journal.append(EVENT_BEGIN, stage="corpus", key="k1")
        journal.append(EVENT_COMMIT, stage="corpus", key="k1", digest="d1")
        journal.close()
        journal, committed = open_run_journal(
            path, "r1", resume=True, config_digest="c"
        )
        journal.close()
        assert set(committed) == {"corpus"}
        assert committed["corpus"].digest == "d1"


class TestCheckpointManager:
    def _manager(self, tmp_path, committed=None):
        cache = ArtifactCache(tmp_path / "cache")
        journal = RunJournal(tmp_path / "journal" / "run.jsonl", "r1")
        journal.append(EVENT_RUN_START)
        return cache, journal, CheckpointManager(
            cache, journal, committed=committed
        )

    def test_compute_then_resume_skips(self, tmp_path):
        cache, journal, manager = self._manager(tmp_path)
        calls = []

        def compute():
            calls.append(1)
            return {"acc": 0.96}

        value, outcome = manager.run_stage("svm", "svm", {"seed": 1}, compute)
        journal.close()
        assert value == {"acc": 0.96}
        assert not outcome.hit and not outcome.skipped
        assert manager.computed_stages() == ["svm"]

        replay = replay_journal(journal.path)
        journal2 = RunJournal(journal.path, "r1")
        manager2 = CheckpointManager(cache, journal2, committed=replay.committed())
        value, outcome = manager2.run_stage("svm", "svm", {"seed": 1}, compute)
        journal2.close()
        assert value == {"acc": 0.96}
        assert outcome.skipped
        assert manager2.skipped_stages() == ["svm"]
        assert len(calls) == 1

    def test_corrupted_checkpoint_recomputes(self, tmp_path):
        cache, journal, manager = self._manager(tmp_path)
        manager.run_stage("svm", "svm", {"seed": 1}, lambda: "v1")
        journal.close()
        payload = cache.path_for("svm", {"seed": 1})
        tear_file(payload, payload.stat().st_size // 2)

        replay = replay_journal(journal.path)
        journal2 = RunJournal(journal.path, "r1")
        manager2 = CheckpointManager(cache, journal2, committed=replay.committed())
        value, outcome = manager2.run_stage("svm", "svm", {"seed": 1}, lambda: "v2")
        journal2.close()
        assert value == "v2"
        assert not outcome.skipped
        assert cache.stats()["quarantined"] == 1

    def test_warm_unjournaled_cache_adopted_as_commit(self, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        cache.put("svm", {"seed": 1}, "warm")
        journal = RunJournal(tmp_path / "journal" / "run.jsonl", "r1")
        journal.append(EVENT_RUN_START)
        manager = CheckpointManager(cache, journal)
        value, outcome = manager.peek("svm", "svm", {"seed": 1})
        journal.close()
        assert value == "warm"
        assert outcome.hit and not outcome.skipped
        committed = replay_journal(journal.path).committed()
        assert "svm" in committed

    def test_commit_digest_matches_cache(self, tmp_path):
        cache, journal, manager = self._manager(tmp_path)
        key = manager.begin("svm", "svm", {"seed": 1})
        outcome = manager.commit_value("svm", "svm", {"seed": 1}, "value")
        journal.close()
        assert outcome.key == key
        assert outcome.digest == cache.digest_of("svm", {"seed": 1})


_PIPELINE_KW = dict(
    seed=0, dimensions=("bug_type",), n_topics=2, nmf_restarts=2
)


class TestPipelineJournaling:
    def test_journaled_run_requires_cache(self):
        with pytest.raises(RecoveryError, match="require an artifact cache"):
            run_pipeline(run_id="r1", cache=None, **_PIPELINE_KW)

    def test_conflicting_run_ids_rejected(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        with pytest.raises(RecoveryError, match="conflicting run ids"):
            run_pipeline(run_id="a", resume="b", cache=cache, **_PIPELINE_KW)

    def test_fresh_run_journal_shape(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        result = run_pipeline(cache=cache, run_id="r1", **_PIPELINE_KW)
        assert result.run_id == "r1" and not result.resumed
        replay = replay_journal(tmp_path / ".journal" / "r1.jsonl")
        counts = replay.counts()
        assert counts == {"run-start": 1, "begin": 4, "commit": 4, "run-end": 1}
        assert replay.completed

    def test_resume_completed_run_skips_everything(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        first = run_pipeline(cache=cache, run_id="r1", **_PIPELINE_KW)
        second = run_pipeline(cache=cache, resume="r1", **_PIPELINE_KW)
        assert second.resumed
        assert sorted(second.skipped_stages) == sorted(
            ["corpus", "tfidf", "nmf", "validate:bug_type"]
        )
        assert first.accuracies() == second.accuracies()
        assert first.topics == second.topics
        replay = replay_journal(tmp_path / ".journal" / "r1.jsonl")
        assert replay.counts()["skip"] == 4

    def test_resume_with_changed_config_refused(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        run_pipeline(cache=cache, run_id="r1", **_PIPELINE_KW)
        changed = dict(_PIPELINE_KW, n_topics=3)
        with pytest.raises(RecoveryError, match="different configuration"):
            run_pipeline(cache=cache, resume="r1", **changed)

    def test_same_run_id_twice_refused(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        run_pipeline(cache=cache, run_id="r1", **_PIPELINE_KW)
        with pytest.raises(RecoveryError, match="already exists"):
            run_pipeline(cache=cache, run_id="r1", **_PIPELINE_KW)


class TestCampaignResume:
    def test_truncated_journal_resumes_committed_specs_only(self, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        campaign = FaultCampaign(seeds_per_fault=2)
        full = campaign.run(cache=cache, run_id="camp")
        journal_path = tmp_path / "cache" / ".journal" / "camp.jsonl"

        # Simulate a crash after the first two commits: drop the journal
        # suffix (run-start + 2x begin/commit on interleaved waves of 1).
        lines = journal_path.read_text().splitlines(keepends=True)
        journal_path.write_text("".join(lines[:6]))
        committed_before = set(replay_journal(journal_path).committed())

        resumed = campaign.run(cache=cache, resume="camp")
        assert set(f"spec:{fid}" for fid in resumed.skipped) == committed_before
        assert [r.spec.fault_id for r in resumed.results] == [
            r.spec.fault_id for r in full.results
        ]
        assert resumed.expectation_match_rate == full.expectation_match_rate

    def test_resume_refuses_different_campaign(self, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        FaultCampaign(seeds_per_fault=2).run(cache=cache, run_id="camp")
        with pytest.raises(RecoveryError, match="different configuration"):
            FaultCampaign(seeds_per_fault=3).run(cache=cache, resume="camp")

    def test_ab_campaign_resume_matches(self, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        campaign = FaultCampaign(seeds_per_fault=1)
        first = campaign.run_ab(cache=cache, run_id="ab")
        second = campaign.run_ab(cache=cache, resume="ab")
        assert len(second.skipped) == len(campaign.catalog)
        assert first.summary() == second.summary()

    def test_journaled_campaign_requires_cache(self):
        with pytest.raises(RecoveryError, match="require an artifact cache"):
            FaultCampaign(seeds_per_fault=1).run(run_id="camp")
