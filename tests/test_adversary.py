"""Control-plane adversary: interposition, invariants, minimization."""

from __future__ import annotations

import pytest

from repro.adversary import (
    CHANNEL_ACTIONS,
    FaultAction,
    FaultEvent,
    FaultSchedule,
    MessageInterposer,
    find_violating_schedule,
    minimize_schedule,
    random_schedule,
    run_adversary,
)
from repro.errors import ReproError, ScheduleError
from repro.resilience import ResilienceEvent, ResilienceLedger
from repro.sdnsim import EventScheduler
from repro.taxonomy import Symptom


class TestSchedule:
    def test_events_sorted_and_replayable(self):
        schedule = FaultSchedule()
        schedule.add(5.0, "node:a", FaultAction.DROP, 2)
        schedule.add(1.0, "dev:1", FaultAction.DELAY, 4.0)
        assert [e.time for e in schedule] == [1.0, 5.0]
        assert schedule.horizon == 5.0

    def test_json_round_trip(self):
        schedule = random_schedule(3, events=10)
        restored = FaultSchedule.from_json(schedule.to_json())
        assert restored == schedule
        assert restored.to_dicts() == schedule.to_dicts()

    def test_subset_preserves_order(self):
        schedule = random_schedule(1, events=8)
        sub = schedule.subset([0, 3, 5])
        assert len(sub) == 3
        assert sub.events == [schedule.events[i] for i in (0, 3, 5)]

    def test_random_schedule_deterministic(self):
        assert random_schedule(9, events=15) == random_schedule(9, events=15)
        assert random_schedule(9, events=15) != random_schedule(10, events=15)

    def test_malformed_inputs_rejected(self):
        with pytest.raises(ReproError):
            FaultSchedule([FaultEvent(-1.0, "node:a", FaultAction.DROP)])
        with pytest.raises(ReproError):
            FaultSchedule.from_dicts([{"time": 1.0, "action": "drop"}])
        with pytest.raises(ReproError):
            random_schedule(0, events=0)

    def test_unknown_action_names_known_ones(self):
        with pytest.raises(ScheduleError, match="unknown fault action"):
            FaultEvent.from_dict(
                {"time": 1.0, "target": "node:a", "action": "explode"}
            )
        with pytest.raises(ScheduleError, match="drop"):
            FaultEvent.from_dict(
                {"time": 1.0, "target": "node:a", "action": "explode"}
            )

    def test_missing_fields_listed(self):
        with pytest.raises(ScheduleError, match="target"):
            FaultEvent.from_dict({"time": 1.0, "action": "drop"})
        with pytest.raises(ScheduleError, match="time.*target|target.*time"):
            FaultEvent.from_dict({"action": "drop"})

    def test_non_numeric_fields_rejected(self):
        with pytest.raises(ScheduleError, match="must be a number"):
            FaultEvent.from_dict(
                {"time": "soon", "target": "node:a", "action": "drop"}
            )
        with pytest.raises(ScheduleError, match="must be a number"):
            FaultEvent.from_dict(
                {"time": 1.0, "target": "node:a", "action": "drop",
                 "param": True}
            )

    def test_bad_json_shapes_rejected(self):
        with pytest.raises(ScheduleError, match="not valid JSON"):
            FaultSchedule.from_json("{nope")
        with pytest.raises(ScheduleError, match="list of events"):
            FaultSchedule.from_json('{"time": 1.0}')
        with pytest.raises(ScheduleError, match="must be a JSON object"):
            FaultSchedule.from_dicts(["drop"])

    def test_round_trip_after_validation(self):
        schedule = random_schedule(5, events=12)
        restored = FaultSchedule.from_json(schedule.to_json())
        assert restored == schedule
        again = FaultSchedule.from_dicts(restored.to_dicts())
        assert again.to_dicts() == schedule.to_dicts()


class TestInterposer:
    def _make(self, **kwargs):
        scheduler = EventScheduler()
        delivered: list[object] = []
        interposer = MessageInterposer(
            scheduler,
            lambda message, _source: delivered.append(message),
            name="test",
            **kwargs,
        )
        return scheduler, interposer, delivered

    def test_drop_budget_consumes_messages(self):
        scheduler, interposer, delivered = self._make()
        interposer.arm(FaultAction.DROP, 2)
        for i in range(4):
            interposer.feed(i)
        scheduler.run(until=1)
        assert delivered == [2, 3]
        assert interposer.log.count("dropped") == 2

    def test_duplicate_delivers_twice(self):
        scheduler, interposer, delivered = self._make()
        interposer.arm(FaultAction.DUPLICATE, 1)
        interposer.feed("m")
        scheduler.run(until=1)
        assert delivered == ["m", "m"]

    def test_delay_defers_on_sim_clock(self):
        scheduler, interposer, delivered = self._make()
        interposer.arm(FaultAction.DELAY, 7.5)
        interposer.feed("late")
        scheduler.run(until=7.0)
        assert delivered == []
        scheduler.run(until=8.0)
        assert delivered == ["late"]

    def test_reorder_lets_successor_overtake(self):
        scheduler, interposer, delivered = self._make()
        interposer.arm(FaultAction.REORDER, 1)
        interposer.feed("first")
        interposer.feed("second")
        scheduler.run(until=1)
        assert delivered == ["second", "first"]

    def test_reorder_flushes_without_successor(self):
        scheduler, interposer, delivered = self._make()
        interposer.arm(FaultAction.REORDER, 1)
        interposer.feed("only")
        scheduler.run(until=30)
        assert delivered == ["only"]
        assert interposer.log.count("flushed") == 1

    def test_corrupt_uses_domain_corrupter(self):
        scheduler, interposer, delivered = self._make(
            corrupter=lambda m: m.upper() if m != "poison" else None
        )
        interposer.arm(FaultAction.CORRUPT, 2)
        interposer.feed("msg")
        interposer.feed("poison")
        scheduler.run(until=1)
        assert delivered == ["MSG"]
        assert interposer.log.count("corrupted-dropped") == 1

    def test_partition_oracle_cuts_traffic(self):
        scheduler, interposer, delivered = self._make(
            reachable=lambda source: source != "isolated"
        )
        interposer.feed("kept", source="peer")
        interposer.feed("cut", source="isolated")
        scheduler.run(until=1)
        assert delivered == ["kept"]
        assert interposer.log.count("partitioned") == 1

    def test_non_channel_action_rejected(self):
        _scheduler, interposer, _delivered = self._make()
        with pytest.raises(ReproError):
            interposer.arm(FaultAction.KILL, 0)
        assert FaultAction.KILL not in CHANNEL_ACTIONS


class TestAdversaryRuns:
    def test_replay_is_deterministic(self):
        schedule = random_schedule(4, events=20)
        a = run_adversary(schedule)
        b = run_adversary(schedule)
        assert a.violations == b.violations
        assert a.violated_subjects() == b.violated_subjects()

    def test_partition_produces_dual_mastership(self):
        """Isolate a master; the majority re-elects while the isolated node
        keeps its stale self-claim — mastership-uniqueness fires."""
        schedule = FaultSchedule()
        schedule.add(5.0, "a|b,c", FaultAction.PARTITION)
        result = run_adversary(schedule, horizon=30.0)
        assert "mastership-uniqueness" in result.by_invariant()
        outcome = result.outcome()
        assert outcome.symptom is Symptom.BYZANTINE

    def test_kill_wedges_buggy_cluster_only(self):
        schedule = FaultSchedule()
        schedule.add(5.0, "a", FaultAction.KILL)
        bare = run_adversary(schedule, horizon=40.0)
        hardened = run_adversary(schedule, hardened=True, horizon=40.0)
        assert "quorum-safety" in bare.by_invariant()
        assert not hardened.violated

    def test_violations_priced_into_ledger(self):
        ledger = ResilienceLedger()
        schedule = FaultSchedule()
        schedule.add(5.0, "a", FaultAction.KILL)
        result = run_adversary(schedule, ledger=ledger, horizon=40.0)
        assert result.violated
        assert ledger.count(ResilienceEvent.VIOLATION) == len(result.violations)

    def test_random_schedules_violate_bare_world(self):
        for seed in range(3):
            schedule = random_schedule(seed, events=20)
            assert run_adversary(schedule).violated, f"seed {seed}"

    def test_healthy_world_stays_clean(self):
        schedule = FaultSchedule()
        schedule.add(1.0, "node:a", FaultAction.DELAY, 0.5)
        result = run_adversary(schedule, horizon=30.0)
        assert not result.violated


class TestMinimizer:
    def test_acceptance_demo(self):
        """ISSUE acceptance: a seeded schedule of >=20 events violates an
        invariant and ddmin shrinks it to <=5 events reproducing the same
        violation under deterministic replay."""
        seed, schedule, result = find_violating_schedule(0, events=20)
        assert len(schedule) >= 20
        assert result.violated
        minimized = minimize_schedule(schedule)
        assert len(minimized.minimized) <= 5
        assert minimized.reduction > 0.5
        replay = run_adversary(minimized.minimized)
        assert replay.violated
        assert any(
            v.invariant == minimized.target for v in replay.violations
        )
        # probes counts every subset ddmin asked about, replays only the
        # ones actually executed; they can only differ by memo hits.
        assert minimized.replays <= minimized.probes

    def test_memoization_skips_revisited_subsets(self):
        """A two-culprit predicate forces ddmin through complement passes
        and granularity resets that revisit identical index-subsets; the
        memo answers those without re-running the replay."""
        schedule = random_schedule(4, events=20)
        culprits = (schedule.events[3], schedule.events[17])
        replay_calls: list[int] = []

        def replay(subset):
            replay_calls.append(1)
            return subset

        def predicate(subset) -> bool:
            return all(c in subset.events for c in culprits)

        minimized = minimize_schedule(
            schedule, replay=replay, predicate=predicate
        )
        assert len(minimized.minimized) <= 4
        assert all(c in minimized.minimized.events for c in culprits)
        assert minimized.replays == len(replay_calls)
        assert minimized.replays < minimized.probes, (
            "memoization never fired on a revisiting ddmin run"
        )

    def test_memoization_never_changes_the_answer(self):
        """The memo is a pure cache: probe accounting aside, the minimized
        schedule equals what a replay-every-probe ddmin produces."""
        _seed, schedule, _result = find_violating_schedule(0, events=20)
        first = minimize_schedule(schedule)
        second = minimize_schedule(schedule)
        assert first.minimized == second.minimized
        assert first.replays == second.replays
        assert first.probes == second.probes

    def test_minimized_is_one_minimal(self):
        """1-minimality: removing any single event loses the violation."""
        _seed, schedule, _result = find_violating_schedule(0, events=20)
        minimized = minimize_schedule(schedule)
        kept = minimized.minimized
        for drop in range(len(kept)):
            indices = [i for i in range(len(kept)) if i != drop]
            smaller = kept.subset(indices)
            replay = run_adversary(smaller)
            assert not any(
                v.invariant == minimized.target for v in replay.violations
            )

    def test_non_violating_schedule_rejected(self):
        schedule = FaultSchedule()
        schedule.add(1.0, "node:a", FaultAction.DELAY, 0.5)
        with pytest.raises(ReproError, match="does not violate"):
            minimize_schedule(schedule)

    def test_explicit_target_must_be_violated(self):
        schedule = FaultSchedule()
        schedule.add(5.0, "a", FaultAction.KILL)
        with pytest.raises(ReproError, match="does not violate"):
            minimize_schedule(schedule, target="mastership-uniqueness")


class TestAdversarialAb:
    def test_hardened_violates_less(self):
        from repro.faultinjection import FaultCampaign

        report = FaultCampaign(seeds_per_fault=3).run_adversarial_ab(events=16)
        assert report.bare_violation_count > 0
        assert report.hardened_violation_count <= report.bare_violation_count
        summary = report.summary()
        assert summary["schedules"] == 3
        assert summary["hardened_retries"] > 0
        per_invariant = report.per_invariant()
        assert per_invariant
        for bare, hardened in per_invariant.values():
            assert bare >= 0 and hardened >= 0
