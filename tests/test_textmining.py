"""Tokenizer, Porter stemmer, vocabulary, and TF-IDF."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import NotFittedError
from repro.textmining import (
    ENGLISH_STOPWORDS,
    PorterStemmer,
    TfidfVectorizer,
    Tokenizer,
    Vocabulary,
    ngrams,
    sliding_windows,
)
from repro.textmining.tokenizer import split_identifier


class TestStemmer:
    @pytest.mark.parametrize(
        "word,stem",
        [
            ("caresses", "caress"),
            ("ponies", "poni"),
            ("cats", "cat"),
            ("feed", "feed"),
            ("agreed", "agre"),
            ("plastered", "plaster"),
            ("motoring", "motor"),
            ("sing", "sing"),
            ("conflated", "conflat"),
            ("troubling", "troubl"),
            ("sized", "size"),
            ("hopping", "hop"),
            ("falling", "fall"),
            ("happy", "happi"),
            ("relational", "relat"),
            ("conditional", "condit"),
            ("vietnamization", "vietnam"),
            ("predication", "predic"),
            ("operator", "oper"),
            ("triplicate", "triplic"),
            ("hopefulness", "hope"),
            ("goodness", "good"),
            ("formative", "form"),
            ("probate", "probat"),
            ("cease", "ceas"),
            ("controller", "control"),
            ("crashes", "crash"),
            ("crashed", "crash"),
            ("crashing", "crash"),
        ],
    )
    def test_known_stems(self, word, stem):
        assert PorterStemmer().stem(word) == stem

    def test_short_words_untouched(self):
        stemmer = PorterStemmer()
        assert stemmer.stem("at") == "at"
        assert stemmer.stem("of") == "of"

    @given(st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1, max_size=20))
    def test_stem_is_idempotent_on_its_output_prefix_property(self, word):
        """A stem never grows, and stemming never raises."""
        stemmer = PorterStemmer()
        stem = stemmer.stem(word)
        assert len(stem) <= len(word)
        assert stem == stem.lower()

    def test_inflections_share_a_stem(self):
        stemmer = PorterStemmer()
        stems = {stemmer.stem(w) for w in ("crash", "crashed", "crashes", "crashing")}
        assert len(stems) == 1


class TestTokenizer:
    def test_camel_case_split(self):
        assert split_identifier("NullPointerException") == [
            "null", "pointer", "exception",
        ]

    def test_snake_case_split(self):
        assert split_identifier("flow_mod_handler") == ["flow", "mod", "handler"]

    def test_acronym_handling(self):
        assert split_identifier("HTTPServer") == ["http", "server"]

    def test_stopwords_removed(self):
        tokens = Tokenizer(stem=False).tokenize("the controller is in the rack")
        assert "the" not in tokens and "controller" in tokens

    def test_stemming_applied(self):
        tokens = Tokenizer().tokenize("controllers crashing repeatedly")
        assert "control" in tokens and "crash" in tokens

    def test_min_length_filter(self):
        tokens = Tokenizer(stem=False, remove_stopwords=False, min_length=3).tokenize(
            "an ip is up"
        )
        assert tokens == []

    def test_numbers_in_identifiers_kept(self):
        tokens = Tokenizer(stem=False, remove_stopwords=False).tokenize("ipv6 route")
        assert "ipv6" in tokens

    @given(st.text(max_size=200))
    def test_never_raises_and_all_tokens_nonempty(self, text):
        tokens = Tokenizer().tokenize(text)
        assert all(tokens), "empty token produced"


class TestNgramsAndWindows:
    def test_ngrams_basic(self):
        assert ngrams(["a", "b", "c"], 2) == [("a", "b"), ("b", "c")]

    def test_ngrams_too_short(self):
        assert ngrams(["a"], 2) == []

    def test_ngrams_rejects_zero(self):
        with pytest.raises(ValueError):
            ngrams(["a"], 0)

    def test_sliding_windows_cover_context(self):
        pairs = dict()
        for center, context in sliding_windows(["a", "b", "c"], 1):
            pairs[center] = context
        assert pairs == {"a": ["b"], "b": ["a", "c"], "c": ["b"]}

    def test_sliding_windows_rejects_zero(self):
        with pytest.raises(ValueError):
            list(sliding_windows(["a"], 0))


class TestVocabulary:
    DOCS = [["flow", "table", "flow"], ["flow", "crash"], ["crash"]]

    def test_frequency_ordering(self):
        vocab = Vocabulary(self.DOCS)
        assert vocab.index("flow") == 0  # most frequent

    def test_counts_and_docfreq(self):
        vocab = Vocabulary(self.DOCS)
        assert vocab.count("flow") == 3
        assert vocab.document_frequency("flow") == 2
        assert vocab.document_frequency("crash") == 2

    def test_min_count_filters(self):
        vocab = Vocabulary(self.DOCS, min_count=2)
        assert "table" not in vocab

    def test_max_size_truncates_to_most_frequent(self):
        vocab = Vocabulary(self.DOCS, max_size=1)
        assert list(vocab) == ["flow"]

    def test_encode_drops_oov(self):
        vocab = Vocabulary(self.DOCS, min_count=2)
        assert vocab.encode(["flow", "table", "crash"]) == [
            vocab.index("flow"), vocab.index("crash"),
        ]

    def test_token_index_roundtrip(self):
        vocab = Vocabulary(self.DOCS)
        for token in vocab:
            assert vocab.token(vocab.index(token)) == token

    @given(
        st.lists(
            st.lists(st.sampled_from("abcde"), min_size=1, max_size=8),
            min_size=1,
            max_size=10,
        )
    )
    def test_counts_sum_to_total_tokens(self, docs):
        vocab = Vocabulary(docs)
        assert sum(vocab.counts) == sum(len(d) for d in docs)


class TestTfidf:
    DOCS = [["flow", "crash"], ["flow", "table"], ["flow"]]

    def test_requires_fit(self):
        with pytest.raises(NotFittedError):
            TfidfVectorizer().transform(self.DOCS)

    def test_shape(self):
        matrix = TfidfVectorizer().fit_transform(self.DOCS)
        assert matrix.shape == (3, 3)

    def test_rows_l2_normalized(self):
        matrix = TfidfVectorizer().fit_transform(self.DOCS)
        norms = np.linalg.norm(matrix, axis=1)
        assert np.allclose(norms, 1.0)

    def test_ubiquitous_term_weighs_less(self):
        vectorizer = TfidfVectorizer(normalize=False)
        matrix = vectorizer.fit_transform(self.DOCS)
        flow_col = vectorizer.vocabulary_.index("flow")
        crash_col = vectorizer.vocabulary_.index("crash")
        # In doc 0 both terms appear once; 'crash' is rarer so scores higher.
        assert matrix[0, crash_col] > matrix[0, flow_col]

    def test_oov_terms_ignored_at_transform(self):
        vectorizer = TfidfVectorizer().fit(self.DOCS)
        row = vectorizer.transform([["unseen", "flow"]])
        assert row.shape == (1, 3)
        assert row.sum() > 0

    def test_empty_doc_is_zero_row(self):
        vectorizer = TfidfVectorizer().fit(self.DOCS)
        row = vectorizer.transform([[]])
        assert np.allclose(row, 0.0)

    def test_empty_document_list_transforms_to_empty_matrix(self):
        vectorizer = TfidfVectorizer().fit(self.DOCS)
        matrix = vectorizer.transform([])
        assert matrix.shape == (0, 3)

    def test_all_stopword_input_yields_zero_rows(self):
        # The tokenizer drops stopwords, so an all-stopword report reaches
        # the vectorizer as empty token lists: every row must be all-zero,
        # and normalization must not divide by the zero norm.
        tokenizer = Tokenizer()
        docs = [
            tokenizer.tokenize("the and of was"),
            tokenizer.tokenize("is are been being"),
        ]
        assert docs == [[], []]
        vectorizer = TfidfVectorizer().fit(self.DOCS)
        matrix = vectorizer.transform(docs)
        assert matrix.shape == (2, 3)
        assert np.all(matrix == 0.0)
        assert np.isfinite(matrix).all()

    def test_pool_sharded_transform_matches_serial(self):
        from repro.parallel import WorkPool

        docs = [["flow", "crash"], ["table"], ["flow"], [], ["crash", "table"]]
        vectorizer = TfidfVectorizer().fit(self.DOCS)
        serial = vectorizer.transform(docs)
        sharded = vectorizer.transform(docs, pool=WorkPool(3, backend="thread"))
        assert np.array_equal(serial, sharded)

    def test_sublinear_tf_dampens(self):
        plain = TfidfVectorizer(normalize=False).fit_transform([["a", "a", "a", "b"]])
        sub = TfidfVectorizer(normalize=False, sublinear_tf=True).fit_transform(
            [["a", "a", "a", "b"]]
        )
        assert sub[0].max() < plain[0].max()

    @given(
        st.lists(
            st.lists(st.sampled_from(["x", "y", "z", "w"]), min_size=1, max_size=6),
            min_size=2,
            max_size=8,
        )
    )
    def test_all_entries_nonnegative(self, docs):
        matrix = TfidfVectorizer().fit_transform(docs)
        assert (matrix >= 0).all()
