"""Log/metrics-based crash prediction (SS IV research direction)."""

from __future__ import annotations

import pytest

from repro.errors import ReproError
from repro.prediction import (
    CrashKind,
    CrashPredictor,
    TraceGenerator,
    evaluate_predictor,
)
from repro.prediction.predictor import window_features


@pytest.fixture(scope="module")
def fitted_predictor():
    train = TraceGenerator(seed=1).generate_mixed(per_kind=15)
    return CrashPredictor(seed=0).fit(train)


@pytest.fixture(scope="module")
def test_traces():
    return TraceGenerator(seed=99).generate_mixed(per_kind=10)


class TestTraces:
    def test_healthy_traces_do_not_crash(self):
        trace = TraceGenerator(seed=0).generate(CrashKind.NONE)
        assert not trace.crashed
        assert trace.samples

    def test_crashing_traces_end_at_crash(self):
        trace = TraceGenerator(seed=0).generate(CrashKind.MEMORY_LEAK)
        assert trace.crashed
        assert trace.samples[-1].time <= trace.crash_time

    def test_memory_ramp_visible(self):
        trace = TraceGenerator(seed=3).generate(CrashKind.MEMORY_LEAK)
        early = trace.samples[0].heap_mb
        late = trace.samples[-1].heap_mb
        assert late > early + 1000

    def test_logic_crash_is_silent(self):
        """The unpredictable class: telemetry stays near baseline."""
        trace = TraceGenerator(seed=3).generate(CrashKind.LOGIC)
        heaps = [s.heap_mb for s in trace.samples]
        assert max(heaps) - min(heaps) < 300  # noise only, no ramp

    def test_deterministic(self):
        a = TraceGenerator(seed=4).generate(CrashKind.LOAD, index=2)
        b = TraceGenerator(seed=4).generate(CrashKind.LOAD, index=2)
        assert a.crash_time == b.crash_time
        assert a.samples == b.samples

    def test_window_before(self):
        trace = TraceGenerator(seed=0).generate(CrashKind.NONE)
        window = trace.window_before(300.0, 100.0)
        assert all(200.0 <= s.time < 300.0 for s in window)

    def test_invalid_params(self):
        with pytest.raises(ReproError):
            TraceGenerator(duration=0)
        with pytest.raises(ReproError):
            TraceGenerator().generate_mixed(per_kind=0)


class TestFeatures:
    def test_slope_positive_on_ramp(self):
        trace = TraceGenerator(seed=5).generate(CrashKind.MEMORY_LEAK)
        assert trace.crash_time is not None
        window = trace.window_before(trace.crash_time, 180.0)
        features = window_features(window)
        heap_slope = features[1]
        assert heap_slope > 0.5  # MB per second, clearly climbing

    def test_empty_window_rejected(self):
        with pytest.raises(ReproError):
            window_features([])


class TestPredictor:
    def test_predictable_kinds_high_recall(self, fitted_predictor, test_traces):
        report = evaluate_predictor(fitted_predictor, test_traces)
        assert report.recall(CrashKind.MEMORY_LEAK) >= 0.8
        assert report.recall(CrashKind.LOAD) >= 0.8

    def test_logic_crashes_unpredictable(self, fitted_predictor, test_traces):
        """The paper's caveat, reproduced: no telemetry warning exists for
        missing-logic/config crashes, so no predictor can see them coming."""
        report = evaluate_predictor(fitted_predictor, test_traces)
        assert report.recall(CrashKind.LOGIC) <= 0.2

    def test_low_false_alarm_rate(self, fitted_predictor, test_traces):
        report = evaluate_predictor(fitted_predictor, test_traces)
        assert report.false_alarm_rate <= 0.2

    def test_lead_time_is_material(self, fitted_predictor, test_traces):
        report = evaluate_predictor(fitted_predictor, test_traces)
        assert report.lead_time[CrashKind.MEMORY_LEAK] > 60.0

    def test_crash_probability_ordering(self, fitted_predictor):
        leak = TraceGenerator(seed=7).generate(CrashKind.MEMORY_LEAK)
        healthy = TraceGenerator(seed=7).generate(CrashKind.NONE)
        assert leak.crash_time is not None
        hot = fitted_predictor.crash_probability(
            leak.window_before(leak.crash_time, 180.0)
        )
        cold = fitted_predictor.crash_probability(
            healthy.window_before(900.0, 180.0)
        )
        assert hot > cold

    def test_invalid_params(self):
        with pytest.raises(ReproError):
            CrashPredictor(window=0)
