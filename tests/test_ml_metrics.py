"""Metrics and model-selection utilities."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml import (
    KFold,
    LinearSVM,
    accuracy_score,
    confusion_matrix,
    cross_val_score,
    f1_score,
    precision_recall_f1,
    train_test_split,
)


class TestMetrics:
    def test_accuracy_perfect_and_zero(self):
        assert accuracy_score(["a", "b"], ["a", "b"]) == 1.0
        assert accuracy_score(["a", "b"], ["b", "a"]) == 0.0

    def test_accuracy_length_mismatch(self):
        with pytest.raises(ValueError):
            accuracy_score(["a"], ["a", "b"])

    def test_accuracy_empty(self):
        with pytest.raises(ValueError):
            accuracy_score([], [])

    def test_confusion_matrix_layout(self):
        matrix, labels = confusion_matrix(["a", "a", "b"], ["a", "b", "b"])
        assert labels == ["a", "b"]
        assert matrix.tolist() == [[1, 1], [0, 1]]

    def test_confusion_matrix_custom_labels(self):
        matrix, labels = confusion_matrix(["a"], ["a"], labels=["b", "a"])
        assert labels == ["b", "a"]
        assert matrix[1, 1] == 1

    def test_precision_recall_f1_values(self):
        # 'a': tp=2, fp=1, fn=0 -> p=2/3, r=1; 'b': tp=1, fp=0, fn=1.
        result = precision_recall_f1(["a", "a", "b", "b"], ["a", "a", "a", "b"])
        assert result["a"]["precision"] == pytest.approx(2 / 3)
        assert result["a"]["recall"] == pytest.approx(1.0)
        assert result["b"]["recall"] == pytest.approx(0.5)

    def test_f1_never_nan_for_unpredicted_class(self):
        result = precision_recall_f1(["a", "b"], ["a", "a"])
        assert result["b"]["f1"] == 0.0

    def test_macro_vs_weighted_f1(self):
        y_true = ["a"] * 9 + ["b"]
        y_pred = ["a"] * 10
        macro = f1_score(y_true, y_pred, average="macro")
        weighted = f1_score(y_true, y_pred, average="weighted")
        assert weighted > macro  # the majority class dominates the weighted mean

    def test_f1_unknown_average(self):
        with pytest.raises(ValueError):
            f1_score(["a"], ["a"], average="median")

    @given(
        st.lists(st.sampled_from("abc"), min_size=1, max_size=40),
        st.integers(0, 10_000),
    )
    @settings(max_examples=30, deadline=None)
    def test_confusion_diagonal_equals_accuracy(self, y_true, seed):
        rng = np.random.default_rng(seed)
        y_pred = [rng.choice(list("abc")) for _ in y_true]
        matrix, _ = confusion_matrix(y_true, y_pred)
        assert matrix.trace() / len(y_true) == pytest.approx(
            accuracy_score(y_true, y_pred)
        )


class TestTrainTestSplit:
    def test_default_two_thirds(self):
        X = np.arange(90).reshape(-1, 1)
        y = ["a", "b", "c"] * 30
        X_train, X_test, y_train, y_test = train_test_split(X, y, seed=0)
        assert len(y_train) == 60 and len(y_test) == 30

    def test_stratification_preserves_shares(self):
        X = np.zeros((100, 1))
        y = ["rare"] * 10 + ["common"] * 90
        _, _, y_train, y_test = train_test_split(X, y, seed=1)
        assert y_train.count("rare") == pytest.approx(7, abs=1)
        assert y_test.count("rare") >= 2

    def test_every_class_appears_in_test(self):
        X = np.zeros((9, 1))
        y = ["a", "a", "a", "b", "b", "b", "c", "c", "c"]
        _, _, _, y_test = train_test_split(X, y, seed=2)
        assert set(y_test) == {"a", "b", "c"}

    def test_no_overlap_and_full_coverage(self):
        X = np.arange(30).reshape(-1, 1)
        y = ["a", "b"] * 15
        X_train, X_test, _, _ = train_test_split(X, y, seed=3)
        train_ids = set(X_train[:, 0].tolist())
        test_ids = set(X_test[:, 0].tolist())
        assert not train_ids & test_ids
        assert train_ids | test_ids == set(range(30))

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            train_test_split(np.zeros((4, 1)), ["a"] * 4, train_fraction=1.5)


class TestKFold:
    def test_folds_partition_indices(self):
        folds = list(KFold(3, seed=0).split(10))
        all_test = sorted(i for _, test in folds for i in test.tolist())
        assert all_test == list(range(10))

    def test_train_test_disjoint(self):
        for train, test in KFold(4, seed=1).split(20):
            assert not set(train.tolist()) & set(test.tolist())

    def test_too_few_samples(self):
        with pytest.raises(ValueError):
            list(KFold(5).split(3))

    def test_invalid_splits(self):
        with pytest.raises(ValueError):
            KFold(1)


def test_cross_val_score_on_separable_data():
    rng = np.random.default_rng(0)
    X = np.vstack(
        [rng.normal(loc=(-5, 0), size=(30, 2)), rng.normal(loc=(5, 0), size=(30, 2))]
    )
    y = ["l"] * 30 + ["r"] * 30
    scores = cross_val_score(
        lambda: LinearSVM(seed=0, epochs=10), X, y, n_splits=3, seed=0
    )
    assert len(scores) == 3
    assert min(scores) >= 0.9
