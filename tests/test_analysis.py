"""Analyses: determinism, symptoms, triggers, resolution, correlation, topics."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import paperdata
from repro.analysis import (
    byzantine_mode_distribution,
    config_fixed_by_config_share,
    config_subcategory_distribution,
    correlation_cdf,
    determinism_rates,
    external_compatibility_fix_share,
    fine_trigger_distribution,
    pairwise_correlations,
    resolution_cdfs,
    root_cause_by_symptom,
    symptom_distribution,
    topic_uniqueness,
    trigger_distribution,
)
from repro.analysis.correlation import strongly_correlated_pairs
from repro.analysis.determinism import overall_determinism_rate
from repro.analysis.resolution import EmpiricalCDF, tail_comparison
from repro.analysis.symptoms import (
    controller_logic_share_of_symptom,
    cross_domain_table,
)
from repro.corpus import BugDataset
from repro.taxonomy import RootCause, Symptom, Trigger


class TestDeterminism:
    def test_rates_per_controller(self, dataset):
        rates = determinism_rates(dataset)
        assert set(rates) == {"CORD", "FAUCET", "ONOS"}
        for name, rate in rates.items():
            assert rate == pytest.approx(paperdata.DETERMINISM_RATE[name], abs=0.04)

    def test_overall_rate_dominated_by_deterministic(self, dataset):
        assert overall_determinism_rate(dataset) > 0.9

    def test_empty_dataset_rejected(self):
        with pytest.raises(ValueError):
            overall_determinism_rate(BugDataset([]))


class TestSymptoms:
    def test_distribution_sums_to_one(self, dataset):
        dist = symptom_distribution(dataset)
        assert sum(dist.values()) == pytest.approx(1.0)

    def test_byzantine_dominates(self, dataset):
        dist = symptom_distribution(dataset)
        assert dist[Symptom.BYZANTINE] == max(dist.values())
        assert dist[Symptom.BYZANTINE] == pytest.approx(0.6133, abs=0.05)

    def test_byzantine_modes_match_paper(self, dataset):
        modes = byzantine_mode_distribution(dataset)
        for mode, share in modes.items():
            assert share == pytest.approx(
                paperdata.BYZANTINE_MODE_SHARE[mode.value], abs=0.05
            )

    def test_fig2_failstop_contrast(self, dataset):
        """FAUCET fail-stop comes from human/ecosystem causes; ONOS and CORD
        from controller logic (Fig 2)."""
        shares = controller_logic_share_of_symptom(dataset, Symptom.FAIL_STOP)
        assert shares["ONOS"] > shares["FAUCET"]
        assert shares["CORD"] > shares["FAUCET"]

    def test_root_cause_by_symptom_shares_sum(self, dataset):
        result = root_cause_by_symptom(dataset, Symptom.BYZANTINE)
        for dist in result.values():
            assert sum(dist.values()) == pytest.approx(1.0)

    def test_performance_root_causes_differ_by_controller(self, dataset):
        """Fig 2: FAUCET perf bugs from ecosystem, ONOS from concurrency,
        CORD from memory."""
        result = root_cause_by_symptom(dataset, Symptom.PERFORMANCE)
        faucet_eco = sum(
            s for c, s in result.get("FAUCET", {}).items() if c.is_ecosystem
        )
        assert faucet_eco >= 0.4
        assert result["CORD"].get(RootCause.MEMORY, 0) > 0.1

    def test_cross_domain_table_rows(self, manual_sample):
        table = cross_domain_table(manual_sample)
        assert set(table) == {"fail_stop", "performance", "error_message", "byzantine"}
        assert table["performance"]["BGP"] is None
        assert table["fail_stop"]["Cloud"] == 0.59
        # SDN measured fail-stop is far below the Cloud comparison value.
        assert table["fail_stop"]["SDN (measured)"] < 0.35


class TestTriggers:
    def test_distribution_matches_paper(self, dataset):
        dist = trigger_distribution(dataset)
        assert dist[Trigger.CONFIGURATION] == pytest.approx(0.388, abs=0.04)
        assert dist[Trigger.EXTERNAL_CALLS] == pytest.approx(0.33, abs=0.04)
        assert dist[Trigger.NETWORK_EVENTS] == pytest.approx(0.198, abs=0.04)
        assert dist[Trigger.HARDWARE_REBOOTS] == pytest.approx(0.084, abs=0.03)

    def test_configuration_is_top_trigger(self, dataset):
        dist = trigger_distribution(dataset)
        assert dist[Trigger.CONFIGURATION] == max(dist.values())

    def test_config_subcategories_match_table_three(self, dataset):
        result = config_subcategory_distribution(dataset)
        for controller, expected in paperdata.CONFIG_SUBCATEGORY_SHARE.items():
            for sub, dist_share in result[controller].items():
                assert dist_share == pytest.approx(expected[sub.value], abs=0.09)

    def test_config_fixed_by_config_near_quarter(self, dataset):
        assert config_fixed_by_config_share(dataset) == pytest.approx(0.25, abs=0.05)

    def test_external_compatibility_share(self, dataset):
        assert external_compatibility_fix_share(dataset) == pytest.approx(
            0.414, abs=0.06
        )

    def test_fine_distribution_sums_to_one(self, dataset):
        dist = fine_trigger_distribution(dataset)
        assert sum(dist.values()) == pytest.approx(1.0)
        assert dist["configuration"] == max(dist.values())

    def test_empty_dataset_rejected(self):
        with pytest.raises(ValueError):
            trigger_distribution(BugDataset([]))


class TestEmpiricalCDF:
    def test_monotone_nondecreasing(self):
        cdf = EmpiricalCDF.from_samples([3.0, 1.0, 2.0, 2.0])
        values = [cdf.cdf(x) for x in (0.5, 1.0, 1.5, 2.0, 3.0, 4.0)]
        assert values == sorted(values)
        assert values[-1] == 1.0

    def test_quantiles(self):
        cdf = EmpiricalCDF.from_samples(list(range(1, 11)))
        assert cdf.median == 5
        assert cdf.p90 == 9
        assert cdf.max == 10

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            EmpiricalCDF.from_samples([])

    @given(st.lists(st.floats(0.1, 1e4), min_size=1, max_size=60))
    @settings(max_examples=40, deadline=None)
    def test_quantile_is_inverse_of_cdf(self, samples):
        cdf = EmpiricalCDF.from_samples(samples)
        for q in (0.1, 0.5, 0.9, 1.0):
            value = cdf.quantile(q)
            assert cdf.cdf(value) >= q - 1e-9

    def test_series_is_monotone(self):
        cdf = EmpiricalCDF.from_samples([1.0, 5.0, 20.0, 100.0])
        series = cdf.series(points=10)
        probs = [p for _, p in series]
        assert probs == sorted(probs)


class TestResolutionAnalysis:
    def test_faucet_absent(self, dataset):
        cdfs = resolution_cdfs(dataset)
        assert "FAUCET" not in cdfs
        assert {"ONOS", "CORD"} <= set(cdfs)

    def test_config_tail_longest(self, dataset):
        cdfs = resolution_cdfs(dataset)
        for controller in ("ONOS", "CORD"):
            per = cdfs[controller]
            assert per[Trigger.CONFIGURATION].p90 == max(
                cdf.p90 for cdf in per.values()
            )

    def test_onos_vs_cord_tails(self, dataset):
        tails = tail_comparison(dataset, quantile=0.9)
        assert tails[Trigger.CONFIGURATION]["ONOS"] > tails[Trigger.CONFIGURATION]["CORD"]
        assert (
            tails[Trigger.HARDWARE_REBOOTS]["CORD"]
            > tails[Trigger.HARDWARE_REBOOTS]["ONOS"]
        )


class TestCorrelation:
    def test_phi_bounded(self, manual_sample):
        for corr in pairwise_correlations(manual_sample):
            assert -1.0 <= corr.phi <= 1.0

    def test_cdf_over_pairs(self, manual_sample):
        cdf = correlation_cdf(manual_sample)
        assert len(cdf) > 100  # many category pairs
        assert cdf.cdf(1.0) == 1.0

    def test_known_strong_pairs_surface(self, dataset):
        strong = strongly_correlated_pairs(dataset, threshold=0.3)
        described = {(c.tag_a, c.tag_b) for c in strong} | {
            (c.tag_b, c.tag_a) for c in strong
        }
        assert ("concurrency", "add_synchronization") in described

    def test_long_tail_is_minority(self, dataset):
        from repro.analysis.correlation import strongly_correlated_share

        share = strongly_correlated_share(dataset, threshold=0.3)
        assert 0.0 < share < 0.2


class TestTopics:
    def test_byzantine_topics_fairly_unique(self, manual_sample):
        result = topic_uniqueness(manual_sample, "symptom", "byzantine", seed=0)
        assert result.unique_share > 0.2
        assert result.top_terms

    def test_unknown_tag_rejected(self, manual_sample):
        with pytest.raises(ValueError, match="no bugs carry"):
            topic_uniqueness(manual_sample, "symptom", "nonexistent")

    def test_uniqueness_ranking_sorted(self, manual_sample):
        from repro.analysis.topics import uniqueness_ranking

        ranking = uniqueness_ranking(
            manual_sample,
            [("bug_type", "deterministic"), ("symptom", "byzantine")],
        )
        shares = [r.unique_share for r in ranking]
        assert shares == sorted(shares, reverse=True)
