"""Fault catalog, campaign, case studies, and outcome classification."""

from __future__ import annotations

import pytest

from repro.errors import InjectionError
from repro.faultinjection import (
    CASE_RUNNERS,
    FaultCampaign,
    default_catalog,
    run_case,
)
from repro.faultinjection.faults import catalog_by_id, find_fault
from repro.faultinjection.scenario import build_scenario, run_workload
from repro.sdnsim.observers import Observation, OutcomeClassifier
from repro.taxonomy import BugType, ByzantineMode, RootCause, Symptom, Trigger


class TestOutcomeClassifier:
    def _obs(self, **kw):
        defaults = dict(
            crashed=False,
            crash_reason=None,
            failed_components=[],
            healthy_components=["forwarding"],
            error_count=0,
            stalled=False,
            checks=[],
        )
        defaults.update(kw)
        return Observation(**defaults)

    def test_healthy(self):
        outcome = OutcomeClassifier().classify(self._obs())
        assert outcome.symptom is None

    def test_crash_wins_over_everything(self):
        obs = self._obs(crashed=True, crash_reason="boom", stalled=True, error_count=5)
        assert OutcomeClassifier().classify(obs).symptom is Symptom.FAIL_STOP

    def test_stall(self):
        outcome = OutcomeClassifier().classify(self._obs(stalled=True))
        assert outcome.byzantine_mode is ByzantineMode.STALL

    def test_gray_failure_component(self):
        obs = self._obs(failed_components=["gauge"])
        outcome = OutcomeClassifier().classify(obs)
        assert outcome.byzantine_mode is ByzantineMode.GRAY_FAILURE

    def test_gray_failure_feature_check(self):
        obs = self._obs(
            checks=[("forward: core", True), ("feature: mirror", False)]
        )
        assert (
            OutcomeClassifier().classify(obs).byzantine_mode
            is ByzantineMode.GRAY_FAILURE
        )

    def test_incorrect_behavior(self):
        obs = self._obs(checks=[("forward: unicast", False)])
        assert (
            OutcomeClassifier().classify(obs).byzantine_mode
            is ByzantineMode.INCORRECT_BEHAVIOR
        )

    def test_performance_regression(self):
        obs = self._obs(api_latency=0.05, baseline_latency=0.01)
        assert OutcomeClassifier().classify(obs).symptom is Symptom.PERFORMANCE

    def test_error_messages_only(self):
        obs = self._obs(error_count=3)
        assert OutcomeClassifier().classify(obs).symptom is Symptom.ERROR_MESSAGE

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            OutcomeClassifier(performance_threshold=0.9)


class TestScenario:
    def test_healthy_baseline_is_healthy(self):
        scenario = run_workload(build_scenario())
        outcome = scenario.outcome()
        assert outcome.symptom is None, outcome

    def test_workload_checks_present(self):
        scenario = run_workload(build_scenario())
        descriptions = [desc for desc, _ in scenario.checks]
        assert any(d.startswith("forward:") for d in descriptions)
        assert any(d.startswith("feature:") for d in descriptions)

    def test_baseline_stats_exported(self):
        scenario = run_workload(build_scenario())
        assert scenario.tsdb.count() > 0


class TestCatalog:
    def test_all_four_triggers_covered(self):
        triggers = {spec.trigger for spec in default_catalog()}
        assert triggers == set(Trigger)

    def test_root_cause_coverage(self):
        causes = {spec.root_cause for spec in default_catalog()}
        assert RootCause.MISSING_LOGIC in causes
        assert RootCause.CONCURRENCY in causes
        assert RootCause.MEMORY in causes
        assert RootCause.HUMAN_MISCONFIGURATION in causes
        assert RootCause.ECOSYSTEM_THIRD_PARTY in causes

    def test_ids_unique(self):
        ids = [spec.fault_id for spec in default_catalog()]
        assert len(ids) == len(set(ids))

    def test_find_fault(self):
        assert find_fault("config-acl-typo").trigger is Trigger.CONFIGURATION
        with pytest.raises(InjectionError, match="unknown fault"):
            find_fault("nope")

    def test_paper_references_present(self):
        refs = {
            spec.paper_reference
            for spec in default_catalog()
            if spec.paper_reference
        }
        assert {"CORD-2470", "FAUCET-355", "FAUCET-1623", "VOL-549", "CORD-1734"} <= refs

    @pytest.mark.parametrize("spec", default_catalog(), ids=lambda s: s.fault_id)
    def test_deterministic_faults_manifest_expected_symptom(self, spec):
        if spec.bug_type is not BugType.DETERMINISTIC:
            pytest.skip("non-deterministic faults are seed-dependent")
        outcome = spec.execute(seed=0)
        assert outcome.symptom is spec.expected_symptom, outcome
        if spec.expected_mode is not None:
            assert outcome.byzantine_mode is spec.expected_mode

    def test_nondeterministic_fault_varies_with_seed(self):
        spec = catalog_by_id()["network-portflap-race"]
        outcomes = {spec.execute(seed).symptom for seed in range(8)}
        assert None in outcomes  # sometimes healthy
        assert Symptom.BYZANTINE in outcomes  # sometimes bitten


class TestCampaign:
    @pytest.fixture(scope="class")
    def campaign(self):
        return FaultCampaign(seeds_per_fault=4).run()

    def test_every_fault_ran(self, campaign):
        assert len(campaign) == len(default_catalog())

    def test_expectation_match_rate_high(self, campaign):
        assert campaign.expectation_match_rate >= 0.9

    def test_deterministic_always_manifest(self, campaign):
        for result in campaign.deterministic_results():
            assert result.manifestation_rate == 1.0, result.spec.fault_id

    def test_nondeterministic_sometimes_silent(self, campaign):
        rates = [
            r.manifestation_rate for r in campaign.nondeterministic_results()
        ]
        assert any(rate < 1.0 for rate in rates)

    def test_result_lookup(self, campaign):
        assert campaign.result_for("reboot-olt-no-timeout").manifested
        with pytest.raises(KeyError):
            campaign.result_for("nope")

    def test_seeds_validation(self):
        with pytest.raises(ValueError):
            FaultCampaign(seeds_per_fault=0)


class TestCaseStudies:
    @pytest.mark.parametrize("case_id", sorted(CASE_RUNNERS))
    def test_fix_removes_symptom(self, case_id):
        outcome = run_case(case_id)
        assert outcome.buggy.symptom is not None, case_id
        assert outcome.fix_removes_symptom, (
            case_id,
            outcome.buggy,
            outcome.fixed,
        )

    def test_unknown_case_rejected(self):
        with pytest.raises(InjectionError):
            run_case("FAUCET-9999")

    def test_expected_symptoms_per_case(self):
        assert run_case("CORD-2470").buggy.symptom is Symptom.FAIL_STOP
        assert run_case("CORD-1734").buggy.symptom is Symptom.PERFORMANCE
        assert (
            run_case("VOL-549").buggy.byzantine_mode is ByzantineMode.STALL
        )
        assert (
            run_case("FAUCET-1623").buggy.byzantine_mode
            is ByzantineMode.GRAY_FAILURE
        )
        assert (
            run_case("FAUCET-355").buggy.byzantine_mode
            is ByzantineMode.GRAY_FAILURE
        )
