"""WorkPool executor contract and ArtifactCache key/storage semantics."""

from __future__ import annotations

import multiprocessing
import os
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel import (
    ArtifactCache,
    CacheError,
    PoisonTaskError,
    WorkPool,
    cache_key,
    canonicalize,
)
from repro.pipeline.autoclassifier import ClassifierKind


def _square(x):
    return x * x


def _stagger(item):
    # Later items finish first; ordering must still follow input order.
    index, delay = item
    time.sleep(delay)
    return index


def _exit_once(task):
    """Hard-exit the worker the first time; succeed on the retry.

    The marker file carries the crashed-already state across worker
    processes — module-level so the process backend can pickle it.
    """
    index, marker = task
    if marker and not os.path.exists(marker):
        open(marker, "w").close()
        os._exit(137)
    return index * 10


def _always_exit(task):
    os._exit(137)


def _raise_value_error(x):
    raise ValueError(f"task {x}")


class TestWorkPool:
    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            WorkPool(0)
        with pytest.raises(ValueError):
            WorkPool(2, backend="gpu")

    def test_serial_when_jobs_one(self):
        pool = WorkPool(1)
        assert pool.map(_square, [1, 2, 3]) == [1, 4, 9]
        assert pool.last_backend == "serial"

    def test_empty_input(self):
        assert WorkPool(4).map(_square, []) == []

    def test_thread_backend_preserves_input_order(self):
        pool = WorkPool(4, backend="thread")
        items = [(0, 0.05), (1, 0.03), (2, 0.01), (3, 0.0)]
        assert pool.map(_stagger, items) == [0, 1, 2, 3]
        assert pool.last_backend == "thread"

    def test_process_backend_matches_serial(self):
        serial = WorkPool(1).map(_square, list(range(8)))
        parallel = WorkPool(4, backend="process").map(_square, list(range(8)))
        assert serial == parallel

    def test_process_backend_falls_back_on_unpicklable_task(self):
        # A lambda cannot cross a process boundary; tasks are pure by
        # contract, so the pool must degrade to the serial reference loop
        # instead of surfacing a PicklingError.
        offset = 10
        pool = WorkPool(3, backend="process")
        assert pool.map(lambda x: x + offset, [1, 2, 3]) == [11, 12, 13]
        assert pool.last_backend == "serial-fallback"

    def test_thread_backend_runs_closures(self):
        offset = 10
        pool = WorkPool(3, backend="thread")
        assert pool.map(lambda x: x + offset, [1, 2]) == [11, 12]

    def test_exception_propagates(self):
        def boom(x):
            raise RuntimeError(f"task {x}")

        with pytest.raises(RuntimeError, match="task"):
            WorkPool(2, backend="thread").map(boom, [1, 2, 3])

    def test_starmap(self):
        pool = WorkPool(2, backend="thread")
        assert pool.starmap(pow, [(2, 3), (3, 2)]) == [8, 9]

    def test_single_item_skips_pool(self):
        pool = WorkPool(4, backend="process")
        assert pool.map(_square, [5]) == [25]
        assert pool.last_backend == "serial"


@pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="worker-crash containment tests assume the fork start method",
)
class TestWorkerCrashContainment:
    """A worker that dies hard must not abort the map (or the parent)."""

    def test_process_task_exception_fails_fast(self):
        with pytest.raises(ValueError, match="task"):
            WorkPool(2, backend="process").map(_raise_value_error, [1, 2, 3])

    def test_worker_hard_exit_recovers_unfinished_tasks(self, tmp_path):
        marker = str(tmp_path / "crashed-once")
        pool = WorkPool(2, backend="process")
        tasks = [(0, ""), (1, marker), (2, ""), (3, "")]
        assert pool.map(_exit_once, tasks) == [0, 10, 20, 30]
        assert pool.last_backend == "process-contained"
        recovered = [c for c in pool.containment if c["outcome"] == "recovered"]
        assert recovered and all(c["attempts"] >= 1 for c in recovered)

    def test_result_order_preserved_after_containment(self, tmp_path):
        marker = str(tmp_path / "crashed-once")
        pool = WorkPool(3, backend="process")
        tasks = [(i, marker if i == 4 else "") for i in range(8)]
        assert pool.map(_exit_once, tasks) == [i * 10 for i in range(8)]

    def test_poison_task_quarantined_not_rerun_in_parent(self):
        # Would os._exit the pytest process if containment ever ran the
        # task in-parent — finishing this test at all is half the assert.
        pool = WorkPool(2, backend="process", poison_attempts=2)
        with pytest.raises(PoisonTaskError) as excinfo:
            pool.map(_always_exit, [1, 2, 3])
        assert excinfo.value.attempts == 2
        assert any(
            c["outcome"] == "quarantined" for c in pool.containment
        )

    def test_containment_resets_between_maps(self, tmp_path):
        marker = str(tmp_path / "crashed-once")
        pool = WorkPool(2, backend="process")
        pool.map(_exit_once, [(0, marker), (1, "")])
        assert pool.containment
        pool.map(_square, [1, 2, 3, 4])
        assert pool.containment == []


class TestCanonicalize:
    def test_enum_and_numpy_scalars(self):
        assert canonicalize(ClassifierKind.SVM) == "ClassifierKind.SVM"
        assert canonicalize(np.float64(0.5)) == 0.5
        assert canonicalize(np.int64(3)) == 3

    def test_mapping_key_order_irrelevant(self):
        assert canonicalize({"a": 1, "b": 2}) == canonicalize({"b": 2, "a": 1})

    def test_sets_are_order_free(self):
        assert canonicalize({"x", "y"}) == canonicalize({"y", "x"})

    def test_negative_zero_merges_with_zero(self):
        assert cache_key("ns", {"x": -0.0}) == cache_key("ns", {"x": 0.0})

    def test_rejects_arrays(self):
        with pytest.raises(CacheError):
            canonicalize(np.zeros(3))

    def test_rejects_callables(self):
        with pytest.raises(CacheError):
            canonicalize({"fn": _square})


class TestCacheKey:
    def test_namespace_separates_svm_from_tree(self):
        # The false-sharing hazard: identical hyperparameters must never
        # let a Tree artifact satisfy an SVM lookup or vice versa.
        params = {"seed": 2020, "max_depth": 12}
        assert cache_key("svm", params) != cache_key("tree", params)

    def test_invalid_namespace(self):
        with pytest.raises(CacheError):
            cache_key("", {})
        with pytest.raises(CacheError):
            cache_key("a/b", {})

    def test_nested_params_stable(self):
        a = cache_key("ns", {"svm": {"epochs": 40, "reg": 1e-3}, "seed": 0})
        b = cache_key("ns", {"seed": 0, "svm": {"reg": 1e-3, "epochs": 40}})
        assert a == b


_PARAM_VALUES = st.one_of(
    st.integers(min_value=-(2**31), max_value=2**31),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=12),
    st.booleans(),
    st.sampled_from(list(ClassifierKind)),
)
_PARAMS = st.dictionaries(
    st.text(min_size=1, max_size=8), _PARAM_VALUES, min_size=1, max_size=6
)


class TestCacheKeyProperties:
    @given(params=_PARAMS)
    @settings(max_examples=60, deadline=None)
    def test_identical_configs_hit_the_same_key(self, params):
        items = list(params.items())
        shuffled = dict(reversed(items))
        assert cache_key("ns", params) == cache_key("ns", shuffled)

    @given(params=_PARAMS, data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_any_value_change_changes_the_key(self, params, data):
        field = data.draw(st.sampled_from(sorted(params)))
        new_value = data.draw(_PARAM_VALUES)
        if canonicalize(new_value) == canonicalize(params[field]):
            return  # not actually a change
        mutated = dict(params)
        mutated[field] = new_value
        assert cache_key("ns", params) != cache_key("ns", mutated)

    @given(params=_PARAMS, extra=st.text(min_size=1, max_size=8), value=_PARAM_VALUES)
    @settings(max_examples=60, deadline=None)
    def test_adding_a_field_changes_the_key(self, params, extra, value):
        if extra in params:
            return
        widened = dict(params)
        widened[extra] = value
        assert cache_key("ns", params) != cache_key("ns", widened)

    @given(seed=st.integers(min_value=0, max_value=2**30))
    @settings(max_examples=30, deadline=None)
    def test_seed_always_part_of_key(self, seed):
        base = {"seed": 0, "epochs": 40}
        probe = {"seed": seed, "epochs": 40}
        assert (cache_key("svm", base) == cache_key("svm", probe)) == (seed == 0)


class TestArtifactCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        params = {"seed": 1}
        assert cache.get("svm", params) is None
        cache.put("svm", params, {"acc": 0.96})
        assert cache.get("svm", params) == {"acc": 0.96}
        stats = cache.stats()
        assert {k: stats[k] for k in ("hits", "misses", "quarantined",
                                      "stored")} == {
            "hits": 1, "misses": 1, "quarantined": 0, "stored": 1,
        }

    def test_numpy_payload_roundtrip(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        value = {"W": np.arange(6.0).reshape(2, 3)}
        cache.put("nmf", {"seed": 2}, value)
        loaded = cache.get("nmf", {"seed": 2})
        assert np.array_equal(loaded["W"], value["W"])

    def test_param_change_misses(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put("svm", {"seed": 1, "epochs": 40}, "a")
        assert cache.get("svm", {"seed": 2, "epochs": 40}) is None
        assert cache.get("svm", {"seed": 1, "epochs": 41}) is None

    def test_get_or_compute(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        calls = []

        def compute():
            calls.append(1)
            return 42

        value, hit = cache.get_or_compute("ns", {"k": 1}, compute)
        assert (value, hit) == (42, False)
        value, hit = cache.get_or_compute("ns", {"k": 1}, compute)
        assert (value, hit) == (42, True)
        assert len(calls) == 1

    def test_metadata_sidecar_written(self, tmp_path):
        import json

        cache = ArtifactCache(tmp_path)
        path = cache.put("svm", {"seed": 1}, "artifact")
        meta = json.loads(path.with_suffix(".json").read_text())
        assert meta["namespace"] == "svm"
        assert meta["params"] == {"seed": 1}
        assert meta["payload"] == path.name

    def test_corrupted_entry_is_a_miss(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        path = cache.put("svm", {"seed": 1}, "artifact")
        path.write_bytes(b"not a pickle")
        assert cache.get("svm", {"seed": 1}) is None

    def test_clear_by_namespace(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put("svm", {"seed": 1}, "a")
        cache.put("tree", {"seed": 1}, "b")
        assert cache.clear("svm") == 1
        assert cache.get("svm", {"seed": 1}) is None
        assert cache.get("tree", {"seed": 1}) == "b"
        assert cache.clear() == 1


class TestArtifactCacheIntegrity:
    """Digest sidecars, quarantine, and the cached-``None`` fix."""

    def test_cached_none_is_a_hit_not_a_miss(self, tmp_path):
        # get_or_compute used to conflate a cached None with a miss and
        # recompute forever.
        cache = ArtifactCache(tmp_path)
        calls = []

        def compute():
            calls.append(1)
            return None

        value, hit = cache.get_or_compute("ns", {"k": 1}, compute)
        assert (value, hit) == (None, False)
        value, hit = cache.get_or_compute("ns", {"k": 1}, compute)
        assert (value, hit) == (None, True)
        assert len(calls) == 1

    def test_lookup_distinguishes_none_from_miss(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        assert cache.lookup("ns", {"k": 1}) == (None, False)
        cache.put("ns", {"k": 1}, None)
        assert cache.lookup("ns", {"k": 1}) == (None, True)

    def test_sidecar_records_payload_digest(self, tmp_path):
        import hashlib
        import json

        cache = ArtifactCache(tmp_path)
        path = cache.put("svm", {"seed": 1}, {"acc": 0.96})
        meta = json.loads(path.with_suffix(".json").read_text())
        assert meta["sha256"] == hashlib.sha256(path.read_bytes()).hexdigest()
        assert meta["bytes"] == path.stat().st_size
        assert cache.digest_of("svm", {"seed": 1}) == meta["sha256"]

    def test_bit_flip_is_quarantined_never_returned(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        path = cache.put("svm", {"seed": 1}, "artifact")
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0xFF  # still likely a valid pickle stream
        path.write_bytes(bytes(data))

        value, found = cache.lookup("svm", {"seed": 1})
        assert (value, found) == (None, False)
        assert cache.stats()["quarantined"] == 1
        assert not path.exists()
        quarantined = list(cache.quarantine_root.rglob("*.pkl"))
        assert len(quarantined) == 1
        reason = quarantined[0].with_suffix(".reason").read_text()
        assert "digest mismatch" in reason

    def test_missing_sidecar_is_quarantined(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        path = cache.put("svm", {"seed": 1}, "artifact")
        path.with_suffix(".json").unlink()
        assert cache.lookup("svm", {"seed": 1}) == (None, False)
        assert cache.stats()["quarantined"] == 1

    def test_quarantined_entries_leave_inventory(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        path = cache.put("svm", {"seed": 1}, "artifact")
        cache.put("svm", {"seed": 2}, "fine")
        path.write_bytes(b"torn")
        cache.lookup("svm", {"seed": 1})
        assert len(cache.entries()) == 1
        assert cache.stats()["stored"] == 1

    def test_recompute_after_quarantine_restores_entry(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        path = cache.put("svm", {"seed": 1}, "v1")
        path.write_bytes(b"torn")
        value, hit = cache.get_or_compute("svm", {"seed": 1}, lambda: "v2")
        assert (value, hit) == ("v2", False)
        assert cache.get("svm", {"seed": 1}) == "v2"
        assert cache.stats()["quarantined"] == 1

    def test_torn_payload_prefix_is_quarantined(self, tmp_path):
        from repro.recovery import tear_file

        cache = ArtifactCache(tmp_path)
        path = cache.put("nmf", {"seed": 3}, {"W": np.arange(100.0)})
        tear_file(path, path.stat().st_size // 2)
        assert cache.lookup("nmf", {"seed": 3}) == (None, False)
        assert cache.stats()["quarantined"] == 1


class TestCacheStaleness:
    """Entry-age metadata: the serving daemon's stale-tier contract."""

    def make(self, tmp_path, start=100.0):
        # A hand-cranked clock instead of wall time: ages are exact.
        state = {"now": start}
        cache = ArtifactCache(tmp_path, clock=lambda: state["now"])
        return cache, state

    def test_sidecar_records_created_at(self, tmp_path):
        import json

        cache, state = self.make(tmp_path)
        path = cache.put("svm", {"seed": 1}, "artifact")
        meta = json.loads(path.with_suffix(".json").read_text())
        assert meta["created_at"] == 100.0

    def test_entry_info_ages_with_the_clock(self, tmp_path):
        cache, state = self.make(tmp_path)
        cache.put("svm", {"seed": 1}, "artifact")
        state["now"] = 160.0
        info = cache.entry_info("svm", {"seed": 1})
        assert info is not None
        assert info.namespace == "svm"
        assert info.created_at == 100.0
        assert info.age == 60.0
        assert info.stamped

    def test_entry_info_does_not_touch_hit_accounting(self, tmp_path):
        cache, _ = self.make(tmp_path)
        cache.put("svm", {"seed": 1}, "artifact")
        cache.entry_info("svm", {"seed": 1})
        stats = cache.stats()
        assert stats["hits"] == 0 and stats["misses"] == 0

    def test_entry_info_missing_entry_is_none(self, tmp_path):
        cache, _ = self.make(tmp_path)
        assert cache.entry_info("svm", {"seed": 404}) is None

    def test_lookup_hit_exposes_last_entry_info(self, tmp_path):
        cache, state = self.make(tmp_path)
        cache.put("svm", {"seed": 1}, "artifact")
        state["now"] = 130.0
        value, hit = cache.lookup("svm", {"seed": 1})
        assert hit
        assert cache.last_entry_info is not None
        assert cache.last_entry_info.age == 30.0

    def test_legacy_unstamped_entry_has_unknown_age(self, tmp_path):
        import json

        cache, _ = self.make(tmp_path)
        path = cache.put("svm", {"seed": 1}, "artifact")
        sidecar = path.with_suffix(".json")
        meta = json.loads(sidecar.read_text())
        del meta["created_at"]  # entry written before this PR
        sidecar.write_text(json.dumps(meta))
        info = cache.entry_info("svm", {"seed": 1})
        assert info is not None
        assert info.created_at is None
        assert info.age is None
        assert not info.stamped

    def test_stats_age_fields(self, tmp_path):
        cache, state = self.make(tmp_path)
        cache.put("a", {"seed": 1}, "x")
        state["now"] = 110.0
        cache.put("b", {"seed": 1}, "y")
        state["now"] = 130.0
        stats = cache.stats()
        assert stats["age_tracked"] == 2
        assert stats["age_min"] == 20.0
        assert stats["age_max"] == 30.0
        assert stats["age_mean"] == 25.0

    def test_stats_age_fields_empty_cache(self, tmp_path):
        cache, _ = self.make(tmp_path)
        stats = cache.stats()
        assert stats["age_tracked"] == 0
        assert stats["age_min"] == 0.0
        assert stats["age_max"] == 0.0
        assert stats["age_mean"] == 0.0

    def test_set_clock_rebinds(self, tmp_path):
        cache = ArtifactCache(tmp_path)  # defaults to wall time
        cache.set_clock(lambda: 500.0)
        cache.put("svm", {"seed": 1}, "artifact")
        info = cache.entry_info("svm", {"seed": 1})
        assert info.created_at == 500.0
        assert info.age == 0.0
