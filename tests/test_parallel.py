"""WorkPool executor contract and ArtifactCache key/storage semantics."""

from __future__ import annotations

import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel import ArtifactCache, CacheError, WorkPool, cache_key, canonicalize
from repro.pipeline.autoclassifier import ClassifierKind


def _square(x):
    return x * x


def _stagger(item):
    # Later items finish first; ordering must still follow input order.
    index, delay = item
    time.sleep(delay)
    return index


class TestWorkPool:
    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            WorkPool(0)
        with pytest.raises(ValueError):
            WorkPool(2, backend="gpu")

    def test_serial_when_jobs_one(self):
        pool = WorkPool(1)
        assert pool.map(_square, [1, 2, 3]) == [1, 4, 9]
        assert pool.last_backend == "serial"

    def test_empty_input(self):
        assert WorkPool(4).map(_square, []) == []

    def test_thread_backend_preserves_input_order(self):
        pool = WorkPool(4, backend="thread")
        items = [(0, 0.05), (1, 0.03), (2, 0.01), (3, 0.0)]
        assert pool.map(_stagger, items) == [0, 1, 2, 3]
        assert pool.last_backend == "thread"

    def test_process_backend_matches_serial(self):
        serial = WorkPool(1).map(_square, list(range(8)))
        parallel = WorkPool(4, backend="process").map(_square, list(range(8)))
        assert serial == parallel

    def test_process_backend_falls_back_on_unpicklable_task(self):
        # A lambda cannot cross a process boundary; tasks are pure by
        # contract, so the pool must degrade to the serial reference loop
        # instead of surfacing a PicklingError.
        offset = 10
        pool = WorkPool(3, backend="process")
        assert pool.map(lambda x: x + offset, [1, 2, 3]) == [11, 12, 13]
        assert pool.last_backend == "serial-fallback"

    def test_thread_backend_runs_closures(self):
        offset = 10
        pool = WorkPool(3, backend="thread")
        assert pool.map(lambda x: x + offset, [1, 2]) == [11, 12]

    def test_exception_propagates(self):
        def boom(x):
            raise RuntimeError(f"task {x}")

        with pytest.raises(RuntimeError, match="task"):
            WorkPool(2, backend="thread").map(boom, [1, 2, 3])

    def test_starmap(self):
        pool = WorkPool(2, backend="thread")
        assert pool.starmap(pow, [(2, 3), (3, 2)]) == [8, 9]

    def test_single_item_skips_pool(self):
        pool = WorkPool(4, backend="process")
        assert pool.map(_square, [5]) == [25]
        assert pool.last_backend == "serial"


class TestCanonicalize:
    def test_enum_and_numpy_scalars(self):
        assert canonicalize(ClassifierKind.SVM) == "ClassifierKind.SVM"
        assert canonicalize(np.float64(0.5)) == 0.5
        assert canonicalize(np.int64(3)) == 3

    def test_mapping_key_order_irrelevant(self):
        assert canonicalize({"a": 1, "b": 2}) == canonicalize({"b": 2, "a": 1})

    def test_sets_are_order_free(self):
        assert canonicalize({"x", "y"}) == canonicalize({"y", "x"})

    def test_negative_zero_merges_with_zero(self):
        assert cache_key("ns", {"x": -0.0}) == cache_key("ns", {"x": 0.0})

    def test_rejects_arrays(self):
        with pytest.raises(CacheError):
            canonicalize(np.zeros(3))

    def test_rejects_callables(self):
        with pytest.raises(CacheError):
            canonicalize({"fn": _square})


class TestCacheKey:
    def test_namespace_separates_svm_from_tree(self):
        # The false-sharing hazard: identical hyperparameters must never
        # let a Tree artifact satisfy an SVM lookup or vice versa.
        params = {"seed": 2020, "max_depth": 12}
        assert cache_key("svm", params) != cache_key("tree", params)

    def test_invalid_namespace(self):
        with pytest.raises(CacheError):
            cache_key("", {})
        with pytest.raises(CacheError):
            cache_key("a/b", {})

    def test_nested_params_stable(self):
        a = cache_key("ns", {"svm": {"epochs": 40, "reg": 1e-3}, "seed": 0})
        b = cache_key("ns", {"seed": 0, "svm": {"reg": 1e-3, "epochs": 40}})
        assert a == b


_PARAM_VALUES = st.one_of(
    st.integers(min_value=-(2**31), max_value=2**31),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=12),
    st.booleans(),
    st.sampled_from(list(ClassifierKind)),
)
_PARAMS = st.dictionaries(
    st.text(min_size=1, max_size=8), _PARAM_VALUES, min_size=1, max_size=6
)


class TestCacheKeyProperties:
    @given(params=_PARAMS)
    @settings(max_examples=60, deadline=None)
    def test_identical_configs_hit_the_same_key(self, params):
        items = list(params.items())
        shuffled = dict(reversed(items))
        assert cache_key("ns", params) == cache_key("ns", shuffled)

    @given(params=_PARAMS, data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_any_value_change_changes_the_key(self, params, data):
        field = data.draw(st.sampled_from(sorted(params)))
        new_value = data.draw(_PARAM_VALUES)
        if canonicalize(new_value) == canonicalize(params[field]):
            return  # not actually a change
        mutated = dict(params)
        mutated[field] = new_value
        assert cache_key("ns", params) != cache_key("ns", mutated)

    @given(params=_PARAMS, extra=st.text(min_size=1, max_size=8), value=_PARAM_VALUES)
    @settings(max_examples=60, deadline=None)
    def test_adding_a_field_changes_the_key(self, params, extra, value):
        if extra in params:
            return
        widened = dict(params)
        widened[extra] = value
        assert cache_key("ns", params) != cache_key("ns", widened)

    @given(seed=st.integers(min_value=0, max_value=2**30))
    @settings(max_examples=30, deadline=None)
    def test_seed_always_part_of_key(self, seed):
        base = {"seed": 0, "epochs": 40}
        probe = {"seed": seed, "epochs": 40}
        assert (cache_key("svm", base) == cache_key("svm", probe)) == (seed == 0)


class TestArtifactCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        params = {"seed": 1}
        assert cache.get("svm", params) is None
        cache.put("svm", params, {"acc": 0.96})
        assert cache.get("svm", params) == {"acc": 0.96}
        assert cache.stats() == {"hits": 1, "misses": 1, "stored": 1}

    def test_numpy_payload_roundtrip(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        value = {"W": np.arange(6.0).reshape(2, 3)}
        cache.put("nmf", {"seed": 2}, value)
        loaded = cache.get("nmf", {"seed": 2})
        assert np.array_equal(loaded["W"], value["W"])

    def test_param_change_misses(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put("svm", {"seed": 1, "epochs": 40}, "a")
        assert cache.get("svm", {"seed": 2, "epochs": 40}) is None
        assert cache.get("svm", {"seed": 1, "epochs": 41}) is None

    def test_get_or_compute(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        calls = []

        def compute():
            calls.append(1)
            return 42

        value, hit = cache.get_or_compute("ns", {"k": 1}, compute)
        assert (value, hit) == (42, False)
        value, hit = cache.get_or_compute("ns", {"k": 1}, compute)
        assert (value, hit) == (42, True)
        assert len(calls) == 1

    def test_metadata_sidecar_written(self, tmp_path):
        import json

        cache = ArtifactCache(tmp_path)
        path = cache.put("svm", {"seed": 1}, "artifact")
        meta = json.loads(path.with_suffix(".json").read_text())
        assert meta["namespace"] == "svm"
        assert meta["params"] == {"seed": 1}
        assert meta["payload"] == path.name

    def test_corrupted_entry_is_a_miss(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        path = cache.put("svm", {"seed": 1}, "artifact")
        path.write_bytes(b"not a pickle")
        assert cache.get("svm", {"seed": 1}) is None

    def test_clear_by_namespace(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put("svm", {"seed": 1}, "a")
        cache.put("tree", {"seed": 1}, "b")
        assert cache.clear("svm") == 1
        assert cache.get("svm", {"seed": 1}) is None
        assert cache.get("tree", {"seed": 1}) == "b"
        assert cache.clear() == 1
