"""Framework capability models, recovery strategies, coverage evaluation."""

from __future__ import annotations

import pytest

from repro.errors import FrameworkError
from repro.faultinjection.faults import catalog_by_id
from repro.frameworks import (
    InputFilterStrategy,
    ReplayStrategy,
    RestartStrategy,
    default_registry,
    evaluate_coverage,
)
from repro.frameworks.evaluator import deterministic_recovery_gap, mechanical_validation
from repro.frameworks.registry import get_framework
from repro.taxonomy import BugType, Symptom, Trigger


class TestRegistry:
    def test_known_systems_present(self):
        registry = default_registry()
        for name in ("Ravana", "LegoSDN", "SCL", "RoseMary", "STS", "SPHINX"):
            assert name in registry

    def test_get_framework_unknown(self):
        with pytest.raises(FrameworkError):
            get_framework("MagicFixer")

    def test_ravana_capability_shape(self):
        ravana = get_framework("Ravana")
        assert ravana.can_detect(Trigger.NETWORK_EVENTS, Symptom.FAIL_STOP)
        assert not ravana.can_detect(Trigger.CONFIGURATION, Symptom.FAIL_STOP)
        assert ravana.can_recover(Trigger.NETWORK_EVENTS, BugType.NON_DETERMINISTIC)
        assert not ravana.can_recover(Trigger.NETWORK_EVENTS, BugType.DETERMINISTIC)

    def test_diagnosis_only_never_recovers(self):
        sts = get_framework("STS")
        for trigger in Trigger:
            for bug_type in BugType:
                assert not sts.can_recover(trigger, bug_type)

    def test_input_transformers_recover_deterministic(self):
        for name in ("LegoSDN", "Bouncer"):
            model = get_framework(name)
            assert model.can_recover(Trigger.NETWORK_EVENTS, BugType.DETERMINISTIC)


class TestStrategies:
    def test_restart_detects_only_failstop(self):
        restart = RestartStrategy()
        gray = catalog_by_id()["external-tsdb-type"]  # gray failure
        attempt = restart.attempt(gray, seed=0)
        assert not attempt.detected

    def test_restart_fails_on_deterministic_crash(self):
        restart = RestartStrategy(retries=2)
        crash = catalog_by_id()["config-missing-multicast"]
        attempt = restart.attempt(crash, seed=0)
        assert attempt.detected and not attempt.recovered

    def test_restart_recovers_nondeterministic_crash(self):
        restart = RestartStrategy(retries=3)
        race = catalog_by_id()["network-startup-race"]
        # Find a seed where the race manifests; the restart (different seed)
        # then has a good chance of coming up healthy.
        for seed in range(10):
            if race.execute(seed).symptom is Symptom.FAIL_STOP:
                attempt = restart.attempt(race, seed=seed)
                assert attempt.detected
                assert attempt.recovered
                return
        pytest.fail("race never manifested in 10 seeds")

    def test_replay_fails_on_deterministic_crash(self):
        replay = ReplayStrategy()
        crash = catalog_by_id()["network-malformed-frame"]
        attempt = replay.attempt(crash, seed=0)
        assert attempt.detected and not attempt.recovered
        assert "same failure" in attempt.detail

    def test_replay_detects_stall(self):
        replay = ReplayStrategy()
        stall = catalog_by_id()["reboot-olt-no-timeout"]
        attempt = replay.attempt(stall, seed=0)
        assert attempt.detected
        assert not attempt.recovered  # deterministic stall replays identically

    def test_input_filter_recovers_deterministic_network_bug(self):
        strategy = InputFilterStrategy()
        attempt = strategy.attempt(catalog_by_id()["network-malformed-frame"], seed=0)
        assert attempt.detected and attempt.recovered

    def test_input_filter_cannot_touch_config_triggers(self):
        strategy = InputFilterStrategy()
        attempt = strategy.attempt(catalog_by_id()["config-missing-multicast"], seed=0)
        assert attempt.detected and not attempt.recovered
        assert "does not pass through" in attempt.detail


class TestCoverage:
    @pytest.fixture(scope="class")
    def report(self):
        return evaluate_coverage(seed=0)

    def test_matrix_dimensions(self, report):
        frameworks = report.frameworks()
        assert len(report.cells) == len(frameworks) * len(catalog_by_id())

    def test_no_framework_covers_everything(self, report):
        """The paper: 'no one technique can recover from bugs across all
        root causes effectively'."""
        for name in report.frameworks():
            assert report.recovery_rate(name) < 0.5

    def test_deterministic_recovery_gap(self, report):
        """Recovery from deterministic bugs is nearly absent — only input
        transformers (LegoSDN, Bouncer) score above zero."""
        gap = deterministic_recovery_gap(report)
        above_zero = {name for name, rate in gap.items() if rate > 0}
        assert above_zero <= {"LegoSDN", "Bouncer"}
        assert above_zero  # but they do exist

    def test_detection_broader_than_recovery(self, report):
        for name in report.frameworks():
            assert report.detection_rate(name) >= report.recovery_rate(name)

    def test_network_events_best_covered_trigger(self, report):
        """Most systems focus on OpenFlow-triggered bugs (SS VII-C)."""
        per_trigger = {
            trigger: sum(report.trigger_coverage(trigger).values())
            for trigger in Trigger
        }
        assert per_trigger[Trigger.NETWORK_EVENTS] == max(per_trigger.values())
        assert per_trigger[Trigger.HARDWARE_REBOOTS] == 0

    def test_mechanical_validation_consistent_with_matrix(self):
        """The executed strategies agree with the capability story: replay
        never beats a deterministic bug; the filter only wins on network
        events."""
        results = mechanical_validation(seed=0)
        catalog = catalog_by_id()
        for attempt in results["replay"]:
            if catalog[attempt.fault_id].bug_type is BugType.DETERMINISTIC:
                assert not attempt.recovered
        for attempt in results["input_filter"]:
            if attempt.recovered:
                assert catalog[attempt.fault_id].trigger is Trigger.NETWORK_EVENTS

    def test_sts_minimization_row_is_diagnosis_only(self):
        """The trace-minimization strategy detects manifest symptoms but
        never repairs the system — the paper's 'diagnosis only' cell."""
        results = mechanical_validation(seed=0)
        assert "sts_minimization" in results
        attempts = results["sts_minimization"]
        assert any(a.detected for a in attempts)
        assert not any(a.recovered for a in attempts)
        for attempt in attempts:
            if not attempt.detected:
                assert "nothing to minimize" in attempt.detail

    def test_sts_minimize_grounds_the_row(self):
        from repro.frameworks.strategies import STSMinimizationStrategy

        result = STSMinimizationStrategy().minimize(seed=0, events=20)
        assert len(result.minimized) <= 5
        assert result.target
