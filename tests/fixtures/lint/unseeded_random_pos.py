"""Fixture: draws from the process-global RNG (unseeded-random fires)."""

import random

import numpy


def pick(items):
    return random.choice(items)


def noise():
    return numpy.random.normal()


def make_rng():
    return random.Random()
