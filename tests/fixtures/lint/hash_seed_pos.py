"""Fixture: builtin hash() feeds an RNG seed (hash-seed fires)."""

import random


def rng_for(name, base):
    return random.Random(hash(name) ^ base)


def derive(name):
    seed = hash(name) & 0xFFFF
    return seed
