"""Fixture: set iteration leaks hash order (unordered-iteration fires)."""


def labels(items):
    names = {item.name for item in items}
    return list(names)


def joined(values):
    return ",".join({str(v) for v in values})


def accumulate(seen):
    out = []
    for entry in seen:
        out.append(entry)
    return out
