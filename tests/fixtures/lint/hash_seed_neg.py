"""Fixture: stable string seeding, no builtin hash() (hash-seed silent)."""

import hashlib
import random


def rng_for(name, base):
    return random.Random(f"{base}:{name}")


def derive(name):
    seed = int.from_bytes(hashlib.sha256(name.encode()).digest()[:4], "big")
    return seed
