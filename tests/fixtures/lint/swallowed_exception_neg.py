"""Fixture: the failure is at least recorded (swallowed-exception silent)."""


def close_quietly(handle, record):
    try:
        handle.close()
    except OSError as exc:
        record(exc)
