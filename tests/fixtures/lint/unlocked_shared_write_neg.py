"""Fixture: the shared write happens under a lock (silent)."""

import threading
from concurrent.futures import ThreadPoolExecutor

counts = {}
counts_lock = threading.Lock()


def tally(item):
    with counts_lock:
        counts[item] = counts.get(item, 0) + 1


def run(items):
    pool = ThreadPoolExecutor(max_workers=4)
    pool.map(tally, items)
