"""Fixture: time comes from inputs or perf_counter (wall-clock silent)."""

import time


def stamp(clock):
    return clock.now()


def measure(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start
