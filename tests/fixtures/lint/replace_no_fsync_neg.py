"""Fixture: the write is fsynced before the rename publishes it (silent)."""

import os


def publish(tmp, final, data):
    with open(tmp, "w") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, final)
