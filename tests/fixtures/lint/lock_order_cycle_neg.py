"""Fixture: a global acquisition order is respected (silent)."""

import threading

lock_a = threading.Lock()
lock_b = threading.Lock()


def forward(work):
    with lock_a:
        with lock_b:
            work()


def also_forward(work):
    with lock_a:
        with lock_b:
            work()
