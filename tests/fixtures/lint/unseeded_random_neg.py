"""Fixture: every stream is explicitly seeded (unseeded-random silent)."""

import random

import numpy


def pick(items, seed):
    rng = random.Random(seed)
    return rng.choice(items)


def noise(seed):
    rng = numpy.random.default_rng(seed)
    return rng.normal()
