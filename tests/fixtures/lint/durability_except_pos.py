"""Fixture: a masked fsync/replace failure (durability-except fires)."""

import os


def commit(tmp, final, data):
    try:
        with open(tmp, "w") as handle:
            handle.write(data)
            os.fsync(handle.fileno())
        os.replace(tmp, final)
    except OSError:
        return False
    return True
