"""Fixture: except Exception with no re-raise (overbroad-except fires)."""


def guard(fn, record):
    try:
        return fn()
    except Exception as exc:
        record(exc)
        return None
