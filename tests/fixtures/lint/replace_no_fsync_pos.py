"""Fixture: write then rename without fsync (replace-no-fsync fires)."""

import os


def publish(tmp, final, data):
    with open(tmp, "w") as handle:
        handle.write(data)
    os.replace(tmp, final)
