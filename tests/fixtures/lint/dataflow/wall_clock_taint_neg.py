"""Negative: the timestamp is an explicit input; the clock is only printed."""
import hashlib
import time


def fingerprint_run(payload, moment):
    return hashlib.sha256(f"{payload}@{moment}".encode("utf-8")).hexdigest()


def report_elapsed(started):
    print(time.time() - started)
