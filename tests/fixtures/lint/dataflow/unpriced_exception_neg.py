"""Negative: the fault boundary prices the absorbed failure into a ledger."""


class WireError(Exception):
    pass


def parse_record(raw):
    if not raw:
        raise WireError("empty record")
    return raw.strip()


def ingest(records, ledger):
    kept = []
    for raw in records:
        try:
            kept.append(parse_record(raw))
        except WireError as exc:
            ledger.record("wire-parse", detail=str(exc))
            kept.append(None)
    return kept
