"""Negative: the caller closes the returned handle on every path."""


def open_log(path):
    return open(path, "a", encoding="utf-8")


def note(path, message):
    handle = open_log(path)
    try:
        handle.write(message + "\n")
    finally:
        handle.close()
