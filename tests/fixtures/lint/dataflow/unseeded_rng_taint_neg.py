"""Negative: the stream is seeded, so the persisted bytes are reproducible."""
import json
import random


def draw_noise(seed):
    rng = random.Random(seed)
    return rng.random()


def persist_noise(path, seed):
    sample = {"noise": draw_noise(seed)}
    with open(path, "w", encoding="utf-8") as sink:
        json.dump(sample, sink)
