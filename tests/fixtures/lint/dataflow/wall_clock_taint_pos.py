"""Positive: a wall-clock read flows through a helper into a fingerprint."""
import hashlib
import time


def current_stamp():
    return time.time()


def fingerprint_run(payload):
    moment = current_stamp()
    return hashlib.sha256(f"{payload}@{moment}".encode("utf-8")).hexdigest()
