"""Negative: every path acquires ALPHA before BETA — consistent order."""
import threading

ALPHA = threading.Lock()
BETA = threading.Lock()


def lock_beta_then_work(work):
    with BETA:
        work()


def forward(work):
    with ALPHA:
        lock_beta_then_work(work)


def also_forward(work):
    with ALPHA:
        lock_beta_then_work(work)
