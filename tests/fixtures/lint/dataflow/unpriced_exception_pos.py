"""Positive: the handler eats a callee's escaping exception silently."""


class WireError(Exception):
    pass


def parse_record(raw):
    if not raw:
        raise WireError("empty record")
    return raw.strip()


def ingest(records):
    kept = []
    for raw in records:
        try:
            kept.append(parse_record(raw))
        except WireError:
            kept.append(None)
    return kept
