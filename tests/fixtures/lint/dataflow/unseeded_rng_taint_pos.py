"""Positive: an unseeded draw is persisted into an artifact file."""
import json
import random


def draw_noise():
    return random.random()


def persist_noise(path):
    sample = {"noise": draw_noise()}
    with open(path, "w", encoding="utf-8") as sink:
        json.dump(sample, sink)
