"""Positive: ABBA order where each inner acquisition hides in a callee."""
import threading

ALPHA = threading.Lock()
BETA = threading.Lock()


def lock_beta_then_work(work):
    with BETA:
        work()


def forward(work):
    with ALPHA:
        lock_beta_then_work(work)


def lock_alpha_then_work(work):
    with ALPHA:
        work()


def backward(work):
    with BETA:
        lock_alpha_then_work(work)
