"""Positive: a helper returns an open handle the caller never closes."""


def open_log(path):
    return open(path, "a", encoding="utf-8")


def note(path, message):
    handle = open_log(path)
    handle.write(message + "\n")
