"""Fixture: reads the wall clock (wall-clock fires)."""

import time
from datetime import datetime


def stamp():
    return time.time()


def today_label():
    return datetime.now().isoformat()
