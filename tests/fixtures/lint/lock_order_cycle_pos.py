"""Fixture: two functions acquire the same locks in opposite orders
(lock-order-cycle fires: classic ABBA deadlock)."""

import threading

lock_a = threading.Lock()
lock_b = threading.Lock()


def forward(work):
    with lock_a:
        with lock_b:
            work()


def backward(work):
    with lock_b:
        with lock_a:
            work()
