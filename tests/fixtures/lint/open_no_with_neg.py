"""Fixture: handles are managed by with, close, or ownership (silent)."""


def read_config(path):
    with open(path) as handle:
        return handle.read()


def read_then_close(path):
    handle = open(path)
    data = handle.read()
    handle.close()
    return data


class Journal:
    def __init__(self, path):
        self.handle = open(path, "a")
