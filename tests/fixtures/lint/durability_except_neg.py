"""Fixture: durability failures propagate (durability-except silent)."""

import os


def commit(tmp, final, data, record):
    try:
        with open(tmp, "w") as handle:
            handle.write(data)
            os.fsync(handle.fileno())
        os.replace(tmp, final)
    except OSError as exc:
        record(exc)
        raise
    return True
