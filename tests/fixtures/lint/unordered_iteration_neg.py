"""Fixture: sets are sorted before ordering matters (silent)."""


def labels(items):
    names = {item.name for item in items}
    return sorted(names)


def joined(values):
    return ",".join(sorted({str(v) for v in values}))


def contains(needle, items):
    haystack = {item.name for item in items}
    return needle in haystack
