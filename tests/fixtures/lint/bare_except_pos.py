"""Fixture: bare except traps everything (bare-except fires)."""


def load(parse, path):
    try:
        return parse(path)
    except:  # noqa: E722
        return None
