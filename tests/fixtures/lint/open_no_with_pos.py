"""Fixture: open() with no with/close/return (open-no-with fires)."""


def read_config(path):
    handle = open(path)
    data = handle.read()
    return data
