"""Fixture: a pool task mutates module state without a lock
(unlocked-shared-write fires)."""

from concurrent.futures import ThreadPoolExecutor

counts = {}


def tally(item):
    counts[item] = counts.get(item, 0) + 1


def run(items):
    pool = ThreadPoolExecutor(max_workers=4)
    pool.map(tally, items)
