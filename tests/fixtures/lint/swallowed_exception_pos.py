"""Fixture: handler body is only pass (swallowed-exception fires)."""


def close_quietly(handle):
    try:
        handle.close()
    except OSError:
        pass
