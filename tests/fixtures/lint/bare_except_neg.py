"""Fixture: concrete exception types only (bare-except silent)."""


def load(parse, path):
    try:
        return parse(path)
    except (OSError, ValueError):
        return None
