"""Fixture: except Exception that re-raises (overbroad-except silent)."""


def guard(fn, record):
    try:
        return fn()
    except Exception as exc:
        record(exc)
        raise
