"""Streaming ingestion plane: events, faults, DLQ, state, learning, runs."""

from __future__ import annotations

import json
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import RateLimitedError, SourceOutageError, StreamError
from repro.recovery import RecoveryError
from repro.resilience.ledger import ResilienceEvent
from repro.stream import (
    DeadLetterQueue,
    FaultMix,
    FlakySource,
    HashingVectorizer,
    IngestConfig,
    OnlineLinearSVM,
    RollingDistribution,
    StreamState,
    TrackerEvent,
    load_state,
    parse_wire,
    replay_dlq,
    run_ingest,
    save_state,
    state_metrics,
    synthetic_event,
    tracker_events,
)

# -- events ---------------------------------------------------------------------


def test_event_round_trips_through_wire_form():
    event = synthetic_event(3, 17)
    assert parse_wire(event.canonical()) == event


def test_event_digest_ignores_key_order_and_whitespace():
    event = synthetic_event(3, 17)
    scrambled = json.dumps(
        dict(reversed(list(event.to_dict().items()))), indent=3
    )
    assert parse_wire(scrambled).digest() == event.digest()


@pytest.mark.parametrize(
    "mutate, match",
    [
        (lambda d: d.pop("bug_id"), "missing field"),
        (lambda d: d.update(event_type="issue-exploded"), "unknown event type"),
        (lambda d: d.update(tracker="bugzilla"), "unknown tracker"),
        (lambda d: d.update(bug_id=""), "empty bug_id"),
        (lambda d: d.update(at="yesterday-ish"), "unparseable event time"),
        (lambda d: d.update(payload=[1, 2]), "payload must be an object"),
    ],
)
def test_malformed_events_raise_stream_error(mutate, match):
    data = synthetic_event(0, 0).to_dict()
    mutate(data)
    with pytest.raises(StreamError, match=match):
        TrackerEvent.from_dict(data)


def test_strict_parse_refuses_bom_lenient_recovers_it():
    raw = "﻿  " + synthetic_event(1, 5).canonical()
    with pytest.raises(StreamError, match="not valid JSON"):
        parse_wire(raw)
    assert parse_wire(raw, lenient=True) == synthetic_event(1, 5)


# -- sources --------------------------------------------------------------------


def test_synthetic_event_is_a_pure_function_of_seed_and_index():
    assert synthetic_event(9, 123) == synthetic_event(9, 123)
    assert synthetic_event(9, 123) != synthetic_event(9, 124)
    assert synthetic_event(9, 123) != synthetic_event(10, 123)


def test_synthetic_closed_events_carry_training_labels():
    labeled = [
        e for e in (synthetic_event(0, i) for i in range(400))
        if e.event_type == "issue-closed"
    ]
    assert labeled
    for event in labeled:
        assert set(event.payload["labels"]) == {"symptom", "root_cause"}


def test_tracker_events_flatten_both_substrates_in_time_order(corpus):
    events = tracker_events(corpus.jira, corpus.github, dataset=corpus.dataset)
    keys = [(e.at, e.bug_id, e.event_type) for e in events]
    assert keys == sorted(keys)
    created = [e for e in events if e.event_type == "issue-created"]
    n_reports = len(list(corpus.jira.search())) + len(list(corpus.github.search()))
    assert len(created) == n_reports
    closed = [e for e in events if e.event_type == "issue-closed"]
    assert closed and all("labels" in e.payload for e in closed)


# -- the flaky source -----------------------------------------------------------


def _source(mix: FaultMix, *, seed=4, total=192, block_size=32) -> FlakySource:
    return FlakySource(
        lambda i: synthetic_event(seed, i),
        total,
        mix=mix,
        seed=seed,
        block_size=block_size,
    )


def test_fault_mix_validates_rates_and_depth():
    with pytest.raises(StreamError, match="corrupt_rate"):
        FaultMix(corrupt_rate=1.5)
    with pytest.raises(StreamError, match="outage_depth"):
        FaultMix(outage_depth=0)


def test_clean_blocks_deliver_the_canonical_stream():
    source = _source(FaultMix())
    records = [r for b in range(source.n_blocks) for r in source.wire_block(b)]
    assert records == [
        synthetic_event(4, i).canonical() for i in range(source.total)
    ]


def test_wire_blocks_are_pure_functions_of_seed_and_block():
    mix = FaultMix(corrupt_rate=0.1, duplicate_rate=0.2, reorder_rate=0.5)
    assert [_source(mix).wire_block(b) for b in range(6)] == [
        _source(mix).wire_block(b) for b in range(6)
    ]


def test_reordering_and_duplication_preserve_the_record_multiset():
    noisy = _source(FaultMix(duplicate_rate=0.3, reorder_rate=1.0))
    clean = _source(FaultMix())
    for block in range(noisy.n_blocks):
        noisy_records = noisy.wire_block(block)
        assert set(noisy_records) == set(clean.wire_block(block))
        assert len(noisy_records) >= len(clean.wire_block(block))


def test_fetch_fails_exactly_as_planned_then_succeeds():
    source = _source(FaultMix(outage_rate=1.0, outage_depth=3))
    fate = source.plan(0)
    assert 1 <= fate.failures <= 3
    for attempt in range(1, fate.failures + 1):
        with pytest.raises(SourceOutageError):
            source.fetch(0, attempt)
    assert source.fetch(0, fate.failures + 1) == source.wire_block(0)


def test_rate_limit_carries_a_retry_after_hint():
    source = _source(FaultMix(rate_limit_rate=1.0))
    with pytest.raises(RateLimitedError) as excinfo:
        source.fetch(0, 1)
    assert excinfo.value.retry_after > 0


# -- dead-letter queue ----------------------------------------------------------


def test_dlq_put_is_idempotent_and_keeps_reason_sidecars(tmp_path):
    dlq = DeadLetterQueue(tmp_path / "dlq")
    key = dlq.put("{broken", "wire record is not valid JSON")
    assert dlq.put("{broken", "wire record is not valid JSON") == key
    assert dlq.depth() == 1
    (entry,) = dlq.entries()
    assert entry.raw == "{broken"
    assert "not valid JSON" in entry.reason
    dlq.remove(key)
    assert dlq.depth() == 0
    with pytest.raises(StreamError, match="no DLQ entry"):
        dlq.remove(key)


# -- state ----------------------------------------------------------------------


def _apply_stream(events) -> StreamState:
    state = StreamState(config={})
    for event in events:
        digest = event.digest_int()
        if digest not in state.seen:
            state.apply(event, digest)
    return state


def test_state_snapshot_round_trips_bit_for_bit(tmp_path):
    state = _apply_stream(synthetic_event(2, i) for i in range(64))
    state.consumed = 64
    digest = save_state(state, tmp_path / "state.json")
    loaded = load_state(tmp_path / "state.json", expect_digest=digest)
    assert loaded.fingerprint() == state.fingerprint()


def test_state_load_refuses_digest_drift_and_bad_version(tmp_path):
    state = StreamState(config={})
    save_state(state, tmp_path / "state.json")
    with pytest.raises(StreamError, match="digest mismatch"):
        load_state(tmp_path / "state.json", expect_digest="0" * 64)
    data = state.to_dict()
    data["version"] = 99
    (tmp_path / "future.json").write_text(json.dumps(data))
    with pytest.raises(StreamError, match="unsupported stream state version"):
        load_state(tmp_path / "future.json")


@settings(max_examples=25, deadline=None)
@given(
    order=st.permutations(list(range(48))),
    extras=st.lists(st.integers(min_value=0, max_value=47), max_size=60),
)
def test_analytics_are_invariant_under_permutation_and_duplication(
    order, extras
):
    """Any delivery order, any duplication: same analytics digest."""
    events = [synthetic_event(6, i) for i in range(48)]
    reference = _apply_stream(events).analytics_digest()
    shuffled = [events[i] for i in list(order) + extras]
    assert _apply_stream(shuffled).analytics_digest() == reference


# -- online learning ------------------------------------------------------------


def test_hashing_vectorizer_is_deterministic_and_l2_normalized():
    vec = HashingVectorizer(n_features=256, seed=1)
    row = vec.transform_tokens(["crash", "deadlock", "crash", "vlan"])
    assert row == vec.transform_tokens(["crash", "deadlock", "crash", "vlan"])
    assert sum(v * v for v in row.values()) == pytest.approx(1.0)
    with pytest.raises(StreamError, match="power of two"):
        HashingVectorizer(n_features=100)


def test_online_svm_learns_a_separable_stream_and_round_trips():
    vec = HashingVectorizer(n_features=256, seed=0)
    rng = random.Random(0)
    vocab = {"crash": ["segfault", "core", "abort"],
             "performance": ["latency", "slow", "throughput"]}
    samples = [
        (vec.transform_tokens(rng.sample(words, 2)), label)
        for _ in range(80)
        for label, words in vocab.items()
    ]
    model = OnlineLinearSVM(n_features=256)
    for start in range(0, len(samples), 16):
        chunk = samples[start:start + 16]
        model.partial_fit([r for r, _ in chunk], [y for _, y in chunk])
    rows = [r for r, _ in samples]
    truth = [y for _, y in samples]
    accuracy = sum(
        p == t for p, t in zip(model.predict(rows), truth)
    ) / len(truth)
    assert accuracy >= 0.95

    clone = OnlineLinearSVM.from_dict(model.to_dict())
    assert clone.to_dict() == model.to_dict()
    assert clone.predict(rows) == model.predict(rows)


def test_rolling_distribution_windows_by_event_time():
    dist = RollingDistribution(window_days=7)
    dist.observe("2017-01-01T00:00:00", "crash", "logic_error")
    dist.observe("2017-02-01T00:00:00", "byzantine", "sync_error")
    dist.observe("2017-02-03T00:00:00", "byzantine", "sync_error")
    assert dist.window() == {"byzantine|sync_error": 2}
    clone = RollingDistribution.from_dict(dist.to_dict())
    assert clone.to_dict() == dist.to_dict()


# -- ingestion runs -------------------------------------------------------------

#: Small but fault-rich: the outage depth beats the retry budget, so some
#: blocks are genuinely abandoned and priced.
HOSTILE = IngestConfig(
    seed=5,
    events=480,
    batch=96,
    block=24,
    pool=80,
    outage_rate=0.3,
    outage_depth=4,
    rate_limit_rate=0.2,
    corrupt_rate=0.05,
    duplicate_rate=0.1,
    reorder_rate=0.3,
    retry_attempts=2,
    queue_capacity=48,
)


def test_clean_run_applies_every_event_exactly_once(tmp_path):
    config = IngestConfig(seed=1, events=300, batch=100, block=25, pool=60)
    report = run_ingest(config, tmp_path / "run")
    state = report.state
    assert state.consumed == state.applied == 300
    assert state.deduped == state.dead_lettered == state.lost_upstream == 0
    assert len(state.seen) == 300
    assert report.dlq_depth == 0
    assert state.model is not None and state.trained > 0


def test_hostile_run_accounts_for_every_record(tmp_path):
    report = run_ingest(HOSTILE, tmp_path / "run")
    state = report.state
    assert state.consumed == (
        state.applied + state.deduped + state.dead_lettered
    )
    # Losses exist and every one is priced in the resilience ledger.
    assert state.lost_upstream > 0
    assert report.ledger.count(ResilienceEvent.GIVE_UP) == state.blocks_abandoned
    assert state.retries > 0 and state.rate_limited > 0
    assert state.deduped > 0 and state.dead_lettered > 0
    # The external audit: regenerate what the source emitted.
    emitted = sum(
        len(
            FlakySource(
                lambda i: synthetic_event(HOSTILE.seed, i, pool=HOSTILE.pool),
                HOSTILE.events,
                mix=HOSTILE.mix(),
                seed=HOSTILE.seed,
                block_size=HOSTILE.block,
            ).wire_block(b)
        )
        for b in range(HOSTILE.n_blocks)
    )
    assert emitted == state.consumed + state.lost_upstream
    # Backpressure held: the queue never grew past capacity + one block's
    # worth of records (duplication can fatten a block past block size).
    assert state.max_queue_depth <= HOSTILE.queue_capacity + 2 * HOSTILE.block


def test_run_exports_metrics_summary_and_ledger(tmp_path):
    report = run_ingest(HOSTILE, tmp_path / "run")
    exported = (tmp_path / "run" / "metrics.jsonl").read_text()
    names = {json.loads(line)["name"] for line in exported.splitlines()}
    assert {
        "ingest_consumed_total", "ingest_applied_total",
        "ingest_dedup_hits_total", "ingest_dead_lettered_total",
        "ingest_lost_upstream_total", "ingest_consumer_lag_peak",
        "ingest_dlq_depth", "ingest_events_per_bug",
    } <= names
    summary = json.loads((tmp_path / "run" / "summary.json").read_text())
    assert summary["fingerprint"] == report.state.fingerprint()
    # Metrics derive purely from the snapshot: re-deriving them from the
    # final state reproduces the export byte for byte.
    regenerated = state_metrics(
        report.state, dlq_depth=report.dlq_depth
    ).export_jsonl()
    assert regenerated == exported


def test_journal_refuses_fresh_over_existing_and_config_drift(tmp_path):
    run_ingest(HOSTILE, tmp_path / "run")
    with pytest.raises(RecoveryError, match="journal already exists"):
        run_ingest(HOSTILE, tmp_path / "run")
    drifted = IngestConfig(**{**HOSTILE.to_dict(), "seed": 6})
    with pytest.raises(RecoveryError, match="config"):
        run_ingest(drifted, tmp_path / "run", resume=True)


def test_completed_run_resumes_to_identical_fingerprint(tmp_path):
    first = run_ingest(HOSTILE, tmp_path / "run")
    again = run_ingest(HOSTILE, tmp_path / "run", resume=True)
    assert again.batches_executed == 0
    assert again.state.fingerprint() == first.state.fingerprint()


def test_dlq_replay_recovers_bom_records_and_keeps_the_rest(tmp_path):
    config = IngestConfig(**{**HOSTILE.to_dict(), "corrupt_rate": 0.2})
    report = run_ingest(config, tmp_path / "run")
    state = report.state
    before = report.dlq_depth
    assert before > 0

    result = replay_dlq(tmp_path / "run")
    assert result["recovered"] > 0, "no BOM-corrupted records to recover"
    assert result["recovered"] == result["applied"] + result["deduped"]
    assert result["remaining"] == before - result["recovered"]

    # The replayed state is journaled: a further resume picks it up, still
    # balanced, with the recovered deliveries moved out of dead_lettered.
    resumed = run_ingest(config, tmp_path / "run", resume=True)
    rs = resumed.state
    assert rs.dead_lettered == state.dead_lettered - result["recovered"]
    assert rs.applied == state.applied + result["applied"]
    assert rs.consumed == rs.applied + rs.deduped + rs.dead_lettered
    # Replay is idempotent: nothing recoverable is left behind.
    assert replay_dlq(tmp_path / "run")["recovered"] == 0


def test_replay_dlq_needs_a_journaled_run(tmp_path):
    with pytest.raises(StreamError, match="no ingest journal"):
        replay_dlq(tmp_path / "empty")


def test_ingest_config_validation():
    with pytest.raises(StreamError, match="block .* cannot exceed batch"):
        IngestConfig(batch=32, block=64)
    with pytest.raises(StreamError, match="outage_rate"):
        IngestConfig(outage_rate=2.0)
    assert IngestConfig().digest() == IngestConfig().digest()
    assert IngestConfig().digest() != IngestConfig(seed=1).digest()
