"""NLP autoclassification pipeline (SS II-C): end-to-end behaviour.

The full paper-scale validation (all dimensions, all classifiers) lives in
``benchmarks/bench_nlp_validation.py``; here we exercise the mechanics on
the manual sample with the default (fast) configuration.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import NotFittedError
from repro.pipeline import AutoClassifier, ClassifierKind, validate_pipeline
from repro.pipeline.validation import validate_all_dimensions


@pytest.fixture(scope="module")
def texts_and_labels(manual_sample):
    return manual_sample.texts(), manual_sample.labels("symptom")


class TestAutoClassifier:
    def test_fit_predict_roundtrip(self, texts_and_labels):
        texts, labels = texts_and_labels
        model = AutoClassifier(seed=0).fit(texts[:100], labels[:100])
        predictions = model.predict(texts[100:])
        assert len(predictions) == len(texts) - 100
        assert set(predictions) <= set(labels)

    def test_training_accuracy_high(self, texts_and_labels):
        texts, labels = texts_and_labels
        model = AutoClassifier(seed=0).fit(texts, labels)
        predictions = model.predict(texts)
        accuracy = sum(1 for t, p in zip(labels, predictions) if t == p) / len(labels)
        assert accuracy > 0.9

    def test_predict_before_fit(self):
        with pytest.raises(NotFittedError):
            AutoClassifier().predict(["text"])

    def test_embed_shape(self, texts_and_labels):
        texts, labels = texts_and_labels
        model = AutoClassifier(seed=0).fit(texts[:60], labels[:60])
        matrix = model.embed(texts[:5])
        assert matrix.shape[0] == 5
        assert np.isfinite(matrix).all()

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            AutoClassifier().fit(["a"], ["x", "y"])

    def test_pca_variant_runs(self, texts_and_labels):
        texts, labels = texts_and_labels
        model = AutoClassifier(seed=0, pca_dim=16, use_embeddings=False)
        model.fit(texts[:80], labels[:80])
        assert len(model.predict(texts[80:90])) == 10


class TestValidation:
    def test_bug_type_accuracy_matches_paper(self, manual_sample):
        report = validate_pipeline(manual_sample, "bug_type", seed=0)
        assert report.accuracy >= 0.90  # paper: 96%

    def test_symptom_accuracy_matches_paper(self, manual_sample):
        report = validate_pipeline(manual_sample, "symptom", seed=0)
        assert report.accuracy >= 0.80  # paper: 86%

    def test_fix_prediction_is_hard(self, manual_sample):
        """The paper could not find any algorithm that predicts fixes."""
        report = validate_pipeline(manual_sample, "fix", seed=0)
        assert report.accuracy < 0.65

    def test_report_summary_format(self, manual_sample):
        report = validate_pipeline(manual_sample, "bug_type", seed=0)
        assert "bug_type" in report.summary()
        assert "accuracy" in report.summary()

    def test_confusion_matrix_consistent(self, manual_sample):
        report = validate_pipeline(manual_sample, "symptom", seed=0)
        total = sum(sum(row) for row in report.confusion)
        assert total == report.n_test

    def test_validate_all_dimensions_keys(self, manual_sample):
        reports = validate_all_dimensions(
            manual_sample, dimensions=("bug_type", "symptom")
        )
        assert set(reports) == {"bug_type", "symptom"}

    def test_decision_tree_kind_works(self, manual_sample):
        report = validate_pipeline(
            manual_sample, "bug_type", kind=ClassifierKind.DECISION_TREE, seed=0
        )
        assert report.accuracy >= 0.75
