"""ASCII rendering helpers and the experiment registry."""

from __future__ import annotations

import pytest

from repro.reporting import EXPERIMENTS, ascii_table, format_percent, render_distribution
from repro.reporting.registry import experiment
from repro.reporting.tables import render_cdf_series


class TestFormatting:
    def test_percent(self):
        assert format_percent(0.147) == "14.7%"
        assert format_percent(None) == "NA"
        assert format_percent(1.0, digits=0) == "100%"

    def test_ascii_table_alignment(self):
        table = ascii_table(["name", "n"], [["alpha", 1], ["b", 22]])
        lines = table.splitlines()
        assert all(len(line) == len(lines[0]) for line in lines)
        assert "alpha" in table and "22" in table

    def test_ascii_table_title(self):
        table = ascii_table(["x"], [["1"]], title="T1")
        assert table.startswith("T1\n")

    def test_ascii_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            ascii_table(["a", "b"], [["only-one"]])

    def test_render_distribution_bars_scale(self):
        text = render_distribution({"big": 0.8, "small": 0.2})
        big_line, small_line = text.splitlines()
        assert big_line.count("#") > small_line.count("#")

    def test_render_distribution_empty(self):
        assert "empty" in render_distribution({}, title="d")

    def test_render_cdf_series(self):
        text = render_cdf_series([(1.0, 0.5), (2.0, 1.0)], title="cdf")
        assert "cdf" in text and "100.0%" in text


class TestRegistry:
    def test_all_experiments_have_benches(self):
        assert len(EXPERIMENTS) >= 18
        for exp in EXPERIMENTS:
            assert exp.bench.startswith("benchmarks/bench_")
            assert exp.modules

    def test_bench_files_exist(self):
        from pathlib import Path

        root = Path(__file__).resolve().parent.parent
        for exp in EXPERIMENTS:
            assert (root / exp.bench).exists(), exp.bench

    def test_lookup(self):
        assert experiment("determinism").paper_artifact.startswith("SS III")
        with pytest.raises(KeyError):
            experiment("nonexistent")

    def test_ids_unique(self):
        ids = [e.exp_id for e in EXPERIMENTS]
        assert len(ids) == len(set(ids))
