"""Serial-equivalence harness: jobs=1 vs jobs=4 vs cache-warm, bit for bit.

The executor contract (DESIGN §"Parallel execution") promises that worker
count and cache state are performance knobs only.  Every test here runs the
same computation three ways and asserts *exact* equality — np.array_equal,
``==`` on floats, identical ledger record sequences — not approximate
closeness.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.corpus import CorpusGenerator
from repro.faultinjection import FaultCampaign
from repro.faultinjection.faults import default_catalog
from repro.ml import LinearSVM, cross_val_score, nmf_multi_restart
from repro.parallel import ArtifactCache, WorkPool
from repro.pipeline import run_pipeline
from repro.textmining import TfidfVectorizer, Tokenizer

SEEDS = [0, 1, 2]


def _blobs(seed: int, n_per_class: int = 30, n_features: int = 6):
    rng = np.random.default_rng(seed)
    centers = rng.normal(scale=4.0, size=(3, n_features))
    X = np.vstack(
        [center + rng.normal(size=(n_per_class, n_features)) for center in centers]
    )
    y = [cls for cls in ("crash", "churn", "leak") for _ in range(n_per_class)]
    return X, y


class TestSvmEquivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_jobs4_matches_serial_bit_for_bit(self, seed):
        X, y = _blobs(seed)
        serial = LinearSVM(seed=seed, n_jobs=1).fit(X, y)
        parallel = LinearSVM(seed=seed, n_jobs=4).fit(X, y)
        assert np.array_equal(serial.weights_, parallel.weights_)
        assert np.array_equal(serial.bias_, parallel.bias_)
        assert serial.predict(X) == parallel.predict(X)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_cache_warm_matches_serial(self, seed, tmp_path):
        X, y = _blobs(seed)
        cache = ArtifactCache(tmp_path)
        params = {"seed": seed, "epochs": 40, "regularization": 1e-3}

        def _train():
            model = LinearSVM(seed=seed).fit(X, y)
            return model.weights_, model.bias_

        (w_cold, b_cold), hit = cache.get_or_compute("svm", params, _train)
        assert not hit
        (w_warm, b_warm), hit = cache.get_or_compute("svm", params, _train)
        assert hit
        reference = LinearSVM(seed=seed).fit(X, y)
        assert np.array_equal(w_cold, w_warm)
        assert np.array_equal(w_warm, reference.weights_)
        assert np.array_equal(b_warm, reference.bias_)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_cross_val_scores_identical(self, seed):
        X, y = _blobs(seed)
        factory = lambda: LinearSVM(seed=seed, epochs=10)  # noqa: E731
        serial = cross_val_score(factory, X, y, seed=seed)
        parallel = cross_val_score(factory, X, y, seed=seed, pool=WorkPool(4))
        assert serial == parallel


class TestNmfEquivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_restart_fan_out_matches_serial(self, seed):
        rng = np.random.default_rng(seed)
        V = np.abs(rng.normal(size=(40, 12)))
        serial = nmf_multi_restart(V, 4, restarts=4, base_seed=seed, max_iter=60)
        parallel = nmf_multi_restart(
            V, 4, restarts=4, base_seed=seed, max_iter=60, pool=WorkPool(4)
        )
        assert serial.best_seed == parallel.best_seed
        assert serial.errors == parallel.errors
        assert np.array_equal(serial.W, parallel.W)
        assert np.array_equal(serial.model.components_, parallel.model.components_)


class TestTfidfEquivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_sharded_transform_matches_serial(self, seed):
        corpus = CorpusGenerator(seed=seed).generate()
        docs = Tokenizer().tokenize_all(corpus.manual_sample.texts()[:60])
        vectorizer = TfidfVectorizer(min_count=2)
        serial = vectorizer.fit_transform(docs)
        sharded = vectorizer.transform(docs, pool=WorkPool(4))
        assert np.array_equal(serial, sharded)


class TestCorpusEquivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_shard_count_is_invisible(self, seed):
        generator = CorpusGenerator(seed=seed)
        one = generator.generate_extended_parallel(scale=0.5, n_shards=1)
        four = generator.generate_extended_parallel(
            scale=0.5, n_shards=4, pool=WorkPool(4)
        )
        assert [b.report.bug_id for b in one] == [b.report.bug_id for b in four]
        assert [b.report.text for b in one] == [b.report.text for b in four]


def _ledger_rows(ledger):
    return [record.to_dict() for record in ledger.records]


def _canonical_ledger_rows(ledger):
    return sorted(
        _ledger_rows(ledger), key=lambda row: sorted((k, repr(v)) for k, v in row.items())
    )


class TestCampaignEquivalence:
    """Satellite: A/B campaigns must be jobs-invariant, ledgers included."""

    CATALOG = default_catalog()[:4]

    @pytest.mark.parametrize("seed", SEEDS)
    def test_run_matches_serial(self, seed):
        serial = FaultCampaign(
            self.CATALOG, seeds_per_fault=2, base_seed=seed, jobs=1
        ).run()
        parallel = FaultCampaign(
            self.CATALOG, seeds_per_fault=2, base_seed=seed, jobs=4
        ).run()
        for a, b in zip(serial.results, parallel.results):
            assert a.spec.fault_id == b.spec.fault_id
            assert a.outcomes == b.outcomes

    @pytest.mark.parametrize("seed", SEEDS)
    def test_run_ab_reports_and_ledgers_identical(self, seed):
        serial = FaultCampaign(
            self.CATALOG, seeds_per_fault=2, base_seed=seed, jobs=1
        ).run_ab()
        parallel = FaultCampaign(
            self.CATALOG, seeds_per_fault=2, base_seed=seed, jobs=4
        ).run_ab()
        assert serial.baseline_symptom_rate == parallel.baseline_symptom_rate
        assert serial.hardened_symptom_rate == parallel.hardened_symptom_rate
        assert serial.mean_recovery_latency == parallel.mean_recovery_latency
        for a, b in zip(serial.results, parallel.results):
            assert a.spec.fault_id == b.spec.fault_id
            assert a.baseline == b.baseline
            assert [run.outcome for run in a.hardened] == [
                run.outcome for run in b.hardened
            ]
        # The merged ledger reproduces the serial record sequence exactly…
        assert _ledger_rows(serial.ledger) == _ledger_rows(parallel.ledger)
        # …so the order-insensitive comparison is implied, but assert it
        # anyway: it is the contract a future out-of-order merge must keep.
        assert _canonical_ledger_rows(serial.ledger) == _canonical_ledger_rows(
            parallel.ledger
        )

    @pytest.mark.parametrize("seed", SEEDS)
    def test_run_adversarial_ab_identical(self, seed):
        kwargs = dict(events=10, horizon=30.0)
        serial = FaultCampaign(
            seeds_per_fault=2, base_seed=seed, jobs=1
        ).run_adversarial_ab(**kwargs)
        parallel = FaultCampaign(
            seeds_per_fault=2, base_seed=seed, jobs=4
        ).run_adversarial_ab(**kwargs)
        assert serial.per_invariant() == parallel.per_invariant()
        assert serial.bare_violation_count == parallel.bare_violation_count
        assert serial.hardened_violation_count == parallel.hardened_violation_count
        assert _ledger_rows(serial.bare_ledger) == _ledger_rows(parallel.bare_ledger)
        assert _canonical_ledger_rows(serial.hardened_ledger) == _canonical_ledger_rows(
            parallel.hardened_ledger
        )


class TestPipelineEquivalence:
    """End-to-end: the full pipeline across jobs=1 / jobs=4 / cache-warm."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_three_way_equivalence(self, seed, tmp_path):
        common = dict(
            seed=seed, dimensions=("bug_type",), n_topics=4, nmf_restarts=2
        )
        serial = run_pipeline(jobs=1, **common)
        parallel = run_pipeline(jobs=4, **common)

        cache = ArtifactCache(tmp_path)
        cold = run_pipeline(jobs=4, cache=cache, **common)
        warm = run_pipeline(jobs=4, cache=cache, **common)

        runs = [parallel, cold, warm]
        for run in runs:
            assert run.accuracies() == serial.accuracies()
            assert run.topics == serial.topics
            assert run.topic_errors == serial.topic_errors
            assert (run.n_documents, run.n_features) == (
                serial.n_documents,
                serial.n_features,
            )
        for dim, report in serial.reports.items():
            for run in runs:
                other = run.reports[dim]
                assert other.accuracy == report.accuracy
                assert other.confusion == report.confusion

        assert not any(stage.cache_hit for stage in cold.stages)
        assert all(stage.cache_hit for stage in warm.stages)
