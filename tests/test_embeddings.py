"""Word2Vec skip-gram training and document vectors."""

from __future__ import annotations

import numpy as np
import pytest

from repro.embeddings import DocumentVectorizer, Word2Vec
from repro.errors import NotFittedError

#: A tiny corpus with two clearly separated topics: animals vs networking.
CORPUS = [
    ["cat", "dog", "pet", "fur"],
    ["dog", "cat", "pet", "paw"],
    ["pet", "cat", "fur", "paw"],
    ["dog", "pet", "paw", "fur"],
    ["switch", "flow", "packet", "port"],
    ["flow", "switch", "port", "packet"],
    ["packet", "port", "switch", "flow"],
    ["port", "flow", "packet", "switch"],
] * 12


@pytest.fixture(scope="module")
def model() -> Word2Vec:
    return Word2Vec(vector_size=24, window=3, epochs=4, min_count=1, seed=0).fit(
        CORPUS
    )


class TestWord2Vec:
    def test_vector_shape(self, model):
        assert model.vector("cat").shape == (24,)

    def test_topic_words_cluster(self, model):
        """Intra-topic similarity must exceed cross-topic similarity."""
        intra = model.similarity("cat", "dog")
        cross = model.similarity("cat", "switch")
        assert intra > cross

    def test_most_similar_prefers_same_topic(self, model):
        neighbours = [w for w, _ in model.most_similar("flow", topn=3)]
        assert set(neighbours) <= {"switch", "packet", "port"}

    def test_most_similar_excludes_query(self, model):
        assert "flow" not in [w for w, _ in model.most_similar("flow")]

    def test_contains(self, model):
        assert "cat" in model
        assert "unseen" not in model

    def test_oov_vector_raises(self, model):
        with pytest.raises(KeyError):
            model.vector("unseen")

    def test_deterministic_for_seed(self):
        a = Word2Vec(vector_size=8, epochs=1, min_count=1, seed=5).fit(CORPUS)
        b = Word2Vec(vector_size=8, epochs=1, min_count=1, seed=5).fit(CORPUS)
        assert np.allclose(a.vectors_, b.vectors_)

    def test_min_count_prunes(self):
        docs = CORPUS + [["rareword"]]
        model = Word2Vec(vector_size=8, epochs=1, min_count=2, seed=0).fit(docs)
        assert "rareword" not in model

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            Word2Vec().vector("cat")

    def test_empty_corpus_rejected(self):
        with pytest.raises(ValueError):
            Word2Vec(min_count=1).fit([[]])


class TestDocumentVectorizer:
    def test_requires_fitted_model(self):
        with pytest.raises(NotFittedError):
            DocumentVectorizer(Word2Vec())

    def test_doc_vector_shape(self, model):
        docvec = DocumentVectorizer(model)
        matrix = docvec.transform([["cat", "dog"], ["switch"]])
        assert matrix.shape == (2, 24)

    def test_oov_only_doc_is_zero(self, model):
        docvec = DocumentVectorizer(model)
        assert np.allclose(docvec.transform_one(["nothing", "known"]), 0.0)

    def test_topic_docs_separate(self, model):
        docvec = DocumentVectorizer(model)
        animal = docvec.transform_one(["cat", "dog", "pet"])
        network = docvec.transform_one(["switch", "flow", "port"])
        animal2 = docvec.transform_one(["fur", "paw", "pet"])

        def cosine(u, v):
            return u @ v / (np.linalg.norm(u) * np.linalg.norm(v))

        assert cosine(animal, animal2) > cosine(animal, network)

    def test_unweighted_average_is_mean(self, model):
        docvec = DocumentVectorizer(model, idf_weighting=False)
        vec = docvec.transform_one(["cat", "dog"])
        expected = (model.vector("cat") + model.vector("dog")) / 2
        assert np.allclose(vec, expected)
