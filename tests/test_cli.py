"""The ``python -m repro`` command-line interface."""

from __future__ import annotations

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_defaults(self):
        args = build_parser().parse_args(["generate"])
        assert args.seed == 2020 and args.output == "corpus.jsonl"

    def test_validate_rejects_unknown_dimension(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["validate", "--dimensions", "vibes"])


class TestCommands:
    def test_experiments_lists_registry(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        assert "bench_determinism.py" in out
        assert "SS II-C2" in out

    def test_generate_and_analyze_roundtrip(self, tmp_path, capsys):
        path = tmp_path / "corpus.jsonl"
        assert main(["generate", "--seed", "7", "--output", str(path)]) == 0
        assert path.exists()
        capsys.readouterr()
        assert main(["analyze", "--input", str(path)]) == 0
        out = capsys.readouterr().out
        assert "RQ1: determinism" in out
        assert "RQ3: triggers" in out

    def test_inject_smoke(self, capsys):
        assert main(["inject", "--seeds", "1"]) == 0
        out = capsys.readouterr().out
        assert "Fault campaign" in out
        assert "CORD-2470" in out
        assert "FIX FAILED" not in out

    def test_chaos_smoke(self, capsys):
        assert main(["chaos", "--build", "buggy", "--runs", "3", "--show", "1"]) == 0
        out = capsys.readouterr().out
        assert "build=buggy" in out

    def test_adversary_smoke(self, tmp_path, capsys):
        from repro.adversary import FaultSchedule

        trace = tmp_path / "minimized.json"
        assert main(["adversary", "--seed", "0", "--trace-out", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "first violation" in out
        assert "replay of minimized trace violates: True" in out
        assert len(FaultSchedule.from_json(trace.read_text())) <= 5

    def test_adversary_ab_smoke(self, capsys):
        assert main(["adversary", "--ab", "--schedules", "2",
                     "--events", "14"]) == 0
        out = capsys.readouterr().out
        assert "Adversarial A/B" in out
        assert "violating subjects" in out
