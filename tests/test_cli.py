"""The ``python -m repro`` command-line interface."""

from __future__ import annotations

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_defaults(self):
        args = build_parser().parse_args(["generate"])
        assert args.seed == 2020 and args.output == "corpus.jsonl"

    def test_validate_rejects_unknown_dimension(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["validate", "--dimensions", "vibes"])


class TestCommands:
    def test_experiments_lists_registry(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        assert "bench_determinism.py" in out
        assert "SS II-C2" in out

    def test_generate_and_analyze_roundtrip(self, tmp_path, capsys):
        path = tmp_path / "corpus.jsonl"
        assert main(["generate", "--seed", "7", "--output", str(path)]) == 0
        assert path.exists()
        capsys.readouterr()
        assert main(["analyze", "--input", str(path)]) == 0
        out = capsys.readouterr().out
        assert "RQ1: determinism" in out
        assert "RQ3: triggers" in out

    def test_inject_smoke(self, capsys):
        assert main(["inject", "--seeds", "1"]) == 0
        out = capsys.readouterr().out
        assert "Fault campaign" in out
        assert "CORD-2470" in out
        assert "FIX FAILED" not in out

    def test_chaos_smoke(self, capsys):
        assert main(["chaos", "--build", "buggy", "--runs", "3", "--show", "1"]) == 0
        out = capsys.readouterr().out
        assert "build=buggy" in out

    def test_adversary_smoke(self, tmp_path, capsys):
        from repro.adversary import FaultSchedule

        trace = tmp_path / "minimized.json"
        assert main(["adversary", "--seed", "0", "--trace-out", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "first violation" in out
        assert "replay of minimized trace violates: True" in out
        assert len(FaultSchedule.from_json(trace.read_text())) <= 5

    def test_adversary_ab_smoke(self, capsys):
        assert main(["adversary", "--ab", "--schedules", "2",
                     "--events", "14"]) == 0
        out = capsys.readouterr().out
        assert "Adversarial A/B" in out
        assert "violating subjects" in out

    def test_lint_clean_fixture_exits_zero(self, tmp_path, capsys):
        src = tmp_path / "clean.py"
        src.write_text("import random\n\nrng = random.Random(7)\n")
        report_path = tmp_path / "report.json"
        assert main(["lint", str(src), "--baseline", "none",
                     "--output", str(report_path)]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out
        assert report_path.exists()

    def test_lint_fails_on_errors(self, tmp_path, capsys):
        src = tmp_path / "dirty.py"
        src.write_text("import random\n\nvalue = random.random()\n")
        assert main(["lint", str(src), "--baseline", "none"]) == 1
        out = capsys.readouterr().out
        assert "unseeded-random" in out
        assert main(["lint", str(src), "--baseline", "none",
                     "--fail-on", "never"]) == 0

    def test_lint_json_format(self, tmp_path, capsys):
        import json

        src = tmp_path / "dirty.py"
        src.write_text("import time\n\nstamp = time.time()\n")
        assert main(["lint", str(src), "--baseline", "none",
                     "--format", "json", "--fail-on", "never"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"][0]["detector"] == "wall-clock"

    def test_lint_write_then_apply_baseline(self, tmp_path, capsys):
        src = tmp_path / "dirty.py"
        src.write_text("import random\n\nvalue = random.random()\n")
        baseline = tmp_path / "baseline.json"
        assert main(["lint", str(src), "--baseline", str(baseline),
                     "--write-baseline"]) == 0
        capsys.readouterr()
        assert main(["lint", str(src), "--baseline", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "1 baselined" in out

    def test_lint_smell_kinds(self, capsys):
        import pathlib

        import repro

        target = pathlib.Path(repro.__file__).parent / "sdnsim"
        assert main(["lint", str(target), "--baseline", "none",
                     "--fail-on", "never",
                     "--smell-kinds", "god_component"]) == 0
        out = capsys.readouterr().out
        assert "Fig-8 smells over extracted model" in out
        assert "god_component" in out

    def test_serve_smoke(self, tmp_path, capsys):
        assert main(["serve", "--duration", "5", "--base-rate", "2",
                     "--bursts", "0", "--seed", "3",
                     "--workdir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "hardened daemon" in out
        assert "goodput" in out
        assert (tmp_path / "requests.journal").exists()

    def test_ingest_smoke(self, tmp_path, capsys):
        assert main(["ingest", "--events", "300", "--batch", "100",
                     "--block", "25", "--pool", "60", "--seed", "3",
                     "--corrupt-rate", "0.05", "--duplicate-rate", "0.1",
                     "--run-dir", str(tmp_path / "run")]) == 0
        out = capsys.readouterr().out
        assert "records consumed" in out
        assert "fingerprint" in out
        assert (tmp_path / "run" / "journal.jsonl").exists()
        assert (tmp_path / "run" / "metrics.jsonl").exists()

    def test_serve_bare_smoke(self, tmp_path, capsys):
        assert main(["serve", "--duration", "5", "--base-rate", "2",
                     "--bursts", "0", "--seed", "3", "--bare",
                     "--workdir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "bare daemon" in out


class TestErrorHandling:
    """Bad input must exit non-zero with a one-line diagnostic, not a
    traceback — the CLI hardening satellite of the serving PR."""

    def test_unknown_command_exits_2_with_hint(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["servee"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "did you mean 'serve'?" in err
        assert "Traceback" not in err

    def test_misspelled_ingest_exits_2_with_hint(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["ingst"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "did you mean 'ingest'?" in err
        assert "Traceback" not in err

    def test_ingest_replay_without_journal_is_one_line_error(
            self, tmp_path, capsys):
        code = main(["ingest", "--replay-dlq",
                     "--run-dir", str(tmp_path / "no-such-run")])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("repro ingest: error:")
        assert "no ingest journal" in err
        assert "Traceback" not in err

    def test_unknown_flag_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["serve", "--frobnicate"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "unrecognized arguments" in err

    def test_serve_bad_flag_value_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["serve", "--duration", "soon"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "invalid float value" in err

    def test_serve_invalid_traffic_is_one_line_error(self, tmp_path, capsys):
        code = main(["serve", "--duration", "-1",
                     "--workdir", str(tmp_path)])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("repro serve: error:")
        assert "Traceback" not in err

    def test_fuzz_resume_missing_journal_is_one_line_error(
            self, tmp_path, capsys):
        code = main(["fuzz", "--resume",
                     "--run-dir", str(tmp_path / "no-such-run")])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("repro fuzz: error:")
        assert "journal does not exist" in err
        assert "Traceback" not in err

    def test_fuzz_bad_topology_exits_2_with_choices(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["fuzz", "--topology", "torus"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "invalid choice: 'torus'" in err

    def test_pipeline_bad_jobs_value_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["pipeline", "--jobs", "many"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "invalid int value" in err

    def test_pipeline_unknown_flag_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["pipeline", "--parallelism", "4"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "unrecognized arguments" in err
