"""Corpus profiles, generator calibration, dataset container, JSONL I/O."""

from __future__ import annotations

import pytest

from repro import paperdata
from repro.corpus import (
    BugDataset,
    CorpusGenerator,
    ResolutionTimeModel,
    default_profiles,
    load_dataset_jsonl,
    load_dataset_shards,
    save_dataset_jsonl,
    save_dataset_shards,
)
from repro.corpus.generator import STUDY_END, STUDY_START
from repro.errors import CorpusError
from repro.parallel import WorkPool
from repro.taxonomy import (
    RootCause,
    Symptom,
    Trigger,
)


class TestProfilesCalibration:
    """Analytic calibration checks — no sampling noise involved."""

    def test_three_controllers(self):
        assert set(default_profiles()) == {"FAUCET", "ONOS", "CORD"}

    def test_critical_counts_match_paper(self):
        for name, profile in default_profiles().items():
            assert profile.critical_bug_count == paperdata.CRITICAL_BUG_COUNTS[name]

    def test_determinism_targets_match_paper(self):
        for name, profile in default_profiles().items():
            assert profile.expected_determinism() == pytest.approx(
                paperdata.DETERMINISM_RATE[name], abs=0.005
            )

    def test_memory_bugs_pinned_highly_deterministic(self):
        for profile in default_profiles().values():
            assert profile.determinism_rate(RootCause.MEMORY) > 0.99
            assert profile.determinism_rate(RootCause.CONCURRENCY) < 0.7

    def test_faucet_missing_logic_share(self):
        profile = default_profiles()["FAUCET"]
        marginal = profile.expected_root_cause_marginal()
        assert marginal[RootCause.MISSING_LOGIC] == pytest.approx(
            paperdata.FAUCET_MISSING_LOGIC_SHARE, abs=0.02
        )

    def test_load_bug_split_cord_vs_onos(self):
        profiles = default_profiles()
        cord = profiles["CORD"].expected_root_cause_marginal()[RootCause.LOAD]
        onos = profiles["ONOS"].expected_root_cause_marginal()[RootCause.LOAD]
        assert cord == pytest.approx(paperdata.LOAD_BUG_SHARE["CORD"], abs=0.02)
        assert onos == pytest.approx(paperdata.LOAD_BUG_SHARE["ONOS"], abs=0.02)

    def test_aggregate_symptom_marginals(self):
        profiles = default_profiles()
        total = sum(p.critical_bug_count for p in profiles.values())
        aggregate = {s: 0.0 for s in Symptom}
        for profile in profiles.values():
            weight = profile.critical_bug_count / total
            for symptom, share in profile.expected_symptom_marginal().items():
                aggregate[symptom] += weight * share
        assert aggregate[Symptom.BYZANTINE] == pytest.approx(
            paperdata.SYMPTOM_SHARE["byzantine"], abs=0.03
        )
        assert aggregate[Symptom.FAIL_STOP] == pytest.approx(
            paperdata.SYMPTOM_SHARE["fail_stop"], abs=0.03
        )
        assert aggregate[Symptom.ERROR_MESSAGE] == pytest.approx(
            paperdata.SYMPTOM_SHARE["error_message"], abs=0.03
        )
        assert aggregate[Symptom.PERFORMANCE] == pytest.approx(
            paperdata.SYMPTOM_SHARE["performance"], abs=0.02
        )

    def test_aggregate_trigger_marginals(self):
        profiles = default_profiles()
        total = sum(p.critical_bug_count for p in profiles.values())
        aggregate = {t: 0.0 for t in Trigger}
        for profile in profiles.values():
            weight = profile.critical_bug_count / total
            for trigger, share in profile.trigger_dist.items():
                aggregate[trigger] += weight * share
        for trigger, target in (
            (Trigger.CONFIGURATION, 0.388),
            (Trigger.EXTERNAL_CALLS, 0.33),
            (Trigger.NETWORK_EVENTS, 0.198),
            (Trigger.HARDWARE_REBOOTS, 0.084),
        ):
            assert aggregate[trigger] == pytest.approx(target, abs=0.02)

    def test_config_subcategories_match_table_three(self):
        for name, profile in default_profiles().items():
            for sub, share in profile.config_subcategory_dist.items():
                expected = paperdata.CONFIG_SUBCATEGORY_SHARE[name][sub.value]
                assert share == pytest.approx(expected, abs=1e-9)

    def test_concurrency_fix_override(self):
        profile = default_profiles()["ONOS"]
        dist = profile.fix_distribution(Trigger.NETWORK_EVENTS, RootCause.CONCURRENCY)
        from repro.taxonomy import FixStrategy

        assert dist[FixStrategy.ADD_SYNCHRONIZATION] > 0.7
        assert sum(dist.values()) == pytest.approx(1.0)


class TestGenerator:
    def test_dataset_counts(self, corpus):
        assert corpus.dataset.split_counts() == dict(paperdata.CRITICAL_BUG_COUNTS)

    def test_trackers_populated(self, corpus):
        assert len(corpus.github) == paperdata.CRITICAL_BUG_COUNTS["FAUCET"]
        assert len(corpus.jira) == (
            paperdata.CRITICAL_BUG_COUNTS["ONOS"] + paperdata.CRITICAL_BUG_COUNTS["CORD"]
        )

    def test_manual_sample_is_fifty_closed_per_controller(self, corpus):
        counts = corpus.manual_sample.split_counts()
        assert counts == {"CORD": 50, "FAUCET": 50, "ONOS": 50}
        assert all(b.report.status.is_closed for b in corpus.manual_sample)

    def test_faucet_reports_have_no_severity_or_resolution(self, corpus):
        for bug in corpus.dataset.by_controller("FAUCET"):
            assert bug.report.severity is None
            assert bug.report.resolved_at is None

    def test_jira_reports_have_severity(self, corpus):
        for bug in corpus.dataset.by_controller("ONOS"):
            assert bug.report.severity is not None

    def test_closed_jira_bugs_have_gerrit_links(self, corpus):
        closed = [
            b
            for b in corpus.dataset.by_controller("CORD")
            if b.report.status.is_closed
        ]
        assert closed
        assert all(b.report.gerrit_changes for b in closed)

    def test_timestamps_inside_study_window(self, corpus):
        for bug in corpus.dataset:
            assert STUDY_START <= bug.report.created_at < STUDY_END

    def test_generation_is_deterministic(self):
        a = CorpusGenerator(seed=77).generate()
        b = CorpusGenerator(seed=77).generate()
        assert [x.report.description for x in a.dataset] == [
            x.report.description for x in b.dataset
        ]

    def test_different_seeds_differ(self):
        a = CorpusGenerator(seed=1).generate()
        b = CorpusGenerator(seed=2).generate()
        assert [x.report.description for x in a.dataset] != [
            x.report.description for x in b.dataset
        ]

    def test_sampled_determinism_close_to_target(self, dataset):
        from repro.analysis import determinism_rates

        rates = determinism_rates(dataset)
        for name, rate in rates.items():
            assert rate == pytest.approx(paperdata.DETERMINISM_RATE[name], abs=0.04)

    def test_release_bursts_visible(self, corpus):
        """Quarters containing a release date should be busier on average."""
        histogram = corpus.jira.quarterly_histogram(project="CORD")
        profile = corpus.profiles["CORD"]
        release_quarters = {
            f"{d.year}-Q{(d.month - 1) // 3 + 1}" for d in profile.release_dates
        }
        burst = [v for q, v in histogram.items() if q in release_quarters]
        quiet = [v for q, v in histogram.items() if q not in release_quarters]
        assert sum(burst) / len(burst) > sum(quiet) / len(quiet)

    def test_extended_dataset_scale(self):
        generator = CorpusGenerator(seed=5)
        extended = generator.generate_extended(scale=2.0)
        assert extended.split_counts() == {"CORD": 100, "FAUCET": 100, "ONOS": 100}


class TestBugDataset:
    def test_duplicate_ids_rejected(self, dataset):
        first = dataset[0]
        with pytest.raises(CorpusError, match="duplicate"):
            BugDataset([first, first])

    def test_filter_and_by_controller_compose(self, dataset):
        onos_failstop = dataset.by_controller("ONOS").filter(
            lambda b: b.label.symptom is Symptom.FAIL_STOP
        )
        assert all(
            b.controller == "ONOS" and b.label.symptom is Symptom.FAIL_STOP
            for b in onos_failstop
        )

    def test_labels_dimension_extraction(self, manual_sample):
        values = manual_sample.labels("trigger")
        assert len(values) == len(manual_sample)
        assert set(values) <= {t.value for t in Trigger}

    def test_labels_refinement_requires_filtering(self, dataset):
        with pytest.raises(CorpusError, match="filter"):
            dataset.labels("config_subcategory")

    def test_sample_without_replacement(self, dataset):
        sample = dataset.sample(10, seed=1)
        assert len(sample) == 10
        assert len({b.bug_id for b in sample}) == 10

    def test_sample_too_large(self):
        with pytest.raises(CorpusError):
            BugDataset([]).sample(1)

    def test_merged_with(self, dataset):
        a = dataset.sample(5, seed=1)
        ids_a = {b.bug_id for b in a}
        b = dataset.filter(lambda x: x.bug_id not in ids_a).sample(5, seed=2)
        merged = a.merged_with(b)
        assert len(merged) == 10


class TestResolutionModel:
    def test_config_has_longest_median(self):
        model = ResolutionTimeModel()
        medians = {
            t: model.median_days("ONOS", t) for t in Trigger
        }
        assert medians[Trigger.CONFIGURATION] == max(medians.values())

    def test_onos_tail_longer_except_reboots(self):
        model = ResolutionTimeModel()
        for trigger in Trigger:
            onos = model.quantile_days("ONOS", trigger, 0.95)
            cord = model.quantile_days("CORD", trigger, 0.95)
            if trigger is Trigger.HARDWARE_REBOOTS:
                assert cord > onos
            else:
                assert onos > cord

    def test_samples_positive(self):
        import random

        model = ResolutionTimeModel()
        rng = random.Random(0)
        for _ in range(100):
            assert model.sample_days("CORD", Trigger.NETWORK_EVENTS, rng) > 0

    def test_quantile_bounds(self):
        model = ResolutionTimeModel()
        with pytest.raises(CorpusError):
            model.quantile_days("ONOS", Trigger.CONFIGURATION, 1.5)


class TestJsonlIO:
    def test_roundtrip(self, dataset, tmp_path):
        subset = dataset.sample(20, seed=3)
        path = tmp_path / "bugs.jsonl"
        save_dataset_jsonl(subset, path)
        loaded = load_dataset_jsonl(path)
        assert len(loaded) == 20
        assert [b.bug_id for b in loaded] == [b.bug_id for b in subset]
        assert [b.label for b in loaded] == [b.label for b in subset]

    def test_malformed_line_reports_position(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"report": {}}\n')
        with pytest.raises(CorpusError, match="bad.jsonl:1"):
            load_dataset_jsonl(path)

    def test_null_fields_report_position(self, tmp_path):
        # A structurally wrong record (null where an object is expected)
        # must surface as a CorpusError with the line number, not a bare
        # TypeError from deep inside from_dict.
        path = tmp_path / "bad.jsonl"
        path.write_text('{"report": null, "label": null}\n')
        with pytest.raises(CorpusError, match="bad.jsonl:1"):
            load_dataset_jsonl(path)

    def test_blank_lines_skipped(self, dataset, tmp_path):
        subset = dataset.sample(3, seed=4)
        path = tmp_path / "bugs.jsonl"
        save_dataset_jsonl(subset, path)
        path.write_text(path.read_text() + "\n\n")
        assert len(load_dataset_jsonl(path)) == 3

    def test_truncated_final_line_reports_position(self, dataset, tmp_path):
        # An interrupted writer leaves a half-serialized last record; that
        # must surface as a CorpusError naming the line, not a JSONDecodeError.
        subset = dataset.sample(3, seed=5)
        path = tmp_path / "bugs.jsonl"
        save_dataset_jsonl(subset, path)
        text = path.read_text()
        path.write_text(text[: len(text) - len(text.splitlines()[-1]) // 2 - 1])
        with pytest.raises(CorpusError, match="bugs.jsonl:3"):
            load_dataset_jsonl(path)

    def test_bom_prefixed_file_loads(self, dataset, tmp_path):
        subset = dataset.sample(4, seed=6)
        path = tmp_path / "bugs.jsonl"
        save_dataset_jsonl(subset, path)
        path.write_bytes(b"\xef\xbb\xbf" + path.read_bytes())
        loaded = load_dataset_jsonl(path)
        assert [b.bug_id for b in loaded] == [b.bug_id for b in subset]

    def test_bom_plus_malformed_line_still_reports_position(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_bytes(b"\xef\xbb\xbf" + b'{"report": {}}\n')
        with pytest.raises(CorpusError, match="bad.jsonl:1"):
            load_dataset_jsonl(path)


class _InterruptedIteration:
    """A dataset stand-in whose iteration dies mid-write (disk full, kill)."""

    def __init__(self, bugs, explode_after):
        self._bugs = list(bugs)
        self._explode_after = explode_after

    def __iter__(self):
        for index, bug in enumerate(self._bugs):
            if index >= self._explode_after:
                raise RuntimeError("interrupted mid-write")
            yield bug


class TestAtomicWrites:
    """Interrupted saves must leave the previous file intact, never a prefix."""

    def test_interrupted_save_preserves_previous_dataset(self, dataset, tmp_path):
        subset = dataset.sample(5, seed=7)
        path = tmp_path / "bugs.jsonl"
        save_dataset_jsonl(subset, path)
        before = path.read_bytes()

        bigger = dataset.sample(10, seed=8)
        with pytest.raises(RuntimeError, match="interrupted"):
            save_dataset_jsonl(_InterruptedIteration(bigger, 3), path)

        assert path.read_bytes() == before
        loaded = load_dataset_jsonl(path)
        assert [b.bug_id for b in loaded] == [b.bug_id for b in subset]

    def test_interrupted_save_leaves_no_tmp_litter(self, dataset, tmp_path):
        path = tmp_path / "bugs.jsonl"
        with pytest.raises(RuntimeError):
            save_dataset_jsonl(
                _InterruptedIteration(dataset.sample(4, seed=9), 1), path
            )
        assert not path.exists()
        assert list(tmp_path.iterdir()) == []

    def test_successful_save_leaves_no_tmp_sibling(self, dataset, tmp_path):
        path = tmp_path / "bugs.jsonl"
        save_dataset_jsonl(dataset.sample(3, seed=10), path)
        assert sorted(p.name for p in tmp_path.iterdir()) == ["bugs.jsonl"]

    def test_shard_manifest_written_atomically(self, dataset, tmp_path):
        subset = dataset.sample(9, seed=11)
        save_dataset_shards(subset, tmp_path, n_shards=3)
        assert not (tmp_path / "manifest.json.tmp").exists()
        reloaded = load_dataset_shards(tmp_path)
        assert [b.bug_id for b in reloaded] == [b.bug_id for b in subset]


class TestShardedIO:
    """Sharded round-trips: boundaries, empty shards, manifest validation."""

    @pytest.mark.parametrize("n_shards", [1, 2, 3, 7])
    def test_roundtrip_preserves_order(self, dataset, tmp_path, n_shards):
        subset = dataset.sample(21, seed=7)
        paths = save_dataset_shards(subset, tmp_path, n_shards=n_shards)
        assert len(paths) == n_shards
        loaded = load_dataset_shards(tmp_path)
        assert [b.bug_id for b in loaded] == [b.bug_id for b in subset]

    def test_shard_boundaries_are_contiguous(self, dataset, tmp_path):
        # 10 records over 3 shards -> sizes 4, 3, 3; concatenation must
        # reproduce the original order with no straddled records.
        subset = dataset.sample(10, seed=8)
        paths = save_dataset_shards(subset, tmp_path, n_shards=3)
        sizes = [len(load_dataset_jsonl(p)) for p in paths]
        assert sizes == [4, 3, 3]
        ids = [b.bug_id for p in paths for b in load_dataset_jsonl(p)]
        assert ids == [b.bug_id for b in subset]

    def test_empty_shards_when_more_shards_than_records(self, dataset, tmp_path):
        subset = dataset.sample(2, seed=9)
        paths = save_dataset_shards(subset, tmp_path, n_shards=5)
        assert [len(load_dataset_jsonl(p)) for p in paths] == [1, 1, 0, 0, 0]
        assert len(load_dataset_shards(tmp_path)) == 2

    def test_single_record_single_shard(self, dataset, tmp_path):
        subset = dataset.sample(1, seed=10)
        save_dataset_shards(subset, tmp_path, n_shards=1)
        loaded = load_dataset_shards(tmp_path)
        assert [b.bug_id for b in loaded] == [b.bug_id for b in subset]

    def test_empty_dataset_roundtrip(self, tmp_path):
        save_dataset_shards(BugDataset([]), tmp_path, n_shards=2)
        assert len(load_dataset_shards(tmp_path)) == 0

    def test_parallel_load_matches_serial(self, dataset, tmp_path):
        subset = dataset.sample(12, seed=11)
        save_dataset_shards(subset, tmp_path, n_shards=4)
        serial = load_dataset_shards(tmp_path)
        parallel = load_dataset_shards(tmp_path, pool=WorkPool(4))
        assert [b.bug_id for b in serial] == [b.bug_id for b in parallel]

    def test_zero_shards_rejected(self, dataset, tmp_path):
        with pytest.raises(CorpusError, match="n_shards"):
            save_dataset_shards(dataset, tmp_path, n_shards=0)

    def test_missing_manifest(self, tmp_path):
        with pytest.raises(CorpusError, match="missing shard manifest"):
            load_dataset_shards(tmp_path)

    def test_missing_shard_file_names_file_and_manifest_entry(
            self, dataset, tmp_path):
        subset = dataset.sample(6, seed=12)
        paths = save_dataset_shards(subset, tmp_path, n_shards=3)
        paths[1].unlink()
        with pytest.raises(CorpusError) as excinfo:
            load_dataset_shards(tmp_path)
        message = str(excinfo.value)
        assert "shard-0001.jsonl" in message
        assert "manifest.json entry shards[1]" in message

    def test_tampered_shard_refused_by_digest(self, dataset, tmp_path):
        subset = dataset.sample(6, seed=13)
        paths = save_dataset_shards(subset, tmp_path, n_shards=2)
        lines = paths[0].read_text().splitlines()
        paths[0].write_text("\n".join(lines[:-1]) + "\n")
        with pytest.raises(CorpusError) as excinfo:
            load_dataset_shards(tmp_path)
        message = str(excinfo.value)
        assert "shard digest mismatch" in message
        assert "digests[0]" in message

    def test_manifest_digests_cover_every_shard(self, dataset, tmp_path):
        import hashlib
        import json

        subset = dataset.sample(6, seed=13)
        paths = save_dataset_shards(subset, tmp_path, n_shards=3)
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        assert manifest["digests"] == [
            hashlib.sha256(path.read_bytes()).hexdigest() for path in paths
        ]

    def test_old_manifest_without_digests_still_loads(self, dataset, tmp_path):
        import json

        subset = dataset.sample(6, seed=13)
        paths = save_dataset_shards(subset, tmp_path, n_shards=2)
        manifest_path = tmp_path / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        del manifest["digests"]
        manifest_path.write_text(json.dumps(manifest))
        loaded = load_dataset_shards(tmp_path)
        assert [b.bug_id for b in loaded] == [b.bug_id for b in subset]
        # ...and the count check still guards it against truncation.
        lines = paths[0].read_text().splitlines()
        paths[0].write_text("\n".join(lines[:-1]) + "\n")
        with pytest.raises(CorpusError, match="manifest says"):
            load_dataset_shards(tmp_path)

    def test_malformed_manifest(self, dataset, tmp_path):
        subset = dataset.sample(3, seed=14)
        save_dataset_shards(subset, tmp_path, n_shards=1)
        (tmp_path / "manifest.json").write_text('{"n_shards": 1}')
        with pytest.raises(CorpusError, match="malformed manifest"):
            load_dataset_shards(tmp_path)
