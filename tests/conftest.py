"""Shared fixtures: expensive artifacts are built once per session."""

from __future__ import annotations

import pytest

from repro.codebase import release_series
from repro.corpus import CorpusGenerator, StudyCorpus
from repro.corpus.dataset import BugDataset


@pytest.fixture(scope="session")
def corpus() -> StudyCorpus:
    """The full seeded study corpus (795 critical bugs, both trackers)."""
    return CorpusGenerator(seed=2020).generate()


@pytest.fixture(scope="session")
def dataset(corpus: StudyCorpus) -> BugDataset:
    return corpus.dataset


@pytest.fixture(scope="session")
def manual_sample(corpus: StudyCorpus) -> BugDataset:
    """The paper's 150-bug manual-analysis sample."""
    return corpus.manual_sample


@pytest.fixture(scope="session")
def onos_models():
    """Synthetic ONOS code models for every release (Fig 8 substrate)."""
    return release_series()
