"""Interprocedural dataflow: summaries, call graph, taint, detectors,
caching, parallel determinism, and the baseline schema migration."""

from __future__ import annotations

import json
import shutil
import textwrap
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StaticAnalysisError
from repro.observability import spans_to_jsonl
from repro.staticanalysis import (
    AnalysisReport,
    Finding,
    Severity,
    load_baseline,
    load_module,
    run_interprocedural,
    to_json,
    write_baseline,
)
from repro.staticanalysis.dataflow import (
    build_call_graph,
    dataflow_detector_ids,
    summarize_source,
)
from repro.taxonomy import BugType, RootCause

FIXTURES = Path(__file__).parent / "fixtures" / "lint" / "dataflow"

_DATAFLOW_IDS = sorted(dataflow_detector_ids())


def _fixture(detector_id: str, kind: str) -> Path:
    stem = detector_id.removeprefix("dataflow.").replace("-", "_")
    path = FIXTURES / f"{stem}_{kind}.py"
    assert path.exists(), f"missing fixture {path}"
    return path


def _run(*paths: Path, root: Path = FIXTURES, jobs: int = 1):
    return run_interprocedural(
        list(paths), root=root, cache_root=None, jobs=jobs
    )


def _summaries_for(root: Path, *names: str):
    return [summarize_source(load_module(root / name)) for name in names]


# -- fixture pairs -------------------------------------------------------------


class TestDataflowFixturePairs:
    @pytest.mark.parametrize("detector_id", _DATAFLOW_IDS)
    def test_positive_fixture_fires(self, detector_id):
        result = _run(_fixture(detector_id, "pos"))
        hits = [
            f for f in result.report.active if f.detector == detector_id
        ]
        assert hits, f"{detector_id} silent on its positive fixture"
        for finding in hits:
            assert finding.line > 0
            assert finding.severity in (Severity.ERROR, Severity.WARNING)

    @pytest.mark.parametrize("detector_id", _DATAFLOW_IDS)
    def test_negative_fixture_silent(self, detector_id):
        result = _run(_fixture(detector_id, "neg"))
        hits = [
            f for f in result.report.active if f.detector == detector_id
        ]
        assert not hits, f"{detector_id} false positive(s): {hits}"

    def test_every_detector_has_both_fixtures(self):
        for detector_id in _DATAFLOW_IDS:
            _fixture(detector_id, "pos")
            _fixture(detector_id, "neg")

    def test_findings_carry_taxonomy_tags(self):
        paths = [_fixture(d, "pos") for d in _DATAFLOW_IDS]
        result = _run(*paths)
        seen = {f.detector for f in result.report.active}
        assert seen == set(_DATAFLOW_IDS)
        for finding in result.report.active:
            assert isinstance(finding.bug_type, BugType)
            assert isinstance(finding.root_cause, RootCause)

    def test_inline_disable_suppresses(self, tmp_path):
        source = _fixture("dataflow.wall-clock-taint", "pos").read_text(
            encoding="utf-8"
        )
        patched = source.replace(
            "return hashlib.sha256(",
            "return hashlib.sha256(  "
            "# sdnlint: disable=dataflow.wall-clock-taint\n        ",
        )
        target = tmp_path / "suppressed.py"
        target.write_text(patched, encoding="utf-8")
        result = _run(target, root=tmp_path)
        assert not [
            f
            for f in result.report.active
            if f.detector == "dataflow.wall-clock-taint"
        ]


# -- call graph / summary units ------------------------------------------------


class TestCallGraph:
    def test_direct_recursion_terminates_and_resolves(self, tmp_path):
        (tmp_path / "rec.py").write_text(textwrap.dedent("""\
            def fact(n):
                if n <= 1:
                    return 1
                return n * fact(n - 1)
            """))
        result = _run(tmp_path / "rec.py", root=tmp_path)
        targets = [
            target
            for _, target in result.graph.callsite_targets("rec.fact")
        ]
        assert "rec.fact" in targets

    def test_mutual_recursion_taint_fixpoint(self, tmp_path):
        (tmp_path / "cyc.py").write_text(textwrap.dedent("""\
            import time


            def ping(depth):
                if depth == 0:
                    return time.time()
                return pong(depth - 1)


            def pong(depth):
                return ping(depth)
            """))
        result = _run(tmp_path / "cyc.py", root=tmp_path)
        # Wall-clock return taint must flow around the ping<->pong cycle.
        assert "wall_clock" in result.taint.ret_taint["cyc.ping"]
        assert "wall_clock" in result.taint.ret_taint["cyc.pong"]

    def test_method_dispatch_via_constructor_tracking(self, tmp_path):
        (tmp_path / "disp.py").write_text(textwrap.dedent("""\
            class Worker:
                def run(self):
                    return self.step()

                def step(self):
                    return 1


            def drive():
                worker = Worker()
                return worker.run()
            """))
        result = _run(tmp_path / "disp.py", root=tmp_path)
        drive_targets = [
            t for _, t in result.graph.callsite_targets("disp.drive")
        ]
        assert "disp.Worker.run" in drive_targets
        run_targets = [
            t
            for _, t in result.graph.callsite_targets("disp.Worker.run")
        ]
        assert "disp.Worker.step" in run_targets

    def test_inherited_method_resolves_through_base(self, tmp_path):
        (tmp_path / "inh.py").write_text(textwrap.dedent("""\
            class Base:
                def step(self):
                    return 1


            class Child(Base):
                def run(self):
                    return self.step()
            """))
        result = _run(tmp_path / "inh.py", root=tmp_path)
        targets = [
            t for _, t in result.graph.callsite_targets("inh.Child.run")
        ]
        assert "inh.Base.step" in targets

    def test_decorated_function_still_summarized(self, tmp_path):
        (tmp_path / "deco.py").write_text(textwrap.dedent("""\
            import functools


            @functools.lru_cache(maxsize=None)
            def helper(x):
                return x + 1


            def drive(x):
                return helper(x)
            """))
        result = _run(tmp_path / "deco.py", root=tmp_path)
        _, helper = result.graph.functions["deco.helper"]
        assert helper.decorators
        targets = [
            t for _, t in result.graph.callsite_targets("deco.drive")
        ]
        assert "deco.helper" in targets

    def test_cross_module_alias_resolution(self, tmp_path):
        (tmp_path / "mod_a.py").write_text(textwrap.dedent("""\
            def helper(x):
                return x + 1
            """))
        (tmp_path / "mod_b.py").write_text(textwrap.dedent("""\
            import mod_a


            def drive(x):
                return mod_a.helper(x)
            """))
        result = _run(
            tmp_path / "mod_a.py", tmp_path / "mod_b.py", root=tmp_path
        )
        targets = [
            t for _, t in result.graph.callsite_targets("mod_b.drive")
        ]
        assert "mod_a.helper" in targets

    def test_receiver_taint_flows_through_method_calls(self, tmp_path):
        (tmp_path / "recv.py").write_text(textwrap.dedent("""\
            import hashlib
            import time


            def fingerprint():
                stamp = str(time.time()).encode("utf-8")
                return hashlib.sha256(stamp).hexdigest()
            """))
        result = _run(tmp_path / "recv.py", root=tmp_path)
        hits = [
            f
            for f in result.report.active
            if f.detector == "dataflow.wall-clock-taint"
        ]
        assert hits, "receiver-carried taint (str(...).encode()) lost"


# -- determinism: order, jobs, spans ------------------------------------------


def _all_fixture_files() -> list[Path]:
    return sorted(FIXTURES.glob("*.py"))


class TestDeterminism:
    def test_jobs_1_vs_4_byte_identical(self):
        one = _run(FIXTURES, jobs=1)
        four = _run(FIXTURES, jobs=4)
        assert to_json(one.report) == to_json(four.report)

    def test_span_tree_deterministic_at_jobs_4(self, tmp_path):
        caches = [tmp_path / "cache-a", tmp_path / "cache-b"]
        trees = []
        for cache_root in caches:
            result = run_interprocedural(
                [FIXTURES], root=FIXTURES, cache_root=cache_root, jobs=4
            )
            trees.append(spans_to_jsonl(result.spans))
        assert trees[0] == trees[1]
        names = [
            json.loads(line)["name"] for line in trees[0].splitlines()
        ]
        assert any(name.startswith("worker-") for name in names)

    @settings(max_examples=10, deadline=None)
    @given(st.permutations(_all_fixture_files()))
    def test_report_is_order_independent(self, shuffled):
        result = run_interprocedural(
            shuffled, root=FIXTURES, cache_root=None, jobs=1
        )
        canonical = _run(*_all_fixture_files())
        assert to_json(result.report) == to_json(canonical.report)

    @settings(max_examples=10, deadline=None)
    @given(st.permutations(_all_fixture_files()))
    def test_call_graph_is_order_independent(self, shuffled):
        summaries = [
            summarize_source(load_module(path)) for path in shuffled
        ]
        graph = build_call_graph(summaries)
        expected = build_call_graph(
            [
                summarize_source(load_module(path))
                for path in _all_fixture_files()
            ]
        )
        assert graph.sorted_functions() == expected.sorted_functions()
        for qualname in expected.sorted_functions():
            assert [
                t for _, t in graph.callsite_targets(qualname)
            ] == [t for _, t in expected.callsite_targets(qualname)]


# -- summary cache -------------------------------------------------------------


class TestSummaryCache:
    def _workspace(self, tmp_path: Path) -> Path:
        work = tmp_path / "work"
        work.mkdir()
        for path in _all_fixture_files():
            shutil.copy(path, work / path.name)
        return work

    def test_warm_run_hits_everything_and_matches_cold(self, tmp_path):
        work = self._workspace(tmp_path)
        cache = tmp_path / "cache"
        cold = run_interprocedural([work], root=work, cache_root=cache)
        warm = run_interprocedural([work], root=work, cache_root=cache)
        assert cold.stats["cache_misses"] == cold.stats["modules"]
        assert warm.stats["cache_hits"] == warm.stats["modules"]
        assert warm.stats["cache_misses"] == 0
        assert to_json(cold.report) == to_json(warm.report)

    def test_single_edit_invalidates_exactly_one_module(self, tmp_path):
        work = self._workspace(tmp_path)
        cache = tmp_path / "cache"
        run_interprocedural([work], root=work, cache_root=cache)
        target = work / "escaping_handle_pos.py"
        target.write_text(
            target.read_text(encoding="utf-8") + "\n# touched\n",
            encoding="utf-8",
        )
        third = run_interprocedural([work], root=work, cache_root=cache)
        assert third.stats["cache_misses"] == 1
        assert third.stats["cache_hits"] == third.stats["modules"] - 1

    def test_moved_checkout_reuses_summaries(self, tmp_path):
        cache = tmp_path / "cache"
        first = self._workspace(tmp_path)
        run_interprocedural([first], root=first, cache_root=cache)
        moved = tmp_path / "moved"
        shutil.move(first, moved)
        warm = run_interprocedural([moved], root=moved, cache_root=cache)
        assert warm.stats["cache_misses"] == 0
        # Findings must point at the new location, not the cached one.
        assert all(
            not f.path.startswith(str(tmp_path / "work"))
            for f in warm.report.findings
        )


# -- baseline schema migration -------------------------------------------------


def _entry(detector: str = "wall-clock", line: int = 3) -> dict:
    return {"detector": detector, "path": "pkg/mod.py", "line": line}


class TestBaselineMigration:
    def test_unversioned_file_still_loads(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"entries": [_entry()]}))
        assert load_baseline(path) == {("wall-clock", "pkg/mod.py", 3)}

    def test_v1_file_still_loads(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 1, "entries": [_entry()]}))
        assert load_baseline(path) == {("wall-clock", "pkg/mod.py", 3)}

    def test_legacy_file_rejects_namespaced_ids(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(
            json.dumps(
                {"version": 1,
                 "entries": [_entry("dataflow.wall-clock-taint")]}
            )
        )
        with pytest.raises(StaticAnalysisError, match="namespaced"):
            load_baseline(path)

    def test_unsupported_version_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "entries": []}))
        with pytest.raises(StaticAnalysisError, match="version"):
            load_baseline(path)

    def test_write_migrates_to_v2_with_families(self, tmp_path):
        findings = [
            Finding(
                detector="dataflow.wall-clock-taint",
                message="m",
                path="pkg/mod.py",
                line=3,
                col=0,
                severity=Severity.ERROR,
                bug_type=BugType.NON_DETERMINISTIC,
                root_cause=RootCause.ECOSYSTEM_SYSTEM_CALL,
            ),
            Finding(
                detector="wall-clock",
                message="m",
                path="pkg/mod.py",
                line=9,
                col=0,
                severity=Severity.WARNING,
                bug_type=BugType.NON_DETERMINISTIC,
                root_cause=RootCause.ECOSYSTEM_SYSTEM_CALL,
            ),
        ]
        report = AnalysisReport(root=".", findings=findings)
        path = tmp_path / "baseline.json"
        assert write_baseline(report, path) == 2
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert payload["version"] == 2
        assert payload["families"] == ["", "dataflow"]
        assert load_baseline(path) == {
            ("dataflow.wall-clock-taint", "pkg/mod.py", 3),
            ("wall-clock", "pkg/mod.py", 9),
        }
