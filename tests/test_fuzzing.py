"""Coverage-guided fuzzer: topology, mutation, coverage, state, campaign."""

from __future__ import annotations

import json
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversary.schedule import FaultSchedule
from repro.errors import FuzzError, ReproError, ScheduleError
from repro.fuzzing import (
    FuzzConfig,
    FuzzState,
    MUTATORS,
    build_topology,
    load_state,
    mutate,
    run_campaign,
    run_coverage,
    save_state,
    schedule_features,
    seed_schedule,
    validate_schedule,
)
from repro.fuzzing.campaign import _replay
from repro.fuzzing.features import FEATURE_NAMES

_SMALL = dict(
    controllers=3, switches=4, budget=16, batch=4, seed=3,
    horizon=20.0, events=3,
)


def _topology(kind="ring", controllers=4, switches=6, seed=0):
    return build_topology(
        kind, controllers=controllers, switches=switches, seed=seed
    )


class TestTopology:
    def test_seed_stable(self):
        assert _topology() == _topology()
        assert _topology(seed=1) != _topology(seed=2) or (
            _topology(seed=1).partition_specs
            == _topology(seed=2).partition_specs
        )

    def test_shape(self):
        topo = _topology(kind="fattree", controllers=10, switches=200)
        assert topo.controllers == 10
        assert topo.switches == 200
        assert len(topo.channel_targets()) == 210
        assert topo.partition_specs
        nodes = set(topo.nodes)
        for spec in topo.partition_specs:
            mentioned = {
                part for group in spec.split("|") for part in group.split(",")
            }
            assert mentioned <= nodes

    def test_validation(self):
        with pytest.raises(FuzzError, match="unknown topology"):
            build_topology("mesh", controllers=3, switches=3)
        with pytest.raises(FuzzError, match="two controllers"):
            build_topology("ring", controllers=1, switches=3)
        with pytest.raises(FuzzError, match="one switch"):
            build_topology("ring", controllers=3, switches=0)
        with pytest.raises(FuzzError, match="flows"):
            build_topology("ring", controllers=3, switches=3, flows=0)


class TestMutation:
    @given(
        kind=st.sampled_from(["ring", "star", "fattree"]),
        controllers=st.integers(min_value=2, max_value=6),
        switches=st.integers(min_value=1, max_value=8),
        events=st.integers(min_value=1, max_value=8),
        operator=st.sampled_from(sorted(MUTATORS)),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=60, deadline=None)
    def test_mutants_well_formed_and_deterministic(
        self, kind, controllers, switches, events, operator, seed
    ):
        topo = build_topology(kind, controllers=controllers, switches=switches)
        horizon = 30.0
        gen = random.Random(f"gen:{seed}")
        schedule = seed_schedule(gen, topo, horizon=horizon, events=events)
        mate = seed_schedule(gen, topo, horizon=horizon, events=events)
        validate_schedule(schedule, topo, horizon=horizon)

        name, mutant = mutate(
            schedule, mate, topo, random.Random(f"mut:{seed}"),
            horizon=horizon, operator=operator,
        )
        assert name == operator
        # Well-formed: times in range, targets valid for their actions.
        validate_schedule(mutant, topo, horizon=horizon)
        # Time-sorted by construction.
        times = [e.time for e in mutant.events]
        assert times == sorted(times)
        # Seed-deterministic: same rng state, bit-for-bit same mutant.
        _, again = mutate(
            schedule, mate, topo, random.Random(f"mut:{seed}"),
            horizon=horizon, operator=operator,
        )
        assert mutant == again

    def test_empty_schedule_rejected(self):
        topo = _topology()
        with pytest.raises(FuzzError, match="empty"):
            mutate(FaultSchedule(), FaultSchedule(), topo,
                   random.Random(0), horizon=30.0)

    def test_unknown_operator_rejected(self):
        topo = _topology()
        schedule = seed_schedule(random.Random(0), topo, horizon=30.0, events=2)
        with pytest.raises(FuzzError, match="unknown mutation operator"):
            mutate(schedule, schedule, topo, random.Random(0),
                   horizon=30.0, operator="transmogrify")

    def test_validate_schedule_catches_bad_targets(self):
        topo = _topology()
        bad = FaultSchedule.from_dicts(
            [{"time": 1.0, "target": "node:zz", "action": "drop"}]
        )
        with pytest.raises(ScheduleError):
            validate_schedule(bad, topo, horizon=30.0)


class TestCoverage:
    @given(seed=st.integers(min_value=0, max_value=500))
    @settings(max_examples=15, deadline=None)
    def test_signature_bit_stable(self, seed):
        """Same schedule + same world => bit-for-bit same coverage."""
        config = FuzzConfig(controllers=3, switches=4, horizon=20.0)
        topo = config.build_topology()
        schedule = seed_schedule(
            random.Random(f"cov:{seed}"), topo, horizon=20.0, events=4
        )
        samples = [
            run_coverage(_replay(schedule, config, topo), horizon=20.0)
            for _ in range(2)
        ]
        assert samples[0].tokens == samples[1].tokens
        assert samples[0].signature == samples[1].signature
        assert samples[0].violation_signatures == samples[1].violation_signatures
        # viol tokens are exactly the signature subset.
        assert set(samples[0].violation_signatures) == {
            t for t in samples[0].tokens if t.startswith("viol:")
        }

    def test_features_fixed_length(self):
        topo = _topology()
        schedule = seed_schedule(random.Random(1), topo, horizon=30.0, events=5)
        feats = schedule_features(schedule, horizon=30.0)
        assert len(feats) == len(FEATURE_NAMES)
        assert schedule_features(FaultSchedule(), horizon=30.0) == (
            [0.0] * len(FEATURE_NAMES)
        )


class TestState:
    def test_round_trip(self, tmp_path):
        config = FuzzConfig(**_SMALL)
        report = run_campaign(config, tmp_path / "run")
        state = report.state
        clone = FuzzState.from_dict(
            json.loads(json.dumps(state.to_dict(), sort_keys=True))
        )
        assert clone.fingerprint() == state.fingerprint()

    def test_save_load_verifies_digest(self, tmp_path):
        state = FuzzState(config=FuzzConfig(**_SMALL).to_dict())
        path = tmp_path / "state.json"
        digest = save_state(state, path)
        loaded = load_state(path, expect_digest=digest)
        assert loaded.fingerprint() == state.fingerprint()
        with pytest.raises(FuzzError, match="digest mismatch"):
            load_state(path, expect_digest="0" * 64)

    def test_missing_and_corrupt_snapshots_rejected(self, tmp_path):
        with pytest.raises(FuzzError, match="does not exist"):
            load_state(tmp_path / "nope.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{torn", encoding="utf-8")
        with pytest.raises(FuzzError, match="not valid JSON"):
            load_state(bad)
        versioned = tmp_path / "versioned.json"
        versioned.write_text('{"version": 99}', encoding="utf-8")
        with pytest.raises(FuzzError, match="version"):
            load_state(versioned)


class TestCampaign:
    def test_deterministic_given_seed(self, tmp_path):
        config = FuzzConfig(**_SMALL)
        one = run_campaign(config, tmp_path / "one")
        two = run_campaign(config, tmp_path / "two")
        assert one.state.fingerprint() == two.state.fingerprint()

    def test_reproducers_replay(self, tmp_path):
        config = FuzzConfig(**_SMALL)
        report = run_campaign(config, tmp_path / "run")
        assert report.state.executed == config.budget
        topo = config.build_topology()
        for cls in sorted(report.state.reproducers):
            entry = report.state.reproducers[cls]
            minimized = FaultSchedule.from_dicts(entry.minimized)
            sample = run_coverage(
                _replay(minimized, config, topo), horizon=config.horizon
            )
            assert any(
                s.startswith(f"viol:{cls}:")
                for s in sample.violation_signatures
            )

    def test_exports_written(self, tmp_path):
        config = FuzzConfig(**_SMALL)
        report = run_campaign(config, tmp_path / "run")
        coverage = json.loads((tmp_path / "run" / "coverage.json").read_text())
        assert coverage["fingerprint"] == report.state.fingerprint()
        assert coverage["executed"] == config.budget
        reproducers = json.loads(
            (tmp_path / "run" / "reproducers.json").read_text()
        )
        assert len(reproducers) == len(report.state.reproducers)

    def test_crash_then_resume_is_bit_identical(self, tmp_path):
        """Abort mid-campaign right after a durable journal event; resume
        must converge on the uninterrupted run's exact state."""
        config = FuzzConfig(**_SMALL)
        reference = run_campaign(config, tmp_path / "reference")

        class Boom(RuntimeError):
            pass

        events = 0

        def crash(event):
            nonlocal events
            events += 1
            if events >= 4:  # mid-campaign, after a batch commit is durable
                raise Boom()

        with pytest.raises(Boom):
            run_campaign(config, tmp_path / "crashed", on_event=crash)
        resumed = run_campaign(config, tmp_path / "crashed", resume=True)
        assert resumed.state.fingerprint() == reference.state.fingerprint()

    def test_fresh_run_refuses_existing_journal(self, tmp_path):
        config = FuzzConfig(**_SMALL)
        run_campaign(config, tmp_path / "run")
        with pytest.raises(ReproError, match="already exists"):
            run_campaign(config, tmp_path / "run")

    def test_resume_refuses_config_drift(self, tmp_path):
        config = FuzzConfig(**_SMALL)
        run_campaign(config, tmp_path / "run")
        drifted = FuzzConfig(**{**_SMALL, "budget": 20})
        with pytest.raises(ReproError, match="different configuration"):
            run_campaign(drifted, tmp_path / "run", resume=True)

    def test_resume_of_finished_run_is_a_no_op(self, tmp_path):
        config = FuzzConfig(**_SMALL)
        report = run_campaign(config, tmp_path / "run")
        again = run_campaign(config, tmp_path / "run", resume=True)
        assert again.batches_executed == 0
        assert again.state.fingerprint() == report.state.fingerprint()

    def test_random_arm_takes_no_guidance(self, tmp_path):
        config = FuzzConfig(**{**_SMALL, "guided": False, "minimize": False})
        report = run_campaign(config, tmp_path / "run")
        assert report.state.executed == config.budget
        assert all(e.origin == "seed" for e in report.state.corpus)

    def test_config_validation(self):
        with pytest.raises(FuzzError):
            FuzzConfig(budget=0)
        with pytest.raises(FuzzError):
            FuzzConfig(topology="mesh")
        with pytest.raises(FuzzError):
            FuzzConfig(horizon=0.0)


class TestCli:
    def test_fuzz_command(self, tmp_path, capsys):
        from repro.__main__ import main

        rc = main([
            "fuzz", "--budget", "8", "--batch", "4",
            "--controllers", "3", "--switches", "4",
            "--horizon", "20", "--seed", "3",
            "--run-dir", str(tmp_path / "cli"),
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "violation signatures" in out
        assert (tmp_path / "cli" / "coverage.json").exists()

    def test_fuzz_resume_flag(self, tmp_path, capsys):
        from repro.__main__ import main

        args = [
            "fuzz", "--budget", "8", "--batch", "4",
            "--controllers", "3", "--switches", "4",
            "--horizon", "20", "--seed", "3",
            "--run-dir", str(tmp_path / "cli"),
        ]
        assert main(args) == 0
        assert main(args + ["--resume"]) == 0
        first, second = capsys.readouterr().out.split("state fingerprint: ")[1:]
        assert first.split("...")[0] == second.split("...")[0]
