"""LDA topic model and logistic regression."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import NotFittedError
from repro.ml import LDA, LogisticRegression


class TestLDA:
    def topic_corpus(self):
        # Two topics: terms 0-2 vs terms 3-5, 20 docs each.
        counts = np.zeros((40, 6), dtype=int)
        rng = np.random.default_rng(0)
        counts[:20, :3] = rng.integers(2, 6, size=(20, 3))
        counts[20:, 3:] = rng.integers(2, 6, size=(20, 3))
        return counts

    def test_recovers_planted_topics(self):
        counts = self.topic_corpus()
        lda = LDA(n_topics=2, n_iterations=60, seed=1).fit(counts)
        names = [f"t{i}" for i in range(6)]
        groups = {frozenset(t) for t in lda.top_terms(names, n_terms=3)}
        assert frozenset({"t0", "t1", "t2"}) in groups
        assert frozenset({"t3", "t4", "t5"}) in groups

    def test_doc_topic_rows_are_distributions(self):
        lda = LDA(n_topics=2, n_iterations=30, seed=0).fit(self.topic_corpus())
        assert np.allclose(lda.doc_topic_.sum(axis=1), 1.0)
        assert (lda.doc_topic_ >= 0).all()

    def test_topic_word_rows_are_distributions(self):
        lda = LDA(n_topics=2, n_iterations=30, seed=0).fit(self.topic_corpus())
        assert np.allclose(lda.topic_word_.sum(axis=1), 1.0)

    def test_deterministic_for_seed(self):
        counts = self.topic_corpus()
        a = LDA(n_topics=2, n_iterations=20, seed=5).fit(counts)
        b = LDA(n_topics=2, n_iterations=20, seed=5).fit(counts)
        assert np.allclose(a.topic_word_, b.topic_word_)

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            LDA(0)
        with pytest.raises(ValueError):
            LDA(2).fit(np.array([[-1, 2]]))
        with pytest.raises(ValueError):
            LDA(2).fit(np.zeros((3, 4), dtype=int))

    def test_top_terms_before_fit(self):
        with pytest.raises(NotFittedError):
            LDA(2).top_terms(["a"])


class TestLogisticRegression:
    def separable(self, seed=0, n=60):
        rng = np.random.default_rng(seed)
        X = np.vstack(
            [rng.normal(loc=(-2, 0), size=(n, 2)), rng.normal(loc=(2, 0), size=(n, 2))]
        )
        y = ["neg"] * n + ["pos"] * n
        return X, y

    def test_separable_accuracy(self):
        X, y = self.separable()
        model = LogisticRegression().fit(X, y)
        predictions = model.predict(X)
        accuracy = sum(1 for t, p in zip(y, predictions) if t == p) / len(y)
        # Blobs at +/-2 with unit sigma have ~2.3% Bayes error.
        assert accuracy >= 0.94

    def test_probabilities_calibrated_direction(self):
        X, y = self.separable()
        model = LogisticRegression(positive_label="pos").fit(X, y)
        probs = model.predict_proba(np.array([[-4.0, 0.0], [4.0, 0.0]]))
        assert probs[0] < 0.1 < 0.9 < probs[1]

    def test_probabilities_bounded(self):
        X, y = self.separable()
        model = LogisticRegression().fit(X, y)
        probs = model.predict_proba(X)
        assert ((probs >= 0) & (probs <= 1)).all()

    def test_requires_two_classes(self):
        with pytest.raises(ValueError, match="exactly 2"):
            LogisticRegression().fit(np.zeros((3, 1)), ["a", "a", "a"])

    def test_unknown_positive_label(self):
        with pytest.raises(ValueError, match="positive_label"):
            LogisticRegression(positive_label="zz").fit(
                np.zeros((2, 1)), ["a", "b"]
            )

    def test_constant_feature_safe(self):
        X = np.array([[1.0, 5.0], [2.0, 5.0], [3.0, 5.0], [4.0, 5.0]])
        model = LogisticRegression().fit(X, ["a", "a", "b", "b"])
        assert np.isfinite(model.predict_proba(X)).all()

    def test_predict_before_fit(self):
        with pytest.raises(NotFittedError):
            LogisticRegression().predict(np.zeros((1, 2)))

    def test_threshold_shifts_predictions(self):
        X, y = self.separable()
        model = LogisticRegression(positive_label="pos").fit(X, y)
        strict = model.predict(X, threshold=0.95).count("pos")
        lax = model.predict(X, threshold=0.05).count("pos")
        assert strict < lax
