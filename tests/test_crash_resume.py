"""Kill-injection acceptance: killed-then-resumed == uninterrupted, bit for bit.

The pipeline runs journaled in a subprocess that SIGKILLs itself the moment
the k-th journal event is durable (see ``repro.recovery._child``).  Resume
must then reproduce the uninterrupted reference exactly — same accuracies,
classifier-weight digests, topics, and the same sha256 for every checkpoint
payload — while re-executing *only* the stages whose commits never landed,
which we assert from the journal's own event counts.
"""

from __future__ import annotations

import pytest

from repro.recovery import (
    EVENT_BEGIN,
    EVENT_SKIP,
    CrashHarness,
    JournalError,
    replay_journal,
    tear_file,
)

SEEDS = [0, 1, 2]
#: Journal offsets covering distinct crash positions: mid-corpus (before
#: any commit), after the tfidf commit, and mid-validate.
KILL_POINTS = [2, 5, 8]


@pytest.fixture(scope="module")
def harnesses(tmp_path_factory):
    """One harness + uninterrupted reference per seed (shared, expensive)."""
    out = {}
    for seed in SEEDS:
        harness = CrashHarness(
            tmp_path_factory.mktemp(f"crash-seed{seed}"), seed=seed
        )
        out[seed] = (harness, harness.reference())
    return out


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("kill_after", KILL_POINTS)
def test_killed_then_resumed_is_bit_identical(harnesses, seed, kill_after):
    harness, reference = harnesses[seed]
    killed = harness.run_killed(kill_after)
    assert killed.killed, killed.stderr[-500:]

    # The kill point is deterministic: exactly k durable events, no torn tail.
    replay = killed.replay()
    assert len(replay.events) == kill_after
    assert replay.dropped == 0
    committed_before = len(replay.committed())
    assert committed_before < harness.stage_count()

    result, cache = harness.resume(killed)
    assert harness.diff(reference, (result, cache)) == []
    assert result.resumed

    # Only uncommitted stages re-executed — read it off the journal itself.
    assert len(result.skipped_stages) == committed_before
    resume_segment = replay_journal(killed.journal_path).segments()[-1]
    skips = sum(1 for e in resume_segment if e.event == EVENT_SKIP)
    begins = sum(1 for e in resume_segment if e.event == EVENT_BEGIN)
    assert skips == committed_before
    assert begins == harness.stage_count() - committed_before


def test_torn_checkpoint_is_quarantined_and_recomputed(harnesses):
    harness, reference = harnesses[0]
    killed = harness.run_killed(8, run_id="torn-checkpoint")
    assert killed.killed
    payloads = sorted(
        killed.cache_root.rglob("*.pkl"), key=lambda p: p.stat().st_size
    )
    victim = payloads[-1]
    tear_file(victim, victim.stat().st_size // 2)

    result, cache = harness.resume(killed)
    assert harness.diff(reference, (result, cache)) == []
    # Corruption is priced, never silent.
    assert cache.stats()["quarantined"] >= 1
    assert list(cache.quarantine_root.rglob("*.reason"))


def test_torn_journal_tail_is_dropped_and_resumed(harnesses):
    harness, reference = harnesses[1]
    killed = harness.run_killed(5, run_id="torn-journal")
    assert killed.killed
    tear_file(killed.journal_path, -9)  # shear the final record mid-line

    assert replay_journal(killed.journal_path).dropped == 1
    result, cache = harness.resume(killed)
    assert harness.diff(reference, (result, cache)) == []


def test_midfile_journal_corruption_refuses_resume(harnesses):
    harness, _ = harnesses[2]
    killed = harness.run_killed(5, run_id="corrupt-journal")
    assert killed.killed
    lines = killed.journal_path.read_text().splitlines(keepends=True)
    lines[1] = lines[1][:15] + "\n"
    killed.journal_path.write_text("".join(lines))

    with pytest.raises(JournalError, match="corrupt journal record"):
        harness.resume(killed)
