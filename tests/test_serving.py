"""The overload-robust serving daemon: admission, deadlines, degradation."""

from __future__ import annotations

import pytest

from repro.errors import ServingError
from repro.parallel import ArtifactCache
from repro.resilience.breaker import BreakerState
from repro.resilience.ledger import ResilienceEvent, ResilienceLedger
from repro.sdnsim.clock import EventScheduler
from repro.serving import (
    AdmissionController,
    HeuristicClassifier,
    Request,
    RequestClass,
    RequestFactory,
    RequestKind,
    RequestLog,
    ResponseStatus,
    ServiceTier,
    ServingConfig,
    ServingDaemon,
    StubBackend,
    TrafficConfig,
    fingerprint,
    generate_trace,
    goodput,
    percentile,
    recover,
    replay,
)


def make_daemon(
    *,
    hardened: bool = True,
    backend: StubBackend | None = None,
    cache: ArtifactCache | None = None,
    request_log: RequestLog | None = None,
    **config_kwargs,
):
    scheduler = EventScheduler()
    ledger = ResilienceLedger()
    daemon = ServingDaemon(
        scheduler,
        backend or StubBackend(),
        config=ServingConfig(hardened=hardened, **config_kwargs),
        cache=cache,
        ledger=ledger,
        request_log=request_log,
    )
    return daemon, scheduler, ledger


class TestRequestModel:
    def test_deadline_is_arrival_plus_budget(self):
        req = RequestFactory().make(
            RequestKind.CLASSIFY, "text", arrival=3.0, budget=5.0
        )
        assert req.deadline == 8.0
        assert req.klass is RequestClass.INTERACTIVE

    def test_kind_class_split(self):
        factory = RequestFactory()
        lint = factory.make(RequestKind.LINT, "x = 1\n", arrival=0.0)
        assert lint.klass is RequestClass.BATCH

    def test_budget_must_be_positive(self):
        with pytest.raises(ServingError):
            Request(req_id=0, kind=RequestKind.QUERY, payload="symptoms",
                    arrival=0.0, budget=0.0)

    def test_batch_cost_amortizes_overhead(self):
        cost = RequestKind.CLASSIFY.value  # noqa: F841 - readability anchor
        model = RequestFactory().make(
            RequestKind.CLASSIFY, "t", arrival=0.0
        ).cost()
        assert model.batch_cost(16) < 16 * model.solo_cost
        assert model.batch_cost(1) == model.solo_cost

    def test_payload_digest_stable_across_equivalent_payloads(self):
        factory = RequestFactory()
        a = factory.make(RequestKind.QUERY, {"b": 1, "a": 2}, arrival=0.0)
        b = factory.make(RequestKind.QUERY, {"a": 2, "b": 1}, arrival=0.0)
        assert a.payload_digest() == b.payload_digest()


class TestHeuristicClassifier:
    def test_keyword_votes(self):
        clf = HeuristicClassifier(["fail_stop", "performance", "fail_stop"])
        assert clf.classify("the controller crash caused an abort") == "fail_stop"
        assert clf.classify("latency and cpu load degraded") == "performance"

    def test_fallback_is_majority_label(self):
        clf = HeuristicClassifier(["byzantine", "byzantine", "fail_stop"])
        assert clf.classify("nothing matches here at all") == "byzantine"

    def test_rejects_empty_labels(self):
        with pytest.raises(ServingError):
            HeuristicClassifier([])


class TestAdmission:
    def make(self, **kwargs):
        return AdmissionController(ledger=ResilienceLedger(), **kwargs)

    def request(self, kind=RequestKind.CLASSIFY, arrival=0.0, budget=8.0):
        return RequestFactory().make(kind, "text", arrival=arrival,
                                     budget=budget)

    def test_admits_when_idle(self):
        ctl = self.make()
        verdict = ctl.admit(self.request(), now=0.0, depth=0,
                            queued_cost=0.0, backlog=0.0)
        assert verdict.admitted

    def test_queue_full_sheds(self):
        ctl = self.make(max_depth=2)
        verdict = ctl.admit(self.request(), now=0.0, depth=2,
                            queued_cost=0.0, backlog=0.0)
        assert not verdict.admitted and verdict.reason == "queue-full"
        assert verdict.retry_after >= 0.25

    def test_class_quota_sheds_without_leaking_slots(self):
        ctl = self.make(batch_slots=1)
        first = self.request(RequestKind.MINIMIZE, budget=100.0)
        assert ctl.admit(first, now=0.0, depth=0, queued_cost=0.0,
                         backlog=0.0).admitted
        second = ctl.admit(self.request(RequestKind.MINIMIZE, budget=100.0),
                           now=0.0, depth=1, queued_cost=2.7, backlog=0.0)
        assert not second.admitted and second.reason == "class-quota"
        ctl.release(first)
        third = ctl.admit(self.request(RequestKind.MINIMIZE, budget=100.0),
                          now=0.0, depth=0, queued_cost=0.0, backlog=0.0)
        assert third.admitted

    def test_cost_capacity_sheds_and_releases_quota(self):
        ctl = self.make(interactive_capacity=0.5)
        assert ctl.admit(self.request(), now=0.0, depth=0, queued_cost=0.0,
                         backlog=0.0).admitted
        verdict = ctl.admit(self.request(), now=0.0, depth=1,
                            queued_cost=0.3, backlog=0.0)
        assert not verdict.admitted and verdict.reason == "cost-capacity"
        # The rejected request's class slot was released: capacity-many
        # more admits still succeed.
        assert ctl.quotas[RequestClass.INTERACTIVE].in_use == 1

    def test_hopeless_deadline_sheds(self):
        ctl = self.make()
        verdict = ctl.admit(self.request(budget=1.0), now=0.0, depth=0,
                            queued_cost=0.0, backlog=5.0)
        assert not verdict.admitted and verdict.reason == "hopeless-deadline"
        assert verdict.retry_after == pytest.approx(5.0)

    def test_every_shed_is_priced_in_the_ledger(self):
        ledger = ResilienceLedger()
        ctl = AdmissionController(max_depth=1, ledger=ledger)
        ctl.admit(self.request(), now=1.0, depth=1, queued_cost=0.0,
                  backlog=2.0)
        (record,) = ledger.by_event(ResilienceEvent.SHED)
        assert record.delay > 0
        assert record.time == 1.0


class TestDaemonBasics:
    def test_single_request_served_full(self):
        daemon, scheduler, _ = make_daemon()
        factory = RequestFactory()
        daemon.submit(factory.make(RequestKind.CLASSIFY, "crash", arrival=0.0))
        daemon.run(until=10.0)
        (response,) = daemon.responses
        assert response.status is ResponseStatus.OK
        assert response.tier is ServiceTier.FULL
        assert response.value == "classify:0"
        assert response.deadline_met
        assert response.latency > 0

    def test_micro_batches_are_kind_homogeneous(self):
        backend = StubBackend()
        daemon, scheduler, _ = make_daemon(backend=backend)
        factory = RequestFactory()
        for kind in (RequestKind.CLASSIFY, RequestKind.QUERY,
                     RequestKind.CLASSIFY, RequestKind.QUERY):
            daemon.submit(factory.make(kind, "p", arrival=0.0))
        daemon.run(until=30.0)
        kinds = [kind for kind, _ids in backend.executed_batches]
        assert all(
            len({k for k in (kind,)}) == 1 for kind in kinds
        )
        # Same-kind requests batched together despite interleaved arrival.
        assert (RequestKind.CLASSIFY, (0, 2)) in backend.executed_batches
        assert (RequestKind.QUERY, (1, 3)) in backend.executed_batches

    def test_interactive_has_priority_over_batch(self):
        backend = StubBackend()
        daemon, scheduler, _ = make_daemon(backend=backend)
        factory = RequestFactory()
        # Batch work arrives first, interactive second; executor is busy
        # with the first batch pick, then must choose interactive.
        daemon.submit(factory.make(RequestKind.MINIMIZE, 1, arrival=0.0,
                                   budget=60.0))
        daemon.submit(factory.make(RequestKind.MINIMIZE, 2, arrival=0.0,
                                   budget=60.0))
        scheduler.schedule_at(
            0.1, lambda: daemon.submit(
                factory.make(RequestKind.CLASSIFY, "crash", arrival=0.1))
        )
        daemon.run(until=60.0)
        order = [kind for kind, _ in backend.executed_batches]
        assert order[0] is RequestKind.MINIMIZE
        assert order[1] is RequestKind.CLASSIFY  # jumped the second minimize
        assert order[2] is RequestKind.MINIMIZE

    def test_expired_work_is_cancelled_not_computed(self):
        backend = StubBackend()
        daemon, scheduler, _ = make_daemon(backend=backend)
        factory = RequestFactory()
        # A lint request is admitted while the pipe looks feasible, but
        # interactive waves keep jumping ahead of it (strict priority)
        # until its deadline passes.  Deadline propagation must cancel
        # it in the queue — the backend never computes the dead answer.
        daemon.submit(factory.make(RequestKind.MINIMIZE, 1, arrival=0.0,
                                   budget=60.0))
        lint_id = []

        def submit_lint():
            request = factory.make(RequestKind.LINT, "x = 1\n", arrival=0.05,
                                   budget=5.0)
            lint_id.append(request.req_id)
            daemon.submit(request)

        scheduler.schedule_at(0.05, submit_lint)

        def flood(at):
            def fire():
                for i in range(30):
                    daemon.submit(factory.make(RequestKind.QUERY, f"q{i}",
                                               arrival=at, budget=4.0))
            scheduler.schedule_at(at, fire)

        for i in range(9):
            flood(2.6 + 0.3 * i)
        daemon.run(until=60.0)
        expired = [r for r in daemon.responses
                   if r.status is ResponseStatus.EXPIRED]
        assert len(expired) == 1
        assert expired[0].kind is RequestKind.LINT
        # The backend never saw the cancelled request.
        executed_ids = [i for _, ids in backend.executed_batches for i in ids]
        assert lint_id[0] not in executed_ids
        assert daemon.stats.expired == 1

    def test_shed_response_carries_retry_after(self):
        daemon, scheduler, _ = make_daemon(queue_depth=1)
        factory = RequestFactory()
        daemon.submit(factory.make(RequestKind.CLASSIFY, "a", arrival=0.0))
        daemon.submit(factory.make(RequestKind.CLASSIFY, "b", arrival=0.0))
        daemon.submit(factory.make(RequestKind.CLASSIFY, "c", arrival=0.0))
        daemon.run(until=10.0)
        shed = [r for r in daemon.responses if r.status is ResponseStatus.SHED]
        assert shed
        assert all(r.retry_after and r.retry_after >= 0.25 for r in shed)

    def test_bare_mode_never_sheds_or_expires(self):
        daemon, scheduler, _ = make_daemon(hardened=False)
        factory = RequestFactory()
        for i in range(50):
            daemon.submit(factory.make(RequestKind.CLASSIFY, f"t{i}",
                                       arrival=0.0, budget=0.5))
        daemon.run(until=120.0)
        statuses = {r.status for r in daemon.responses}
        assert ResponseStatus.SHED not in statuses
        assert ResponseStatus.EXPIRED not in statuses
        assert len(daemon.responses) == 50


class TestDegradation:
    def test_backend_failure_falls_back_to_heuristic(self):
        backend = StubBackend(fail_ids=[0])
        daemon, scheduler, _ = make_daemon(backend=backend)
        factory = RequestFactory()
        daemon.submit(factory.make(RequestKind.CLASSIFY, "crash", arrival=0.0))
        daemon.run(until=10.0)
        (response,) = daemon.responses
        assert response.status is ResponseStatus.DEGRADED
        assert response.tier is ServiceTier.HEURISTIC
        assert response.value == "heuristic:0"

    def test_bare_mode_backend_failure_is_an_error(self):
        backend = StubBackend(fail_ids=[0])
        daemon, scheduler, _ = make_daemon(hardened=False, backend=backend)
        factory = RequestFactory()
        daemon.submit(factory.make(RequestKind.CLASSIFY, "crash", arrival=0.0))
        daemon.run(until=10.0)
        (response,) = daemon.responses
        assert response.status is ResponseStatus.ERROR

    def test_poison_request_exhausts_every_tier(self):
        daemon, scheduler, _ = make_daemon()
        factory = RequestFactory()
        daemon.submit(factory.make(RequestKind.CLASSIFY, "boom", arrival=0.0,
                                   poison=True))
        daemon.run(until=10.0)
        (response,) = daemon.responses
        assert response.status is ResponseStatus.ERROR
        assert daemon.stats.errors == 1

    def test_breaker_opens_on_failure_streak_and_serves_degraded(self):
        backend = StubBackend(fail_ids=list(range(10)))
        daemon, scheduler, _ = make_daemon(
            backend=backend, breaker_window=4, breaker_min_calls=2,
            breaker_cooldown=100.0,
        )
        factory = RequestFactory()
        for i in range(4):
            daemon.submit(factory.make(RequestKind.QUERY, "symptoms",
                                       arrival=0.0))
        # Arrives after the first batch's failures tripped the breaker.
        scheduler.schedule_at(
            1.0, lambda: daemon.submit(
                factory.make(RequestKind.QUERY, "symptoms", arrival=1.0))
        )
        daemon.run(until=20.0)
        assert daemon.breaker.state is BreakerState.OPEN
        late = [r for r in daemon.responses if r.req_id == 4]
        assert late[0].status is ResponseStatus.DEGRADED
        assert daemon.stats.degraded_batches >= 1

    def test_warm_cache_serves_stale_with_deterministic_age(self, tmp_path):
        backend = StubBackend(fail_ids=[1])
        cache = ArtifactCache(tmp_path / "cache")
        daemon, scheduler, _ = make_daemon(backend=backend, cache=cache)
        factory = RequestFactory()
        # First request (same payload) completes fully and warms the cache;
        # the second fails in the backend and falls back to the cache tier.
        daemon.submit(factory.make(RequestKind.CLASSIFY, "same-text",
                                   arrival=0.0))
        scheduler.schedule_at(
            5.0, lambda: daemon.submit(
                factory.make(RequestKind.CLASSIFY, "same-text", arrival=5.0))
        )
        daemon.run(until=20.0)
        stale = [r for r in daemon.responses
                 if r.status is ResponseStatus.STALE]
        assert len(stale) == 1
        assert stale[0].tier is ServiceTier.CACHED
        assert stale[0].value == "classify:0"
        # Age is measured on the simulation clock: the cache was warmed
        # shortly after t=0 and consulted shortly after t=5.
        assert stale[0].age == pytest.approx(5.0, abs=1.0)

    def test_stale_entries_past_max_age_are_not_served(self, tmp_path):
        backend = StubBackend(fail_ids=[1])
        cache = ArtifactCache(tmp_path / "cache")
        daemon, scheduler, _ = make_daemon(
            backend=backend, cache=cache, stale_max_age=1.0
        )
        factory = RequestFactory()
        daemon.submit(factory.make(RequestKind.CLASSIFY, "same-text",
                                   arrival=0.0))
        scheduler.schedule_at(
            10.0, lambda: daemon.submit(
                factory.make(RequestKind.CLASSIFY, "same-text", arrival=10.0))
        )
        daemon.run(until=30.0)
        second = [r for r in daemon.responses if r.req_id == 1]
        # Too old for the cache tier -> heuristic answered instead.
        assert second[0].status is ResponseStatus.DEGRADED
        assert second[0].tier is ServiceTier.HEURISTIC


class TestDelivery:
    def test_slow_client_aborted_when_hardened(self):
        daemon, scheduler, ledger = make_daemon(delivery_timeout=1.0)
        factory = RequestFactory()
        daemon.submit(factory.make(RequestKind.CLASSIFY, "t", arrival=0.0,
                                   client_hold=50.0))
        daemon.run(until=60.0)
        (response,) = daemon.responses
        assert response.status is ResponseStatus.OK
        assert daemon.stats.slow_clients_aborted == 1
        # The abort is priced as a GIVE_UP on the delivery component.
        gives = [r for r in ledger.by_event(ResilienceEvent.GIVE_UP)
                 if r.component == "delivery"]
        assert len(gives) == 1
        assert response.latency < 50.0

    def test_bare_mode_slow_client_pins_delivery_slot(self):
        daemon, scheduler, _ = make_daemon(hardened=False, delivery_slots=1)
        factory = RequestFactory()
        daemon.submit(factory.make(RequestKind.CLASSIFY, "slow", arrival=0.0,
                                   client_hold=30.0))
        daemon.submit(factory.make(RequestKind.CLASSIFY, "fast", arrival=0.0))
        daemon.run(until=120.0)
        fast = [r for r in daemon.responses if r.req_id == 1][0]
        # Head-of-line blocking: the fast client waited behind the slow one.
        assert fast.latency > 30.0
        assert daemon.stats.slow_clients_aborted == 0


class TestTraffic:
    def test_same_seed_same_trace(self):
        config = TrafficConfig(seed=11, duration=15.0)
        first = generate_trace(config)
        second = generate_trace(config)
        assert [r.req_id for r in first.requests] == \
            [r.req_id for r in second.requests]
        assert [r.arrival for r in first.requests] == \
            [r.arrival for r in second.requests]
        assert [r.payload for r in first.requests] == \
            [r.payload for r in second.requests]

    def test_different_seeds_differ(self):
        a = generate_trace(TrafficConfig(seed=1, duration=15.0))
        b = generate_trace(TrafficConfig(seed=2, duration=15.0))
        assert [r.arrival for r in a.requests] != \
            [r.arrival for r in b.requests]

    def test_fault_injection_present(self):
        trace = generate_trace(TrafficConfig(
            seed=3, duration=30.0, slow_client_rate=0.1, poison_rate=0.1,
        ))
        assert trace.slow_clients > 0
        assert trace.poison > 0

    def test_bursts_raise_arrival_density(self):
        calm = generate_trace(TrafficConfig(seed=5, duration=30.0, bursts=0))
        bursty = generate_trace(TrafficConfig(seed=5, duration=30.0, bursts=3))
        assert len(bursty.requests) > len(calm.requests)

    def test_validation(self):
        with pytest.raises(ServingError):
            TrafficConfig(duration=0.0)
        with pytest.raises(ServingError):
            TrafficConfig(poison_rate=1.5)


class TestDeterminism:
    def test_full_replay_fingerprint_identical(self):
        config = TrafficConfig(seed=9, duration=12.0)

        def run_once():
            daemon, scheduler, _ = make_daemon()
            replay(generate_trace(config), daemon)
            daemon.run(until=60.0)
            return daemon

        first, second = run_once(), run_once()
        assert fingerprint(first.responses) == fingerprint(second.responses)
        assert first.stats.to_dict() == second.stats.to_dict()


class TestRequestJournal:
    def test_clean_run_leaves_no_inflight(self, tmp_path):
        path = tmp_path / "requests.journal"
        daemon, scheduler, _ = make_daemon(
            request_log=RequestLog(path)
        )
        factory = RequestFactory()
        for i in range(3):
            daemon.submit(factory.make(RequestKind.CLASSIFY, f"t{i}",
                                       arrival=0.0))
        daemon.run(until=30.0)
        daemon.close()
        state = recover(path)
        assert state["finished"] == [0, 1, 2]
        assert state["inflight"] == []

    def test_crash_window_shows_inflight(self, tmp_path):
        path = tmp_path / "requests.journal"
        daemon, scheduler, _ = make_daemon(request_log=RequestLog(path))
        factory = RequestFactory()
        daemon.submit(factory.make(RequestKind.MINIMIZE, 1, arrival=0.0,
                                   budget=60.0))
        # "Crash" before the executor completes: stop the run early and
        # never close the log cleanly.
        daemon.run(until=0.5)
        state = recover(path)
        assert state["inflight"] == [0]
        assert state["finished"] == []

    def test_shed_requests_are_terminally_recorded(self, tmp_path):
        path = tmp_path / "requests.journal"
        daemon, scheduler, _ = make_daemon(
            request_log=RequestLog(path), queue_depth=1
        )
        factory = RequestFactory()
        for i in range(3):
            daemon.submit(factory.make(RequestKind.CLASSIFY, f"t{i}",
                                       arrival=0.0))
        daemon.run(until=30.0)
        daemon.close()
        state = recover(path)
        assert state["inflight"] == []
        assert len(state["finished"]) == 3


class TestMetrics:
    def test_percentile_nearest_rank(self):
        values = [float(i) for i in range(1, 101)]
        assert percentile(values, 50.0) == 50.0
        assert percentile(values, 99.0) == 99.0
        assert percentile([], 99.0) == 0.0

    def test_goodput_weights_degraded_answers_at_half(self):
        daemon, scheduler, _ = make_daemon(backend=StubBackend(fail_ids=[1]))
        factory = RequestFactory()
        daemon.submit(factory.make(RequestKind.CLASSIFY, "a", arrival=0.0))
        daemon.submit(factory.make(RequestKind.CLASSIFY, "b", arrival=0.0))
        daemon.run(until=20.0)
        # One OK (weight 1.0) + one DEGRADED (weight 0.5) over 10 seconds.
        assert goodput(daemon.responses, 10.0) == pytest.approx(0.15)

    def test_config_validation(self):
        with pytest.raises(ServingError):
            ServingConfig(queue_depth=0)
        with pytest.raises(ServingError):
            ServingConfig(degrade_watermark=0.0)
        with pytest.raises(ServingError):
            ServingConfig(delivery_timeout=0.0)
