"""Controller-selection guidance and the diagnosis assistant."""

from __future__ import annotations

import pytest

from repro.guidance import UseCase, rank_controllers, score_controller
from repro.guidance.diagnosis import DiagnosisAssistant, train_root_cause_tree
from repro.paperdata import CONTROLLER_RECOMMENDATION


class TestSelection:
    def test_scores_bounded(self, dataset):
        for controller in dataset.controllers:
            score = score_controller(dataset, controller)
            for value in (
                score.missing_logic_share,
                score.load_share,
                score.fail_stop_share,
                score.performance_share,
            ):
                assert 0.0 <= value <= 1.0

    def test_faucet_missing_logic_highest(self, dataset):
        scores = {c: score_controller(dataset, c) for c in dataset.controllers}
        assert scores["FAUCET"].missing_logic_share == max(
            s.missing_logic_share for s in scores.values()
        )

    def test_cord_load_exceeds_onos(self, dataset):
        cord = score_controller(dataset, "CORD")
        onos = score_controller(dataset, "ONOS")
        assert cord.load_share > onos.load_share

    def test_general_purpose_ranking_matches_paper(self, dataset):
        ranking = [s.controller for s in rank_controllers(dataset)]
        assert ranking[0] == CONTROLLER_RECOMMENDATION[0] == "ONOS"

    def test_slicing_use_case_prefers_faucet(self, dataset):
        ranking = [
            s.controller
            for s in rank_controllers(dataset, use_case=UseCase.NETWORK_SLICING)
        ]
        assert ranking[0] == "FAUCET"

    def test_telco_use_case_boosts_cord(self, dataset):
        general = [s.controller for s in rank_controllers(dataset)]
        telco = [
            s.controller
            for s in rank_controllers(dataset, use_case=UseCase.TELCO_CENTRAL_OFFICE)
        ]
        assert telco.index("CORD") <= general.index("CORD")

    def test_unknown_controller_rejected(self, dataset):
        with pytest.raises(ValueError):
            score_controller(dataset, "POX")


class TestDiagnosis:
    @pytest.fixture(scope="class")
    def assistant(self, manual_sample):
        return DiagnosisAssistant(seed=0).fit(manual_sample)

    def test_diagnose_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            DiagnosisAssistant().diagnose("anything")

    def test_diagnose_returns_ranked_suggestions(self, assistant):
        suggestions = assistant.diagnose(
            "the controller crashed with a fatal traceback after editing the "
            "faucet.yaml and reloading, reproducible every time"
        )
        assert suggestions
        confidences = [s.confidence for s in suggestions]
        assert confidences == sorted(confidences, reverse=True)
        dims = {s.dimension for s in suggestions}
        assert {"symptom", "trigger", "bug_type"} <= dims

    def test_crash_description_diagnosed_as_fail_stop(self, assistant):
        suggestions = assistant.diagnose(
            "the whole controller exits immediately taking the control plane "
            "down, core dumps until manual restart, reproducible every time "
            "after reloading the controller yaml config"
        )
        symptom = next(s for s in suggestions if s.dimension == "symptom")
        assert symptom.tag == "fail_stop"

    def test_correlation_rules_propagate(self, assistant):
        """A concurrency-flavoured text should pull in correlated tags from
        dimensions the text model does not cover directly."""
        suggestions = assistant.diagnose(
            "two interleaved threads race on the shared map without the lock, "
            "the api stops responding temporarily, happens intermittently and "
            "cannot be reproduced"
        )
        rationales = [s.rationale for s in suggestions]
        assert any("correlated with" in r for r in rationales)


def test_root_cause_tree_beats_majority_baseline(manual_sample):
    tree = train_root_cause_tree(manual_sample)
    import numpy as np

    dims = ("symptom", "trigger", "bug_type", "fix")
    columns = [manual_sample.labels(d) for d in dims]
    vocab = sorted({(i, v) for i, col in enumerate(columns) for v in col})
    index = {pair: j for j, pair in enumerate(vocab)}
    X = np.zeros((len(manual_sample), len(vocab)))
    for row in range(len(manual_sample)):
        for i, col in enumerate(columns):
            X[row, index[(i, col[row])]] = 1.0
    y = manual_sample.labels("root_cause")
    predictions = tree.predict(X)
    accuracy = sum(1 for t, p in zip(y, predictions) if t == p) / len(y)
    majority = max(y.count(v) for v in set(y)) / len(y)
    assert accuracy > majority
