"""Statistical helpers: KS test wrapper and bootstrap CIs."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.stats import bootstrap_share_ci, ks_two_sample


class TestKs:
    def test_identical_samples_not_significant(self):
        sample = [float(i) for i in range(50)]
        result = ks_two_sample(sample, list(sample))
        assert not result.significant()
        assert result.statistic == pytest.approx(0.0)

    def test_shifted_samples_significant(self):
        rng = random.Random(0)
        a = [rng.gauss(0, 1) for _ in range(200)]
        b = [rng.gauss(3, 1) for _ in range(200)]
        result = ks_two_sample(a, b)
        assert result.significant(alpha=0.001)
        assert result.statistic > 0.5

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ks_two_sample([], [1.0])


class TestBootstrap:
    def test_ci_contains_point_estimate(self):
        flags = [True] * 40 + [False] * 60
        lo, hi = bootstrap_share_ci(flags, seed=1)
        assert lo <= 0.4 <= hi

    def test_ci_narrows_with_sample_size(self):
        small = [True] * 4 + [False] * 6
        large = [True] * 400 + [False] * 600
        lo_s, hi_s = bootstrap_share_ci(small, seed=1)
        lo_l, hi_l = bootstrap_share_ci(large, seed=1)
        assert (hi_l - lo_l) < (hi_s - lo_s)

    def test_degenerate_all_true(self):
        lo, hi = bootstrap_share_ci([True] * 20, seed=0)
        assert lo == hi == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_share_ci([])
        with pytest.raises(ValueError):
            bootstrap_share_ci([True], confidence=1.5)

    @given(st.lists(st.booleans(), min_size=5, max_size=60))
    @settings(max_examples=20, deadline=None)
    def test_ci_bounds_ordered_and_in_unit_interval(self, flags):
        lo, hi = bootstrap_share_ci(flags, n_resamples=200, seed=2)
        assert 0.0 <= lo <= hi <= 1.0
