"""Patch-metadata fix classification (SS II-C1)."""

from __future__ import annotations

from datetime import datetime

import pytest

from repro.pipeline.patchclassifier import (
    PatchFixClassifier,
    evaluate_patch_classifier,
)
from repro.taxonomy import FixCategory, FixStrategy
from repro.trackers.models import GerritChange


def change(subject="Fix it", files=("src/x.java",), insertions=10, deletions=5):
    return GerritChange(
        change_id="I1",
        subject=subject,
        merged_at=datetime(2019, 1, 1),
        files_changed=tuple(files),
        insertions=insertions,
        deletions=deletions,
    )


class TestRules:
    def test_dependency_only_is_upgrade(self):
        prediction = PatchFixClassifier().classify(
            change(subject="Bump dependency for X", files=("requirements.txt",))
        )
        assert prediction.strategy is FixStrategy.UPGRADE_PACKAGES

    def test_dependency_revert_is_rollback(self):
        prediction = PatchFixClassifier().classify(
            change(subject="Revert dependency bump", files=("pom.xml",))
        )
        assert prediction.strategy is FixStrategy.ROLLBACK_UPGRADES
        assert prediction.category is FixCategory.NO_LOGIC_CHANGES

    def test_config_only_is_fix_configuration(self):
        prediction = PatchFixClassifier().classify(
            change(subject="whatever", files=("conf/cluster.yaml",))
        )
        assert prediction.strategy is FixStrategy.FIX_CONFIGURATION

    def test_lock_subject_is_synchronization(self):
        prediction = PatchFixClassifier().classify(
            change(subject="Add locking around the shared map")
        )
        assert prediction.strategy is FixStrategy.ADD_SYNCHRONIZATION

    def test_additive_diff_is_add_logic(self):
        prediction = PatchFixClassifier().classify(
            change(subject="misc", insertions=300, deletions=10)
        )
        assert prediction.strategy is FixStrategy.ADD_LOGIC

    def test_source_plus_manifest_is_compatibility(self):
        prediction = PatchFixClassifier().classify(
            change(
                subject="misc",
                files=("src/adapter.java", "requirements.txt"),
                insertions=40,
                deletions=35,
            )
        )
        assert prediction.strategy is FixStrategy.ADD_COMPATIBILITY

    def test_small_balanced_diff_is_workaround(self):
        prediction = PatchFixClassifier().classify(
            change(subject="misc", insertions=8, deletions=6)
        )
        assert prediction.strategy is FixStrategy.WORKAROUND

    def test_every_prediction_has_a_rule(self):
        prediction = PatchFixClassifier().classify(change())
        assert prediction.rule


class TestEvaluation:
    def test_beats_description_based_prediction(self, corpus):
        """Patches carry the fix signal descriptions lack (SS II-C1/C2)."""
        evaluation = evaluate_patch_classifier(corpus.dataset)
        assert evaluation.strategy_accuracy > 0.75
        assert evaluation.category_accuracy >= evaluation.strategy_accuracy - 0.05

    def test_only_gerrit_backed_bugs_counted(self, corpus):
        evaluation = evaluate_patch_classifier(corpus.dataset)
        with_gerrit = sum(
            1 for b in corpus.dataset if b.report.gerrit_changes
        )
        assert evaluation.n_bugs == with_gerrit

    def test_empty_dataset_rejected(self, corpus):
        faucet_only = corpus.dataset.by_controller("FAUCET")  # no gerrit
        with pytest.raises(ValueError):
            evaluate_patch_classifier(faucet_only)
