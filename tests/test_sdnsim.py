"""Simulator substrate: clock, datapath, controller, apps, services, optical."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, SimulationError
from repro.sdnsim import (
    AclApp,
    ControllerConfig,
    ControllerRuntime,
    EventScheduler,
    L2LearningSwitch,
    MirrorApp,
    MulticastHandler,
    OltDevice,
    OnuDevice,
    SimClock,
    StatsGauge,
    Switch,
    TimeSeriesDB,
    VolthaAdapter,
    validate_config,
)
from repro.sdnsim.messages import (
    Action,
    BROADCAST_MAC,
    EchoRequest,
    FlowMod,
    Match,
    Packet,
    PORT_DROP,
    PORT_FLOOD,
)
from repro.sdnsim.services import AuthService, ServiceTypeError, ServiceUnavailableError


class TestClockScheduler:
    def test_clock_monotonic(self):
        clock = SimClock()
        clock.advance_to(5.0)
        with pytest.raises(SimulationError):
            clock.advance_to(4.0)

    def test_events_run_in_time_order(self):
        sched = EventScheduler()
        log = []
        sched.schedule(2.0, lambda: log.append("b"))
        sched.schedule(1.0, lambda: log.append("a"))
        sched.run()
        assert log == ["a", "b"]

    def test_equal_times_run_in_scheduling_order(self):
        sched = EventScheduler()
        log = []
        for name in "abc":
            sched.schedule(1.0, lambda n=name: log.append(n))
        sched.run()
        assert log == ["a", "b", "c"]

    def test_until_stops_early_and_advances_clock(self):
        sched = EventScheduler()
        log = []
        sched.schedule(10.0, lambda: log.append("late"))
        sched.run(until=5.0)
        assert log == [] and sched.clock.now == 5.0
        sched.run()
        assert log == ["late"]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            EventScheduler().schedule(-1.0, lambda: None)

    def test_cascade_guard(self):
        sched = EventScheduler()

        def loop():
            sched.schedule(0.0, loop)

        sched.schedule(0.0, loop)
        with pytest.raises(SimulationError, match="cascade"):
            sched.run(max_events=100)

    @given(st.lists(st.floats(0.0, 100.0), min_size=1, max_size=30))
    @settings(max_examples=30, deadline=None)
    def test_processing_order_is_sorted(self, delays):
        sched = EventScheduler()
        seen = []
        for d in delays:
            sched.schedule(d, lambda d=d: seen.append(d))
        sched.run()
        assert seen == sorted(seen)


def build_switch():
    sched = EventScheduler()
    config = ControllerConfig.load({})
    runtime = ControllerRuntime(sched, config)
    switch = Switch(1, [1, 2, 3])
    switch.connect(runtime)
    runtime.add_app(L2LearningSwitch())
    runtime.start()
    return sched, runtime, switch


class TestDatapath:
    def test_table_miss_punts_to_controller(self):
        _, runtime, switch = build_switch()
        switch.receive(1, Packet(src_mac="aa:01", dst_mac="aa:02"))
        # The learning switch floods unknown destinations.
        assert any(port == 2 for port, _ in switch.delivered)
        assert any(port == 3 for port, _ in switch.delivered)

    def test_learning_installs_flow_and_forwards(self):
        _, runtime, switch = build_switch()
        switch.receive(1, Packet(src_mac="aa:01", dst_mac=BROADCAST_MAC))
        switch.delivered.clear()
        switch.receive(2, Packet(src_mac="aa:02", dst_mac="aa:01"))
        assert [(1, "aa:01")] == [
            (port, pkt.dst_mac) for port, pkt in switch.delivered
        ]
        assert switch.lookup(Packet(src_mac="x", dst_mac="aa:01")) is not None

    def test_flow_priority_ordering(self):
        _, runtime, switch = build_switch()
        switch.apply_flow_mod(
            FlowMod(dpid=1, match=Match(), actions=(Action(2),), priority=1)
        )
        switch.apply_flow_mod(
            FlowMod(
                dpid=1, match=Match(dst_mac="aa:09"),
                actions=(Action(PORT_DROP),), priority=500,
            )
        )
        switch.receive(1, Packet(src_mac="s", dst_mac="aa:09"))
        assert switch.delivered == []  # drop rule wins

    def test_flow_replacement_same_match(self):
        _, _, switch = build_switch()
        match = Match(dst_mac="aa:01")
        switch.apply_flow_mod(FlowMod(dpid=1, match=match, actions=(Action(2),)))
        switch.apply_flow_mod(FlowMod(dpid=1, match=match, actions=(Action(3),)))
        entries = [e for e in switch.flow_table if e.match == match]
        assert len(entries) == 1 and entries[0].actions[0].output_port == 3

    def test_downed_port_swallows_frames(self):
        _, _, switch = build_switch()
        switch.apply_flow_mod(
            FlowMod(dpid=1, match=Match(), actions=(Action(2),))
        )
        switch.set_port_state(2, False)
        switch.receive(1, Packet(src_mac="a", dst_mac="b"))
        assert switch.delivered == []

    def test_flood_excludes_ingress_and_excluded(self):
        _, _, switch = build_switch()
        switch.exclude_from_flood = {3}
        switch.apply_flow_mod(
            FlowMod(dpid=1, match=Match(), actions=(Action(PORT_FLOOD),))
        )
        switch.receive(1, Packet(src_mac="a", dst_mac=BROADCAST_MAC))
        assert {port for port, _ in switch.delivered} == {2}

    def test_wrong_dpid_flowmod_rejected(self):
        _, _, switch = build_switch()
        with pytest.raises(SimulationError):
            switch.apply_flow_mod(
                FlowMod(dpid=9, match=Match(), actions=(Action(1),))
            )

    def test_port_stats_counters(self):
        _, _, switch = build_switch()
        switch.receive(1, Packet(src_mac="a", dst_mac=BROADCAST_MAC, payload="xy"))
        stats = switch.port_stats(1)
        assert stats.rx_packets == 1
        assert switch.port_stats(2).tx_packets == 1

    def test_switch_needs_ports(self):
        with pytest.raises(SimulationError):
            Switch(1, [])


class TestControllerRuntime:
    def test_echo_replies(self):
        _, runtime, _ = build_switch()
        runtime.handle_message(EchoRequest(dpid=1, sequence=7))
        assert runtime.echo_replies[-1].sequence == 7

    def test_critical_app_crash_takes_controller_down(self):
        sched = EventScheduler()
        runtime = ControllerRuntime(sched, ControllerConfig.load({}))
        switch = Switch(1, [1, 2])
        switch.connect(runtime)

        class Exploder:
            name = "exploder"
            critical = True

            def on_start(self, rt):
                pass

            def on_packet_in(self, rt, ev):
                raise RuntimeError("boom")

        runtime.add_app(Exploder())
        runtime.start()
        switch.receive(1, Packet(src_mac="a", dst_mac="b"))
        assert runtime.crashed
        assert "boom" in runtime.crash_reason

    def test_noncritical_app_crash_degrades_only(self):
        sched = EventScheduler()
        runtime = ControllerRuntime(sched, ControllerConfig.load({}))
        switch = Switch(1, [1, 2])
        switch.connect(runtime)

        class Flaky:
            name = "flaky"
            critical = False

            def on_start(self, rt):
                pass

            def on_packet_in(self, rt, ev):
                raise ValueError("ouch")

        runtime.add_app(Flaky())
        runtime.add_app(L2LearningSwitch())
        runtime.start()
        switch.receive(1, Packet(src_mac="a", dst_mac="b"))
        assert not runtime.crashed
        assert runtime.failed_components == ["flaky"]
        # Forwarding still works.
        switch.receive(2, Packet(src_mac="b", dst_mac="a"))
        assert any(port == 1 for port, _ in switch.delivered)

    def test_failed_app_receives_no_more_events(self):
        sched = EventScheduler()
        runtime = ControllerRuntime(sched, ControllerConfig.load({}))
        switch = Switch(1, [1, 2])
        switch.connect(runtime)
        calls = []

        class Flaky:
            name = "flaky"
            critical = False

            def on_start(self, rt):
                pass

            def on_packet_in(self, rt, ev):
                calls.append(1)
                raise ValueError("once")

        runtime.add_app(Flaky())
        runtime.start()
        switch.receive(1, Packet(src_mac="a", dst_mac="b"))
        switch.receive(1, Packet(src_mac="a", dst_mac="c"))
        assert len(calls) == 1

    def test_global_lock_contention_model(self):
        sched = EventScheduler()
        cfg_many = ControllerConfig.load({"workers": 8})
        with_lock = ControllerRuntime(sched, cfg_many, global_lock=True)
        without_lock = ControllerRuntime(sched, cfg_many, global_lock=False)
        assert with_lock.api_call("x") > without_lock.api_call("x")

    def test_crashed_controller_rejects_api(self):
        sched = EventScheduler()
        runtime = ControllerRuntime(sched, ControllerConfig.load({}))
        runtime.crashed = True
        with pytest.raises(SimulationError):
            runtime.api_call("x")


class TestConfig:
    def test_valid_config_passes(self):
        validate_config(
            {
                "vlans": {},
                "acls": [{"src_mac": "a", "dst_mac": "b"}],
                "mirror": {1: {"source_port": 1, "mirror_port": 2}},
                "workers": 4,
            }
        )

    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown configuration key"):
            validate_config({"vlnas": {}})

    def test_wrong_type_rejected(self):
        with pytest.raises(ConfigurationError, match="must be"):
            validate_config({"workers": "four"})

    def test_mirror_spec_fields_required(self):
        with pytest.raises(ConfigurationError, match="mirror entry"):
            validate_config({"mirror": {1: {"source_port": 1}}})

    def test_acl_fields_required(self):
        with pytest.raises(ConfigurationError, match="acl rule"):
            validate_config({"acls": [{"src_mac": "a"}]})

    def test_load_without_validation_admits_bad_config(self):
        config = ControllerConfig.load({"workers": "four"}, validate=False)
        assert config.raw["workers"] == "four"


class TestServices:
    def test_tsdb_v2_rejects_strings(self):
        db = TimeSeriesDB(api_version=2)
        with pytest.raises(ServiceTypeError):
            db.write("m", {"x": "12"}, timestamp=0.0)

    def test_tsdb_v1_coerces_strings(self):
        db = TimeSeriesDB(api_version=1)
        db.write("m", {"x": "12"}, timestamp=0.0)
        assert db.points[0].fields["x"] == 12.0

    def test_tsdb_v1_rejects_non_numeric_strings(self):
        db = TimeSeriesDB(api_version=1)
        with pytest.raises(ServiceTypeError):
            db.write("m", {"x": "twelve"}, timestamp=0.0)

    def test_tsdb_unavailable(self):
        db = TimeSeriesDB(available=False)
        with pytest.raises(ServiceUnavailableError):
            db.write("m", {"x": 1}, timestamp=0.0)

    def test_tsdb_count_by_measurement(self):
        db = TimeSeriesDB()
        db.write("a", {"x": 1}, timestamp=0.0)
        db.write("b", {"x": 1}, timestamp=0.0)
        assert db.count("a") == 1 and db.count() == 2

    def test_auth_argument_flip(self):
        v1 = AuthService(api_version=1)
        assert v1.authenticate("aa:bb", "secret")
        assert v1.is_authorized("aa:bb")
        v2 = AuthService(api_version=2)
        # Same call against the new API grants the *secret* string.
        assert v2.authenticate("aa:bb", "se:cret")
        assert v2.is_authorized("se:cret")
        assert not v2.is_authorized("aa:bb")


class TestOptical:
    def test_activation_completes(self):
        sched = EventScheduler()
        adapter = VolthaAdapter(sched, connect_timeout=None)
        olt = OltDevice("o1")
        olt.attach_onu(OnuDevice(serial="n1", olt_port=1))
        adapter.manage(olt)
        adapter.activate("o1")
        assert adapter.core_blocked
        sched.run(until=10)
        assert not adapter.core_blocked
        assert olt.onus[0].is_active

    def test_vol549_stall_without_timeout(self):
        sched = EventScheduler()
        adapter = VolthaAdapter(sched, connect_timeout=None)
        olt = OltDevice("o1")
        adapter.manage(olt)
        adapter.activate("o1")
        sched.run(until=10)
        adapter.notify_reboot("o1")
        sched.run(until=500)
        assert adapter.core_blocked  # stuck forever

    def test_vol549_fix_with_timeout(self):
        sched = EventScheduler()
        adapter = VolthaAdapter(sched, connect_timeout=5.0)
        olt = OltDevice("o1")
        adapter.manage(olt)
        adapter.activate("o1")
        sched.run(until=10)
        adapter.notify_reboot("o1")
        sched.run(until=60)
        assert not adapter.core_blocked
        assert adapter.timeouts_fired >= 1

    def test_reboot_deactivates_onus(self):
        sched = EventScheduler()
        adapter = VolthaAdapter(sched, connect_timeout=5.0)
        olt = OltDevice("o1")
        olt.attach_onu(OnuDevice(serial="n1", olt_port=1))
        adapter.manage(olt)
        adapter.activate("o1")
        sched.run(until=10)
        adapter.notify_reboot("o1")
        assert not olt.onus[0].is_active

    def test_duplicate_manage_rejected(self):
        sched = EventScheduler()
        adapter = VolthaAdapter(sched)
        olt = OltDevice("o1")
        adapter.manage(olt)
        with pytest.raises(SimulationError):
            adapter.manage(olt)
