"""JIRA/GitHub tracker substrates and the severity keyword extractor."""

from __future__ import annotations

from datetime import datetime, timedelta

import pytest

from repro.errors import TrackerError
from repro.trackers import (
    BugReport,
    GerritChange,
    GithubTracker,
    IssueStatus,
    JiraTracker,
    KeywordSeverityExtractor,
    Severity,
)

T0 = datetime(2019, 1, 1)


def make_report(bug_id="ONOS-1", severity=Severity.CRITICAL, **kw) -> BugReport:
    defaults = dict(
        bug_id=bug_id,
        controller="ONOS",
        title="controller crashes on reload",
        description="the controller crashed with a traceback after config reload",
        created_at=T0,
        severity=severity,
    )
    defaults.update(kw)
    return BugReport(**defaults)


class TestBugReport:
    def test_text_combines_title_and_description(self):
        report = make_report()
        assert "crashes" in report.text and "traceback" in report.text

    def test_resolution_days(self):
        report = make_report(resolved_at=T0 + timedelta(days=3, hours=12))
        assert report.resolution_days == pytest.approx(3.5)

    def test_unresolved_has_no_resolution(self):
        assert make_report().resolution_days is None

    def test_dict_roundtrip(self):
        report = make_report(
            resolved_at=T0 + timedelta(days=1),
            components=("intent",),
            gerrit_changes=[
                GerritChange(
                    change_id="I1234",
                    subject="Fix it",
                    merged_at=T0 + timedelta(days=1),
                    files_changed=("a.java",),
                    insertions=10,
                    deletions=2,
                )
            ],
        )
        clone = BugReport.from_dict(report.to_dict())
        assert clone.bug_id == report.bug_id
        assert clone.resolved_at == report.resolved_at
        assert clone.gerrit_changes[0].change_id == "I1234"
        assert clone.gerrit_changes[0].is_merged


class TestJiraTracker:
    def test_file_assigns_sequential_keys(self):
        jira = JiraTracker(["ONOS"])
        a = jira.file("ONOS", title="t", description="d", created_at=T0,
                      severity=Severity.CRITICAL)
        b = jira.file("ONOS", title="t2", description="d2", created_at=T0,
                      severity=Severity.MAJOR)
        assert (a.bug_id, b.bug_id) == ("ONOS-1", "ONOS-2")

    def test_unknown_project_rejected(self):
        jira = JiraTracker(["ONOS"])
        with pytest.raises(TrackerError, match="unknown project"):
            jira.file("CORD", title="t", description="d", created_at=T0,
                      severity=Severity.CRITICAL)

    def test_add_requires_severity(self):
        jira = JiraTracker(["ONOS"])
        with pytest.raises(TrackerError, match="severity"):
            jira.add(make_report(severity=None))

    def test_add_rejects_duplicates(self):
        jira = JiraTracker(["ONOS"])
        jira.add(make_report())
        with pytest.raises(TrackerError, match="duplicate"):
            jira.add(make_report())

    def test_resolve_sets_status_and_timestamp(self):
        jira = JiraTracker(["ONOS"])
        jira.add(make_report())
        jira.resolve("ONOS-1", T0 + timedelta(days=2))
        report = jira.get("ONOS-1")
        assert report.status is IssueStatus.CLOSED
        assert report.resolution_days == pytest.approx(2.0)

    def test_resolve_before_creation_rejected(self):
        jira = JiraTracker(["ONOS"])
        jira.add(make_report())
        with pytest.raises(TrackerError, match="precedes creation"):
            jira.resolve("ONOS-1", T0 - timedelta(days=1))

    def test_resolve_requires_closed_status(self):
        jira = JiraTracker(["ONOS"])
        jira.add(make_report())
        with pytest.raises(TrackerError, match="closed status"):
            jira.resolve("ONOS-1", T0 + timedelta(days=1), status=IssueStatus.OPEN)

    def test_critical_bugs_filter(self):
        jira = JiraTracker(["ONOS"])
        jira.add(make_report("ONOS-1", Severity.BLOCKER))
        jira.add(make_report("ONOS-2", Severity.CRITICAL))
        jira.add(make_report("ONOS-3", Severity.MAJOR))
        assert {r.bug_id for r in jira.critical_bugs()} == {"ONOS-1", "ONOS-2"}

    def test_search_time_window(self):
        jira = JiraTracker(["ONOS"])
        jira.add(make_report("ONOS-1", created_at=T0))
        jira.add(make_report("ONOS-2", created_at=T0 + timedelta(days=40)))
        hits = jira.search(created_after=T0 + timedelta(days=1))
        assert [r.bug_id for r in hits] == ["ONOS-2"]

    def test_quarterly_histogram(self):
        jira = JiraTracker(["ONOS"])
        jira.add(make_report("ONOS-1", created_at=datetime(2017, 2, 1)))
        jira.add(make_report("ONOS-2", created_at=datetime(2017, 3, 1)))
        jira.add(make_report("ONOS-3", created_at=datetime(2017, 8, 1)))
        assert jira.quarterly_histogram() == {"2017-Q1": 2, "2017-Q3": 1}

    def test_multi_project(self):
        jira = JiraTracker(["ONOS", "CORD"])
        jira.add(make_report("CORD-1", controller="CORD"))
        jira.add(make_report("ONOS-1"))
        assert len(jira.search(project="CORD")) == 1

    def test_gerrit_link(self):
        jira = JiraTracker(["ONOS"])
        jira.add(make_report())
        change = GerritChange(change_id="Iabc", subject="fix", merged_at=None)
        jira.link_gerrit("ONOS-1", change)
        assert not jira.get("ONOS-1").gerrit_changes[0].is_merged


class TestGithubTracker:
    def test_open_issue_sequences(self):
        gh = GithubTracker("FAUCET")
        a = gh.open_issue(title="t", description="d", created_at=T0)
        assert a.bug_id == "FAUCET-1"
        assert a.severity is None

    def test_add_rejects_severity(self):
        gh = GithubTracker("FAUCET")
        with pytest.raises(TrackerError, match="no structured severity"):
            gh.add(make_report("FAUCET-1", Severity.CRITICAL, controller="FAUCET"))

    def test_add_rejects_resolution_timestamp(self):
        gh = GithubTracker("FAUCET")
        report = make_report(
            "FAUCET-1", None, controller="FAUCET",
            resolved_at=T0 + timedelta(days=1),
        )
        with pytest.raises(TrackerError, match="resolution timestamps"):
            gh.add(report)

    def test_close_does_not_record_timestamp(self):
        gh = GithubTracker("FAUCET")
        issue = gh.open_issue(title="t", description="d", created_at=T0)
        gh.close(issue.bug_id)
        assert issue.status is IssueStatus.CLOSED
        assert issue.resolution_days is None

    def test_search_by_label(self):
        gh = GithubTracker("FAUCET")
        gh.open_issue(title="a", description="d", created_at=T0, labels=("bug",))
        gh.open_issue(title="b", description="d", created_at=T0)
        assert len(gh.search(label="bug")) == 1


class TestSeverityExtractor:
    def test_crash_text_is_critical(self):
        extractor = KeywordSeverityExtractor()
        report = make_report(
            severity=None,
            title="daemon crash on malformed packet",
            description="segfault and data loss, controller totally unusable",
        )
        assert extractor.extract(report) is Severity.BLOCKER

    def test_mild_text_is_not_critical(self):
        extractor = KeywordSeverityExtractor()
        report = make_report(
            severity=None,
            title="typo in documentation",
            description="a cosmetic issue in the docs page",
        )
        assert not extractor.is_critical(report)

    def test_label_override_wins(self):
        extractor = KeywordSeverityExtractor()
        report = make_report(severity=None, title="small thing",
                             description="minor", labels=("p0",))
        assert extractor.extract(report) is Severity.BLOCKER

    def test_keywords_count_once(self):
        extractor = KeywordSeverityExtractor()
        single = make_report(severity=None, title="x", description="hang")
        repeated = make_report(
            severity=None, title="x", description="hang hang hang hang"
        )
        assert extractor.score(single) == extractor.score(repeated)

    def test_word_boundaries_respected(self):
        extractor = KeywordSeverityExtractor()
        report = make_report(
            severity=None, title="x", description="the dosage changed"
        )
        # "dos" must not match inside "dosage".
        assert extractor.score(report) == 0.0

    def test_threshold_ordering_enforced(self):
        with pytest.raises(ValueError, match="strictly decreasing"):
            KeywordSeverityExtractor(critical_threshold=9.0)
