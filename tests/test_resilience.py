"""The resilience runtime: policies, breaker, supervisor, executor, A/B."""

from __future__ import annotations

import pytest

from repro.errors import (
    BulkheadFullError,
    CircuitOpenError,
    DeadlineExceededError,
    ResilienceError,
    SupervisionError,
)
from repro.resilience import (
    BreakerState,
    Bulkhead,
    CircuitBreaker,
    Deadline,
    ResilienceConfig,
    ResilienceEvent,
    ResilienceLedger,
    ResilientExecutor,
    RetryPolicy,
    SupervisedRestart,
    Supervisor,
    SupervisionStrategy,
)
from repro.sdnsim import EventScheduler
from repro.sdnsim.observers import Outcome
from repro.taxonomy import BugType, ByzantineMode, Symptom, Trigger


class TestRetryPolicy:
    def test_exponential_schedule(self):
        policy = RetryPolicy(max_attempts=4, base_delay=1.0, multiplier=2.0)
        assert policy.delays() == [1.0, 2.0, 4.0, 8.0]
        assert policy.total_delay == 15.0

    def test_max_delay_caps_schedule(self):
        policy = RetryPolicy(
            max_attempts=5, base_delay=1.0, multiplier=3.0, max_delay=5.0
        )
        assert max(policy.delays()) == 5.0

    def test_fixed_schedule(self):
        policy = RetryPolicy.fixed(2.5, max_attempts=3)
        assert policy.delays() == [2.5, 2.5, 2.5]

    def test_jitter_is_deterministic_and_bounded(self):
        a = RetryPolicy(max_attempts=5, base_delay=10.0, jitter=0.2, seed=7)
        b = RetryPolicy(max_attempts=5, base_delay=10.0, jitter=0.2, seed=7)
        assert a.delays() == b.delays()
        for attempt in range(1, 6):
            base = min(10.0 * 2.0 ** (attempt - 1), 30.0)
            assert base * 0.8 <= a.delay_for(attempt) <= base * 1.2
        # A different seed gives a different (but still valid) schedule.
        c = RetryPolicy(max_attempts=5, base_delay=10.0, jitter=0.2, seed=8)
        assert c.delays() != a.delays()

    def test_jitter_is_call_order_independent(self):
        policy = RetryPolicy(max_attempts=3, base_delay=1.0, jitter=0.3, seed=1)
        reversed_order = [policy.delay_for(i) for i in (3, 2, 1)][::-1]
        assert reversed_order == policy.delays()

    def test_zero_attempts_disables_retrying(self):
        assert RetryPolicy(max_attempts=0).delays() == []

    def test_validation(self):
        with pytest.raises(ResilienceError):
            RetryPolicy(max_attempts=-1)
        with pytest.raises(ResilienceError):
            RetryPolicy(base_delay=-0.1)
        with pytest.raises(ResilienceError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ResilienceError):
            RetryPolicy(base_delay=10.0, max_delay=1.0)
        with pytest.raises(ResilienceError):
            RetryPolicy(jitter=1.0)
        with pytest.raises(ResilienceError):
            RetryPolicy().delay_for(0)


class TestDeadline:
    def test_expires_on_the_sim_clock(self):
        scheduler = EventScheduler()
        deadline = Deadline(scheduler.clock, budget=5.0)
        assert deadline.remaining == 5.0
        assert not deadline.expired
        deadline.check()  # within budget: no raise
        scheduler.schedule(6.0, lambda: None)
        scheduler.run(until=10.0)
        assert deadline.expired
        assert deadline.remaining == 0.0
        with pytest.raises(DeadlineExceededError, match="tsdb write"):
            deadline.check("tsdb write")

    def test_budget_must_be_positive(self):
        with pytest.raises(ResilienceError):
            Deadline(EventScheduler().clock, budget=0.0)


class TestBulkhead:
    def test_caps_concurrency(self):
        ledger = ResilienceLedger()
        bulkhead = Bulkhead(2, name="workers", ledger=ledger)
        bulkhead.acquire()
        bulkhead.acquire()
        with pytest.raises(BulkheadFullError, match="workers"):
            bulkhead.acquire()
        assert bulkhead.rejected == 1
        assert bulkhead.peak_in_use == 2
        assert ledger.count(ResilienceEvent.SHED) == 1
        bulkhead.release()
        bulkhead.acquire()  # capacity freed

    def test_context_manager(self):
        bulkhead = Bulkhead(1)
        with bulkhead:
            assert bulkhead.in_use == 1
        assert bulkhead.in_use == 0

    def test_release_when_empty_rejected(self):
        with pytest.raises(ResilienceError):
            Bulkhead(1).release()


class TestCircuitBreaker:
    def make(self, ledger=None, **kwargs):
        scheduler = EventScheduler()
        defaults = dict(
            failure_threshold=0.5, window=4, min_calls=2, cooldown=10.0
        )
        defaults.update(kwargs)
        return scheduler, CircuitBreaker(scheduler, ledger=ledger, **defaults)

    def test_trips_on_failure_rate(self):
        ledger = ResilienceLedger()
        scheduler, breaker = self.make(ledger)
        breaker.record_failure()  # below min_calls: stays closed
        assert breaker.state is BreakerState.CLOSED
        breaker.record_failure(
            trigger=Trigger.EXTERNAL_CALLS, symptom=Symptom.ERROR_MESSAGE
        )
        assert breaker.state is BreakerState.OPEN
        assert breaker.trips == 1
        assert not breaker.allow()
        [opened] = ledger.by_event(ResilienceEvent.BREAKER_OPEN)
        assert opened.trigger is Trigger.EXTERNAL_CALLS
        assert opened.delay == 10.0

    def test_successes_keep_rate_below_threshold(self):
        _, breaker = self.make()
        for _ in range(3):
            breaker.record_success()
        breaker.record_failure()  # 1/4 failures < 0.5
        assert breaker.state is BreakerState.CLOSED

    def test_half_open_probe_closes_on_success(self):
        ledger = ResilienceLedger()
        scheduler, breaker = self.make(ledger)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        scheduler.run(until=15.0)  # cool-down elapses on the sim clock
        assert breaker.state is BreakerState.HALF_OPEN
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED
        assert ledger.count(ResilienceEvent.BREAKER_HALF_OPEN) == 1
        assert ledger.count(ResilienceEvent.BREAKER_CLOSE) == 1

    def test_half_open_probe_failure_reopens(self):
        scheduler, breaker = self.make()
        breaker.record_failure()
        breaker.record_failure()
        scheduler.run(until=15.0)
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert breaker.trips == 2

    def test_call_wrapper_sheds_while_open(self):
        scheduler, breaker = self.make()
        with pytest.raises(RuntimeError):
            breaker.call(lambda: (_ for _ in ()).throw(RuntimeError("down")))
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        with pytest.raises(CircuitOpenError):
            breaker.call(lambda: "never runs")
        assert breaker.shed_calls == 1
        assert breaker.call.__doc__  # wrapper stays documented

    def test_validation(self):
        scheduler = EventScheduler()
        with pytest.raises(ResilienceError):
            CircuitBreaker(scheduler, failure_threshold=0.0)
        with pytest.raises(ResilienceError):
            CircuitBreaker(scheduler, min_calls=10, window=5)
        with pytest.raises(ResilienceError):
            CircuitBreaker(scheduler, cooldown=0.0)


class TestHalfOpenConcurrentProbes:
    """Half-open recovery probed by several workers at once, with a
    bulkhead in front of the backend — the interaction the serving
    daemon relies on.  All concurrency is modelled as interleaved
    events on the simulation clock, so every run is deterministic."""

    def make(self, *, half_open_probes=2, bulkhead_capacity=2):
        scheduler = EventScheduler()
        ledger = ResilienceLedger()
        breaker = CircuitBreaker(
            scheduler,
            name="backend",
            failure_threshold=0.5,
            window=4,
            min_calls=2,
            cooldown=10.0,
            half_open_probes=half_open_probes,
            ledger=ledger,
        )
        bulkhead = Bulkhead(bulkhead_capacity, name="backend", ledger=ledger)
        return scheduler, breaker, bulkhead, ledger

    def trip(self, breaker):
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN

    def start_probe(self, breaker, bulkhead):
        """One worker's probe attempt: breaker gate, then bulkhead gate.

        Returns a finish callback when the probe is admitted, None when
        it was turned away by either guard.
        """
        if not breaker.allow():
            return None
        try:
            bulkhead.acquire()
        except BulkheadFullError:
            return None
        breaker.begin_probe()

        def finish(ok):
            bulkhead.release()
            if ok:
                breaker.record_success()
            else:
                breaker.record_failure()

        return finish

    def test_probe_quota_caps_concurrent_probes(self):
        scheduler, breaker, bulkhead, _ = self.make(half_open_probes=2)
        self.trip(breaker)
        outcomes = {}

        def worker(name, duration, ok):
            finish = self.start_probe(breaker, bulkhead)
            if finish is None:
                outcomes[name] = "rejected"
                return
            outcomes[name] = "probing"
            scheduler.schedule(duration, lambda: finish(ok))

        # Cool-down ends at t=10; three workers race to probe at t=11.
        scheduler.schedule_at(11.0, lambda: worker("a", 2.0, True))
        scheduler.schedule_at(11.0, lambda: worker("b", 2.0, True))
        scheduler.schedule_at(11.0, lambda: worker("c", 2.0, True))
        scheduler.run(until=11.5)
        # Only the probe quota got through; the third was shed by the
        # breaker itself, not the bulkhead.
        assert outcomes == {"a": "probing", "b": "probing", "c": "rejected"}
        assert breaker.probes_inflight == 2
        assert bulkhead.in_use == 2
        scheduler.run(until=20.0)
        assert breaker.state is BreakerState.CLOSED
        assert breaker.probes_inflight == 0
        assert bulkhead.in_use == 0

    def test_bulkhead_tighter_than_probe_quota(self):
        scheduler, breaker, bulkhead, ledger = self.make(
            half_open_probes=2, bulkhead_capacity=1
        )
        self.trip(breaker)
        admitted = []

        def worker(name):
            finish = self.start_probe(breaker, bulkhead)
            if finish is not None:
                admitted.append(name)
                scheduler.schedule(2.0, lambda: finish(True))

        scheduler.schedule_at(11.0, lambda: worker("a"))
        scheduler.schedule_at(11.2, lambda: worker("b"))
        scheduler.run(until=12.0)
        # The breaker would allow a second probe, but the bulkhead is
        # the tighter guard — worker b never reached the backend.
        assert admitted == ["a"]
        assert breaker.probes_inflight == 1
        assert bulkhead.rejected == 1
        scheduler.run(until=20.0)
        assert breaker.state is BreakerState.CLOSED

    def test_first_probe_failure_reopens_while_peer_inflight(self):
        scheduler, breaker, bulkhead, ledger = self.make(half_open_probes=2)
        self.trip(breaker)
        finishes = []

        def launch():
            for _ in range(2):
                finish = self.start_probe(breaker, bulkhead)
                assert finish is not None
                finishes.append(finish)

        scheduler.schedule_at(11.0, launch)
        # Probe 1 fails at t=12 -> the breaker reopens immediately.
        scheduler.schedule_at(12.0, lambda: finishes[0](False))
        # Probe 2 straggles in successfully at t=13 — too late to close.
        scheduler.schedule_at(13.0, lambda: finishes[1](True))
        scheduler.run(until=14.0)
        assert breaker.state is BreakerState.OPEN
        assert breaker.trips == 2
        assert bulkhead.in_use == 0
        # The straggler's success must not have closed the breaker; the
        # next recovery attempt is a fresh cool-down cycle.
        scheduler.run(until=30.0)
        assert breaker.state is BreakerState.HALF_OPEN

    def test_probe_slots_recycle_within_half_open(self):
        scheduler, breaker, bulkhead, _ = self.make(half_open_probes=1)
        self.trip(breaker)
        scheduler.run(until=11.0)
        assert breaker.state is BreakerState.HALF_OPEN
        # First probe occupies the single slot...
        first = self.start_probe(breaker, bulkhead)
        assert first is not None
        assert self.start_probe(breaker, bulkhead) is None
        # ...fails, reopening; after another cool-down the slot is free
        # again for the next probe, which succeeds and closes.
        first(False)
        assert breaker.state is BreakerState.OPEN
        scheduler.run(until=25.0)
        assert breaker.state is BreakerState.HALF_OPEN
        second = self.start_probe(breaker, bulkhead)
        assert second is not None
        second(True)
        assert breaker.state is BreakerState.CLOSED
        assert bulkhead.in_use == 0

    def test_closed_state_calls_are_not_probes(self):
        _, breaker, bulkhead, _ = self.make()
        finish = self.start_probe(breaker, bulkhead)
        assert finish is not None
        assert breaker.probes_inflight == 0  # begin_probe no-ops closed
        finish(True)
        assert breaker.state is BreakerState.CLOSED


class _Flaky:
    """A child that dies a configurable number of times when poked."""

    def __init__(self) -> None:
        self.starts = 0


class TestSupervisor:
    def make(self, **kwargs):
        scheduler = EventScheduler()
        ledger = ResilienceLedger()
        supervisor = Supervisor(
            scheduler,
            max_restarts=2,
            intensity_window=60.0,
            restart_delay=1.0,
            ledger=ledger,
            **kwargs,
        )
        return scheduler, ledger, supervisor

    def test_restarts_child_after_delay(self):
        scheduler, ledger, supervisor = self.make()
        counter = {"starts": 0}

        def factory():
            counter["starts"] += 1
            return object()

        first = supervisor.supervise("ctl", factory)
        assert counter["starts"] == 1
        supervisor.notify_failure("ctl", "heartbeat lost")
        assert supervisor.child("ctl") is first  # not yet: backoff pending
        scheduler.run(until=5.0)
        assert counter["starts"] == 2
        assert supervisor.child("ctl") is not first
        assert supervisor.restart_count("ctl") == 1
        [restart] = ledger.by_event(ResilienceEvent.RESTART)
        assert restart.component == "ctl"

    def test_escalates_one_for_one_to_all_for_one(self):
        scheduler, ledger, supervisor = self.make()
        starts = {"ctl": 0, "tsdb": 0}
        for name in starts:
            supervisor.supervise(name, lambda name=name: starts.__setitem__(
                name, starts[name] + 1
            ))
        # Exhaust ctl's intensity budget (2 restarts in the window)...
        supervisor.notify_failure("ctl")
        supervisor.notify_failure("ctl")
        scheduler.run(until=5.0)
        assert supervisor.strategy is SupervisionStrategy.ONE_FOR_ONE
        # ...the third failure escalates and restarts *every* child.
        supervisor.notify_failure("ctl", symptom=Symptom.FAIL_STOP)
        scheduler.run(until=10.0)
        assert supervisor.strategy is SupervisionStrategy.ALL_FOR_ONE
        assert supervisor.escalations == 1
        assert ledger.count(ResilienceEvent.ESCALATION) == 1
        assert starts["tsdb"] == 2  # initial + all-for-one sweep

    def test_gives_up_after_all_for_one(self):
        scheduler, ledger, supervisor = self.make(
            strategy=SupervisionStrategy.ALL_FOR_ONE
        )
        supervisor.supervise("ctl", object)
        supervisor.notify_failure("ctl")
        supervisor.notify_failure("ctl")
        scheduler.run(until=5.0)
        supervisor.notify_failure("ctl")
        assert supervisor.failed
        assert ledger.count(ResilienceEvent.GIVE_UP) == 1
        with pytest.raises(SupervisionError, match="already gave up"):
            supervisor.notify_failure("ctl")

    def test_intensity_window_prunes_old_restarts(self):
        scheduler, _, supervisor = self.make()
        supervisor.supervise("ctl", object)
        supervisor.notify_failure("ctl")
        supervisor.notify_failure("ctl")
        # Let the window slide past both restarts...
        scheduler.schedule(100.0, lambda: None)
        scheduler.run(until=120.0)
        # ...so the budget is fresh and no escalation happens.
        supervisor.notify_failure("ctl")
        assert supervisor.strategy is SupervisionStrategy.ONE_FOR_ONE

    def test_unknown_and_duplicate_children_rejected(self):
        _, _, supervisor = self.make()
        supervisor.supervise("ctl", object)
        with pytest.raises(ResilienceError):
            supervisor.supervise("ctl", object)
        with pytest.raises(ResilienceError):
            supervisor.notify_failure("ghost")
        with pytest.raises(ResilienceError):
            supervisor.child("ghost")


class TestSupervisedRestart:
    def test_detects_crashes_and_stalls_only(self):
        assert SupervisedRestart.detects(Outcome(symptom=Symptom.FAIL_STOP))
        assert SupervisedRestart.detects(
            Outcome(
                symptom=Symptom.BYZANTINE, byzantine_mode=ByzantineMode.STALL
            )
        )
        assert not SupervisedRestart.detects(
            Outcome(
                symptom=Symptom.BYZANTINE,
                byzantine_mode=ByzantineMode.INCORRECT_BEHAVIOR,
            )
        )
        assert not SupervisedRestart.detects(Outcome(symptom=Symptom.PERFORMANCE))

    def test_nondeterministic_crash_recovers(self):
        ledger = ResilienceLedger()
        harness = SupervisedRestart(
            backoff=RetryPolicy(max_attempts=2, base_delay=2.0), ledger=ledger
        )

        def execute(seed: int) -> Outcome:
            # Crashes for the original timing only.
            if seed == 0:
                return Outcome(symptom=Symptom.FAIL_STOP, detail="raced")
            return Outcome(symptom=None, detail="healthy")

        run = harness.run(execute, 0, trigger=Trigger.NETWORK_EVENTS)
        assert run.detected and run.recovered
        assert run.restarts == 1
        assert run.recovery_latency == 2.0
        assert ledger.count(ResilienceEvent.RESTART) == 1
        assert ledger.count(ResilienceEvent.GIVE_UP) == 0

    def test_deterministic_crash_exhausts_budget(self):
        ledger = ResilienceLedger()
        harness = SupervisedRestart(
            backoff=RetryPolicy(max_attempts=2, base_delay=2.0, multiplier=2.0),
            ledger=ledger,
        )
        execute = lambda seed: Outcome(  # noqa: E731
            symptom=Symptom.FAIL_STOP, detail="same crash every time"
        )
        run = harness.run(execute, 0)
        assert run.detected and not run.recovered
        assert run.restarts == 2
        assert run.recovery_latency == 6.0  # 2 + 4
        assert ledger.count(ResilienceEvent.GIVE_UP) == 1

    def test_undetectable_outcome_untouched(self):
        harness = SupervisedRestart()
        run = harness.run(
            lambda seed: Outcome(symptom=Symptom.PERFORMANCE), 0
        )
        assert not run.detected and not run.recovered
        assert run.restarts == 0


class TestResilientExecutor:
    def test_partial_results_degrade_gracefully(self):
        def shaky(item: int) -> int:
            if item == 2:
                raise ValueError("bad item")
            return item * 10

        report = ResilientExecutor().map(shaky, [0, 1, 2, 3])
        assert report.degraded
        assert report.values() == [0, 10, 30]
        assert report.success_rate == 0.75
        [failure] = report.failures
        assert failure.index == 2
        assert "ValueError" in failure.error
        assert not failure.transient

    def test_transient_errors_are_retried(self):
        ledger = ResilienceLedger()
        attempts: dict[int, int] = {}

        def flaky(item: int) -> int:
            attempts[item] = attempts.get(item, 0) + 1
            if item == 1 and attempts[item] == 1:
                raise TimeoutError("transient blip")
            return item

        executor = ResilientExecutor(
            retry=RetryPolicy(max_attempts=2, base_delay=0.5),
            transient=(TimeoutError,),
            ledger=ledger,
        )
        report = executor.map(flaky, [0, 1])
        assert not report.degraded
        assert report.retries == 1
        assert attempts[1] == 2
        assert ledger.count(ResilienceEvent.RETRY) == 1

    def test_transient_budget_exhaustion_fails_item(self):
        def always_times_out(item: int) -> int:
            raise TimeoutError("still down")

        executor = ResilientExecutor(
            retry=RetryPolicy(max_attempts=2, base_delay=0.1),
            transient=(TimeoutError,),
        )
        report = executor.map(always_times_out, [1])
        [failure] = report.failures
        assert failure.transient
        assert failure.attempts == 3  # initial + 2 retries

    def test_abort_threshold(self):
        executor = ResilientExecutor(abort_threshold=0.5)
        with pytest.raises(ResilienceError, match="abort threshold"):
            executor.map(lambda item: 1 // item, [0, 0, 0, 1])
        with pytest.raises(ResilienceError):
            ResilientExecutor(abort_threshold=1.5)

    def test_empty_input(self):
        report = ResilientExecutor().map(lambda item: item, [])
        assert not report.degraded
        assert report.success_rate == 1.0


class TestLedger:
    def test_accounting(self):
        ledger = ResilienceLedger()
        ledger.record(
            ResilienceEvent.RETRY,
            "tsdb",
            time=1.0,
            trigger=Trigger.EXTERNAL_CALLS,
            symptom=Symptom.ERROR_MESSAGE,
            attempt=1,
            delay=2.0,
        )
        ledger.record(
            ResilienceEvent.RESTART,
            "controller",
            time=3.0,
            trigger=Trigger.NETWORK_EVENTS,
            symptom=Symptom.FAIL_STOP,
            delay=4.0,
        )
        assert len(ledger) == 2
        assert ledger.count(ResilienceEvent.RETRY) == 1
        assert ledger.recovery_cost() == 6.0
        assert ledger.by_trigger() == {
            Trigger.EXTERNAL_CALLS: 1,
            Trigger.NETWORK_EVENTS: 1,
        }
        assert ledger.absorbed_symptoms() == {
            Symptom.ERROR_MESSAGE: 1,
            Symptom.FAIL_STOP: 1,
        }
        assert "retry=1" in ledger.summary()
        assert "6.0s" in ledger.summary()

    def test_serialization_round_trip(self):
        """JSON round-trip preserves every record field and the totals the
        A/B reports are priced from."""
        ledger = ResilienceLedger()
        ledger.record(
            ResilienceEvent.RETRY,
            "tsdb",
            time=1.5,
            detail="timeout on write",
            trigger=Trigger.EXTERNAL_CALLS,
            symptom=Symptom.ERROR_MESSAGE,
            attempt=2,
            delay=0.75,
        )
        ledger.record(
            ResilienceEvent.VIOLATION,
            "cluster",
            time=9.0,
            detail="wedged: live members but no quorum",
            trigger=Trigger.NETWORK_EVENTS,
            symptom=Symptom.BYZANTINE,
        )
        ledger.record(ResilienceEvent.GIVE_UP, "controller", time=12.0, delay=3.25)

        restored = ResilienceLedger.from_json(ledger.to_json())
        assert restored.records == ledger.records
        assert restored.recovery_cost() == ledger.recovery_cost() == 4.0
        assert restored.by_trigger() == ledger.by_trigger()
        assert restored.absorbed_symptoms() == ledger.absorbed_symptoms()
        assert restored.summary() == ledger.summary()
        # None-valued trigger/symptom survive the trip (the GIVE_UP record).
        assert restored.records[2].trigger is None
        assert restored.records[2].symptom is None

    def test_serialization_empty_ledger(self):
        restored = ResilienceLedger.from_json(ResilienceLedger().to_json())
        assert len(restored) == 0
        assert restored.recovery_cost() == 0.0
        assert "0 actions" in restored.summary()


class TestGuardedScenario:
    def test_build_scenario_hardens_on_request(self):
        from repro.faultinjection.scenario import build_scenario

        scenario = build_scenario(resilience=ResilienceConfig.default())
        assert scenario.guarded_tsdb is not None
        assert scenario.ledger is not None
        # The raw backend stays reachable for fault perturbations.
        assert scenario.guarded_tsdb.backend is scenario.tsdb

    def test_resilience_context_is_ambient_and_restores(self):
        from repro.faultinjection.scenario import build_scenario, resilience_context

        with resilience_context(ResilienceConfig.default()):
            hardened = build_scenario()
        bare = build_scenario()
        assert hardened.guarded_tsdb is not None
        assert bare.guarded_tsdb is None

    def test_transient_outage_absorbed(self):
        """A short TSDB outage produces retries, not error logs (the
        external-tsdb-flaky symptom disappears under the guard)."""
        from repro.faultinjection.scenario import build_scenario, run_workload

        scenario = build_scenario(resilience=ResilienceConfig.default())

        def outage(result) -> None:
            result.scheduler.schedule(
                4.0, lambda: setattr(result.tsdb, "available", False)
            )
            result.scheduler.schedule(
                7.0, lambda: setattr(result.tsdb, "available", True)
            )

        run_workload(scenario, extra_events=outage, seed=0)
        assert scenario.outcome().symptom is None
        assert scenario.guarded_tsdb.absorbed_failures > 0
        assert scenario.ledger.count(ResilienceEvent.RETRY) > 0
        assert scenario.runtime.errors == []

    def test_deterministic_type_error_propagates(self):
        from repro.sdnsim.services import (
            GuardedTimeSeriesDB,
            ServiceTypeError,
            TimeSeriesDB,
        )

        scheduler = EventScheduler()
        guarded = GuardedTimeSeriesDB(TimeSeriesDB(api_version=2), scheduler)
        with pytest.raises(ServiceTypeError):
            guarded.write("stats", {"pkts": "not-a-number"}, timestamp=0.0)

    def test_permanent_outage_drops_after_budget(self):
        from repro.sdnsim.services import GuardedTimeSeriesDB, TimeSeriesDB

        scheduler = EventScheduler()
        ledger = ResilienceLedger()
        backend = TimeSeriesDB(available=False)
        guarded = GuardedTimeSeriesDB(
            backend,
            scheduler,
            retry=RetryPolicy(max_attempts=2, base_delay=1.0),
            ledger=ledger,
        )
        guarded.write("stats", {"pkts": 1}, timestamp=0.0)  # no raise
        scheduler.run(until=60.0)
        assert guarded.dropped_writes == 1
        assert guarded.pending_retries == 0
        assert backend.count() == 0
        assert ledger.count(ResilienceEvent.DEGRADATION) == 1

    def test_breaker_sheds_writes_while_open(self):
        from repro.sdnsim.services import GuardedTimeSeriesDB, TimeSeriesDB

        scheduler = EventScheduler()
        backend = TimeSeriesDB(available=False)
        breaker = CircuitBreaker(
            scheduler, window=4, min_calls=2, cooldown=100.0
        )
        guarded = GuardedTimeSeriesDB(backend, scheduler, breaker=breaker)
        guarded.write("stats", {"pkts": 1}, timestamp=0.0)
        guarded.write("stats", {"pkts": 2}, timestamp=1.0)
        assert breaker.state is BreakerState.OPEN
        guarded.write("stats", {"pkts": 3}, timestamp=2.0)
        assert guarded.shed_writes >= 1


class TestAbCampaign:
    """The acceptance criterion: hardening helps exactly where §VII says."""

    @pytest.fixture(scope="class")
    def report(self):
        from repro.faultinjection import FaultCampaign

        return FaultCampaign(seeds_per_fault=3).run_ab()

    def test_symptom_rate_measurably_reduced(self, report):
        assert report.baseline_symptom_rate > report.hardened_symptom_rate
        assert report.symptom_reduction > 0

    def test_improvements_are_nondeterministic_only(self, report):
        improved = report.improved_results()
        assert improved, "hardening should absorb at least one fault"
        for result in improved:
            assert result.spec.bug_type is BugType.NON_DETERMINISTIC

    def test_deterministic_faults_resist_restart(self, report):
        for result in report.results:
            if result.spec.bug_type is BugType.DETERMINISTIC:
                assert (
                    result.hardened_symptom_rate == result.baseline_symptom_rate
                ), result.spec.fault_id

    def test_flaky_tsdb_fully_absorbed(self, report):
        result = report.result_for("external-tsdb-flaky")
        assert result.hardened_symptom_rate == 0.0

    def test_startup_race_recovered_by_restart(self, report):
        result = report.result_for("network-startup-race")
        assert result.baseline_symptom_rate > 0
        assert result.hardened_symptom_rate == 0.0
        assert result.restarts > 0
        assert result.recovery_latency > 0

    def test_ledger_priced_the_recovery(self, report):
        assert report.ledger.count(ResilienceEvent.RESTART) > 0
        assert report.ledger.count(ResilienceEvent.GIVE_UP) > 0
        assert report.mean_recovery_latency > 0
        assert report.ledger.recovery_cost() > 0

    def test_residual_breakdown_and_summary(self, report):
        breakdown = report.residual_by_root_cause()
        assert breakdown
        summary = report.summary()
        assert summary["faults"] == len(report)
        assert "external-tsdb-flaky" in summary["improved_faults"]
        with pytest.raises(KeyError):
            report.result_for("no-such-fault")


class TestSupervisedRestartStrategy:
    def test_capability_profile(self):
        from repro.faultinjection.faults import catalog_by_id
        from repro.frameworks import SupervisedRestartStrategy

        catalog = catalog_by_id()
        strategy = SupervisedRestartStrategy()
        # Deterministic crash: detected, budget spent, not recovered.
        crash = strategy.attempt(catalog["config-missing-multicast"], seed=0)
        assert crash.detected and not crash.recovered
        # Transient external failure: absorbed below the supervisor.
        absorbed = strategy.attempt(catalog["external-tsdb-flaky"], seed=2)
        assert absorbed.detected and absorbed.recovered
        assert "absorbed" in absorbed.detail
        # Non-deterministic startup race: restart wins.
        race = strategy.attempt(catalog["network-startup-race"], seed=0)
        assert race.detected and race.recovered


class TestResilientValidation:
    def test_validation_survives_a_poisoned_dimension(self):
        from repro.corpus import CorpusGenerator
        from repro.pipeline.validation import validate_dimensions_resilient

        dataset = CorpusGenerator(seed=2020).generate().manual_sample
        reports, execution = validate_dimensions_resilient(
            dataset, dimensions=("bug_type", "no_such_dimension")
        )
        assert execution.degraded
        assert set(reports) == {"bug_type"}
        assert reports["bug_type"].accuracy > 0.5
        [failure] = execution.failures
        assert failure.item == "no_such_dimension"
