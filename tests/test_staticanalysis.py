"""sdnlint: detectors, baseline, reporters, extraction, and the self-scan."""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

import repro
from repro.errors import StaticAnalysisError
from repro.smells import SmellKind, analyze
from repro.staticanalysis import (
    DETECTOR_TYPES,
    Analyzer,
    Severity,
    apply_baseline,
    detector_ids,
    extract_code_model,
    load_baseline,
    load_module,
    run_lint,
    to_json,
    to_text,
    write_baseline,
)

FIXTURES = Path(__file__).parent / "fixtures" / "lint"

#: detector id -> fixture basename stem.
_ALL_IDS = sorted(detector_ids())


def _fixture(detector_id: str, kind: str) -> Path:
    path = FIXTURES / f"{detector_id.replace('-', '_')}_{kind}.py"
    assert path.exists(), f"missing fixture {path}"
    return path


def _run_single(detector_id: str, *paths: Path):
    detector_type = next(t for t in DETECTOR_TYPES if t.id == detector_id)
    return run_lint(paths, detectors=[detector_type()], root=FIXTURES)


class TestFixturePairs:
    @pytest.mark.parametrize("detector_id", _ALL_IDS)
    def test_positive_fixture_fires(self, detector_id):
        report = _run_single(detector_id, _fixture(detector_id, "pos"))
        hits = [f for f in report.active if f.detector == detector_id]
        assert hits, f"{detector_id} silent on its positive fixture"
        for finding in hits:
            assert finding.line > 0
            assert finding.severity in (Severity.ERROR, Severity.WARNING)

    @pytest.mark.parametrize("detector_id", _ALL_IDS)
    def test_negative_fixture_silent(self, detector_id):
        report = _run_single(detector_id, _fixture(detector_id, "neg"))
        hits = [f for f in report.active if f.detector == detector_id]
        assert not hits, f"{detector_id} false positive(s): {hits}"

    def test_every_detector_has_both_fixtures(self):
        for detector_id in _ALL_IDS:
            _fixture(detector_id, "pos")
            _fixture(detector_id, "neg")


class TestLockOrderCycle:
    def test_cross_module_cycle(self, tmp_path):
        (tmp_path / "one.py").write_text(textwrap.dedent("""\
            import threading
            alpha_lock = threading.Lock()
            beta_lock = threading.Lock()

            def forward(work):
                with alpha_lock:
                    with beta_lock:
                        work()
            """))
        (tmp_path / "two.py").write_text(textwrap.dedent("""\
            import threading
            alpha_lock = threading.Lock()
            beta_lock = threading.Lock()

            def backward(work):
                with beta_lock:
                    with alpha_lock:
                        work()
            """))
        # Same-named module-level locks stay module-qualified, so these two
        # files alone do not share identities; a cycle needs shared locks.
        report = run_lint([tmp_path], root=tmp_path)
        assert not [f for f in report.active if f.detector == "lock-order-cycle"]

        (tmp_path / "three.py").write_text(textwrap.dedent("""\
            from one import alpha_lock, beta_lock

            def backward(work):
                with beta_lock:
                    with alpha_lock:
                        work()
            """))
        report = run_lint([tmp_path], root=tmp_path)
        hits = [f for f in report.active if f.detector == "lock-order-cycle"]
        assert hits
        assert "conflicting orders" in hits[0].message

    def test_multi_item_with_orders_left_to_right(self, tmp_path):
        (tmp_path / "abba.py").write_text(textwrap.dedent("""\
            import threading
            first_lock = threading.Lock()
            second_lock = threading.Lock()

            def one(work):
                with first_lock, second_lock:
                    work()

            def two(work):
                with second_lock, first_lock:
                    work()
            """))
        report = run_lint([tmp_path], root=tmp_path)
        assert [f for f in report.active if f.detector == "lock-order-cycle"]


class TestSuppression:
    def test_inline_disable(self, tmp_path):
        src = tmp_path / "mod.py"
        src.write_text(
            "import random\n"
            "a = random.random()  # sdnlint: disable=unseeded-random\n"
            "b = random.random()\n"
        )
        report = run_lint([src], root=tmp_path)
        lines = [f.line for f in report.active if f.detector == "unseeded-random"]
        assert lines == [3]

    def test_inline_disable_all(self, tmp_path):
        src = tmp_path / "mod.py"
        src.write_text(
            "import random\n"
            "a = random.random()  # sdnlint: disable-all\n"
        )
        report = run_lint([src], root=tmp_path)
        assert not report.active


class TestBaseline:
    def test_round_trip_suppresses_exact_matches(self, tmp_path):
        report = _run_single("unseeded-random", _fixture("unseeded-random", "pos"))
        assert report.active
        baseline_path = tmp_path / "baseline.json"
        written = write_baseline(report, baseline_path)
        assert written == len(report.active)

        suppressed = apply_baseline(report, load_baseline(baseline_path))
        assert not suppressed.active
        assert len(suppressed.suppressed) == written
        # A shifted finding (new line) is NOT covered by the baseline.
        keys = load_baseline(baseline_path)
        moved = {(d, p, line + 1) for d, p, line in keys}
        still_active = apply_baseline(report, moved)
        assert len(still_active.active) == len(report.active)

    def test_missing_baseline_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "nope.json") == set()

    def test_malformed_baseline_rejected(self, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text('{"version": 99}')
        with pytest.raises(StaticAnalysisError):
            load_baseline(bad)

    def test_committed_baseline_matches_current_warnings(self):
        """The committed lint-baseline.json must stay in sync with the tree."""
        repo_root = Path(repro.__file__).resolve().parents[2]
        baseline_path = repo_root / "lint-baseline.json"
        assert baseline_path.exists()
        report = run_lint([Path(repro.__file__).parent], root=repo_root)
        report = apply_baseline(report, load_baseline(baseline_path))
        stale = [f for f in report.active if f.severity >= Severity.WARNING]
        assert not stale, f"unbaselined findings: {[f.location for f in stale]}"


class TestReporters:
    def test_text_report(self):
        report = _run_single("wall-clock", _fixture("wall-clock", "pos"))
        text = to_text(report)
        assert "wall_clock_pos.py" in text
        assert "error:" in text
        assert "root_cause=ecosystem_system_call" in text
        assert "module(s) scanned" in text

    def test_json_report(self):
        report = _run_single("bare-except", _fixture("bare-except", "pos"))
        payload = json.loads(to_json(report))
        assert payload["modules_scanned"] == 1
        (finding,) = payload["findings"]
        assert finding["detector"] == "bare-except"
        assert finding["severity"] == "error"
        assert finding["root_cause"] == "missing_logic"
        assert finding["bug_type"] == "deterministic"

    def test_syntax_error_is_analysis_error(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def (:\n")
        with pytest.raises(StaticAnalysisError):
            load_module(bad)


class TestSelfScan:
    """The repo gates itself: src/repro must stay clean at error severity."""

    def test_src_repro_has_no_errors(self):
        package_root = Path(repro.__file__).parent
        report = run_lint([package_root], root=package_root.parents[1])
        errors = [f for f in report.active if f.severity >= Severity.ERROR]
        assert not errors, "\n" + to_text(report)
        assert report.modules_scanned > 100


class TestExtraction:
    def test_recovery_model_is_stable(self):
        package = Path(repro.__file__).parent / "recovery"
        first = extract_code_model(package, name="repro.recovery")
        second = extract_code_model(package, name="repro.recovery")
        assert len(first.classes) == len(second.classes) == 10
        assert len(first.packages) == len(second.packages) == 1
        assert sorted(first.classes) == sorted(second.classes)
        assert "repro.recovery.journal.RunJournal" in first.classes

    def test_recovery_model_analyzes_cleanly(self):
        package = Path(repro.__file__).parent / "recovery"
        model = extract_code_model(package, name="repro.recovery")
        report = analyze(model)
        assert report.model_name == "repro.recovery"

    def test_full_repo_smells_non_empty(self):
        model = extract_code_model(Path(repro.__file__).parent, name="repro")
        report = analyze(model)
        assert report.instances, "Fig-8 smells empty over src/repro"
        assert report.count(SmellKind.GOD_COMPONENT) >= 1

    def test_kinds_filter_is_subset_of_full_report(self):
        model = extract_code_model(Path(repro.__file__).parent / "sdnsim")
        full = analyze(model)
        only_god = analyze(model, kinds=[SmellKind.GOD_COMPONENT])
        assert {i.kind for i in only_god.instances} <= {SmellKind.GOD_COMPONENT}
        assert only_god.count(SmellKind.GOD_COMPONENT) == full.count(
            SmellKind.GOD_COMPONENT
        )

    def test_extraction_resolves_supertypes(self):
        model = extract_code_model(Path(repro.__file__).parent / "staticanalysis")
        subtype = model.get_class(
            "repro.staticanalysis.checks.nondeterminism.WallClockDetector"
        )
        assert subtype.supertype == "repro.staticanalysis.checks.base.Detector"
        assert subtype.inherited_members_used  # overrides check_module


class TestAnalyzerContract:
    def test_duplicate_detector_ids_rejected(self):
        detector_type = DETECTOR_TYPES[0]
        with pytest.raises(StaticAnalysisError):
            Analyzer([detector_type(), detector_type()])

    def test_findings_sorted_and_relative(self):
        report = run_lint([FIXTURES], root=FIXTURES)
        locations = [(f.path, f.line, f.detector) for f in report.findings]
        assert locations == sorted(locations)
        assert all(not Path(f.path).is_absolute() for f in report.findings)
