"""Cross-cutting property-based tests on core invariants."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corpus import CorpusGenerator, default_profiles
from repro.corpus.profiles import ControllerProfile
from repro.sdnsim import EventScheduler, Fabric, Link, Switch
from repro.sdnsim.messages import BROADCAST_MAC, Packet
from repro.taxonomy import BugLabel, Symptom, Trigger


class TestProfileProperties:
    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_sampled_labels_always_validate(self, seed):
        """Every label the generator draws satisfies the taxonomy's
        consistency rules (BugLabel.__post_init__ would raise otherwise)."""
        generator = CorpusGenerator(seed=seed)
        rng = random.Random(seed)
        profile = default_profiles()["CORD"]
        for _ in range(20):
            label = generator.sample_label(profile, rng)
            assert isinstance(label, BugLabel)
            if label.trigger is Trigger.CONFIGURATION:
                assert label.config_subcategory is not None
            if label.symptom is Symptom.BYZANTINE:
                assert label.byzantine_mode is not None

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=10, deadline=None)
    def test_determinism_rates_within_unit_interval(self, seed):
        for profile in default_profiles().values():
            for cause, share in profile.expected_root_cause_marginal().items():
                assert 0.0 <= share <= 1.0
                assert 0.0 <= profile.determinism_rate(cause) <= 1.0

    def test_expected_marginals_are_distributions(self):
        for profile in default_profiles().values():
            assert sum(profile.expected_root_cause_marginal().values()) == pytest.approx(1.0)
            assert sum(profile.expected_symptom_marginal().values()) == pytest.approx(1.0)


class TestSchedulerProperties:
    @given(
        delays=st.lists(st.floats(0.0, 50.0), min_size=1, max_size=25),
        cut=st.floats(1.0, 40.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_run_until_is_prefix_of_full_run(self, delays, cut):
        """Running to a horizon then continuing produces the same sequence
        as one uninterrupted run."""

        def collect(two_phase: bool) -> list[float]:
            scheduler = EventScheduler()
            seen: list[float] = []
            for delay in delays:
                scheduler.schedule(delay, lambda d=delay: seen.append(d))
            if two_phase:
                scheduler.run(until=cut)
                scheduler.run()
            else:
                scheduler.run()
            return seen

        assert collect(True) == collect(False)


class TestFabricProperties:
    @given(n_switches=st.integers(2, 6), seed=st.integers(0, 100))
    @settings(max_examples=20, deadline=None)
    def test_line_topology_flood_reaches_every_switch(self, n_switches, seed):
        """A broadcast flooded hop-by-hop traverses any line topology
        without tripping the loop detector."""
        fabric = Fabric()
        for dpid in range(1, n_switches + 1):
            fabric.add_switch(Switch(dpid, [1, 2, 3]))
        for dpid in range(1, n_switches):
            fabric.add_link(Link(dpid, 3, dpid + 1, 2))
        # Static flood rules: every switch floods everything.
        from repro.sdnsim.messages import Action, FlowMod, Match, PORT_FLOOD

        for dpid in range(1, n_switches + 1):
            fabric.switches[dpid].apply_flow_mod(
                FlowMod(dpid=dpid, match=Match(), actions=(Action(PORT_FLOOD),))
            )
        fabric.inject(1, 1, Packet(src_mac="aa:01", dst_mac=BROADCAST_MAC))
        for dpid in range(2, n_switches + 1):
            assert any(
                port == 1 for port, _ in fabric.switches[dpid].delivered
            ), f"switch {dpid} host port missed the broadcast"


class TestCorpusProperties:
    @given(seed=st.integers(0, 50))
    @settings(max_examples=5, deadline=None)
    def test_manual_sample_is_always_closed_subset(self, seed):
        corpus = CorpusGenerator(seed=seed).generate()
        sample = corpus.dataset.manual_sample(per_controller=10, seed=seed)
        ids = {b.bug_id for b in corpus.dataset}
        for bug in sample:
            assert bug.bug_id in ids
            assert bug.report.status.is_closed

    @given(seed=st.integers(0, 50))
    @settings(max_examples=5, deadline=None)
    def test_resolution_never_precedes_creation(self, seed):
        corpus = CorpusGenerator(seed=seed).generate()
        for bug in corpus.dataset:
            if bug.report.resolved_at is not None:
                assert bug.report.resolved_at >= bug.report.created_at
