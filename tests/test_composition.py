"""Framework composition conflicts (SS VII-C)."""

from __future__ import annotations

import pytest

from repro.errors import FrameworkError
from repro.frameworks.composition import (
    CompositionProfile,
    InputDomain,
    StreamEffect,
    StreamProperty,
    analyze_stack,
    composable,
    default_composition_profiles,
)


class TestPaperExamples:
    def test_sphinx_over_bouncer_conflicts(self):
        """The paper's example: Bouncer filters inputs SPHINX needs for its
        flow graph."""
        conflicts = analyze_stack(["Bouncer", "SPHINX"])
        assert any(
            c.upstream == "Bouncer"
            and c.downstream == "SPHINX"
            and c.violated is StreamProperty.COMPLETE_INPUT_STREAM
            for c in conflicts
        )

    def test_sphinx_before_bouncer_is_clean(self):
        """Order matters: SPHINX upstream of the filter sees everything."""
        assert analyze_stack(["SPHINX", "Bouncer"]) == []

    def test_soft_chimp_not_composable(self):
        """SOFT analyzes switch-implementation outputs, CHIMP application
        outputs — no common object to fuse results over."""
        assert not composable("SOFT", "CHIMP")
        assert composable("SPHINX", "Bouncer")

    def test_dual_recovery_authorities_conflict(self):
        conflicts = analyze_stack(["Ravana", "LegoSDN"])
        assert any(
            c.violated is StreamProperty.EXCLUSIVE_RECOVERY for c in conflicts
        )


class TestAnalyzer:
    def test_unknown_framework_rejected(self):
        with pytest.raises(FrameworkError, match="no composition profile"):
            analyze_stack(["SPHINX", "MagicFixer"])
        with pytest.raises(FrameworkError):
            composable("SPHINX", "MagicFixer")

    def test_single_framework_never_conflicts(self):
        for name in default_composition_profiles():
            assert analyze_stack([name]) == []

    def test_conflicts_have_explanations(self):
        for conflict in analyze_stack(["Bouncer", "Ravana"]):
            assert conflict.upstream and conflict.downstream
            assert conflict.explanation

    def test_custom_profiles(self):
        profiles = {
            "Writer": CompositionProfile(
                name="Writer",
                requires=frozenset(),
                effects=frozenset({StreamEffect.REWRITES_INPUTS}),
                domain=InputDomain.OPENFLOW_MESSAGES,
            ),
            "Purist": CompositionProfile(
                name="Purist",
                requires=frozenset({StreamProperty.UNMODIFIED_PAYLOADS}),
                effects=frozenset(),
                domain=InputDomain.OPENFLOW_MESSAGES,
            ),
        }
        conflicts = analyze_stack(["Writer", "Purist"], profiles)
        assert len(conflicts) == 1
        assert conflicts[0].violated is StreamProperty.UNMODIFIED_PAYLOADS

    def test_reorder_violates_ordering_requirement(self):
        conflicts = analyze_stack(["Ravana", "SPHINX"])
        assert any(
            c.effect is StreamEffect.REORDERS_INPUTS
            and c.violated is StreamProperty.ORDERED_INPUT_STREAM
            for c in conflicts
        )
