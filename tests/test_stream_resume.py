"""Ingest kill injection: SIGKILL at any journal boundary, resume bit-identical.

A child process (``repro.stream._child``) runs a journaled ingestion and
SIGKILLs itself the instant the k-th journal event is durable.  Resuming
in-process must then reach the exact final state fingerprint of an
uninterrupted reference run — full canonical state, learner weights
included — across three seeds and three kill offsets straddling distinct
batch commits.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.recovery import replay_journal
from repro.stream import IngestConfig, run_ingest

SEEDS = [0, 1, 2]
#: Journal offsets: the fresh journal emits RUN_START then BEGIN/COMMIT
#: pairs per batch, so 2 kills mid-batch-0, 5 after batch-1's commit is
#: durable, 8 mid-batch-3.
KILL_POINTS = [2, 5, 8]


def _config(seed: int) -> IngestConfig:
    return IngestConfig(
        seed=seed,
        events=240,
        batch=48,
        block=16,
        pool=40,
        outage_rate=0.25,
        outage_depth=3,
        rate_limit_rate=0.1,
        corrupt_rate=0.05,
        duplicate_rate=0.1,
        reorder_rate=0.3,
        retry_attempts=2,
        queue_capacity=32,
    )


def _spawn_killed(config: IngestConfig, run_dir: Path, kill_after: int):
    env = dict(os.environ)
    src_root = str(Path(__file__).resolve().parents[1] / "src")
    env["PYTHONPATH"] = src_root + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.run(
        [
            sys.executable, "-m", "repro.stream._child",
            "--run-dir", str(run_dir),
            "--config", json.dumps(config.to_dict()),
            "--kill-after", str(kill_after),
        ],
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )


@pytest.fixture(scope="module")
def references(tmp_path_factory):
    """One uninterrupted reference fingerprint per seed."""
    out = {}
    for seed in SEEDS:
        run_dir = tmp_path_factory.mktemp(f"stream-ref-{seed}") / "run"
        out[seed] = run_ingest(_config(seed), run_dir).state.fingerprint()
    return out


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("kill_after", KILL_POINTS)
def test_killed_ingest_resumes_bit_identical(
    references, tmp_path, seed, kill_after
):
    config = _config(seed)
    run_dir = tmp_path / "run"
    killed = _spawn_killed(config, run_dir, kill_after)
    assert killed.returncode == -signal.SIGKILL, killed.stderr[-500:]

    # The kill point is deterministic: exactly k durable events survive,
    # and the run cannot have finished (no RUN_END yet).
    replay = replay_journal(run_dir / "journal.jsonl")
    assert len(replay.events) == kill_after
    assert replay.dropped == 0
    committed_before = len(replay.committed())
    assert committed_before < config.n_batches

    resumed = run_ingest(config, run_dir, resume=True)
    assert resumed.state.fingerprint() == references[seed]
    # Only uncommitted batches re-executed.
    assert resumed.batches_executed == config.n_batches - committed_before
    # The resumed run's exports match the resumed state, accounting intact.
    summary = json.loads((run_dir / "summary.json").read_text())
    assert summary["fingerprint"] == references[seed]
    state = resumed.state
    assert state.consumed == state.applied + state.deduped + state.dead_lettered
