"""Code model, structural metrics, and the six smell detectors."""

from __future__ import annotations

import pytest

from repro.errors import CodeModelError
from repro.paperdata import ONOS_RELEASES, SMELL_TRENDS
from repro.smells import (
    ClassModel,
    CodeModel,
    Method,
    SmellKind,
    analyze,
    class_fan_in,
    class_fan_out,
    package_instability,
    weighted_methods_per_class,
)
from repro.smells.detectors import Thresholds


def small_class(name, package, deps=(), supertype=None, used=frozenset(), **kw):
    defaults = dict(
        methods=[Method("run")],
        loc=100,
        dependencies=frozenset(deps),
        supertype=supertype,
        inherited_members_used=frozenset(used),
    )
    defaults.update(kw)
    return ClassModel(name=name, package=package, **defaults)


@pytest.fixture
def model() -> CodeModel:
    m = CodeModel("demo", "1.0")
    m.add_class(small_class("a.X", "a", deps=["b.Y"]))
    m.add_class(small_class("b.Y", "b", deps=["c.Z"]))
    m.add_class(small_class("c.Z", "c"))
    return m


class TestCodeModel:
    def test_duplicate_class_rejected(self, model):
        with pytest.raises(CodeModelError, match="duplicate"):
            model.add_class(small_class("a.X", "a"))

    def test_self_dependency_rejected(self):
        m = CodeModel("demo", "1.0")
        m.add_class(small_class("a.X", "a", deps=["a.X"]))
        with pytest.raises(CodeModelError, match="depends on itself"):
            m.validate()

    def test_unknown_package_lookup(self, model):
        with pytest.raises(CodeModelError, match="no such package"):
            model.package("zzz")

    def test_package_dependencies_lifted(self, model):
        deps = model.package_dependencies()
        assert deps["a"] == {"b"}
        assert deps["b"] == {"c"}
        assert deps["c"] == set()

    def test_external_deps_ignored(self):
        m = CodeModel("demo", "1.0")
        m.add_class(small_class("a.X", "a", deps=["java.util.List"]))
        assert m.package_dependencies()["a"] == set()

    def test_subclasses_of(self):
        m = CodeModel("demo", "1.0")
        m.add_class(small_class("a.Base", "a"))
        m.add_class(small_class("a.Child", "a", supertype="a.Base"))
        assert [c.name for c in m.subclasses_of("a.Base")] == ["a.Child"]

    def test_method_complexity_validated(self):
        with pytest.raises(CodeModelError):
            Method("bad", complexity=0)


class TestMetrics:
    def test_fan_in_out(self, model):
        assert class_fan_out(model, "a.X") == 1
        assert class_fan_in(model, "b.Y") == 1
        assert class_fan_in(model, "a.X") == 0

    def test_wmc(self):
        cls = small_class(
            "a.X", "a", methods=[Method("m1", complexity=3), Method("m2", complexity=4)]
        )
        assert weighted_methods_per_class(cls) == 7

    def test_instability_extremes(self, model):
        # 'a' depends on one package, nothing depends on it -> I = 1.
        assert package_instability(model, "a") == 1.0
        # 'c' is depended on, depends on nothing -> I = 0.
        assert package_instability(model, "c") == 0.0

    def test_isolated_package_is_unstable_by_convention(self):
        m = CodeModel("demo", "1.0")
        m.add_class(small_class("solo.X", "solo"))
        assert package_instability(m, "solo") == 1.0


class TestKindsFilter:
    def test_default_runs_all(self, model):
        assert analyze(model).counts().keys() == set(SmellKind)

    def test_subset_runs_only_selected(self):
        m = CodeModel("demo", "1.0")
        for i in range(40):
            m.add_class(small_class(f"big.C{i}", "big", loc=2_000))
        full = analyze(m)
        assert full.count(SmellKind.GOD_COMPONENT) == 1
        assert full.count(SmellKind.INSUFFICIENT_MODULARIZATION) == 40
        only_god = analyze(m, kinds=[SmellKind.GOD_COMPONENT])
        assert {i.kind for i in only_god.instances} == {SmellKind.GOD_COMPONENT}
        assert only_god.count(SmellKind.GOD_COMPONENT) == 1

    def test_order_is_canonical_not_given(self):
        m = CodeModel("demo", "1.0")
        for i in range(40):
            m.add_class(small_class(f"big.C{i}", "big", loc=2_000))
        shuffled = analyze(
            m,
            kinds=[SmellKind.INSUFFICIENT_MODULARIZATION, SmellKind.GOD_COMPONENT],
        )
        assert shuffled.instances[0].kind is SmellKind.GOD_COMPONENT

    def test_empty_kinds_runs_nothing(self, model):
        assert analyze(model, kinds=[]).instances == []

    def test_unknown_kind_rejected(self, model):
        with pytest.raises(CodeModelError):
            analyze(model, kinds=["god_component"])  # strings are not kinds


class TestDetectors:
    def test_god_component_by_class_count(self):
        m = CodeModel("demo", "1.0")
        for i in range(40):
            m.add_class(small_class(f"big.C{i}", "big"))
        report = analyze(m, Thresholds(god_component_classes=30))
        assert report.count(SmellKind.GOD_COMPONENT) == 1
        assert report.by_kind(SmellKind.GOD_COMPONENT)[0].subject == "big"

    def test_god_component_by_loc(self):
        m = CodeModel("demo", "1.0")
        m.add_class(small_class("big.C", "big", loc=50_000))
        report = analyze(m)
        assert report.count(SmellKind.GOD_COMPONENT) == 1

    def test_unstable_dependency_detected(self):
        m = CodeModel("demo", "1.0")
        # stable package: 2 dependents, one outgoing (the bad edge).
        m.add_class(small_class("stable.S", "stable", deps=["flaky.F"]))
        m.add_class(small_class("user1.U", "user1", deps=["stable.S"]))
        m.add_class(small_class("user2.U", "user2", deps=["stable.S"]))
        # flaky: depends on two others, no dependents besides stable.
        m.add_class(small_class("flaky.F", "flaky", deps=["x.X", "y.Y"]))
        m.add_class(small_class("x.X", "x"))
        m.add_class(small_class("y.Y", "y"))
        report = analyze(m)
        subjects = [i.subject for i in report.by_kind(SmellKind.UNSTABLE_DEPENDENCY)]
        assert "stable" in subjects

    def test_hub_detected(self):
        m = CodeModel("demo", "1.0")
        hub_deps = [f"t{i}.T" for i in range(9)]
        for dep in hub_deps:
            pkg, name = dep.split(".")
            m.add_class(small_class(dep, pkg))
        m.add_class(small_class("h.Hub", "h", deps=hub_deps))
        for i in range(9):
            m.add_class(small_class(f"u{i}.U", f"u{i}", deps=["h.Hub"]))
        report = analyze(m)
        assert report.count(SmellKind.HUB_LIKE_MODULARIZATION) == 1

    def test_insufficient_modularization_by_wmc(self):
        m = CodeModel("demo", "1.0")
        m.add_class(
            small_class(
                "a.Fat", "a",
                methods=[Method(f"m{i}", complexity=10) for i in range(15)],
            )
        )
        report = analyze(m)
        assert report.count(SmellKind.INSUFFICIENT_MODULARIZATION) == 1

    def test_broken_hierarchy_detected_and_fixed(self):
        m = CodeModel("demo", "1.0")
        m.add_class(small_class("a.Base", "a", methods=[Method("base")]))
        m.add_class(small_class("a.Orphan", "a", supertype="a.Base"))
        assert analyze(m).count(SmellKind.BROKEN_HIERARCHY) == 1

        fixed = CodeModel("demo", "1.1")
        fixed.add_class(small_class("a.Base", "a", methods=[Method("base")]))
        fixed.add_class(
            small_class("a.Orphan", "a", supertype="a.Base", used=("base",))
        )
        assert analyze(fixed).count(SmellKind.BROKEN_HIERARCHY) == 0

    def test_broken_hierarchy_ignores_external_supertype(self):
        m = CodeModel("demo", "1.0")
        m.add_class(small_class("a.X", "a", supertype="java.lang.Thread"))
        assert analyze(m).count(SmellKind.BROKEN_HIERARCHY) == 0

    def test_missing_hierarchy_detected(self):
        m = CodeModel("demo", "1.0")
        m.add_class(
            small_class(
                "a.Switcher", "a",
                methods=[Method("dispatch", complexity=8, type_switches=4)],
            )
        )
        assert analyze(m).count(SmellKind.MISSING_HIERARCHY) == 1

    def test_architecture_vs_design_flag(self):
        assert SmellKind.GOD_COMPONENT.is_architecture_smell
        assert not SmellKind.BROKEN_HIERARCHY.is_architecture_smell


class TestOnosSeries:
    def test_every_release_generated(self, onos_models):
        assert tuple(onos_models) == ONOS_RELEASES

    def test_intent_impl_growth(self, onos_models):
        first = onos_models["1.12"].package("org.onosproject.net.intent.impl")
        last = onos_models["2.3"].package("org.onosproject.net.intent.impl")
        assert first.class_count < last.class_count
        assert first.class_count == pytest.approx(49, abs=5)
        assert last.class_count == pytest.approx(107, abs=5)

    def test_fig8_trends(self, onos_models):
        counts = {
            version: analyze(model).counts()
            for version, model in onos_models.items()
        }
        series = {
            kind: [counts[v][kind] for v in ONOS_RELEASES] for kind in SmellKind
        }
        god = series[SmellKind.GOD_COMPONENT]
        assert max(god) - min(god) <= 1  # constant
        unstable = series[SmellKind.UNSTABLE_DEPENDENCY]
        assert unstable[0] > unstable[-1]  # decreasing
        insufficient = series[SmellKind.INSUFFICIENT_MODULARIZATION]
        assert insufficient[2] > insufficient[0]  # spike 1.12 -> 1.14
        broken = series[SmellKind.BROKEN_HIERARCHY]
        assert broken[2] == max(broken) and broken[-1] == min(broken)

    def test_onos_6594_reparenting(self, onos_models):
        run_before = onos_models["1.15"].get_class(
            "org.onosproject.store.primitives.Run"
        )
        run_after = onos_models["2.0"].get_class(
            "org.onosproject.store.primitives.Run"
        )
        assert run_before.supertype.endswith("ElectionOperation")
        assert run_after.supertype.endswith("AsyncLeaderElector")
        assert run_after.inherited_members_used

    def test_generation_deterministic(self):
        from repro.codebase import OnosCodebaseGenerator

        a = OnosCodebaseGenerator(seed=3).generate("1.13")
        b = OnosCodebaseGenerator(seed=3).generate("1.13")
        assert a.class_count() == b.class_count()

    def test_unknown_release_rejected(self):
        from repro.codebase import OnosCodebaseGenerator

        with pytest.raises(CodeModelError, match="unknown ONOS release"):
            OnosCodebaseGenerator().generate("9.9")
