"""From-scratch classifiers: SVM, decision tree, AdaBoost, naive Bayes."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NotFittedError
from repro.ml import (
    AdaBoostClassifier,
    DecisionTreeClassifier,
    GaussianNB,
    LinearSVM,
    MultinomialNB,
    accuracy_score,
)


def blob_data(seed=0, n=60, separation=4.0):
    """Two well-separated Gaussian blobs with string labels."""
    rng = np.random.default_rng(seed)
    a = rng.normal(loc=(-separation, 0), scale=1.0, size=(n, 2))
    b = rng.normal(loc=(separation, 0), scale=1.0, size=(n, 2))
    X = np.vstack([a, b])
    y = ["left"] * n + ["right"] * n
    return X, y


def three_class_data(seed=1, n=40):
    rng = np.random.default_rng(seed)
    centers = [(-6, 0), (6, 0), (0, 7)]
    X = np.vstack([rng.normal(loc=c, scale=1.0, size=(n, 2)) for c in centers])
    y = sum([[f"c{i}"] * n for i in range(3)], [])
    return X, y


class TestLinearSVM:
    def test_separable_blobs(self):
        X, y = blob_data()
        model = LinearSVM(seed=0).fit(X, y)
        assert accuracy_score(y, model.predict(X)) >= 0.98

    def test_three_classes(self):
        X, y = three_class_data()
        model = LinearSVM(seed=0).fit(X, y)
        assert accuracy_score(y, model.predict(X)) >= 0.95

    def test_deterministic_for_fixed_seed(self):
        X, y = blob_data()
        a = LinearSVM(seed=3).fit(X, y)
        b = LinearSVM(seed=3).fit(X, y)
        assert np.allclose(a.weights_, b.weights_)

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            LinearSVM().predict(np.zeros((1, 2)))

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            LinearSVM().fit(np.zeros((3, 2)), ["a", "b"])

    def test_rejects_1d_input(self):
        with pytest.raises(ValueError, match="2-D"):
            LinearSVM().fit(np.zeros(3), ["a", "b", "c"])

    def test_class_balancing_recovers_minority(self):
        """With 10:1 imbalance, the balanced SVM must still find the minority."""
        rng = np.random.default_rng(5)
        majority = rng.normal(loc=(0, 0), scale=1.0, size=(100, 2))
        minority = rng.normal(loc=(6, 6), scale=0.5, size=(10, 2))
        X = np.vstack([majority, minority])
        y = ["maj"] * 100 + ["min"] * 10
        model = LinearSVM(seed=0, class_weight="balanced").fit(X, y)
        predictions = model.predict(minority)
        assert predictions.count("min") >= 8

    def test_decision_function_shape(self):
        X, y = three_class_data()
        model = LinearSVM(seed=0).fit(X, y)
        assert model.decision_function(X).shape == (len(y), 3)

    @given(seed=st.integers(0, 20))
    @settings(max_examples=8, deadline=None)
    def test_never_worse_than_chance_on_separable(self, seed):
        X, y = blob_data(seed=seed, n=30)
        model = LinearSVM(seed=0, epochs=15).fit(X, y)
        assert accuracy_score(y, model.predict(X)) > 0.5


class TestDecisionTree:
    def test_fits_xor_with_depth(self):
        """XOR is not linearly separable; the tree must still nail it."""
        X = np.array([[0, 0], [0, 1], [1, 0], [1, 1]] * 10, dtype=float)
        y = [("t" if (a != b) else "f") for a, b in X]
        tree = DecisionTreeClassifier(max_depth=3).fit(X, y)
        assert tree.predict(X) == y

    def test_max_depth_zero_is_majority_vote(self):
        X, y = blob_data()
        tree = DecisionTreeClassifier(max_depth=0).fit(X, y)
        assert tree.depth() == 0
        assert len(set(tree.predict(X))) == 1

    def test_depth_bounded(self):
        X, y = three_class_data()
        tree = DecisionTreeClassifier(max_depth=2).fit(X, y)
        assert tree.depth() <= 2

    def test_pure_leaf_stops_splitting(self):
        X = np.array([[0.0], [1.0], [2.0]])
        tree = DecisionTreeClassifier().fit(X, ["a", "a", "a"])
        assert tree.depth() == 0

    def test_min_samples_leaf_respected(self):
        X, y = blob_data(n=10)
        tree = DecisionTreeClassifier(min_samples_leaf=5).fit(X, y)
        # The only legal split is the 10/10 one; deeper splits would create
        # leaves under 5 samples near the boundary, but accuracy holds.
        assert accuracy_score(y, tree.predict(X)) >= 0.9

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier(min_samples_split=1)
        with pytest.raises(ValueError):
            DecisionTreeClassifier(min_samples_leaf=0)

    def test_predict_before_fit(self):
        with pytest.raises(NotFittedError):
            DecisionTreeClassifier().predict(np.zeros((1, 1)))


class TestAdaBoost:
    def test_boosts_past_single_stump(self):
        """Diagonal boundary: one stump fails, an ensemble succeeds."""
        rng = np.random.default_rng(2)
        X = rng.uniform(-1, 1, size=(200, 2))
        y = ["pos" if x0 + x1 > 0 else "neg" for x0, x1 in X]
        boost = AdaBoostClassifier(n_estimators=40).fit(X, y)
        stump_only = AdaBoostClassifier(n_estimators=1).fit(X, y)
        assert accuracy_score(y, boost.predict(X)) > accuracy_score(
            y, stump_only.predict(X)
        )
        assert accuracy_score(y, boost.predict(X)) >= 0.9

    def test_three_class_samme(self):
        X, y = three_class_data()
        model = AdaBoostClassifier(n_estimators=30).fit(X, y)
        assert accuracy_score(y, model.predict(X)) >= 0.9

    def test_perfect_stump_short_circuits(self):
        # Few enough samples that every candidate threshold is evaluated,
        # so the gap between the blobs is guaranteed to be found.
        X, y = blob_data(n=20, separation=10.0)
        model = AdaBoostClassifier(n_estimators=50).fit(X, y)
        assert len(model.estimators_) == 1

    def test_constant_features_fall_back(self):
        X = np.ones((10, 2))
        y = ["a"] * 7 + ["b"] * 3
        model = AdaBoostClassifier(n_estimators=5).fit(X, y)
        assert model.predict(X) == ["a"] * 10

    def test_rejects_bad_estimator_count(self):
        with pytest.raises(ValueError):
            AdaBoostClassifier(n_estimators=0)


class TestNaiveBayes:
    def test_gaussian_blobs(self):
        X, y = blob_data()
        model = GaussianNB().fit(X, y)
        assert accuracy_score(y, model.predict(X)) >= 0.98

    def test_multinomial_counts(self):
        # Class "spam" uses word 0 heavily, "ham" uses word 1.
        X = np.array([[5, 0, 1], [4, 1, 0], [0, 5, 1], [1, 4, 0]], dtype=float)
        y = ["spam", "spam", "ham", "ham"]
        model = MultinomialNB().fit(X, y)
        assert model.predict(np.array([[3.0, 0.0, 0.0]])) == ["spam"]
        assert model.predict(np.array([[0.0, 3.0, 0.0]])) == ["ham"]

    def test_multinomial_rejects_negative(self):
        with pytest.raises(ValueError):
            MultinomialNB().fit(np.array([[-1.0]]), ["a"])

    def test_multinomial_log_proba_normalized(self):
        X = np.array([[2, 1], [1, 2]], dtype=float)
        model = MultinomialNB().fit(X, ["a", "b"])
        proba = np.exp(model.predict_log_proba(X))
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_gaussian_prior_influences_ties(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(30, 2))
        y = ["a"] * 27 + ["b"] * 3
        model = GaussianNB().fit(X, y)
        # On indistinguishable data the prior should dominate.
        predictions = model.predict(rng.normal(size=(20, 2)))
        assert predictions.count("a") > predictions.count("b")
