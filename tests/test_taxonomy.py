"""Taxonomy dimensions, label validation, and the label store."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import TaxonomyError
from repro.taxonomy import (
    BugLabel,
    BugType,
    ByzantineMode,
    ConfigSubcategory,
    ExternalCallKind,
    FixCategory,
    FixStrategy,
    LabelStore,
    RootCause,
    RootCauseFamily,
    Symptom,
    Trigger,
)


def make_label(**overrides) -> BugLabel:
    """A valid baseline label, overridable per test."""
    defaults = dict(
        bug_type=BugType.DETERMINISTIC,
        root_cause=RootCause.MISSING_LOGIC,
        symptom=Symptom.FAIL_STOP,
        fix=FixStrategy.ADD_LOGIC,
        trigger=Trigger.NETWORK_EVENTS,
    )
    defaults.update(overrides)
    return BugLabel(**defaults)


class TestDimensions:
    def test_controller_logic_family(self):
        assert RootCause.LOAD.family is RootCauseFamily.CONTROLLER_LOGIC
        assert RootCause.MEMORY.family is RootCauseFamily.CONTROLLER_LOGIC

    def test_non_controller_logic_family(self):
        assert (
            RootCause.HUMAN_MISCONFIGURATION.family
            is RootCauseFamily.NON_CONTROLLER_LOGIC
        )
        assert (
            RootCause.ECOSYSTEM_THIRD_PARTY.family
            is RootCauseFamily.NON_CONTROLLER_LOGIC
        )

    def test_ecosystem_flag(self):
        assert RootCause.ECOSYSTEM_SYSTEM_CALL.is_ecosystem
        assert not RootCause.HUMAN_MISCONFIGURATION.is_ecosystem
        assert not RootCause.LOAD.is_ecosystem

    def test_every_fix_strategy_has_a_family(self):
        for strategy in FixStrategy:
            assert isinstance(strategy.category, FixCategory)

    def test_fix_families_match_table_one(self):
        assert FixStrategy.ROLLBACK_UPGRADES.category is FixCategory.NO_LOGIC_CHANGES
        assert FixStrategy.UPGRADE_PACKAGES.category is FixCategory.NO_LOGIC_CHANGES
        assert FixStrategy.ADD_LOGIC.category is FixCategory.ADD_NEW_LOGIC
        assert (
            FixStrategy.ADD_SYNCHRONIZATION.category
            is FixCategory.CHANGE_EXISTING_LOGIC
        )


class TestLabelValidation:
    def test_valid_label_constructs(self):
        label = make_label()
        assert label.symptom is Symptom.FAIL_STOP

    def test_byzantine_requires_mode(self):
        with pytest.raises(TaxonomyError, match="byzantine_mode"):
            make_label(symptom=Symptom.BYZANTINE)

    def test_mode_requires_byzantine(self):
        with pytest.raises(TaxonomyError, match="requires symptom=byzantine"):
            make_label(byzantine_mode=ByzantineMode.STALL)

    def test_byzantine_with_mode_is_valid(self):
        label = make_label(
            symptom=Symptom.BYZANTINE, byzantine_mode=ByzantineMode.GRAY_FAILURE
        )
        assert label.byzantine_mode is ByzantineMode.GRAY_FAILURE

    def test_config_subcategory_requires_config_trigger(self):
        with pytest.raises(TaxonomyError, match="config_subcategory"):
            make_label(config_subcategory=ConfigSubcategory.CONTROLLER)

    def test_external_kind_requires_external_trigger(self):
        with pytest.raises(TaxonomyError, match="external_kind"):
            make_label(external_kind=ExternalCallKind.SYSTEM_CALLS)

    def test_misconfiguration_needs_config_or_external_trigger(self):
        with pytest.raises(TaxonomyError, match="human_misconfiguration"):
            make_label(
                root_cause=RootCause.HUMAN_MISCONFIGURATION,
                trigger=Trigger.NETWORK_EVENTS,
            )

    def test_misconfiguration_with_config_trigger_ok(self):
        label = make_label(
            root_cause=RootCause.HUMAN_MISCONFIGURATION,
            trigger=Trigger.CONFIGURATION,
            config_subcategory=ConfigSubcategory.CONTROLLER,
        )
        assert label.trigger is Trigger.CONFIGURATION


# -- property-based round-trip ------------------------------------------------
_valid_labels = st.builds(
    lambda bug_type, root_cause, symptom, mode, fix, trigger, cfg, ext: BugLabel(
        bug_type=bug_type,
        root_cause=(
            root_cause
            if trigger in (Trigger.CONFIGURATION, Trigger.EXTERNAL_CALLS)
            or root_cause is not RootCause.HUMAN_MISCONFIGURATION
            else RootCause.MISSING_LOGIC
        ),
        symptom=symptom,
        byzantine_mode=mode if symptom is Symptom.BYZANTINE else None,
        fix=fix,
        trigger=trigger,
        config_subcategory=cfg if trigger is Trigger.CONFIGURATION else None,
        external_kind=ext if trigger is Trigger.EXTERNAL_CALLS else None,
    ),
    bug_type=st.sampled_from(BugType),
    root_cause=st.sampled_from(RootCause),
    symptom=st.sampled_from(Symptom),
    mode=st.sampled_from(ByzantineMode),
    fix=st.sampled_from(FixStrategy),
    trigger=st.sampled_from(Trigger),
    cfg=st.sampled_from(ConfigSubcategory),
    ext=st.sampled_from(ExternalCallKind),
)


@given(label=_valid_labels)
def test_label_dict_roundtrip(label: BugLabel):
    """to_dict/from_dict is lossless for every valid label."""
    assert BugLabel.from_dict(label.to_dict()) == label


@given(label=_valid_labels)
def test_label_tags_are_subset_of_dict(label: BugLabel):
    tags = label.tags()
    full = label.to_dict()
    assert all(full[k] == v for k, v in tags.items())
    assert None not in tags.values()


def test_from_dict_rejects_unknown_tag():
    data = make_label().to_dict()
    data["symptom"] = "spontaneous_combustion"
    with pytest.raises(TaxonomyError):
        BugLabel.from_dict(data)


class TestLabelStore:
    def test_add_and_get(self):
        store = LabelStore()
        store.add("ONOS-1", make_label())
        assert "ONOS-1" in store
        assert store.get("ONOS-1") == make_label()

    def test_duplicate_add_rejected(self):
        store = LabelStore()
        store.add("ONOS-1", make_label())
        with pytest.raises(TaxonomyError, match="already labeled"):
            store.add("ONOS-1", make_label())

    def test_overwrite_allowed_when_requested(self):
        store = LabelStore()
        store.add("ONOS-1", make_label())
        new = make_label(bug_type=BugType.NON_DETERMINISTIC)
        store.add("ONOS-1", new, overwrite=True)
        assert store.get("ONOS-1").bug_type is BugType.NON_DETERMINISTIC

    def test_missing_get_raises(self):
        with pytest.raises(TaxonomyError, match="no label"):
            LabelStore().get("NOPE-1")

    def test_subset(self):
        store = LabelStore({"A-1": make_label(), "A-2": make_label()})
        sub = store.subset(["A-1"])
        assert len(sub) == 1 and "A-2" not in sub

    def test_save_load_roundtrip(self, tmp_path):
        store = LabelStore({"A-1": make_label()})
        path = tmp_path / "labels.json"
        store.save(path)
        loaded = LabelStore.load(path)
        assert loaded.get("A-1") == make_label()

    def test_load_rejects_non_object(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(TaxonomyError, match="JSON object"):
            LabelStore.load(path)
