#!/usr/bin/env python3
"""Operator bug triage (SS VII-B): diagnose fresh bug reports.

Trains the diagnosis assistant on the labeled manual sample, then triages
three incoming bug descriptions the way the paper anticipates: text
classification for the observable dimensions, plus mined correlation rules
(e.g. concurrency <-> add-synchronization) to suggest root causes and fixes.

Run:  python examples/bug_triage_assistant.py
"""

from repro import CorpusGenerator
from repro.guidance import DiagnosisAssistant

INCOMING_BUGS = [
    (
        "crash after config push",
        "After editing the faucet.yaml and reloading, the whole controller "
        "exits immediately, taking the network control plane down. A null "
        "pointer exception is thrown because the reference was never "
        "initialized. Reproducible every single time with the steps above.",
    ),
    (
        "slow API under threads",
        "Two interleaved threads race on the shared map without holding the "
        "lock. Throughput of the api drops sharply and requests take seconds "
        "instead of millis. Happens intermittently; we could not reproduce "
        "it on demand.",
    ),
    (
        "library mismatch",
        "After upgrading the influxdb client to the latest release the gauge "
        "poller started failing. The third party service changed its wire "
        "format between releases. A scary looking error message is logged "
        "repeatedly but forwarding is unaffected. One hundred percent "
        "reproducible given the same input sequence.",
    ),
]


def main() -> None:
    print("Generating corpus and training the diagnosis assistant...")
    corpus = CorpusGenerator(seed=2020).generate()
    assistant = DiagnosisAssistant(seed=0).fit(corpus.manual_sample)

    for title, description in INCOMING_BUGS:
        print(f"\n=== incoming bug: {title} ===")
        for suggestion in assistant.diagnose(description):
            print(
                f"  {suggestion.dimension:12s} -> {suggestion.tag:22s} "
                f"(confidence {suggestion.confidence:.2f}; {suggestion.rationale})"
            )


if __name__ == "__main__":
    main()
