#!/usr/bin/env python3
"""Software-engineering audit of a controller codebase (SS VI).

Runs the Designite-style smell analyzer over the ONOS release series,
the burn analysis over FAUCET's commit history, the Table IV dependency
burn-down, and the dependency-check vulnerability scan — the full SS VI
toolchain on one screen.

Run:  python examples/code_quality_audit.py
"""

from repro.codebase import release_series
from repro.gitmodel import (
    DependencyBurndown,
    FaucetHistoryGenerator,
    burn_distribution,
    onos_commits_per_release,
)
from repro.reporting import ascii_table, format_percent
from repro.smells import SmellKind, analyze
from repro.vuln import DependencyScanner, onos_release_manifests


def audit_smells() -> None:
    rows = []
    for version, model in release_series().items():
        counts = analyze(model).counts()
        rows.append(
            [version, onos_commits_per_release()[version]]
            + [counts[kind] for kind in SmellKind]
        )
    print(ascii_table(
        ["release", "commits"] + [k.value[:12] for k in SmellKind], rows,
        title="SS VI-A: ONOS smell evolution (Figs 8 & 10)",
    ))


def audit_burn() -> None:
    generator = FaucetHistoryGenerator(seed=11)
    dist = burn_distribution(generator.generate())
    print()
    print(ascii_table(
        ["subsystem", "share of commits"],
        [[s.value, format_percent(share)] for s, share in dist.items()],
        title="SS VI-B: FAUCET burn analysis (Fig 11)",
    ))
    burndown = DependencyBurndown(generator.generate_requirements_history())
    print()
    print(ascii_table(
        ["dependency", "# version changes"],
        [[pkg, n] for pkg, n in burndown.ranked()[:6]],
        title="Table IV: dependency burn-down (top 6)",
    ))


def audit_vulnerabilities() -> None:
    scanner = DependencyScanner()
    results = scanner.scan_releases(onos_release_manifests())
    rows = []
    for release, findings in results.items():
        worst = max(findings, key=lambda f: f.cve.cvss)
        rows.append(
            [release, len(findings), f"{worst.cve.cve_id} (cvss {worst.cve.cvss})"]
        )
    print()
    print(ascii_table(
        ["release", "known vulns", "worst finding"], rows,
        title="SS V-A: dependency-check over ONOS releases",
    ))


def main() -> None:
    audit_smells()
    audit_burn()
    audit_vulnerabilities()


if __name__ == "__main__":
    main()
