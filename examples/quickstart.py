#!/usr/bin/env python3
"""Quickstart: generate the study corpus and reproduce the headline numbers.

Run:  python examples/quickstart.py
"""

from repro import CorpusGenerator, determinism_rates
from repro.analysis import symptom_distribution, trigger_distribution
from repro.pipeline import validate_pipeline
from repro.reporting import ascii_table, format_percent, render_distribution


def main() -> None:
    print("Generating the study corpus (795 critical bugs, seed=2020)...")
    corpus = CorpusGenerator(seed=2020).generate()
    print(f"  controllers: {corpus.dataset.split_counts()}")
    print(f"  manual sample: {len(corpus.manual_sample)} closed bugs\n")

    # RQ1: determinism (paper: FAUCET 96%, ONOS 94%, CORD 94%).
    rates = determinism_rates(corpus.dataset)
    print(ascii_table(
        ["controller", "deterministic bugs"],
        [[name, format_percent(rate)] for name, rate in sorted(rates.items())],
        title="RQ1: bug determinism",
    ))
    print()

    # RQ2: symptoms (paper: byzantine 61.33%, fail-stop 20%, ...).
    print(render_distribution(
        symptom_distribution(corpus.manual_sample), title="RQ2: symptoms"
    ))
    print()

    # RQ3: triggers (paper: configuration 38.8%, external calls 33%, ...).
    print(render_distribution(
        trigger_distribution(corpus.manual_sample), title="RQ3: triggers"
    ))
    print()

    # SS II-C: the NLP autoclassifier (paper: 96% bug type, 86% symptom).
    print("Training the NLP autoclassifier (SS II-C) ...")
    for dimension in ("bug_type", "symptom"):
        report = validate_pipeline(corpus.manual_sample, dimension, seed=0)
        print(f"  {report.summary()}")

    # One example bug, end to end.
    bug = corpus.manual_sample[0]
    print(f"\nExample bug {bug.bug_id} ({bug.controller}):")
    print(f"  title: {bug.report.title}")
    print(f"  ground-truth label: {bug.label.tags()}")


if __name__ == "__main__":
    main()
