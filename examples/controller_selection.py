#!/usr/bin/env python3
"""Controller selection for an operator (RQ4, SS VII-A).

Scores FAUCET, ONOS, and CORD on the stability signals the paper extracts
from the bug corpus, and ranks them for three deployment scenarios.

Run:  python examples/controller_selection.py
"""

from repro import CorpusGenerator
from repro.guidance import UseCase, rank_controllers, score_controller
from repro.reporting import ascii_table, format_percent


def main() -> None:
    corpus = CorpusGenerator(seed=2020).generate()
    dataset = corpus.dataset

    rows = []
    for controller in dataset.controllers:
        score = score_controller(dataset, controller)
        rows.append(
            [
                controller,
                format_percent(score.missing_logic_share),
                format_percent(score.load_share),
                format_percent(score.fail_stop_share),
                format_percent(score.performance_share),
                f"{score.composite:.3f}",
            ]
        )
    print(ascii_table(
        ["controller", "missing logic", "load", "fail-stop", "perf",
         "instability (lower=better)"],
        rows, title="SS VII-A: stability signals from the bug corpus",
    ))

    for use_case in UseCase:
        ranking = rank_controllers(dataset, use_case=use_case)
        names = " > ".join(s.controller for s in ranking)
        print(f"\n  {use_case.value:22s} recommendation: {names}")

    print(
        "\nPaper's guidance: ONOS is the most stable general-purpose choice; "
        "CORD fits the telco central office despite its load sensitivity; "
        "FAUCET is specialized for network slicing and yields missing-logic "
        "errors outside that niche."
    )


if __name__ == "__main__":
    main()
