#!/usr/bin/env python3
"""Taxonomy-driven fault injection and framework evaluation (RQ5).

Replays the paper's named bugs (FAUCET-1623, CORD-2470, FAUCET-355,
VOL-549, CORD-1734) inside the SDN simulator, runs the full fault campaign,
and evaluates recovery strategies — reproducing the conclusion that
deterministic bugs are detected but rarely recovered.

Run:  python examples/fault_injection_campaign.py
"""

from repro.faultinjection import CASE_RUNNERS, FaultCampaign, run_case
from repro.frameworks.evaluator import (
    deterministic_recovery_gap,
    evaluate_coverage,
    mechanical_validation,
)
from repro.reporting import ascii_table, format_percent


def show_case_studies() -> None:
    rows = []
    for case_id in sorted(CASE_RUNNERS):
        outcome = run_case(case_id)
        buggy = outcome.buggy.symptom.value if outcome.buggy.symptom else "healthy"
        if outcome.buggy.byzantine_mode:
            buggy += f" ({outcome.buggy.byzantine_mode.value})"
        fixed = outcome.fixed.symptom.value if outcome.fixed.symptom else "healthy"
        rows.append([case_id, buggy, fixed])
    print(ascii_table(
        ["bug", "buggy build", "patched build"], rows,
        title="Named case studies executed in the simulator",
    ))


def show_campaign() -> None:
    campaign = FaultCampaign(seeds_per_fault=4).run()
    rows = [
        [
            r.spec.fault_id,
            r.spec.trigger.value,
            r.spec.bug_type.value,
            f"{r.manifestation_rate:.0%}",
            "ok" if r.matches_expectation else "MISMATCH",
        ]
        for r in campaign.results
    ]
    print()
    print(ascii_table(
        ["fault", "trigger", "determinism", "manifestation", "taxonomy match"],
        rows, title=f"Fault campaign ({len(campaign)} faults x 4 seeds)",
    ))


def show_recovery_gap() -> None:
    report = evaluate_coverage(seed=0)
    gap = deterministic_recovery_gap(report)
    rows = [
        [name, format_percent(report.detection_rate(name)), format_percent(rate)]
        for name, rate in sorted(gap.items())
    ]
    print()
    print(ascii_table(
        ["framework", "detection", "deterministic recovery"], rows,
        title="RQ5: the deterministic-recovery gap",
    ))
    print()
    results = mechanical_validation(seed=0)
    for strategy, attempts in results.items():
        wins = [a.fault_id for a in attempts if a.recovered]
        print(f"  strategy {strategy!r} mechanically recovered: {wins or 'nothing'}")


def main() -> None:
    show_case_studies()
    show_campaign()
    show_recovery_gap()


if __name__ == "__main__":
    main()
