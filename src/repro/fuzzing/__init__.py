"""Coverage-guided fault-schedule fuzzing over parameterized topologies.

The paper's §V-A finding — test environments "lack representative failures
and equipment" — motivates both halves of this package: *representative
equipment* (N-controller × M-switch × K-flow :class:`Topology` builders in
place of the hand-wired 3-node world) and *representative failures* (an
AFL-style search over fault schedules instead of uniform random injection).

The feedback signal replacing branch coverage is the behavior of the
runtime invariant monitors (:mod:`repro.fuzzing.coverage`): monitor edge
transitions, violation fingerprints, flap counts, and co-violation combos.
Schedules that reach unseen tokens join the corpus and are bred with five
mutation operators (:mod:`repro.fuzzing.mutate`), optionally ranked by a
CART tree trained online on ``schedule features -> violated``
(:mod:`repro.fuzzing.features`).  Campaigns fan batches over a
:class:`~repro.parallel.executor.WorkPool`, journal every batch through the
PR-4 recovery discipline (kill a campaign mid-flight, ``--resume`` it,
reach a bit-identical final state), and ddmin-minimize a reproducer for
every new violation class (:mod:`repro.fuzzing.campaign`).
"""

from repro.fuzzing.campaign import (
    FuzzCampaign,
    FuzzConfig,
    FuzzReport,
    run_campaign,
    seed_schedule,
)
from repro.fuzzing.corpus import (
    CorpusEntry,
    FuzzState,
    Reproducer,
    load_state,
    save_state,
)
from repro.fuzzing.coverage import CoverageSample, run_coverage
from repro.fuzzing.features import FEATURE_NAMES, schedule_features
from repro.fuzzing.mutate import MUTATORS, mutate, random_event, validate_schedule
from repro.fuzzing.topology import TOPOLOGY_KINDS, Topology, build_topology

__all__ = [
    "CorpusEntry",
    "CoverageSample",
    "FEATURE_NAMES",
    "FuzzCampaign",
    "FuzzConfig",
    "FuzzReport",
    "FuzzState",
    "MUTATORS",
    "Reproducer",
    "TOPOLOGY_KINDS",
    "Topology",
    "build_topology",
    "load_state",
    "mutate",
    "random_event",
    "run_campaign",
    "run_coverage",
    "save_state",
    "schedule_features",
    "seed_schedule",
    "validate_schedule",
]
