"""Schedule features for the learned failure-inducing model.

"Learning Failure-Inducing Models for Testing Software-Defined Networks"
(PAPERS.md) steers fault injection with a model over *fault-scenario
features*; we do the same with the repo's own CART tree.  A schedule is
summarized into a fixed-length numeric vector — action mix, timing shape,
target spread — that the campaign's decision tree maps to
P(invariant violation).  Features must be cheap (computed for every
candidate mutant) and replay-free (a pure function of the schedule text).
"""

from __future__ import annotations

from repro.adversary.schedule import (
    CHANNEL_ACTIONS,
    FaultAction,
    FaultSchedule,
)

_ACTIONS = tuple(FaultAction)

FEATURE_NAMES: tuple[str, ...] = tuple(
    f"n_{action.value}" for action in _ACTIONS
) + (
    "n_events",
    "mean_time",
    "std_time",
    "frac_early",
    "frac_late",
    "target_spread",
    "frac_node_targets",
    "frac_dev_targets",
    "mean_channel_param",
    "kills_before_partition",
    "heal_after_partition",
)


def schedule_features(schedule: FaultSchedule, *, horizon: float) -> list[float]:
    """Fixed-length feature vector for one schedule (see FEATURE_NAMES)."""
    events = schedule.events
    n = len(events)
    if n == 0:
        return [0.0] * len(FEATURE_NAMES)
    span = horizon if horizon > 0 else 1.0
    times = [e.time / span for e in events]
    mean_time = sum(times) / n
    std_time = (sum((t - mean_time) ** 2 for t in times) / n) ** 0.5

    counts = {action: 0 for action in _ACTIONS}
    node_targets = 0
    dev_targets = 0
    channel_params: list[float] = []
    first_partition = None
    last_partition = None
    kills_before_partition = 0
    heal_after_partition = 0.0
    for event in events:
        counts[event.action] += 1
        if event.target.startswith("node:"):
            node_targets += 1
        elif event.target.startswith("dev:"):
            dev_targets += 1
        if event.action in CHANNEL_ACTIONS:
            channel_params.append(event.param)
        if event.action is FaultAction.PARTITION:
            if first_partition is None:
                first_partition = event.time
            last_partition = event.time
    for event in events:
        if (
            event.action is FaultAction.KILL
            and first_partition is not None
            and event.time < first_partition
        ):
            kills_before_partition += 1
        if (
            event.action is FaultAction.HEAL
            and last_partition is not None
            and event.time > last_partition
        ):
            heal_after_partition = 1.0

    features = [float(counts[action]) for action in _ACTIONS]
    features += [
        float(n),
        mean_time,
        std_time,
        sum(1 for t in times if t < 1.0 / 3.0) / n,
        sum(1 for t in times if t > 2.0 / 3.0) / n,
        len({e.target for e in events}) / n,
        node_targets / n,
        dev_targets / n,
        sum(channel_params) / len(channel_params) if channel_params else 0.0,
        float(kills_before_partition),
        heal_after_partition,
    ]
    return features
