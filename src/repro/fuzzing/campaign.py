"""The coverage-guided fault-schedule fuzzing campaign.

AFL's loop, retooled for control planes: *inputs* are
:class:`~repro.adversary.schedule.FaultSchedule`\\ s, the *program* is a
deterministic :func:`~repro.adversary.world.run_adversary` replay over a
parameterized :class:`~repro.fuzzing.topology.Topology`, and the *coverage
map* is the invariant-monitor token set from
:mod:`repro.fuzzing.coverage`.  Each generation:

1. pick parents from the corpus (entries that previously reached unseen
   coverage) and breed candidate mutants (:mod:`repro.fuzzing.mutate`);
2. optionally rank candidates with the repo's CART tree, trained on every
   ``(schedule features -> violated)`` observation so far — the learned
   failure-inducing model of Ollando et al. (PAPERS.md);
3. fan the batch out over a PR-3 :class:`~repro.parallel.executor.WorkPool`
   (each replay is an independent pure function — embarrassingly parallel);
4. fold results into the :class:`~repro.fuzzing.corpus.FuzzState`: keep
   schedules reaching unseen tokens, record distinct violation signatures,
   and ddmin-minimize a reproducer for every *new violation class*;
5. snapshot the state atomically and commit it to a PR-4
   :class:`~repro.recovery.journal.RunJournal` — a SIGKILLed campaign
   resumed with ``--resume`` replays only unfinished batches and reaches a
   bit-identical final state.

Determinism contract: batch ``k`` of a campaign seeded ``S`` draws from
``random.Random(f"fuzz:{S}:{k}")`` and nothing else — no wall clock, no
``hash()``, no shared RNG across batches — so resume-from-batch-``k`` and
run-through-batch-``k`` are the same computation.
"""

from __future__ import annotations

import hashlib
import json
import os
import random
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable

from repro.adversary.minimizer import minimize_schedule
from repro.adversary.schedule import FaultSchedule
from repro.adversary.world import AdversaryResult, run_adversary
from repro.errors import FuzzError
from repro.fuzzing.corpus import (
    CorpusEntry,
    FuzzState,
    Reproducer,
    load_state,
    save_state,
)
from repro.fuzzing.coverage import run_coverage
from repro.fuzzing.features import schedule_features
from repro.fuzzing.mutate import mutate, random_event
from repro.fuzzing.topology import TOPOLOGY_KINDS, Topology, build_topology
from repro.ml.tree import DecisionTreeClassifier
from repro.parallel.executor import WorkPool
from repro.recovery.checkpoint import open_run_journal
from repro.recovery.journal import (
    EVENT_BEGIN,
    EVENT_COMMIT,
    EVENT_RUN_END,
    JournalEvent,
)

#: Minimum observations (with both outcomes present) before the tree votes.
_MIN_TRAIN = 8
#: ddmin budget per violation class; classes are few so this stays cheap.
_MINIMIZE_MAX_REPLAYS = 160


@dataclass(frozen=True)
class FuzzConfig:
    """Everything that identifies one campaign (its resume identity)."""

    controllers: int = 5
    switches: int = 20
    flows: int | None = None
    topology: str = "ring"
    budget: int = 200
    batch: int = 20
    seed: int = 0
    horizon: float = 40.0
    events: int = 12
    hardened: bool = False
    guided: bool = True
    minimize: bool = True
    oversample: int = 3
    tree_depth: int = 4
    echo_interval: float = 8.0
    check_interval: float = 2.5

    def __post_init__(self) -> None:
        if self.topology not in TOPOLOGY_KINDS:
            raise FuzzError(
                f"unknown topology kind {self.topology!r} "
                f"(known: {', '.join(TOPOLOGY_KINDS)})"
            )
        for name in ("budget", "batch", "events", "oversample", "tree_depth"):
            if getattr(self, name) < 1:
                raise FuzzError(f"{name} must be >= 1")
        if self.horizon <= 0:
            raise FuzzError("horizon must be positive")

    def to_dict(self) -> dict[str, Any]:
        return {
            "controllers": self.controllers,
            "switches": self.switches,
            "flows": self.flows,
            "topology": self.topology,
            "budget": self.budget,
            "batch": self.batch,
            "seed": self.seed,
            "horizon": self.horizon,
            "events": self.events,
            "hardened": self.hardened,
            "guided": self.guided,
            "minimize": self.minimize,
            "oversample": self.oversample,
            "tree_depth": self.tree_depth,
            "echo_interval": self.echo_interval,
            "check_interval": self.check_interval,
        }

    def digest(self) -> str:
        """Resume identity: same digest == same campaign."""
        payload = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    @property
    def n_batches(self) -> int:
        return -(-self.budget // self.batch)

    def build_topology(self) -> Topology:
        return build_topology(
            self.topology,
            controllers=self.controllers,
            switches=self.switches,
            flows=self.flows,
            seed=self.seed,
        )


def seed_schedule(
    rng: random.Random, topology: Topology, *, horizon: float, events: int
) -> FaultSchedule:
    """A fresh random schedule over the topology's fault vocabulary.

    Both the guided and the pure-random arm draw seeds from this exact
    generator, so the bench compares *search strategies*, not input
    distributions.
    """
    return FaultSchedule(
        [random_event(rng, topology, horizon) for _ in range(events)]
    )


def _replay(schedule: FaultSchedule, config: FuzzConfig, topology: Topology) -> AdversaryResult:
    return run_adversary(
        schedule,
        hardened=config.hardened,
        nodes=topology.nodes,
        dpids=topology.dpids,
        horizon=config.horizon,
        flows=topology.flows,
        echo_interval=config.echo_interval,
        check_interval=config.check_interval,
    )


def _execute_task(task: dict[str, Any]) -> dict[str, Any]:
    """Replay one schedule and abstract it — module-level so the process
    backend can pickle it; reconstructs everything from the task payload."""
    config = FuzzConfig(**task["config"])
    topology = config.build_topology()
    schedule = FaultSchedule.from_dicts(task["schedule"])
    result = _replay(schedule, config, topology)
    # Bucket against the *configured* horizon (run_adversary may extend the
    # actual run past it): late violations simply share the last bucket, and
    # tokens stay comparable across schedules of different lengths.
    sample = run_coverage(result, horizon=config.horizon)
    return {
        "tokens": list(sample.tokens),
        "signatures": list(sample.violation_signatures),
        "signature_invariants": dict(sample.signature_invariants),
        "violated": sample.violated,
        "features": schedule_features(schedule, horizon=config.horizon),
    }


def _select_novel(
    feats: list[list[float]],
    boring: list[bool],
    executed: list[list[float]],
    count: int,
) -> list[int]:
    """Greedy max-min novelty selection over the candidate pool.

    Each pick maximizes its distance to the nearest already-executed (or
    already-picked) feature vector; candidates the tree flagged as unlikely
    to violate have their novelty halved rather than being dropped — the
    tree biases, the coverage map decides.
    """
    chosen: list[int] = []
    reference = [list(row) for row in executed]
    pool = list(range(len(feats)))
    while pool and len(chosen) < count:
        best_index, best_score = pool[0], -1.0
        for i in pool:
            near = min(
                (_distance(feats[i], ref) for ref in reference), default=1e9
            )
            score = near * (0.5 if boring[i] else 1.0)
            if score > best_score:
                best_index, best_score = i, score
        pool.remove(best_index)
        chosen.append(best_index)
        reference.append(feats[best_index])
    return chosen


def _distance(a: list[float], b: list[float]) -> float:
    return sum((x - y) ** 2 for x, y in zip(a, b)) ** 0.5


def _violation_class(signature: str) -> str:
    """``viol:<inv>:<kind>:<t>:<c>`` -> ``<inv>:<kind>``."""
    parts = signature.split(":")
    return f"{parts[1]}:{parts[2]}"


def _corpus_energy(entry: CorpusEntry) -> int:
    """AFL-style power-schedule weight: discovery earns breeding rights."""
    return min(len(entry.new_tokens), 8) + (4 if entry.violated else 0) + 1


def state_metrics(state: FuzzState):
    """Project a :class:`FuzzState` onto a ``MetricsRegistry``.

    Derived purely from the snapshot (never from in-flight batch
    bookkeeping), so a resumed campaign exports exactly the metrics an
    uninterrupted run would — the same property the state fingerprint
    guarantees.  Totals become counters, campaign levels become gauges,
    and per-entry discovery sizes become the ``fuzz_new_tokens_per_entry``
    histogram (coverage tokens minted per corpus entry).
    """
    from repro.observability.metrics import MetricsRegistry

    registry = MetricsRegistry()
    registry.counter(
        "fuzz_schedules_total", "Schedules executed"
    ).inc(state.executed)
    registry.counter(
        "fuzz_violated_runs_total", "Schedules that violated an invariant"
    ).inc(state.violated_runs)
    registry.counter(
        "fuzz_batches_total", "Journaled batches committed"
    ).inc(state.batch_index + 1)
    registry.gauge(
        "fuzz_coverage_tokens", "Distinct monitor-state coverage tokens"
    ).set(len(state.coverage))
    registry.gauge(
        "fuzz_violation_signatures", "Distinct violation signatures"
    ).set(len(state.signatures))
    registry.gauge(
        "fuzz_corpus_entries", "Corpus entries holding unseen coverage"
    ).set(len(state.corpus))
    registry.gauge(
        "fuzz_corpus_energy",
        "Total power-schedule energy across the corpus",
    ).set(sum(_corpus_energy(entry) for entry in state.corpus))
    registry.gauge(
        "fuzz_reproducers", "Minimized reproducers, one per violation class"
    ).set(len(state.reproducers))
    tokens_hist = registry.histogram(
        "fuzz_new_tokens_per_entry",
        "Coverage tokens minted per corpus entry",
        buckets=(1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0),
    )
    for entry in state.corpus:
        tokens_hist.observe(float(len(entry.new_tokens)))
    return registry


@dataclass
class FuzzReport:
    """What a finished (or resumed-to-finished) campaign produced."""

    config: FuzzConfig
    state: FuzzState
    run_dir: Path
    resumed: bool
    batches_executed: int

    @property
    def distinct_signatures(self) -> int:
        return len(self.state.signatures)

    def summary(self) -> str:
        return (
            f"{self.state.executed} schedules -> "
            f"{len(self.state.coverage)} coverage tokens, "
            f"{self.distinct_signatures} violation signatures, "
            f"{len(self.state.corpus)} corpus entries, "
            f"{len(self.state.reproducers)} minimized reproducers"
        )


class FuzzCampaign:
    """One journaled coverage-guided campaign rooted at ``run_dir``."""

    def __init__(
        self,
        config: FuzzConfig,
        run_dir: str | Path,
        *,
        jobs: int = 1,
        on_event: Callable[[JournalEvent], None] | None = None,
        progress: Callable[[str], None] | None = None,
    ) -> None:
        self.config = config
        self.run_dir = Path(run_dir)
        self.jobs = jobs
        self._on_event = on_event
        self._progress = progress or (lambda _msg: None)
        self.topology = config.build_topology()

    # -- candidate generation --------------------------------------------------
    def _pick_parent(self, rng: random.Random, state: FuzzState) -> CorpusEntry:
        # Energy = discovery: parents that minted more unseen tokens (plus a
        # bonus for violating ones) are bred more — AFL's power schedule.
        weights = [_corpus_energy(entry) for entry in state.corpus]
        total = sum(weights)
        roll = rng.randrange(total)
        for entry, weight in zip(state.corpus, weights):
            roll -= weight
            if roll < 0:
                return entry
        return state.corpus[-1]

    def _candidates(
        self, rng: random.Random, state: FuzzState, count: int
    ) -> list[tuple[str, int | None, FaultSchedule]]:
        """(origin, parent_id, schedule) triples for one batch.

        Guided batches oversample a mixed pool — corpus mutants plus fresh
        seeds — then greedily select for *feature-space novelty* (max-min
        distance to every schedule already executed and to the picks so
        far).  Behavioral novelty is what the coverage map rewards, and the
        feature vector is its cheap replay-free proxy; the CART tree biases
        the same selection by discounting candidates it predicts will not
        violate anything.
        """
        config = self.config
        fresh = lambda: seed_schedule(  # noqa: E731
            rng, self.topology, horizon=config.horizon, events=config.events
        )
        if not config.guided or not state.corpus:
            return [("seed", None, fresh()) for _ in range(count)]

        wanted = count * config.oversample
        explore = max(1, wanted // 3)
        candidates: list[tuple[str, int | None, FaultSchedule]] = []
        for _ in range(wanted - explore):
            parent = self._pick_parent(rng, state)
            mate = self._pick_parent(rng, state)
            name, mutant = mutate(
                FaultSchedule.from_dicts(parent.schedule),
                FaultSchedule.from_dicts(mate.schedule),
                self.topology,
                rng,
                horizon=config.horizon,
            )
            candidates.append((name, parent.entry_id, mutant))
        for _ in range(explore):
            candidates.append(("seed", None, fresh()))

        feats = [
            schedule_features(sched, horizon=config.horizon)
            for _, _, sched in candidates
        ]
        tree = self._maybe_fit_tree(state)
        boring = (
            [int(p) == 0 for p in tree.predict(feats)]
            if tree is not None
            else [False] * len(candidates)
        )
        return [candidates[i] for i in _select_novel(feats, boring, state.features, count)]

    def _maybe_fit_tree(self, state: FuzzState) -> DecisionTreeClassifier | None:
        if len(state.labels) < _MIN_TRAIN or len(set(state.labels)) < 2:
            return None
        tree = DecisionTreeClassifier(max_depth=self.config.tree_depth)
        return tree.fit(state.features, state.labels)

    # -- reproducers -----------------------------------------------------------
    def _minimize_class(
        self, state: FuzzState, schedule: FaultSchedule, signature: str, invariant: str
    ) -> None:
        cls = _violation_class(signature)
        if cls in state.reproducers:
            return
        prefix = f"viol:{cls}:"
        config, topology = self.config, self.topology

        def predicate(result: AdversaryResult) -> bool:
            sample = run_coverage(result, horizon=config.horizon)
            return any(s.startswith(prefix) for s in sample.violation_signatures)

        outcome = minimize_schedule(
            schedule,
            target=cls,
            predicate=predicate,
            replay=lambda s: _replay(s, config, topology),
            max_replays=_MINIMIZE_MAX_REPLAYS,
        )
        state.reproducers[cls] = Reproducer(
            violation_class=cls,
            invariant=invariant,
            signature=signature,
            original=schedule.to_dicts(),
            minimized=outcome.minimized.to_dicts(),
            replays=outcome.replays,
            probes=outcome.probes,
        )

    # -- the generation fold ---------------------------------------------------
    def _step(self, state: FuzzState, k: int, pool: WorkPool) -> None:
        config = self.config
        rng = random.Random(f"fuzz:{config.seed}:{k}")
        count = min(config.batch, config.budget - k * config.batch)
        candidates = self._candidates(rng, state, count)
        tasks = [
            {"config": config.to_dict(), "schedule": sched.to_dicts()}
            for _, _, sched in candidates
        ]
        results = pool.map(_execute_task, tasks)

        for (origin, parent, sched), outcome in zip(candidates, results):
            if outcome is None:  # quarantined by the pool; never expected here
                continue
            state.executed += 1
            tokens = set(outcome["tokens"])
            new_tokens = tokens - state.coverage
            violated = bool(outcome["violated"])
            if violated:
                state.violated_runs += 1
            state.features.append(list(outcome["features"]))
            state.labels.append(int(violated))
            if new_tokens:
                state.coverage |= tokens
                state.corpus.append(
                    CorpusEntry(
                        entry_id=len(state.corpus),
                        origin=origin,
                        parent=parent,
                        schedule=sched.to_dicts(),
                        new_tokens=tuple(sorted(new_tokens)),
                        violated=violated,
                    )
                )
            state.signatures |= set(outcome["signatures"])
            if config.minimize:
                for signature in sorted(outcome["signature_invariants"]):
                    invariant = outcome["signature_invariants"][signature]
                    self._minimize_class(state, sched, signature, invariant)
        state.batch_index = k

    # -- orchestration ---------------------------------------------------------
    def run(self, *, resume: bool = False) -> FuzzReport:
        config = self.config
        self.run_dir.mkdir(parents=True, exist_ok=True)
        journal, committed = open_run_journal(
            self.run_dir / "journal.jsonl",
            f"fuzz-{config.seed}",
            resume=resume,
            config_digest=config.digest(),
            on_event=self._on_event,
        )
        try:
            state, start = self._load_or_init(committed)
            batches = 0
            if start < config.n_batches:
                pool = WorkPool(self.jobs, backend="auto" if self.jobs > 1 else "serial")
                for k in range(start, config.n_batches):
                    stage = f"batch-{k:04d}"
                    journal.append(EVENT_BEGIN, stage=stage)
                    self._step(state, k, pool)
                    snapshot = f"state-{k:04d}.json"
                    digest = save_state(state, self.run_dir / snapshot)
                    journal.append(
                        EVENT_COMMIT, stage=stage, key=snapshot, digest=digest
                    )
                    self._prune_snapshots(keep=snapshot)
                    batches += 1
                    self._progress(
                        f"batch {k + 1}/{config.n_batches}: "
                        f"{len(state.coverage)} tokens, "
                        f"{len(state.signatures)} violation signatures"
                    )
            journal.append(EVENT_RUN_END)
            self._export(state)
            return FuzzReport(
                config=config,
                state=state,
                run_dir=self.run_dir,
                resumed=resume,
                batches_executed=batches,
            )
        finally:
            journal.close()

    def _load_or_init(
        self, committed: dict[str, JournalEvent]
    ) -> tuple[FuzzState, int]:
        batch_stages = sorted(s for s in committed if s.startswith("batch-"))
        if not batch_stages:
            return FuzzState(config=self.config.to_dict()), 0
        last = committed[batch_stages[-1]]
        state = load_state(self.run_dir / last.key, expect_digest=last.digest)
        return state, state.batch_index + 1

    def _prune_snapshots(self, *, keep: str) -> None:
        for path in sorted(self.run_dir.glob("state-*.json")):
            if path.name != keep:
                path.unlink()

    def _export(self, state: FuzzState) -> None:
        coverage = {
            "topology": self.topology.summary(),
            "executed": state.executed,
            "violated_runs": state.violated_runs,
            "tokens": sorted(state.coverage),
            "violation_signatures": sorted(state.signatures),
            "corpus_size": len(state.corpus),
            "fingerprint": state.fingerprint(),
        }
        _atomic_json(self.run_dir / "coverage.json", coverage)
        reproducers = [
            state.reproducers[key].to_dict() for key in sorted(state.reproducers)
        ]
        _atomic_json(self.run_dir / "reproducers.json", reproducers)
        _atomic_text(self.run_dir / "metrics.jsonl",
                     state_metrics(state).export_jsonl())


def _atomic_json(path: Path, payload: Any) -> None:
    tmp = path.with_name(path.name + ".tmp")
    try:
        with tmp.open("w", encoding="utf-8") as handle:
            json.dump(payload, handle, sort_keys=True, indent=1)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)


def _atomic_text(path: Path, text: str) -> None:
    tmp = path.with_name(path.name + ".tmp")
    try:
        with tmp.open("w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)


def run_campaign(
    config: FuzzConfig,
    run_dir: str | Path,
    *,
    resume: bool = False,
    jobs: int = 1,
    on_event: Callable[[JournalEvent], None] | None = None,
    progress: Callable[[str], None] | None = None,
) -> FuzzReport:
    """Run (or resume) one campaign; the CLI and tests call this."""
    campaign = FuzzCampaign(
        config, run_dir, jobs=jobs, on_event=on_event, progress=progress
    )
    return campaign.run(resume=resume)
