"""Campaign state: corpus, coverage map, reproducers — crash-safe.

The whole campaign is a fold over batches: ``state' = step(state, batch)``
with ``step`` deterministic given the campaign seed.  Everything ``step``
reads or writes lives in :class:`FuzzState`, which serializes to canonical
JSON (sorted keys, sorted sets) — so a state has a *fingerprint*, two
states can be compared bit-for-bit, and a SIGKILLed campaign resumed from
its last committed snapshot converges on exactly the final state an
uninterrupted run produces (the PR-4 recovery discipline, applied to
fuzzing).

Snapshots are written via tmp + fsync + ``os.replace`` and journaled by
digest; loading verifies the digest the journal promised.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.errors import FuzzError

#: Snapshot schema version, bumped on incompatible state changes.
STATE_VERSION = 1


@dataclass
class CorpusEntry:
    """One schedule kept because it reached unseen coverage."""

    entry_id: int
    origin: str  # "seed" or the mutation operator that produced it
    parent: int | None
    schedule: list[dict[str, Any]]
    new_tokens: tuple[str, ...]
    violated: bool

    def to_dict(self) -> dict[str, Any]:
        return {
            "entry_id": self.entry_id,
            "origin": self.origin,
            "parent": self.parent,
            "schedule": self.schedule,
            "new_tokens": list(self.new_tokens),
            "violated": self.violated,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "CorpusEntry":
        return cls(
            entry_id=int(data["entry_id"]),
            origin=str(data["origin"]),
            parent=None if data["parent"] is None else int(data["parent"]),
            schedule=list(data["schedule"]),
            new_tokens=tuple(data["new_tokens"]),
            violated=bool(data["violated"]),
        )


@dataclass
class Reproducer:
    """A ddmin-minimized reproducer for one violation class."""

    violation_class: str  # "<invariant>:<subject-kind>"
    invariant: str
    signature: str  # the coverage signature that first hit the class
    original: list[dict[str, Any]]
    minimized: list[dict[str, Any]]
    replays: int
    probes: int

    def to_dict(self) -> dict[str, Any]:
        return {
            "violation_class": self.violation_class,
            "invariant": self.invariant,
            "signature": self.signature,
            "original": self.original,
            "minimized": self.minimized,
            "replays": self.replays,
            "probes": self.probes,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Reproducer":
        return cls(
            violation_class=str(data["violation_class"]),
            invariant=str(data["invariant"]),
            signature=str(data["signature"]),
            original=list(data["original"]),
            minimized=list(data["minimized"]),
            replays=int(data["replays"]),
            probes=int(data["probes"]),
        )


@dataclass
class FuzzState:
    """Everything a batch step reads and writes."""

    config: dict[str, Any]
    batch_index: int = -1  # last *completed* batch
    executed: int = 0
    violated_runs: int = 0
    coverage: set[str] = field(default_factory=set)
    signatures: set[str] = field(default_factory=set)
    corpus: list[CorpusEntry] = field(default_factory=list)
    reproducers: dict[str, Reproducer] = field(default_factory=dict)
    #: Accumulated training set for the guidance tree (features -> violated).
    features: list[list[float]] = field(default_factory=list)
    labels: list[int] = field(default_factory=list)

    # -- serialization ---------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "version": STATE_VERSION,
            "config": self.config,
            "batch_index": self.batch_index,
            "executed": self.executed,
            "violated_runs": self.violated_runs,
            "coverage": sorted(self.coverage),
            "signatures": sorted(self.signatures),
            "corpus": [entry.to_dict() for entry in self.corpus],
            "reproducers": {
                key: self.reproducers[key].to_dict()
                for key in sorted(self.reproducers)
            },
            "features": self.features,
            "labels": self.labels,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FuzzState":
        if data.get("version") != STATE_VERSION:
            raise FuzzError(
                f"unsupported fuzz state version {data.get('version')!r} "
                f"(expected {STATE_VERSION})"
            )
        return cls(
            config=dict(data["config"]),
            batch_index=int(data["batch_index"]),
            executed=int(data["executed"]),
            violated_runs=int(data["violated_runs"]),
            coverage=set(data["coverage"]),
            signatures=set(data["signatures"]),
            corpus=[CorpusEntry.from_dict(row) for row in data["corpus"]],
            reproducers={
                key: Reproducer.from_dict(row)
                for key, row in data["reproducers"].items()
            },
            features=[list(map(float, row)) for row in data["features"]],
            labels=[int(v) for v in data["labels"]],
        )

    def canonical_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    def fingerprint(self) -> str:
        """sha256 over the canonical state — the bit-identity yardstick."""
        return hashlib.sha256(self.canonical_json().encode("utf-8")).hexdigest()


# -- snapshot IO ----------------------------------------------------------------

def save_state(state: FuzzState, path: str | Path) -> str:
    """Atomically write a snapshot; returns its sha256 digest."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = json.dumps(state.to_dict(), sort_keys=True, indent=1)
    tmp = path.with_name(path.name + ".tmp")
    try:
        with tmp.open("w", encoding="utf-8") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def load_state(path: str | Path, *, expect_digest: str | None = None) -> FuzzState:
    """Load a snapshot, verifying the digest the journal promised."""
    path = Path(path)
    if not path.exists():
        raise FuzzError(f"{path}: fuzz state snapshot does not exist")
    payload = path.read_text(encoding="utf-8")
    if expect_digest is not None:
        actual = hashlib.sha256(payload.encode("utf-8")).hexdigest()
        if actual != expect_digest:
            raise FuzzError(
                f"{path}: snapshot digest mismatch (journal promised "
                f"{expect_digest[:12]}..., found {actual[:12]}...)"
            )
    try:
        data = json.loads(payload)
    except json.JSONDecodeError as exc:
        raise FuzzError(f"{path}: snapshot is not valid JSON: {exc}") from exc
    return FuzzState.from_dict(data)
