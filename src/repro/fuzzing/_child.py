"""Subprocess entry point for fuzz-campaign kill injection.

Runs one journaled campaign and — when ``--kill-after k`` is positive —
SIGKILLs its own process the instant the k-th journal event is durable
(``RunJournal.on_event`` fires only after fsync), exactly the crash model
of :mod:`repro.recovery._child`.  What survives is what the journal and
the atomic state snapshots promise, nothing more.

Not part of the public API; invoked as ``python -m repro.fuzzing._child``
by the smoke campaign and the resume tests.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.fuzzing._child")
    parser.add_argument("--run-dir", required=True)
    parser.add_argument("--kill-after", type=int, default=0,
                        help="SIGKILL self after this many journal events "
                             "(0 = run to completion)")
    parser.add_argument("--resume", action="store_true")
    parser.add_argument("--config", required=True,
                        help="FuzzConfig as a JSON object")
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument("--out", help="write the final state fingerprint here")
    args = parser.parse_args(argv)

    from repro.fuzzing.campaign import FuzzConfig, run_campaign

    config = FuzzConfig(**json.loads(args.config))
    events_seen = 0

    def _kill_at_k(event) -> None:
        nonlocal events_seen
        events_seen += 1
        if args.kill_after > 0 and events_seen >= args.kill_after:
            # The k-th event is already fsync'd; die with no goodbye.
            os.kill(os.getpid(), signal.SIGKILL)

    report = run_campaign(
        config,
        args.run_dir,
        resume=args.resume,
        jobs=args.jobs,
        on_event=_kill_at_k,
    )
    verdict = {
        "fingerprint": report.state.fingerprint(),
        "executed": report.state.executed,
        "coverage": len(report.state.coverage),
        "signatures": len(report.state.signatures),
        "reproducers": len(report.state.reproducers),
    }
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(verdict, handle, indent=2, sort_keys=True)
    else:
        json.dump(verdict, sys.stdout, indent=2, sort_keys=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
