"""Parameterized control-plane topologies: the fuzzer's world generator.

The hand-wired 3-node :class:`~repro.adversary.world.AdversaryWorld` is a
microscope; the paper's §V-A takeaway ("testing environments lack
representative failures and equipment") needs a telescope.  A
:class:`Topology` scales the same world to N controllers × M switches × K
workload flows and — crucially for the mutation operators — carries a
*structured* partition vocabulary: ring topologies cut contiguous arcs,
stars isolate the hub or a leaf cluster, fat-tree-ish layouts cut whole
pods.  Random node-isolation (what :func:`random_schedule` does) only ever
explores one partition shape; the structured specs are where the
coverage-guided search finds the partitions real deployments see.

Everything is derived from ``(kind, controllers, switches, seed)`` — two
calls with the same parameters produce identical topologies.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.errors import FuzzError

TOPOLOGY_KINDS = ("ring", "star", "fattree")

#: Cap on enumerated partition specs so huge worlds keep a bounded,
#: seed-stable mutation vocabulary.
_MAX_PARTITION_SPECS = 16


@dataclass(frozen=True)
class Topology:
    """One parameterized control plane the fuzzer perturbs."""

    kind: str
    nodes: tuple[str, ...]
    dpids: tuple[int, ...]
    flows: int
    #: Structured partition specs (``"a,b|c,d"``) the mutators draw from.
    partition_specs: tuple[str, ...]

    @property
    def controllers(self) -> int:
        return len(self.nodes)

    @property
    def switches(self) -> int:
        return len(self.dpids)

    def channel_targets(self) -> tuple[str, ...]:
        """Every interposer channel a message-level action can arm."""
        return tuple(f"node:{n}" for n in self.nodes) + tuple(
            f"dev:{d}" for d in self.dpids
        )

    def summary(self) -> str:
        return (
            f"{self.kind}: {self.controllers} controllers x "
            f"{self.switches} switches x {self.flows} flows "
            f"({len(self.partition_specs)} partition cuts)"
        )


def _spec(group: list[str], nodes: tuple[str, ...]) -> str:
    """Partition spec isolating ``group`` from the rest of the cluster."""
    rest = [n for n in nodes if n not in set(group)]
    return ",".join(group) + "|" + ",".join(rest)


def _ring_specs(nodes: tuple[str, ...], rng: random.Random) -> list[str]:
    """Contiguous arcs of the ring cut off from the remainder."""
    n = len(nodes)
    cuts: list[str] = []
    seen: set[tuple[str, ...]] = set()
    arcs = [(start, length) for length in range(1, n // 2 + 1) for start in range(n)]
    rng.shuffle(arcs)
    for start, length in arcs:
        arc = [nodes[(start + i) % n] for i in range(length)]
        key = tuple(sorted(arc))
        if key in seen or len(arc) == n:
            continue
        seen.add(key)
        cuts.append(_spec(arc, nodes))
        if len(cuts) >= _MAX_PARTITION_SPECS:
            break
    return cuts


def _star_specs(nodes: tuple[str, ...], rng: random.Random) -> list[str]:
    """Hub isolation, single-leaf drops, and hub+leaf splits."""
    hub, leaves = nodes[0], list(nodes[1:])
    cuts = [_spec([hub], nodes)]
    picked = list(leaves)
    rng.shuffle(picked)
    for leaf in picked[: _MAX_PARTITION_SPECS // 2]:
        cuts.append(_spec([leaf], nodes))
    for leaf in picked[_MAX_PARTITION_SPECS // 2 :][: _MAX_PARTITION_SPECS // 4]:
        cuts.append(_spec([hub, leaf], nodes))
    return cuts[:_MAX_PARTITION_SPECS]


def _fattree_specs(nodes: tuple[str, ...], rng: random.Random) -> list[str]:
    """Pod cuts: controllers grouped into ~sqrt(N) pods; cut pods and
    pod-pairs off the spine."""
    n = len(nodes)
    pod_size = max(2, int(math.isqrt(n)))
    pods = [list(nodes[i : i + pod_size]) for i in range(0, n, pod_size)]
    cuts = [_spec(pod, nodes) for pod in pods if len(pod) < n]
    pairs = [(i, j) for i in range(len(pods)) for j in range(i + 1, len(pods))]
    rng.shuffle(pairs)
    for i, j in pairs:
        group = pods[i] + pods[j]
        if len(group) < n:
            cuts.append(_spec(group, nodes))
        if len(cuts) >= _MAX_PARTITION_SPECS:
            break
    return cuts[:_MAX_PARTITION_SPECS]


def build_topology(
    kind: str,
    *,
    controllers: int,
    switches: int,
    flows: int | None = None,
    seed: int = 0,
) -> Topology:
    """Derive a whole topology from its parameters (seed-stable)."""
    if kind not in TOPOLOGY_KINDS:
        raise FuzzError(
            f"unknown topology kind {kind!r} (known: {', '.join(TOPOLOGY_KINDS)})"
        )
    if controllers < 2:
        raise FuzzError("a topology needs at least two controllers")
    if switches < 1:
        raise FuzzError("a topology needs at least one switch")
    if flows is not None and flows < 1:
        raise FuzzError("flows must be >= 1 when given")
    # String seeding is PYTHONHASHSEED-independent (unlike hash()).
    rng = random.Random(f"topology:{kind}:{controllers}:{switches}:{seed}")
    nodes = tuple(f"c{i:02d}" for i in range(controllers))
    dpids = tuple(range(1, switches + 1))
    builders = {"ring": _ring_specs, "star": _star_specs, "fattree": _fattree_specs}
    specs = builders[kind](nodes, rng)
    return Topology(
        kind=kind,
        nodes=nodes,
        dpids=dpids,
        flows=flows if flows is not None else switches,
        partition_specs=tuple(specs),
    )
