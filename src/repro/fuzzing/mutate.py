"""Schedule mutation operators: the fuzzer's search moves.

Five operators, all pure functions of ``(rng, parents, topology)``:

* ``splice``     — crossover: prefix of one corpus schedule, suffix of
                   another, cut at a random time;
* ``retarget``   — re-point one event at a different valid target (channel,
                   node, or a structured partition cut from the topology);
* ``time-jitter``— gaussian-nudge event times within the horizon;
* ``action-flip``— swap an event's action within its class (channel actions
                   among themselves; node actions among themselves), fixing
                   the param up to match the new action's semantics;
* ``havoc``      — 2-5 stacked random moves including event insertion and
                   deletion (the classic AFL kitchen-sink).

Every mutant is *well-formed by construction*: times clamped to
``[0, horizon]``, targets valid for the action, params in the action's
domain, and at least one event — property-tested in
``tests/test_fuzzing.py``.  Determinism: operators draw only from the
passed ``random.Random``; the same rng state yields the same mutant.
"""

from __future__ import annotations

import random

from repro.adversary.schedule import (
    CHANNEL_ACTIONS,
    FaultAction,
    FaultEvent,
    FaultSchedule,
)
from repro.errors import FuzzError, ScheduleError
from repro.fuzzing.topology import Topology

#: Events never land in the final fifth of the horizon: the world needs
#: settle time for liveness monitors to observe the damage.
ACTIVE_FRACTION = 0.8

_NODE_ACTIONS = (
    FaultAction.PARTITION,
    FaultAction.HEAL,
    FaultAction.CLOCK_SKEW,
    FaultAction.KILL,
)
_CHANNEL_ACTION_ORDER = tuple(
    action for action in FaultAction if action in CHANNEL_ACTIONS
)


def _clamp_time(time: float, horizon: float) -> float:
    return round(min(max(time, 0.0), horizon * ACTIVE_FRACTION), 3)


def _channel_param(rng: random.Random, action: FaultAction) -> float:
    if action is FaultAction.DELAY:
        return round(rng.uniform(2.0, 12.0), 2)
    return float(rng.randint(1, 3))


def _target_for(
    rng: random.Random, action: FaultAction, topology: Topology
) -> str:
    if action in CHANNEL_ACTIONS:
        targets = topology.channel_targets()
        return targets[rng.randrange(len(targets))]
    if action is FaultAction.PARTITION:
        specs = topology.partition_specs
        if specs:
            return specs[rng.randrange(len(specs))]
        isolated = topology.nodes[rng.randrange(len(topology.nodes))]
        rest = ",".join(n for n in topology.nodes if n != isolated)
        return f"{isolated}|{rest}"
    if action is FaultAction.HEAL:
        return "*"
    return topology.nodes[rng.randrange(len(topology.nodes))]


def _param_for(rng: random.Random, action: FaultAction) -> float:
    if action in CHANNEL_ACTIONS:
        return _channel_param(rng, action)
    if action is FaultAction.CLOCK_SKEW:
        return round(rng.uniform(2.0, 20.0), 2)
    return 0.0


def random_event(
    rng: random.Random, topology: Topology, horizon: float
) -> FaultEvent:
    """One fresh event drawn from the topology's vocabulary."""
    action = _WEIGHTED_ACTIONS[rng.randrange(len(_WEIGHTED_ACTIONS))]
    return FaultEvent(
        time=_clamp_time(rng.uniform(1.0, horizon * ACTIVE_FRACTION), horizon),
        target=_target_for(rng, action, topology),
        action=action,
        param=_param_for(rng, action),
    )


#: Same weighting as random_schedule: message-level faults dominate, with a
#: steady minority of cluster-level disruptions.
_WEIGHTED_ACTIONS = (
    [FaultAction.DROP] * 4
    + [FaultAction.DELAY] * 3
    + [FaultAction.REORDER] * 2
    + [FaultAction.DUPLICATE] * 2
    + [FaultAction.CORRUPT] * 2
    + [FaultAction.PARTITION] * 2
    + [FaultAction.HEAL] * 1
    + [FaultAction.CLOCK_SKEW] * 2
    + [FaultAction.KILL] * 1
)


# -- operators ------------------------------------------------------------------

def splice(
    rng: random.Random,
    schedule: FaultSchedule,
    mate: FaultSchedule,
    topology: Topology,
    horizon: float,
) -> FaultSchedule:
    """Prefix of ``schedule`` + suffix of ``mate``, cut at a random time."""
    cut = rng.uniform(0.0, horizon * ACTIVE_FRACTION)
    events = [e for e in schedule.events if e.time < cut]
    events += [e for e in mate.events if e.time >= cut]
    if not events:
        events = [random_event(rng, topology, horizon)]
    return FaultSchedule(list(events))


def retarget(
    rng: random.Random,
    schedule: FaultSchedule,
    mate: FaultSchedule,
    topology: Topology,
    horizon: float,
) -> FaultSchedule:
    """Re-point one event at another valid target for its action."""
    events = list(schedule.events)
    index = rng.randrange(len(events))
    old = events[index]
    events[index] = FaultEvent(
        time=old.time,
        target=_target_for(rng, old.action, topology),
        action=old.action,
        param=old.param,
    )
    return FaultSchedule(events)


def time_jitter(
    rng: random.Random,
    schedule: FaultSchedule,
    mate: FaultSchedule,
    topology: Topology,
    horizon: float,
) -> FaultSchedule:
    """Gaussian-nudge roughly half the event times (sigma = horizon/10)."""
    events = []
    moved = False
    for event in schedule.events:
        if rng.random() < 0.5:
            moved = True
            events.append(
                FaultEvent(
                    time=_clamp_time(
                        event.time + rng.gauss(0.0, horizon * 0.1), horizon
                    ),
                    target=event.target,
                    action=event.action,
                    param=event.param,
                )
            )
        else:
            events.append(event)
    if not moved and events:
        index = rng.randrange(len(events))
        old = events[index]
        events[index] = FaultEvent(
            time=_clamp_time(old.time + rng.gauss(0.0, horizon * 0.1), horizon),
            target=old.target,
            action=old.action,
            param=old.param,
        )
    return FaultSchedule(events)


def action_flip(
    rng: random.Random,
    schedule: FaultSchedule,
    mate: FaultSchedule,
    topology: Topology,
    horizon: float,
) -> FaultSchedule:
    """Swap one event's action within its class, fixing target and param."""
    events = list(schedule.events)
    index = rng.randrange(len(events))
    old = events[index]
    if old.action in CHANNEL_ACTIONS:
        choices = [a for a in _CHANNEL_ACTION_ORDER if a is not old.action]
        action = choices[rng.randrange(len(choices))]
        events[index] = FaultEvent(
            time=old.time,
            target=old.target,
            action=action,
            param=_channel_param(rng, action),
        )
    else:
        choices = [a for a in _NODE_ACTIONS if a is not old.action]
        action = choices[rng.randrange(len(choices))]
        events[index] = FaultEvent(
            time=old.time,
            target=_target_for(rng, action, topology),
            action=action,
            param=_param_for(rng, action),
        )
    return FaultSchedule(events)


def havoc(
    rng: random.Random,
    schedule: FaultSchedule,
    mate: FaultSchedule,
    topology: Topology,
    horizon: float,
) -> FaultSchedule:
    """2-6 stacked moves, growth-biased: insertion dominates deletion so
    corpus schedules compound into fault combinations the fixed-length seed
    generator can never sample."""
    current = schedule
    for _ in range(rng.randint(2, 6)):
        roll = rng.random()
        if roll < 0.35:
            events = list(current.events)
            for _ in range(rng.randint(1, 2)):
                events.append(random_event(rng, topology, horizon))
            current = FaultSchedule(events)
        elif roll < 0.45 and len(current) > 1:
            events = list(current.events)
            events.pop(rng.randrange(len(events)))
            current = FaultSchedule(events)
        elif roll < 0.6:
            current = retarget(rng, current, mate, topology, horizon)
        elif roll < 0.8:
            current = time_jitter(rng, current, mate, topology, horizon)
        else:
            current = action_flip(rng, current, mate, topology, horizon)
    return current


MUTATORS = {
    "splice": splice,
    "retarget": retarget,
    "time-jitter": time_jitter,
    "action-flip": action_flip,
    "havoc": havoc,
}

#: Draw weights: havoc and splice explore, the point mutations exploit.
_WEIGHTED_OPERATORS = (
    ["havoc"] * 3
    + ["splice"] * 2
    + ["retarget"] * 2
    + ["time-jitter"] * 2
    + ["action-flip"] * 1
)


def mutate(
    schedule: FaultSchedule,
    mate: FaultSchedule,
    topology: Topology,
    rng: random.Random,
    *,
    horizon: float,
    operator: str | None = None,
) -> tuple[str, FaultSchedule]:
    """Apply one (possibly rng-chosen) operator; returns (name, mutant)."""
    if len(schedule) == 0:
        raise FuzzError("cannot mutate an empty schedule")
    name = operator or _WEIGHTED_OPERATORS[rng.randrange(len(_WEIGHTED_OPERATORS))]
    if name not in MUTATORS:
        raise FuzzError(
            f"unknown mutation operator {name!r} (known: {', '.join(sorted(MUTATORS))})"
        )
    return name, MUTATORS[name](rng, schedule, mate, topology, horizon)


def validate_schedule(
    schedule: FaultSchedule, topology: Topology, *, horizon: float
) -> None:
    """Raise :class:`ScheduleError` unless every event is well-formed for
    the topology — the contract the property tests hold mutants to."""
    if len(schedule) == 0:
        raise ScheduleError("schedule has no events")
    nodes = set(topology.nodes)
    channels = set(topology.channel_targets())
    for event in schedule.events:
        if not 0.0 <= event.time <= horizon:
            raise ScheduleError(f"event outside [0, horizon]: {event}")
        if event.action in CHANNEL_ACTIONS:
            if event.target not in channels:
                raise ScheduleError(f"bad channel target: {event}")
            if event.param <= 0:
                raise ScheduleError(f"non-positive channel param: {event}")
        elif event.action in (FaultAction.KILL, FaultAction.CLOCK_SKEW):
            if event.target not in nodes:
                raise ScheduleError(f"bad node target: {event}")
        elif event.action is FaultAction.PARTITION:
            mentioned = {
                part
                for group in event.target.split("|")
                for part in group.split(",")
                if part
            }
            if not mentioned or not mentioned <= nodes:
                raise ScheduleError(f"bad partition spec: {event}")
        elif event.action is FaultAction.HEAL:
            if event.target != "*":
                raise ScheduleError(f"heal target must be '*': {event}")
