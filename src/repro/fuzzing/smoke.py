"""Fuzz-smoke campaign: ``python -m repro.fuzzing.smoke``.

The CI entry point for fuzzer crash-safety.  Runs one uninterrupted
reference campaign, then SIGKILLs fresh campaigns at several journal
offsets and resumes each with ``--resume``; every resumed campaign must
reach a final :class:`~repro.fuzzing.corpus.FuzzState` fingerprint
**bit-for-bit identical** to the reference.  Exit status 0 only when every
scenario passes; verdicts, coverage maps, and minimized reproducers land
under ``--artifacts`` for CI upload.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import signal
import subprocess
import sys
import tempfile
from pathlib import Path

from repro.fuzzing.campaign import FuzzConfig, run_campaign


def _child_env() -> dict[str, str]:
    env = dict(os.environ)
    src_root = str(Path(__file__).resolve().parents[2])
    existing = env.get("PYTHONPATH", "")
    if src_root not in existing.split(os.pathsep):
        env["PYTHONPATH"] = src_root + (os.pathsep + existing if existing else "")
    return env


def _spawn(config: FuzzConfig, run_dir: Path, *, kill_after: int = 0,
           resume: bool = False, out: Path | None = None,
           timeout: float = 600.0) -> subprocess.CompletedProcess:
    argv = [
        sys.executable, "-m", "repro.fuzzing._child",
        "--run-dir", str(run_dir),
        "--config", json.dumps(config.to_dict()),
    ]
    if kill_after:
        argv += ["--kill-after", str(kill_after)]
    if resume:
        argv.append("--resume")
    if out is not None:
        argv += ["--out", str(out)]
    return subprocess.run(
        argv, env=_child_env(), capture_output=True, text=True, timeout=timeout
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.fuzzing.smoke")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--budget", type=int, default=40)
    parser.add_argument("--batch", type=int, default=8)
    parser.add_argument("--controllers", type=int, default=5)
    parser.add_argument("--switches", type=int, default=12)
    parser.add_argument(
        "--kill-events", type=int, nargs="+", default=[3, 6],
        help="journal offsets to SIGKILL at (mid-campaign batch commits)",
    )
    parser.add_argument(
        "--artifacts", default="benchmarks/artifacts/fuzz-smoke",
        help="directory for verdicts + coverage + reproducers (CI upload)",
    )
    parser.add_argument("--workdir",
                        help="scratch directory (default: a fresh tempdir)")
    args = parser.parse_args(argv)

    workdir = Path(args.workdir) if args.workdir else Path(
        tempfile.mkdtemp(prefix="fuzz-smoke-")
    )
    artifacts = Path(args.artifacts)
    artifacts.mkdir(parents=True, exist_ok=True)

    config = FuzzConfig(
        controllers=args.controllers,
        switches=args.switches,
        budget=args.budget,
        batch=args.batch,
        seed=args.seed,
        horizon=30.0,
    )
    print(f"fuzz-smoke: seed={args.seed} budget={args.budget} "
          f"kill-events={args.kill_events} workdir={workdir}")

    reference = run_campaign(config, workdir / "reference")
    ref_fingerprint = reference.state.fingerprint()
    print(f"  reference: {reference.summary()}")

    failed = 0
    verdicts = [{
        "label": "reference",
        "fingerprint": ref_fingerprint,
        "summary": reference.summary(),
    }]
    for k in args.kill_events:
        run_dir = workdir / f"kill-{k}"
        killed = _spawn(config, run_dir, kill_after=k)
        was_killed = killed.returncode == -signal.SIGKILL
        resumed = run_campaign(config, run_dir, resume=True)
        fingerprint = resumed.state.fingerprint()
        ok = was_killed and fingerprint == ref_fingerprint
        failed += 0 if ok else 1
        verdicts.append({
            "label": f"kill-{k}",
            "killed": was_killed,
            "fingerprint": fingerprint,
            "bit_identical": fingerprint == ref_fingerprint,
        })
        print(f"  {'PASS' if ok else 'FAIL'} kill-{k}: killed={was_killed} "
              f"bit-identical={fingerprint == ref_fingerprint}")

    with open(artifacts / "fuzz_smoke.json", "w") as handle:
        json.dump(verdicts, handle, indent=2, sort_keys=True)
    for name in ("coverage.json", "reproducers.json"):
        source = workdir / "reference" / name
        if source.exists():
            shutil.copy2(source, artifacts / name)
    print(f"verdicts + coverage + reproducers under {artifacts}")

    if failed:
        print(f"fuzz-smoke FAILED: {failed} scenario(s)")
        return 1
    print(f"fuzz-smoke OK: {len(args.kill_events)} killed campaign(s) resumed "
          "to a state bit-for-bit identical to the uninterrupted reference")
    return 0


if __name__ == "__main__":
    sys.exit(main())
