"""Coverage signatures over invariant-monitor state.

AFL's coverage map is branch edges; ours is the behavior of the runtime
invariant monitors.  One adversary run is abstracted into a set of
*coverage tokens*:

* ``edge:<invariant>:<rise|fall>:<c>`` — a monitor edge transition at
  concurrency bucket ``c`` (log2 of how many subjects of that invariant
  were simultaneously violating);
* ``viol:<invariant>:<kind>:<t>:<c>`` — a violation fingerprint: subject
  kind (``dpid``/``cluster``), time-of-run bucket ``t`` (eighths of the
  horizon) and concurrency bucket ``c``;
* ``flap:<invariant>:<b>`` — how often the invariant re-broke after
  clearing (log2-bucketed rise count), the signature of oscillating
  failures;
* ``combo:<inv+inv+...>`` — the set of invariants co-violated in the run.

Buckets keep the token space *bounded* (a 200-switch world must not mint a
token per dpid) yet *graded* (deeper, broader, later failures are distinct
coverage), which is exactly what gives the mutation search a gradient.
Everything is a pure function of a deterministic replay, so the same
schedule always yields the same tokens — bit for bit.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.adversary.world import AdversaryResult

#: Horizon is split into this many violation-time buckets.
TIME_BUCKETS = 8


def _log2_bucket(count: int, *, cap: int = 6) -> int:
    """0, 1, 2 ... for counts 1, 2-3, 4-7, ... (capped)."""
    bucket = 0
    while count > 1:
        count //= 2
        bucket += 1
    return min(bucket, cap)


def _subject_kind(subject: str) -> str:
    """``dpid=17`` -> ``dpid``; ``cluster`` -> ``cluster``."""
    return subject.split("=", 1)[0]


@dataclass(frozen=True)
class CoverageSample:
    """The coverage a single run reached."""

    #: Sorted, de-duplicated coverage tokens.
    tokens: tuple[str, ...]
    #: The ``viol:*`` subset — the distinct violation signatures metric.
    violation_signatures: tuple[str, ...]
    #: First invariant observed per violation signature (ddmin targets).
    signature_invariants: dict[str, str]
    violated: bool

    @property
    def signature(self) -> str:
        """Canonical sha256 over the token set (bit-stable)."""
        payload = json.dumps(list(self.tokens), separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def run_coverage(result: "AdversaryResult", *, horizon: float) -> CoverageSample:
    """Abstract one deterministic replay into its coverage token set."""
    monitors = result.world.monitors
    active: dict[str, int] = {}
    rises: dict[str, int] = {}
    tokens: set[str] = set()
    signatures: set[str] = set()
    sig_invariants: dict[str, str] = {}

    violations = result.violations
    for time, invariant, subject, direction in monitors.transitions:
        if direction == "rise":
            active[invariant] = active.get(invariant, 0) + 1
            rises[invariant] = rises.get(invariant, 0) + 1
            concurrency = _log2_bucket(active[invariant])
            tokens.add(f"edge:{invariant}:rise:{concurrency}")
            tbucket = min(
                int(TIME_BUCKETS * time / horizon) if horizon > 0 else 0,
                TIME_BUCKETS - 1,
            )
            signature = (
                f"viol:{invariant}:{_subject_kind(subject)}:{tbucket}:{concurrency}"
            )
            signatures.add(signature)
            tokens.add(signature)
            sig_invariants.setdefault(signature, invariant)
        else:
            count = max(active.get(invariant, 1) - 1, 0)
            active[invariant] = count
            tokens.add(f"edge:{invariant}:fall:{_log2_bucket(max(count, 1))}")
    for invariant, count in sorted(rises.items()):
        tokens.add(f"flap:{invariant}:{_log2_bucket(count)}")
    combo = "+".join(sorted({v.invariant for v in violations}))
    if combo:
        tokens.add(f"combo:{combo}")
    return CoverageSample(
        tokens=tuple(sorted(tokens)),
        violation_signatures=tuple(sorted(signatures)),
        signature_invariants=sig_invariants,
        violated=bool(violations),
    )
