"""Diagnosis assistance (SS VII-B takeaway).

The paper anticipates "a decision tree ... to help restrict and narrow the
developer and operator efforts in diagnosis": given what an operator can
observe about a new bug (its description, its symptom), predict the likely
root cause and fix family.  This module trains that decision tree from the
labeled corpus and surfaces the correlation rules (e.g. third-party trigger
=> add-compatibility fix) as ranked suggestions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.correlation import pairwise_correlations
from repro.corpus.dataset import BugDataset
from repro.ml import DecisionTreeClassifier
from repro.pipeline.autoclassifier import AutoClassifier, ClassifierKind


@dataclass(frozen=True)
class DiagnosisSuggestion:
    """One ranked hypothesis for a dimension of a new bug."""

    dimension: str
    tag: str
    confidence: float
    rationale: str


class DiagnosisAssistant:
    """Train on a labeled corpus, then triage new bug descriptions.

    ``diagnose`` runs text classifiers for the observable dimensions and
    augments them with correlation rules mined from the corpus (SS VII-B):
    once a trigger or symptom is predicted, strongly-correlated root causes
    and fixes are suggested even when the text itself is uninformative
    (which, for fixes, it usually is — the paper could not predict fixes
    from descriptions, and neither can the text model alone).
    """

    #: Dimensions predicted directly from text, in prediction order.
    TEXT_DIMENSIONS = ("symptom", "trigger", "bug_type")
    #: Correlation strength below which a rule is not worth suggesting.
    MIN_RULE_STRENGTH = 0.25

    def __init__(self, *, seed: int = 0) -> None:
        self.seed = seed
        self._classifiers: dict[str, AutoClassifier] = {}
        self._rules: list = []
        self._fitted = False

    def fit(self, dataset: BugDataset) -> "DiagnosisAssistant":
        """Train the per-dimension text classifiers and mine the rules."""
        texts = dataset.texts()
        for dimension in self.TEXT_DIMENSIONS:
            classifier = AutoClassifier(kind=ClassifierKind.SVM, seed=self.seed)
            classifier.fit(texts, dataset.labels(dimension))
            self._classifiers[dimension] = classifier
        self._rules = [
            c
            for c in pairwise_correlations(dataset)
            if c.phi >= self.MIN_RULE_STRENGTH
        ]
        self._fitted = True
        return self

    def diagnose(self, description: str) -> list[DiagnosisSuggestion]:
        """Ranked suggestions across dimensions for one bug description."""
        if not self._fitted:
            raise RuntimeError("DiagnosisAssistant.diagnose called before fit")
        suggestions: list[DiagnosisSuggestion] = []
        predicted: dict[str, str] = {}
        for dimension, classifier in self._classifiers.items():
            tag = classifier.predict([description])[0]
            predicted[dimension] = tag
            suggestions.append(
                DiagnosisSuggestion(
                    dimension=dimension,
                    tag=tag,
                    confidence=0.8,
                    rationale="text classifier prediction",
                )
            )
        # Correlation rules: propagate from predicted tags to other dimensions.
        for rule in self._rules:
            for src_dim, src_tag, dst_dim, dst_tag in (
                (rule.dimension_a, rule.tag_a, rule.dimension_b, rule.tag_b),
                (rule.dimension_b, rule.tag_b, rule.dimension_a, rule.tag_a),
            ):
                if predicted.get(src_dim) == src_tag and dst_dim not in predicted:
                    suggestions.append(
                        DiagnosisSuggestion(
                            dimension=dst_dim,
                            tag=dst_tag,
                            confidence=min(0.75, rule.phi),
                            rationale=(
                                f"correlated with {src_dim}={src_tag} "
                                f"(phi={rule.phi:.2f})"
                            ),
                        )
                    )
        return sorted(suggestions, key=lambda s: -s.confidence)


def train_root_cause_tree(
    dataset: BugDataset, *, max_depth: int = 6
) -> DecisionTreeClassifier:
    """The paper's anticipated decision tree: predict root cause from the
    other (cheaply observable) label dimensions.

    Features are one-hot encodings of symptom, trigger, bug type, and fix —
    useful post-mortem, when those tags are known but the root cause needs
    narrowing.
    """
    import numpy as np

    dims = ("symptom", "trigger", "bug_type", "fix")
    columns: list[list[str]] = [dataset.labels(d) for d in dims]
    vocab: list[tuple[int, str]] = sorted(
        {(i, v) for i, col in enumerate(columns) for v in col}
    )
    index = {pair: j for j, pair in enumerate(vocab)}
    X = np.zeros((len(dataset), len(vocab)))
    for row in range(len(dataset)):
        for i, col in enumerate(columns):
            X[row, index[(i, col[row])]] = 1.0
    y = dataset.labels("root_cause")
    tree = DecisionTreeClassifier(max_depth=max_depth, min_samples_leaf=2)
    tree.fit(X, y)
    return tree
