"""Operator guidance (RQ4): controller selection and diagnosis assistance."""

from repro.guidance.selection import (
    ControllerScore,
    UseCase,
    rank_controllers,
    score_controller,
)
from repro.guidance.diagnosis import DiagnosisAssistant, DiagnosisSuggestion

__all__ = [
    "ControllerScore",
    "UseCase",
    "rank_controllers",
    "score_controller",
    "DiagnosisAssistant",
    "DiagnosisSuggestion",
]
