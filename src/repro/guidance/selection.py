"""Controller-selection guidance (SS VII-A).

The paper scores controllers on stability signals extracted from the bug
corpus: the share of missing-logic bugs (immaturity), load-related bugs
(scalability risk), fail-stop bugs (availability risk), and performance
bugs.  Lower is better on every axis; the composite ranking reproduces the
paper's recommendation (ONOS most stable, then CORD, with FAUCET suited
only to its narrow slicing use case).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.corpus.dataset import BugDataset
from repro.taxonomy import RootCause, Symptom


class UseCase(enum.Enum):
    """SDN use cases with different sensitivity profiles (Table VI text)."""

    GENERAL_PURPOSE = "general_purpose"
    TELCO_CENTRAL_OFFICE = "telco_central_office"
    NETWORK_SLICING = "network_slicing"


@dataclass(frozen=True)
class ControllerScore:
    """Per-controller stability signals (all shares in [0, 1])."""

    controller: str
    missing_logic_share: float
    load_share: float
    fail_stop_share: float
    performance_share: float

    @property
    def composite(self) -> float:
        """Weighted instability score; lower = more stable.

        Missing logic and fail-stop weigh heaviest: they are respectively
        the immaturity signal the paper uses against FAUCET and the
        availability killer.
        """
        return (
            0.35 * self.missing_logic_share
            + 0.25 * self.load_share
            + 0.30 * self.fail_stop_share
            + 0.10 * self.performance_share
        )


def score_controller(dataset: BugDataset, controller: str) -> ControllerScore:
    """Compute the stability signals for one controller."""
    subset = dataset.by_controller(controller)
    if len(subset) == 0:
        raise ValueError(f"no bugs for controller {controller!r}")
    n = len(subset)
    missing = sum(
        1 for b in subset if b.label.root_cause is RootCause.MISSING_LOGIC
    )
    load = sum(1 for b in subset if b.label.root_cause is RootCause.LOAD)
    fail_stop = sum(1 for b in subset if b.label.symptom is Symptom.FAIL_STOP)
    performance = sum(1 for b in subset if b.label.symptom is Symptom.PERFORMANCE)
    return ControllerScore(
        controller=controller,
        missing_logic_share=missing / n,
        load_share=load / n,
        fail_stop_share=fail_stop / n,
        performance_share=performance / n,
    )


#: Per-use-case suitability adjustments (paper SS VII-A):
#: FAUCET is specialized for slicing; CORD targets the telco central office;
#: using FAUCET outside slicing "will often yield missing functionality".
_USE_CASE_BONUS: dict[UseCase, dict[str, float]] = {
    UseCase.GENERAL_PURPOSE: {"ONOS": -0.05},
    UseCase.TELCO_CENTRAL_OFFICE: {"CORD": -0.10},
    UseCase.NETWORK_SLICING: {"FAUCET": -0.20},
}


def rank_controllers(
    dataset: BugDataset, *, use_case: UseCase = UseCase.GENERAL_PURPOSE
) -> list[ControllerScore]:
    """Controllers ranked most-recommended first for ``use_case``."""
    scores = [score_controller(dataset, c) for c in dataset.controllers]
    bonus = _USE_CASE_BONUS.get(use_case, {})
    return sorted(
        scores, key=lambda s: s.composite + bonus.get(s.controller, 0.0)
    )
