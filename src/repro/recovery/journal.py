"""Append-only, fsync'd write-ahead journal for pipeline and campaign runs.

The frameworks the paper surveys (Ravana, LegoSDN, SCL) all hinge on the
same discipline: record *intent* durably before acting, record *completion*
durably after, and on restart trust only what the log proves was finished.
The :class:`RunJournal` applies that discipline to our own long-running
work: every stage writes a ``begin`` event before computing and a ``commit``
event — carrying the stage's cache key and the sha256 digest of its
published artifact — only after the checkpoint is durably on disk.

Format: one JSON object per line.  Each record carries a monotonically
increasing ``seq`` and a ``check`` field (a truncated sha256 over the rest
of the record), so replay can tell a *torn tail* — the expected signature of
a crash mid-append, which is silently dropped — from mid-file corruption,
which is never silent and raises :class:`JournalError`.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Mapping

from repro.errors import ReproError

#: Event types a journal line may carry.
EVENT_RUN_START = "run-start"
EVENT_RUN_RESUME = "run-resume"
EVENT_BEGIN = "begin"
EVENT_COMMIT = "commit"
EVENT_SKIP = "skip"
EVENT_RUN_END = "run-end"

_EVENTS = (
    EVENT_RUN_START,
    EVENT_RUN_RESUME,
    EVENT_BEGIN,
    EVENT_COMMIT,
    EVENT_SKIP,
    EVENT_RUN_END,
)


class JournalError(ReproError):
    """A journal could not be written, or replay found non-tail corruption."""


def _line_check(record: Mapping[str, Any]) -> str:
    payload = json.dumps(
        {k: v for k, v in record.items() if k != "check"},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class JournalEvent:
    """One durable journal record."""

    seq: int
    event: str
    stage: str = ""
    key: str = ""
    digest: str = ""
    meta: Mapping[str, Any] = field(default_factory=dict)

    def to_record(self, run_id: str) -> dict[str, Any]:
        record: dict[str, Any] = {
            "run": run_id,
            "seq": self.seq,
            "event": self.event,
            "stage": self.stage,
            "key": self.key,
            "digest": self.digest,
            "meta": dict(self.meta),
        }
        record["check"] = _line_check(record)
        return record

    @classmethod
    def from_record(cls, record: Mapping[str, Any]) -> "JournalEvent":
        return cls(
            seq=int(record["seq"]),
            event=str(record["event"]),
            stage=str(record.get("stage", "")),
            key=str(record.get("key", "")),
            digest=str(record.get("digest", "")),
            meta=dict(record.get("meta", {})),
        )


class RunJournal:
    """Append-only journal for one run id, durably flushed per event.

    ``on_event`` (if given) is invoked *after* each record is durable on
    disk — the crash harness uses it to SIGKILL the process at exactly the
    k-th journal event, knowing the log already reflects that event.
    """

    def __init__(
        self,
        path: str | Path,
        run_id: str,
        *,
        fsync: bool = True,
        on_event: Callable[[JournalEvent], None] | None = None,
    ) -> None:
        self.path = Path(path)
        self.run_id = run_id
        self.fsync = fsync
        self.on_event = on_event
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._seq = 0
        if self.path.exists():
            replay = replay_journal(self.path)
            self._seq = replay.next_seq
        self._handle = self.path.open("a", encoding="utf-8")

    # -- writing ---------------------------------------------------------------
    def append(
        self,
        event: str,
        *,
        stage: str = "",
        key: str = "",
        digest: str = "",
        meta: Mapping[str, Any] | None = None,
    ) -> JournalEvent:
        """Durably append one event and return it."""
        if event not in _EVENTS:
            raise JournalError(f"unknown journal event {event!r}")
        if self._handle.closed:
            raise JournalError(f"{self.path}: journal is closed")
        entry = JournalEvent(
            seq=self._seq, event=event, stage=stage, key=key,
            digest=digest, meta=dict(meta or {}),
        )
        self._handle.write(json.dumps(entry.to_record(self.run_id),
                                      sort_keys=True) + "\n")
        self._handle.flush()
        if self.fsync:
            os.fsync(self._handle.fileno())
        self._seq += 1
        if self.on_event is not None:
            self.on_event(entry)
        return entry

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


@dataclass
class JournalReplay:
    """Everything a resume needs to know from a journal file."""

    path: Path
    run_id: str = ""
    events: list[JournalEvent] = field(default_factory=list)
    #: 1 when a torn final line was dropped (the crash signature), else 0.
    dropped: int = 0

    @property
    def next_seq(self) -> int:
        return self.events[-1].seq + 1 if self.events else 0

    def counts(self) -> dict[str, int]:
        tally: dict[str, int] = {}
        for event in self.events:
            tally[event.event] = tally.get(event.event, 0) + 1
        return tally

    def committed(self) -> dict[str, JournalEvent]:
        """Stage -> last durable ``commit``/``skip`` record for that stage.

        A ``skip`` re-asserts a prior commit (same key + digest), so a
        resume-of-a-resume still sees every finished stage.
        """
        stages: dict[str, JournalEvent] = {}
        for event in self.events:
            if event.event in (EVENT_COMMIT, EVENT_SKIP):
                stages[event.stage] = event
        return stages

    def begun(self) -> list[str]:
        """Stage names with a ``begin`` event, in first-begin order."""
        seen: list[str] = []
        for event in self.events:
            if event.event == EVENT_BEGIN and event.stage not in seen:
                seen.append(event.stage)
        return seen

    def uncommitted(self) -> list[str]:
        """Stages begun but never committed — where the crash interrupted."""
        committed = self.committed()
        return [stage for stage in self.begun() if stage not in committed]

    def run_config(self) -> Mapping[str, Any]:
        """``meta`` of the first ``run-start`` event (the run's identity)."""
        for event in self.events:
            if event.event == EVENT_RUN_START:
                return event.meta
        raise JournalError(f"{self.path}: journal has no run-start event")

    @property
    def completed(self) -> bool:
        return any(e.event == EVENT_RUN_END for e in self.events)

    def segments(self) -> list[list[JournalEvent]]:
        """Events grouped per attempt (run-start / run-resume boundaries)."""
        groups: list[list[JournalEvent]] = []
        for event in self.events:
            if event.event in (EVENT_RUN_START, EVENT_RUN_RESUME) or not groups:
                groups.append([])
            groups[-1].append(event)
        return groups


def replay_journal(path: str | Path) -> JournalReplay:
    """Parse a journal, dropping a torn tail but refusing silent corruption.

    The only damage an append-only, fsync'd log can legitimately show is a
    partial *final* line (the process died mid-append, or a torn write
    truncated the file).  That line is dropped and counted in ``dropped``.
    A bad line *before* the end, a checksum mismatch, or a sequence gap is
    real corruption and raises :class:`JournalError`.
    """
    path = Path(path)
    if not path.exists():
        raise JournalError(f"{path}: journal does not exist")
    replay = JournalReplay(path=path)
    lines = path.read_text(encoding="utf-8").split("\n")
    # A well-formed file ends with "\n", so the final split element is "".
    if lines and lines[-1] == "":
        lines.pop()
    for index, line in enumerate(lines):
        last = index == len(lines) - 1
        try:
            record = json.loads(line)
            if _line_check(record) != record.get("check"):
                raise ValueError("checksum mismatch")
            event = JournalEvent.from_record(record)
        except (ValueError, KeyError, TypeError) as exc:
            if last:
                replay.dropped = 1
                break
            raise JournalError(
                f"{path}:{index + 1}: corrupt journal record mid-file: {exc}"
            ) from exc
        if event.seq != len(replay.events):
            raise JournalError(
                f"{path}:{index + 1}: sequence gap (expected "
                f"{len(replay.events)}, found {event.seq})"
            )
        if not replay.events:
            replay.run_id = str(record.get("run", ""))
        replay.events.append(event)
    if not replay.events:
        raise JournalError(f"{path}: journal holds no intact records")
    return replay
