"""Crash-safe pipeline runtime: journal, verified resume, kill injection.

The paper's framework survey (Ravana, LegoSDN, SCL) is about controllers
surviving crashes without losing or corrupting state.  This package applies
the same discipline — checkpoint, verify, resume — to the repository's own
long-running work:

* :class:`RunJournal` — append-only, fsync'd JSONL write-ahead log of stage
  ``begin``/``commit`` events (cache key + artifact sha256 per commit);
* :class:`CheckpointManager` — journaled stages over the
  :class:`~repro.parallel.ArtifactCache`'s atomic, digest-verified
  checkpoints, with corrupt entries quarantined instead of trusted;
* :class:`CrashHarness` — deterministic kill injection: run the pipeline in
  a subprocess, SIGKILL it at the k-th journal event (or tear a checkpoint
  file at a byte offset), resume, and prove the result bit-for-bit equal to
  an uninterrupted run.
"""

from repro.recovery.checkpoint import CheckpointManager, RecoveryError, StageOutcome
from repro.recovery.harness import (
    CampaignReport,
    CrashHarness,
    KilledRun,
    cache_tree_digests,
    pipeline_fingerprint,
    run_kill_campaign,
    save_campaign_json,
    tear_file,
)
from repro.recovery.journal import (
    EVENT_BEGIN,
    EVENT_COMMIT,
    EVENT_RUN_END,
    EVENT_RUN_RESUME,
    EVENT_RUN_START,
    EVENT_SKIP,
    JournalError,
    JournalEvent,
    JournalReplay,
    RunJournal,
    replay_journal,
)

__all__ = [
    "CampaignReport",
    "CheckpointManager",
    "CrashHarness",
    "EVENT_BEGIN",
    "EVENT_COMMIT",
    "EVENT_RUN_END",
    "EVENT_RUN_RESUME",
    "EVENT_RUN_START",
    "EVENT_SKIP",
    "JournalError",
    "JournalEvent",
    "JournalReplay",
    "KilledRun",
    "RecoveryError",
    "RunJournal",
    "StageOutcome",
    "cache_tree_digests",
    "pipeline_fingerprint",
    "replay_journal",
    "run_kill_campaign",
    "save_campaign_json",
    "tear_file",
]
