"""Crash-smoke campaign: ``python -m repro.recovery.smoke``.

The CI entry point for the kill-injection harness.  Runs one uninterrupted
reference pipeline, SIGKILLs fresh runs at three distinct journal offsets,
adds one torn-write scenario (a committed checkpoint truncated at a byte
offset before resume), and asserts every killed-then-resumed run is
bit-for-bit identical to the reference.  Exit status 0 only when every
scenario passes; journals and the verdict JSON land under ``--artifacts``
so CI can upload them on failure.
"""

from __future__ import annotations

import argparse
import shutil
import sys
import tempfile
from pathlib import Path

from repro.recovery.harness import (
    JOURNAL_DIRNAME,
    CrashHarness,
    run_kill_campaign,
    save_campaign_json,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.recovery.smoke")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--kill-events", type=int, nargs="+", default=[2, 5, 8],
        help="journal offsets to SIGKILL at (default: mid-corpus, "
             "mid-nmf, mid-validate)",
    )
    parser.add_argument("--no-torn-write", action="store_true",
                        help="skip the torn-checkpoint scenario")
    parser.add_argument(
        "--artifacts", default="benchmarks/artifacts/crash-smoke",
        help="directory for journals + verdict JSON (uploaded by CI)",
    )
    parser.add_argument("--workdir",
                        help="scratch directory (default: a fresh tempdir)")
    args = parser.parse_args(argv)

    workdir = Path(args.workdir) if args.workdir else Path(
        tempfile.mkdtemp(prefix="crash-smoke-")
    )
    artifacts = Path(args.artifacts)
    artifacts.mkdir(parents=True, exist_ok=True)

    harness = CrashHarness(workdir, seed=args.seed)
    print(f"crash-smoke: seed={args.seed} kill-events={args.kill_events} "
          f"torn-write={not args.no_torn_write} workdir={workdir}")
    reports = run_kill_campaign(
        harness, args.kill_events, torn_write=not args.no_torn_write
    )

    failed = 0
    for report in reports:
        verdict = "PASS" if report.passed else "FAIL"
        print(f"  {verdict} {report.label:22s} killed={report.killed} "
              f"skipped={report.skipped_stages} "
              f"recomputed={report.recomputed_stages} "
              f"quarantined={report.quarantined}")
        for mismatch in report.mismatches:
            print(f"       mismatch: {mismatch}")
            failed += 1
        if not report.killed:
            failed += 1

    save_campaign_json(artifacts / "crash_smoke.json", reports)
    for journal in sorted(workdir.rglob(f"{JOURNAL_DIRNAME}/*.jsonl")):
        run_dir = journal.parents[2].name
        shutil.copy2(journal, artifacts / f"{run_dir}-{journal.name}")
    print(f"verdicts + journals under {artifacts}")

    if failed:
        print(f"crash-smoke FAILED: {failed} problem(s)")
        return 1
    print(f"crash-smoke OK: {len(reports)} scenario(s), every resumed run "
          "bit-for-bit identical to the uninterrupted reference")
    return 0


if __name__ == "__main__":
    sys.exit(main())
