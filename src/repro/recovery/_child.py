"""Subprocess entry point for the crash harness.

Runs one journaled pipeline and — when ``--kill-after k`` is positive —
SIGKILLs its own process the instant the k-th journal event is durable on
disk.  SIGKILL cannot be caught, blocked, or cleaned up after, so the
surviving state is exactly what the journal + atomic checkpoints promise
and nothing more: the honest crash model.

Not part of the public API; invoked as ``python -m repro.recovery._child``
by :class:`repro.recovery.CrashHarness`.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.recovery._child")
    parser.add_argument("--cache-root", required=True)
    parser.add_argument("--run-id", required=True)
    parser.add_argument("--kill-after", type=int, default=0,
                        help="SIGKILL self after this many journal events "
                             "(0 = run to completion)")
    parser.add_argument("--resume", action="store_true",
                        help="resume the run id instead of starting fresh")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument("--topics", type=int, default=2)
    parser.add_argument("--restarts", type=int, default=2)
    parser.add_argument("--dimensions", nargs="+", default=["bug_type"])
    parser.add_argument("--out", help="write the run fingerprint JSON here")
    args = parser.parse_args(argv)

    from repro.parallel import ArtifactCache
    from repro.pipeline.scaling import run_pipeline
    from repro.recovery.harness import pipeline_fingerprint

    events_seen = 0

    def _kill_at_k(event) -> None:
        nonlocal events_seen
        events_seen += 1
        if args.kill_after > 0 and events_seen >= args.kill_after:
            # The k-th event is already fsync'd; die with no goodbye.
            os.kill(os.getpid(), signal.SIGKILL)

    cache = ArtifactCache(args.cache_root)
    result = run_pipeline(
        seed=args.seed,
        jobs=args.jobs,
        cache=cache,
        dimensions=tuple(args.dimensions),
        n_topics=args.topics,
        nmf_restarts=args.restarts,
        run_id=None if args.resume else args.run_id,
        resume=args.run_id if args.resume else None,
        on_journal_event=_kill_at_k,
    )
    fingerprint = pipeline_fingerprint(result)
    fingerprint["skipped_stages"] = result.skipped_stages
    fingerprint["quarantined"] = cache.stats()["quarantined"]
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(fingerprint, handle, indent=2, sort_keys=True)
    else:
        json.dump(fingerprint, sys.stdout, indent=2, sort_keys=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
