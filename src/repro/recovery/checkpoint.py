"""Journaled, digest-verified stage execution over the artifact cache.

The :class:`CheckpointManager` is the recovery layer's write path.  Each
stage follows the WAL discipline:

1. ``begin`` is journaled *before* any compute starts;
2. the artifact publishes atomically through
   :meth:`~repro.parallel.ArtifactCache.put` (tmp + ``os.replace``, digest
   sidecar);
3. ``commit`` — carrying the cache key and the artifact's sha256 digest —
   is journaled only after the checkpoint is durable.

On resume the manager is seeded with the journal's committed-stage map: a
stage whose committed key matches the current configuration is satisfied
straight from the cache, *iff* the cached payload still carries the exact
digest the journal promised.  A vanished, truncated, or bit-flipped
checkpoint is quarantined by the cache and the stage silently returns to
the recompute path — corruption costs a recompute, never a wrong result.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Mapping

from repro.errors import ReproError
from repro.parallel.cache import ArtifactCache, cache_key
from repro.recovery.journal import (
    EVENT_BEGIN,
    EVENT_COMMIT,
    EVENT_RUN_RESUME,
    EVENT_RUN_START,
    EVENT_SKIP,
    JournalEvent,
    RunJournal,
    replay_journal,
)


class RecoveryError(ReproError):
    """Invalid recovery configuration, or a resume that cannot be honored."""


def open_run_journal(
    path: str | Path,
    run_id: str,
    *,
    resume: bool,
    config_digest: str,
    on_event: Callable[[JournalEvent], None] | None = None,
) -> tuple[RunJournal, dict[str, JournalEvent]]:
    """Open (fresh) or replay-then-reopen (resume) the journal for one run.

    Fresh runs refuse an existing journal (the caller must say ``resume``
    explicitly); resumes refuse a journal written for a different
    ``config_digest`` — continuing a run under changed hyperparameters
    would silently mix artifacts from two different experiments.

    Returns the open journal plus the committed-stage map replayed from a
    resumed journal (empty for fresh runs).
    """
    path = Path(path)
    committed: dict[str, JournalEvent] = {}
    if resume:
        replay = replay_journal(path)
        recorded = replay.run_config().get("config")
        if recorded != config_digest:
            raise RecoveryError(
                f"{path}: resume refused — journal was written for a "
                f"different configuration ({recorded} != {config_digest})"
            )
        committed = replay.committed()
        journal = RunJournal(path, run_id, on_event=on_event)
        journal.append(EVENT_RUN_RESUME, meta={"config": config_digest})
    else:
        if path.exists():
            raise RecoveryError(
                f"{path}: journal already exists for run id {run_id!r}; "
                "pass resume= to continue it"
            )
        journal = RunJournal(path, run_id, on_event=on_event)
        journal.append(EVENT_RUN_START, meta={"config": config_digest})
    return journal, committed


@dataclass(frozen=True)
class StageOutcome:
    """How one stage was satisfied."""

    stage: str
    key: str
    digest: str
    #: The artifact came from the cache (committed-skip or plain warm hit).
    hit: bool
    #: The artifact was proven finished by the journal and not re-verified
    #: beyond its digest — the resume fast path.
    skipped: bool


class CheckpointManager:
    """Run stages with begin/commit journaling and verified resume."""

    def __init__(
        self,
        cache: ArtifactCache,
        journal: RunJournal,
        *,
        committed: Mapping[str, JournalEvent] | None = None,
    ) -> None:
        self.cache = cache
        self.journal = journal
        self.committed = dict(committed or {})
        self.outcomes: list[StageOutcome] = []

    # -- primitives (used by wave-style callers like FaultCampaign) ------------
    def peek(
        self, stage: str, namespace: str, params: Mapping[str, Any]
    ) -> tuple[Any, StageOutcome | None]:
        """Satisfy ``stage`` without computing, if the record allows it.

        Returns ``(value, outcome)`` when satisfied; ``(None, None)`` when
        the caller must compute (then :meth:`begin` / :meth:`commit_value`).
        """
        key = cache_key(namespace, params)
        record = self.committed.get(stage)
        if record is not None and record.key == key:
            value, found = self.cache.lookup(namespace, params)
            if found and self.cache.digest_of(namespace, params) == record.digest:
                self.journal.append(
                    EVENT_SKIP, stage=stage, key=key, digest=record.digest
                )
                outcome = StageOutcome(stage, key, record.digest,
                                       hit=True, skipped=True)
                self.outcomes.append(outcome)
                return value, outcome
            # The journal promised a checkpoint the cache can no longer
            # prove (quarantined, vanished, or digest drift): recompute.
        value, found = self.cache.lookup(namespace, params)
        if found:
            # Warm cache from an unjournaled run: adopt it as a commit so
            # later resumes skip it.
            digest = self.cache.digest_of(namespace, params) or ""
            self.journal.append(EVENT_BEGIN, stage=stage, key=key)
            self.journal.append(EVENT_COMMIT, stage=stage, key=key, digest=digest)
            outcome = StageOutcome(stage, key, digest, hit=True, skipped=False)
            self.outcomes.append(outcome)
            return value, outcome
        return None, None

    def begin(self, stage: str, namespace: str, params: Mapping[str, Any]) -> str:
        """Journal intent to compute ``stage``; returns its cache key."""
        key = cache_key(namespace, params)
        self.journal.append(EVENT_BEGIN, stage=stage, key=key)
        return key

    def commit_value(
        self,
        stage: str,
        namespace: str,
        params: Mapping[str, Any],
        value: Any,
        *,
        extra_meta: Mapping[str, Any] | None = None,
    ) -> StageOutcome:
        """Durably publish ``value`` then journal the commit."""
        path = self.cache.put(namespace, params, value, extra_meta=extra_meta)
        digest = self.cache.digest_of(namespace, params) or ""
        key = path.stem
        self.journal.append(EVENT_COMMIT, stage=stage, key=key, digest=digest)
        outcome = StageOutcome(stage, key, digest, hit=False, skipped=False)
        self.outcomes.append(outcome)
        return outcome

    # -- the common path -------------------------------------------------------
    def run_stage(
        self,
        stage: str,
        namespace: str,
        params: Mapping[str, Any],
        compute: Callable[[], Any],
        *,
        extra_meta: Mapping[str, Any] | None = None,
    ) -> tuple[Any, StageOutcome]:
        """Skip, reuse, or compute-and-commit one stage."""
        value, outcome = self.peek(stage, namespace, params)
        if outcome is not None:
            return value, outcome
        self.begin(stage, namespace, params)
        value = compute()
        outcome = self.commit_value(
            stage, namespace, params, value, extra_meta=extra_meta
        )
        return value, outcome

    # -- reporting -------------------------------------------------------------
    def skipped_stages(self) -> list[str]:
        return [o.stage for o in self.outcomes if o.skipped]

    def computed_stages(self) -> list[str]:
        return [o.stage for o in self.outcomes if not o.hit]
