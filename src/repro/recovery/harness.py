"""Deterministic kill injection for the pipeline runtime.

Following the failure-inducing-testing line of work the paper cites, the
:class:`CrashHarness` does to our pipeline what those tools do to SDN
controllers: it *schedules* the crash.  The pipeline runs in a subprocess
with journaling on; the child SIGKILLs itself immediately after the k-th
journal event becomes durable (``RunJournal.on_event`` fires only after
fsync), so every kill point is reproducible — no timing races, no signal
delivery windows.  The harness then resumes the run in-process and checks
the result against an uninterrupted reference run **bit for bit**: same
accuracies, topics, confusion matrices, classifier-weight digests, and the
same sha256 for every checkpoint payload in the cache tree.

A second fault mode simulates *torn writes*: :func:`tear_file` truncates a
checkpoint, cache payload, or journal at an arbitrary byte offset, the way
a crashed kernel flush or interrupted copy would.  Resume must quarantine
the damage and recompute — never trust it.
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
import subprocess
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Sequence

from repro.parallel.cache import QUARANTINE_DIRNAME, ArtifactCache
from repro.recovery.journal import JournalReplay, replay_journal

if TYPE_CHECKING:  # pragma: no cover
    from repro.pipeline.scaling import PipelineResult

#: Journal directory name used under a harness cache root.
JOURNAL_DIRNAME = ".journal"


def tear_file(path: str | Path, keep_bytes: int) -> int:
    """Truncate ``path`` to ``keep_bytes`` (negative counts from the end).

    Models a torn write: the prefix survives, the suffix is gone.  Returns
    the number of bytes kept.
    """
    path = Path(path)
    data = path.read_bytes()
    if keep_bytes < 0:
        keep_bytes = len(data) + keep_bytes
    keep = max(0, min(keep_bytes, len(data)))
    path.write_bytes(data[:keep])
    return keep


def pipeline_fingerprint(result: "PipelineResult") -> dict[str, Any]:
    """Every output surface of a pipeline run, in a comparable/JSON form."""
    return {
        "seed": result.seed,
        "accuracies": result.accuracies(),
        "weights": {
            dim: report.weights_digest for dim, report in result.reports.items()
        },
        "confusion": {
            dim: report.confusion for dim, report in result.reports.items()
        },
        "topics": result.topics,
        "topic_errors": {str(k): v for k, v in result.topic_errors.items()},
        "shape": [result.n_documents, result.n_features],
    }


def cache_tree_digests(root: str | Path) -> dict[str, str]:
    """``relative payload path -> sha256`` for every checkpoint under ``root``.

    Journal and quarantine files are bookkeeping, not artifacts — excluded,
    so a killed-then-resumed tree and an uninterrupted tree compare equal
    exactly when every *stage artifact* is bit-for-bit identical.
    """
    root = Path(root)
    digests: dict[str, str] = {}
    if not root.exists():
        return digests
    for path in sorted(root.rglob("*.pkl")):
        if QUARANTINE_DIRNAME in path.parts or JOURNAL_DIRNAME in path.parts:
            continue
        digests[path.relative_to(root).as_posix()] = hashlib.sha256(
            path.read_bytes()
        ).hexdigest()
    return digests


@dataclass
class KilledRun:
    """Outcome of one deliberately killed pipeline subprocess."""

    run_id: str
    kill_after: int
    returncode: int
    cache_root: Path
    journal_path: Path
    stdout: str = ""
    stderr: str = ""

    @property
    def killed(self) -> bool:
        return self.returncode == -signal.SIGKILL

    def replay(self) -> JournalReplay:
        return replay_journal(self.journal_path)


class CrashHarness:
    """Kill a journaled pipeline run deterministically, then resume it.

    Each killed run gets a private cache root under ``workdir`` so kill
    points stay independent; the reference run gets its own as well.  All
    runs share one pipeline configuration (small by default — the harness
    proves *recovery*, not throughput).
    """

    def __init__(
        self,
        workdir: str | Path,
        *,
        seed: int = 0,
        jobs: int = 1,
        dimensions: Sequence[str] = ("bug_type",),
        n_topics: int = 2,
        nmf_restarts: int = 2,
        child_timeout: float = 600.0,
    ) -> None:
        self.workdir = Path(workdir)
        self.workdir.mkdir(parents=True, exist_ok=True)
        self.seed = seed
        self.jobs = jobs
        self.dimensions = tuple(dimensions)
        self.n_topics = n_topics
        self.nmf_restarts = nmf_restarts
        self.child_timeout = child_timeout

    # -- configuration ---------------------------------------------------------
    def pipeline_kwargs(self) -> dict[str, Any]:
        return {
            "seed": self.seed,
            "jobs": self.jobs,
            "dimensions": self.dimensions,
            "n_topics": self.n_topics,
            "nmf_restarts": self.nmf_restarts,
        }

    def stage_count(self) -> int:
        """Stages one run executes (corpus, tfidf, nmf, one per dimension)."""
        return 3 + len(self.dimensions)

    def total_events(self) -> int:
        """Journal events an uninterrupted run writes.

        ``run-start`` + (``begin`` + ``commit``) per stage + ``run-end``.
        """
        return 2 + 2 * self.stage_count()

    def journal_path(self, cache_root: Path, run_id: str) -> Path:
        return cache_root / JOURNAL_DIRNAME / f"{run_id}.jsonl"

    # -- runs ------------------------------------------------------------------
    def reference(self) -> "tuple[PipelineResult, ArtifactCache]":
        """The uninterrupted, journaled run every kill point compares to."""
        from repro.pipeline.scaling import run_pipeline

        cache = ArtifactCache(self.workdir / "reference" / "cache")
        result = run_pipeline(
            cache=cache, run_id="reference", **self.pipeline_kwargs()
        )
        return result, cache

    def run_killed(self, kill_after: int, *, run_id: str | None = None) -> KilledRun:
        """Run the pipeline in a subprocess; it SIGKILLs itself at event k."""
        run_id = run_id or f"kill-{kill_after}"
        cache_root = self.workdir / run_id / "cache"
        cache_root.mkdir(parents=True, exist_ok=True)
        argv = [
            sys.executable, "-m", "repro.recovery._child",
            "--cache-root", str(cache_root),
            "--run-id", run_id,
            "--kill-after", str(kill_after),
            "--seed", str(self.seed),
            "--jobs", str(self.jobs),
            "--topics", str(self.n_topics),
            "--restarts", str(self.nmf_restarts),
            "--dimensions", *self.dimensions,
        ]
        proc = subprocess.run(
            argv,
            env=self._child_env(),
            capture_output=True,
            text=True,
            timeout=self.child_timeout,
        )
        return KilledRun(
            run_id=run_id,
            kill_after=kill_after,
            returncode=proc.returncode,
            cache_root=cache_root,
            journal_path=self.journal_path(cache_root, run_id),
            stdout=proc.stdout,
            stderr=proc.stderr,
        )

    def resume(self, killed: KilledRun) -> "tuple[PipelineResult, ArtifactCache]":
        """Continue a killed run in-process from its journal."""
        from repro.pipeline.scaling import run_pipeline

        cache = ArtifactCache(killed.cache_root)
        result = run_pipeline(
            cache=cache, resume=killed.run_id, **self.pipeline_kwargs()
        )
        return result, cache

    # -- comparison ------------------------------------------------------------
    @staticmethod
    def diff(
        reference: "tuple[PipelineResult, ArtifactCache]",
        candidate: "tuple[PipelineResult, ArtifactCache]",
    ) -> list[str]:
        """Human-readable mismatches between two runs; empty means equal."""
        mismatches: list[str] = []
        ref_result, ref_cache = reference
        cand_result, cand_cache = candidate
        ref_print = pipeline_fingerprint(ref_result)
        cand_print = pipeline_fingerprint(cand_result)
        for field_name in ref_print:
            if ref_print[field_name] != cand_print[field_name]:
                mismatches.append(
                    f"{field_name}: {ref_print[field_name]!r} != "
                    f"{cand_print[field_name]!r}"
                )
        ref_tree = cache_tree_digests(ref_cache.root)
        cand_tree = cache_tree_digests(cand_cache.root)
        for name in sorted(set(ref_tree) | set(cand_tree)):
            if ref_tree.get(name) != cand_tree.get(name):
                mismatches.append(
                    f"artifact {name}: {ref_tree.get(name)} != "
                    f"{cand_tree.get(name)}"
                )
        return mismatches

    def _child_env(self) -> dict[str, str]:
        env = dict(os.environ)
        src_root = str(Path(__file__).resolve().parents[2])
        existing = env.get("PYTHONPATH", "")
        if src_root not in existing.split(os.pathsep):
            env["PYTHONPATH"] = (
                src_root + (os.pathsep + existing if existing else "")
            )
        return env


@dataclass
class CampaignReport:
    """One kill/tear scenario's verdict, for the smoke CLI and bench."""

    label: str
    kill_after: int
    killed: bool
    mismatches: list[str] = field(default_factory=list)
    skipped_stages: int = 0
    recomputed_stages: int = 0
    quarantined: int = 0

    @property
    def passed(self) -> bool:
        return self.killed and not self.mismatches

    def to_dict(self) -> dict[str, Any]:
        return {
            "label": self.label,
            "kill_after": self.kill_after,
            "killed": self.killed,
            "passed": self.passed,
            "mismatches": list(self.mismatches),
            "skipped_stages": self.skipped_stages,
            "recomputed_stages": self.recomputed_stages,
            "quarantined": self.quarantined,
        }


def run_kill_campaign(
    harness: CrashHarness,
    kill_points: Sequence[int],
    *,
    torn_write: bool = False,
) -> list[CampaignReport]:
    """Kill at each journal offset, resume, and compare to the reference.

    With ``torn_write=True`` one extra scenario truncates the largest
    committed checkpoint payload before resuming, asserting the quarantine
    path recovers it.
    """
    reference = harness.reference()
    reports: list[CampaignReport] = []
    for kill_after in kill_points:
        killed = harness.run_killed(kill_after)
        reports.append(_verify_resume(harness, reference, killed, torn=False))
    if torn_write:
        kill_after = max(kill_points)
        killed = harness.run_killed(kill_after, run_id=f"torn-{kill_after}")
        if killed.killed:
            _tear_largest_checkpoint(killed.cache_root)
        reports.append(_verify_resume(harness, reference, killed, torn=True))
    return reports


def _tear_largest_checkpoint(cache_root: Path) -> Path | None:
    payloads = [
        path for path in sorted(cache_root.rglob("*.pkl"))
        if QUARANTINE_DIRNAME not in path.parts
    ]
    if not payloads:
        return None
    victim = max(payloads, key=lambda path: path.stat().st_size)
    tear_file(victim, victim.stat().st_size // 2)
    return victim


def _verify_resume(
    harness: CrashHarness,
    reference: "tuple[PipelineResult, ArtifactCache]",
    killed: KilledRun,
    *,
    torn: bool,
) -> CampaignReport:
    label = ("torn-write " if torn else "") + f"kill@{killed.kill_after}"
    report = CampaignReport(
        label=label, kill_after=killed.kill_after, killed=killed.killed
    )
    if not killed.killed:
        report.mismatches.append(
            f"child exited {killed.returncode} instead of dying on SIGKILL: "
            f"{killed.stderr[-500:]}"
        )
        return report
    result, cache = harness.resume(killed)
    report.mismatches = harness.diff(reference, (result, cache))
    report.skipped_stages = len(result.skipped_stages)
    report.recomputed_stages = harness.stage_count() - len(result.skipped_stages)
    report.quarantined = cache.stats()["quarantined"]
    if torn and report.quarantined == 0:
        report.mismatches.append(
            "torn checkpoint was not quarantined (corruption went silent)"
        )
    return report


def save_campaign_json(path: str | Path, reports: list[CampaignReport]) -> None:
    Path(path).parent.mkdir(parents=True, exist_ok=True)
    Path(path).write_text(
        json.dumps([report.to_dict() for report in reports], indent=2,
                   sort_keys=True)
    )
