"""Generator for ONOS-like code models across releases 1.12 -> 2.3."""

from __future__ import annotations

import random

from repro.errors import CodeModelError
from repro.paperdata import INTENT_IMPL_CLASSES, ONOS_RELEASES
from repro.smells.model import ClassModel, CodeModel, Method

#: Per-release shape parameters, index-aligned with ONOS_RELEASES.
#: The trends implement Fig 8:
#:   god components roughly constant; unstable-dependency edges steadily
#:   decreasing; insufficient modularization spiking 1.12->1.14 then flat;
#:   broken hierarchy spiking then declining; hubs and missing hierarchy low.
_UNSTABLE_EDGES = (14, 13, 12, 11, 10, 9, 8, 7)
_INSUFFICIENT = (18, 24, 28, 28, 27, 27, 28, 27)
_BROKEN_HIERARCHY = (12, 18, 22, 18, 14, 11, 9, 8)
_HUBS = (3, 3, 4, 3, 3, 2, 3, 3)
_MISSING_HIERARCHY = (4, 5, 5, 4, 4, 4, 3, 3)
_GOD_PACKAGES = 6  # constant across releases

#: Fig 9 example: Run extends ElectionOperation with no IS-A relation until
#: the ONOS-6594 refactor re-parents it under AsyncLeaderElector.
_ONOS_6594_FIX_RELEASE = "2.0"


class OnosCodebaseGenerator:
    """Build one :class:`CodeModel` per ONOS release, deterministically."""

    def __init__(self, *, seed: int = 7) -> None:
        self.seed = seed

    def release_index(self, version: str) -> int:
        try:
            return ONOS_RELEASES.index(version)
        except ValueError:
            raise CodeModelError(
                f"unknown ONOS release {version!r}; known: {ONOS_RELEASES}"
            ) from None

    def _intent_impl_classes(self, index: int) -> int:
        """Interpolate net.intent.impl growth 49 -> 107 across the series."""
        start = INTENT_IMPL_CLASSES["1.12"]
        end = INTENT_IMPL_CLASSES["2.3"]
        steps = len(ONOS_RELEASES) - 1
        return round(start + (end - start) * index / steps)

    def generate(self, version: str) -> CodeModel:
        """The code model for one release."""
        index = self.release_index(version)
        rng = random.Random(self.seed * 1000 + index)
        model = CodeModel(name="ONOS", version=version)

        # -- god component packages (constant count, one of them growing) ----
        god_sizes = [self._intent_impl_classes(index)] + [
            rng.randint(34, 48) for _ in range(_GOD_PACKAGES - 1)
        ]
        god_names = ["org.onosproject.net.intent.impl"] + [
            f"org.onosproject.core.subsystem{i}" for i in range(1, _GOD_PACKAGES)
        ]
        for pkg_name, n_classes in zip(god_names, god_sizes):
            for c in range(n_classes):
                model.add_class(
                    ClassModel(
                        name=f"{pkg_name}.Class{c}",
                        package=pkg_name,
                        methods=[Method(f"m{m}") for m in range(rng.randint(3, 9))],
                        loc=rng.randint(80, 400),
                    )
                )

        # -- regular packages -------------------------------------------------
        n_regular = 30 + index  # codebase grows slowly
        regular_names = [f"org.onosproject.module{i}" for i in range(n_regular)]
        for pkg_name in regular_names:
            for c in range(rng.randint(6, 18)):
                model.add_class(
                    ClassModel(
                        name=f"{pkg_name}.Class{c}",
                        package=pkg_name,
                        methods=[Method(f"m{m}") for m in range(rng.randint(2, 8))],
                        loc=rng.randint(50, 500),
                    )
                )

        # -- app packages make the core packages stable (high Ca) -------------
        # Three dependents per god package keep every god package's
        # instability below the utility packages' (so each bad edge below is
        # a genuine Stable-Dependencies-Principle violation).
        for i in range(3 * _GOD_PACKAGES):
            pkg_name = f"org.onosproject.app{i}"
            target_pkg = god_names[i % len(god_names)]
            model.add_class(
                ClassModel(
                    name=f"{pkg_name}.App",
                    package=pkg_name,
                    methods=[Method("activate"), Method("deactivate")],
                    loc=rng.randint(100, 300),
                    dependencies=frozenset({f"{target_pkg}.Class0"}),
                )
            )

        # -- unstable-dependency edges (declining across releases) ------------
        for i in range(_UNSTABLE_EDGES[index]):
            # A throwaway unstable utility package: depends on two regular
            # packages (Ce=2) and is depended on only by the bad edge.
            util_pkg = f"org.onosproject.util.unstable{i}"
            util_deps = frozenset(
                f"{regular_names[(3 * i + k) % n_regular]}.Class0" for k in range(3)
            )
            model.add_class(
                ClassModel(
                    name=f"{util_pkg}.Helper",
                    package=util_pkg,
                    methods=[Method("help")],
                    loc=120,
                    dependencies=util_deps,
                )
            )
            # The bad edge: a stable god package depending on the unstable
            # utility (violates the Stable Dependencies Principle).
            source_pkg = god_names[i % len(god_names)]
            model.add_class(
                ClassModel(
                    name=f"{source_pkg}.BadDep{i}",
                    package=source_pkg,
                    methods=[Method("use")],
                    loc=90,
                    dependencies=frozenset({f"{util_pkg}.Helper"}),
                )
            )

        # -- insufficient modularization (spike then flat) ---------------------
        for i in range(_INSUFFICIENT[index]):
            pkg_name = regular_names[i % n_regular]
            model.add_class(
                ClassModel(
                    name=f"{pkg_name}.Fat{i}",
                    package=pkg_name,
                    methods=[Method(f"m{m}", complexity=6) for m in range(30)],
                    loc=1_600,
                )
            )

        # -- broken hierarchy (spike then decline; includes Fig 9) ------------
        broken = _BROKEN_HIERARCHY[index]
        fixed = self.release_index(_ONOS_6594_FIX_RELEASE) <= index
        # The Fig 9 instance itself:
        model.add_class(
            ClassModel(
                name="org.onosproject.store.primitives.ElectionOperation",
                package="org.onosproject.store.primitives",
                methods=[Method("topic"), Method("nodeId"), Method("apply")],
                loc=120,
            )
        )
        model.add_class(
            ClassModel(
                name="org.onosproject.store.primitives.AsyncLeaderElector",
                package="org.onosproject.store.primitives",
                methods=[Method("run"), Method("withdraw"), Method("anoint")],
                loc=260,
            )
        )
        model.add_class(
            ClassModel(
                name="org.onosproject.store.primitives.Run",
                package="org.onosproject.store.primitives",
                methods=[Method("topic"), Method("nodeId")],
                loc=60,
                supertype=(
                    "org.onosproject.store.primitives.AsyncLeaderElector"
                    if fixed
                    else "org.onosproject.store.primitives.ElectionOperation"
                ),
                inherited_members_used=frozenset({"run"}) if fixed else frozenset(),
            )
        )
        remaining = broken - (0 if fixed else 1)
        for i in range(max(0, remaining)):
            pkg_name = regular_names[(i + 3) % n_regular]
            parent = f"{pkg_name}.Base{i}"
            model.add_class(
                ClassModel(
                    name=parent,
                    package=pkg_name,
                    methods=[Method("base0"), Method("base1")],
                    loc=100,
                )
            )
            model.add_class(
                ClassModel(
                    name=f"{pkg_name}.Orphan{i}",
                    package=pkg_name,
                    methods=[Method("own")],
                    loc=70,
                    supertype=parent,
                    inherited_members_used=frozenset(),
                )
            )

        # -- hub-like modularization (low, flat) -------------------------------
        for i in range(_HUBS[index]):
            pkg_name = regular_names[(i + 11) % n_regular]
            hub_name = f"{pkg_name}.Hub{i}"
            fan_out_targets = frozenset(
                f"{regular_names[(i + k) % n_regular]}.Class0" for k in range(1, 10)
            )
            model.add_class(
                ClassModel(
                    name=hub_name,
                    package=pkg_name,
                    methods=[Method("route", complexity=4)],
                    loc=420,
                    dependencies=fan_out_targets,
                )
            )
            for k in range(9):
                model.add_class(
                    ClassModel(
                        name=f"{pkg_name}.HubUser{i}_{k}",
                        package=pkg_name,
                        methods=[Method("call")],
                        loc=60,
                        dependencies=frozenset({hub_name}),
                    )
                )

        # -- missing hierarchy (low, flat) --------------------------------------
        for i in range(_MISSING_HIERARCHY[index]):
            pkg_name = regular_names[(i + 17) % n_regular]
            model.add_class(
                ClassModel(
                    name=f"{pkg_name}.TypeSwitcher{i}",
                    package=pkg_name,
                    methods=[
                        Method("dispatch", complexity=9, type_switches=2),
                        Method("render", complexity=7, type_switches=2),
                    ],
                    loc=380,
                )
            )

        model.validate()
        return model


def release_series(*, seed: int = 7) -> dict[str, CodeModel]:
    """Code models for every release in :data:`ONOS_RELEASES`, in order."""
    generator = OnosCodebaseGenerator(seed=seed)
    return {version: generator.generate(version) for version in ONOS_RELEASES}
