"""Synthetic release-series code models (substitute for ONOS source).

Designite runs on Java sources; offline we synthesize the structural graph
per ONOS release with the evolution the paper reports (SS VI-A, Fig 8):
constant architecture debt, declining unstable dependencies, an early spike
in design smells, the ``net.intent.impl`` growth from 49 to 107 classes, and
the Fig 9 ``Run``/``ElectionOperation`` broken hierarchy fixed by ONOS-6594.
"""

from repro.codebase.generator import OnosCodebaseGenerator, release_series

__all__ = ["OnosCodebaseGenerator", "release_series"]
