"""Request/response model for the triage serving daemon.

A request is a *priced* unit of work: every kind carries a deterministic
cost model (simulated seconds of service time, with a batched marginal
cost below the solo cost so micro-batching amortizes overhead) and a
default deadline budget.  The daemon's admission controller reasons in
this currency — queued cost, backlog drain time, remaining budget — so a
request that cannot possibly meet its deadline is rejected while it is
still cheap to reject.

The paper's framing: SDN control planes fall over at service boundaries
under mundane overload, not exotic logic.  Making cost and deadline
first-class request fields is what lets every later layer (queue, batcher,
degrade tiers) make an explicit decision instead of an implicit one.
"""

from __future__ import annotations

import enum
import hashlib
import json
from dataclasses import dataclass
from typing import Any

from repro.errors import ServingError


class RequestKind(enum.Enum):
    """The four operations the daemon serves."""

    CLASSIFY = "classify"
    LINT = "lint"
    MINIMIZE = "minimize"
    QUERY = "query"


class RequestClass(enum.Enum):
    """Admission class: interactive traffic must not starve behind batch."""

    INTERACTIVE = "interactive"
    BATCH = "batch"


#: Which admission class each kind belongs to.
KIND_CLASS: dict[RequestKind, RequestClass] = {
    RequestKind.CLASSIFY: RequestClass.INTERACTIVE,
    RequestKind.QUERY: RequestClass.INTERACTIVE,
    RequestKind.LINT: RequestClass.BATCH,
    RequestKind.MINIMIZE: RequestClass.BATCH,
}


@dataclass(frozen=True)
class CostModel:
    """Deterministic service-time model for one request kind.

    ``overhead`` is paid once per micro-batch, ``per_item`` once per
    request in it — so a full batch of N costs ``overhead + N*per_item``
    simulated seconds while N solo requests would cost N times
    ``overhead + per_item``.  ``max_batch`` caps amortization.
    """

    overhead: float
    per_item: float
    max_batch: int = 1

    def batch_cost(self, n: int) -> float:
        if n < 1:
            return 0.0
        return self.overhead + self.per_item * n

    @property
    def solo_cost(self) -> float:
        """Admission-time estimate: the unbatched worst case."""
        return self.overhead + self.per_item


#: Simulated service-time models per kind.  Classify/query amortize well;
#: lint and minimize are heavy, unbatchable batch-class work.
KIND_COSTS: dict[RequestKind, CostModel] = {
    RequestKind.CLASSIFY: CostModel(overhead=0.25, per_item=0.05, max_batch=16),
    RequestKind.QUERY: CostModel(overhead=0.05, per_item=0.01, max_batch=32),
    RequestKind.LINT: CostModel(overhead=0.10, per_item=0.60, max_batch=1),
    RequestKind.MINIMIZE: CostModel(overhead=0.20, per_item=2.50, max_batch=1),
}

#: Default client deadline budgets (simulated seconds) per kind.
DEFAULT_BUDGETS: dict[RequestKind, float] = {
    RequestKind.CLASSIFY: 8.0,
    RequestKind.QUERY: 4.0,
    RequestKind.LINT: 15.0,
    RequestKind.MINIMIZE: 30.0,
}


class ResponseStatus(enum.Enum):
    """Terminal outcome of one request."""

    #: Full-quality answer from the primary backend.
    OK = "ok"
    #: Answer from the warm cache — possibly stale, and labeled so.
    STALE = "stale"
    #: Answer from the cheap heuristic tier.
    DEGRADED = "degraded"
    #: Rejected at admission (with a priced Retry-After hint).
    SHED = "shed"
    #: Deadline expired in queue; work was cancelled, not completed.
    EXPIRED = "expired"
    #: The backend failed and no degradation tier could answer.
    ERROR = "error"


class ServiceTier(enum.Enum):
    """Which layer actually produced the answer."""

    FULL = "full"
    CACHED = "cached"
    HEURISTIC = "heuristic"
    NONE = "none"


#: Statuses that carry a usable answer (full or degraded quality).
ANSWERED = (ResponseStatus.OK, ResponseStatus.STALE, ResponseStatus.DEGRADED)


@dataclass(frozen=True)
class Request:
    """One unit of triage work submitted to the daemon.

    Immutable on purpose: the daemon tracks all per-request mutable state
    itself, so a trace can be replayed through any number of daemons.
    """

    req_id: int
    kind: RequestKind
    payload: Any
    arrival: float
    budget: float
    #: Simulated seconds this client takes to consume its response; slow
    #: clients (>> normal) are one of the injected fault classes.
    client_hold: float = 0.0
    #: A payload that deterministically crashes the backend.
    poison: bool = False

    def __post_init__(self) -> None:
        if self.budget <= 0:
            raise ServingError(f"request {self.req_id}: budget must be > 0")
        if self.arrival < 0:
            raise ServingError(f"request {self.req_id}: arrival must be >= 0")

    @property
    def klass(self) -> RequestClass:
        return KIND_CLASS[self.kind]

    @property
    def deadline(self) -> float:
        return self.arrival + self.budget

    def cost(self) -> CostModel:
        return KIND_COSTS[self.kind]

    def payload_digest(self) -> str:
        """Stable digest of the payload — the response-cache key material."""
        try:
            canonical = json.dumps(self.payload, sort_keys=True, default=str)
        except (TypeError, ValueError):
            canonical = repr(self.payload)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass
class Response:
    """The daemon's terminal answer for one request."""

    req_id: int
    kind: RequestKind
    status: ResponseStatus
    tier: ServiceTier
    value: Any = None
    arrival: float = 0.0
    completed: float = 0.0
    #: Seconds from arrival to delivery completion (0 for shed requests,
    #: which are answered instantly at admission).
    latency: float = 0.0
    deadline_met: bool = False
    #: Age (simulated seconds) of the cached artifact a STALE answer came
    #: from; ``None`` everywhere else.
    age: float | None = None
    #: Backlog-priced hint attached to SHED responses.
    retry_after: float | None = None
    detail: str = ""

    @property
    def answered(self) -> bool:
        return self.status in ANSWERED

    def to_dict(self) -> dict[str, Any]:
        """Canonical JSON-safe form (fingerprint material)."""
        return {
            "req_id": self.req_id,
            "kind": self.kind.value,
            "status": self.status.value,
            "tier": self.tier.value,
            "value": _jsonable(self.value),
            "arrival": self.arrival,
            "completed": self.completed,
            "latency": self.latency,
            "deadline_met": self.deadline_met,
            "age": self.age,
            "retry_after": self.retry_after,
            "detail": self.detail,
        }


def _jsonable(value: Any) -> Any:
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in sorted(value.items(), key=lambda kv: str(kv[0]))}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, enum.Enum):
        return value.value
    return repr(value)


@dataclass
class RequestFactory:
    """Monotonic request-id allocator for trace generators and tests."""

    next_id: int = 0

    def make(
        self,
        kind: RequestKind,
        payload: Any,
        *,
        arrival: float,
        budget: float | None = None,
        client_hold: float = 0.0,
        poison: bool = False,
    ) -> Request:
        request = Request(
            req_id=self.next_id,
            kind=kind,
            payload=payload,
            arrival=arrival,
            budget=budget if budget is not None else DEFAULT_BUDGETS[kind],
            client_hold=client_hold,
            poison=poison,
        )
        self.next_id += 1
        return request


# re-exported convenience for callers assembling batches
__all__ = [
    "ANSWERED",
    "CostModel",
    "DEFAULT_BUDGETS",
    "KIND_CLASS",
    "KIND_COSTS",
    "Request",
    "RequestClass",
    "RequestFactory",
    "RequestKind",
    "Response",
    "ResponseStatus",
    "ServiceTier",
]
