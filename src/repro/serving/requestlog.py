"""Journaled request accounting for the serving daemon.

A thin adapter over the PR-4 :class:`~repro.recovery.journal.RunJournal`:
every admitted request appends a ``begin`` record before it can consume
backend work and a ``commit`` record with its terminal status; shed and
expired requests append ``skip`` with the reason.  After a crash,
:func:`recover` replays the journal and separates *finished* requests
(safe to report) from *in-flight* ones (admitted but never completed —
exactly the work a restarted daemon must either re-answer or explicitly
give up on, rather than silently forgetting).
"""

from __future__ import annotations

from pathlib import Path

from repro.recovery.journal import (
    EVENT_BEGIN,
    EVENT_COMMIT,
    EVENT_RUN_END,
    EVENT_RUN_START,
    EVENT_SKIP,
    RunJournal,
    replay_journal,
)
from repro.serving.request import Request, Response


def _step(req_id: int) -> str:
    return f"req-{req_id:08d}"


def _req_id(stage: str) -> int:
    return int(stage.split("-", 1)[1])


class RequestLog:
    """Durable per-request WAL: admit -> begin, terminal -> commit/skip."""

    def __init__(self, path: str | Path, *, run_id: str = "serve") -> None:
        self.path = Path(path)
        self.journal = RunJournal(self.path, run_id)
        self.journal.append(
            EVENT_RUN_START, meta={"kind": "serving-request-log"}
        )
        self._closed = False

    def log_admit(self, request: Request) -> None:
        self.journal.append(
            EVENT_BEGIN,
            stage=_step(request.req_id),
            key=request.payload_digest(),
            meta={
                "kind": request.kind.value,
                "arrival": request.arrival,
                "budget": request.budget,
            },
        )

    def log_complete(self, request: Request, response: Response) -> None:
        self.journal.append(
            EVENT_COMMIT,
            stage=_step(request.req_id),
            key=request.payload_digest(),
            meta={
                "status": response.status.value,
                "tier": response.tier.value,
                "latency": round(response.latency, 6),
                "deadline_met": response.deadline_met,
            },
        )

    def log_shed(self, request: Request, reason: str) -> None:
        self.journal.append(
            EVENT_SKIP,
            stage=_step(request.req_id),
            meta={"reason": f"shed: {reason}"},
        )

    def log_expired(self, request: Request) -> None:
        self.journal.append(
            EVENT_SKIP,
            stage=_step(request.req_id),
            meta={"reason": "expired in queue"},
        )

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.journal.append(EVENT_RUN_END, meta={"status": "clean"})
        self.journal.close()


def recover(path: str | Path) -> dict[str, list[int]]:
    """Classify journaled requests after a restart.

    Returns ``{"finished": [...], "inflight": [...]}`` request ids:
    finished requests have a durable terminal record (commit or skip);
    in-flight ones were admitted (begin) but never reached a terminal
    record — the crash window's casualties, which a restarted daemon must
    handle explicitly instead of silently forgetting.
    """
    state = replay_journal(path)
    terminal = {
        stage for stage in state.committed() if stage.startswith("req-")
    }
    begun = {stage for stage in state.begun() if stage.startswith("req-")}
    return {
        "finished": sorted(_req_id(stage) for stage in sorted(terminal)),
        "inflight": sorted(
            _req_id(stage) for stage in sorted(begun - terminal)
        ),
    }


def recover_metrics(path: str | Path, registry=None):
    """:func:`recover` normalized onto a ``MetricsRegistry``.

    The dict keys above are the pinned public API; this projection gives
    the report layer ``requestlog_requests{state=...}`` gauges without
    every consumer re-deriving them.  Returns the registry.
    """
    from repro.observability.instrument import requestlog_to_metrics

    return requestlog_to_metrics(recover(path), registry)
