"""The overload-robust triage serving daemon.

A discrete-event server on the simulation clock: requests arrive via
:meth:`ServingDaemon.submit`, pass admission control, wait in *per-class*
FIFO queues (interactive ahead of batch — heavyweight lint/minimize work
can never head-of-line-block a classify), execute in kind-homogeneous
micro-batches on a single logical executor, and are delivered through a
small pool of client-delivery slots.  Every stage is an explicit
robustness decision:

* **admission** (:mod:`repro.serving.admission`) sheds early with priced
  Retry-After hints, against per-class cost budgets;
* **deadline propagation** — each request's budget drains across queueing,
  service and delivery; work whose deadline passed in queue is *cancelled*
  (EXPIRED), never computed-then-discarded;
* **micro-batching** amortizes model overhead across requests of the same
  kind (the PR-3 WorkPool runs the actual shards);
* **graceful degradation** — on breaker-open, queue pressure past the
  watermark, or a budget too small for full service, answers fall back to
  the warm :class:`~repro.parallel.ArtifactCache` (marked stale, with the
  entry's age) and then to the heuristic tier before ever erroring;
* **slow-client absorption** — delivery slots are bulkheaded and, when
  hardened, a delivery timeout abandons clients that would otherwise pin
  a slot (head-of-line blocking, the paper's favorite symptom);
* **crash accountability** — an optional journaled request log
  (:mod:`repro.serving.requestlog`) records admit/complete durably so a
  restart can tell finished work from in-flight work.

``hardened=False`` disables every protection while keeping the identical
execution path — one kind-agnostic FIFO, no admission, no cancellation,
no degradation, no delivery timeout.  That is the A/B baseline the bench
collapses on purpose.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any

from repro.errors import ServingError
from repro.observability.metrics import MetricsRegistry
from repro.parallel import ArtifactCache
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.ledger import ResilienceEvent, ResilienceLedger
from repro.resilience.policies import Bulkhead
from repro.sdnsim.clock import EventScheduler
from repro.serving.admission import AdmissionController
from repro.serving.request import (
    ANSWERED,
    KIND_COSTS,
    Request,
    RequestClass,
    RequestKind,
    Response,
    ResponseStatus,
    ServiceTier,
)
from repro.taxonomy import Symptom, Trigger

#: Cache namespace for served full-quality responses (the warm tier).
RESPONSE_NAMESPACE = "serving-responses"

#: Latency histogram buckets (simulated seconds): sub-batch service times
#: through bare-mode collapse.  Fixed here so A/B arms always share edges.
LATENCY_BUCKETS = (0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0)


@dataclass(frozen=True)
class ServingConfig:
    """Every robustness knob in one bundle.

    ``hardened=False`` turns all of them off (single unbounded FIFO, no
    deadline cancellation, no degradation, no breaker, no delivery
    timeout) while executing the same code path — the honest A/B baseline.
    """

    hardened: bool = True
    # admission
    queue_depth: int = 64
    interactive_capacity: float = 12.0
    batch_capacity: float = 45.0
    interactive_slots: int = 48
    batch_slots: int = 16
    # degradation
    degrade_watermark: float = 0.5
    stale_max_age: float = 120.0
    cached_cost: float = 0.02
    heuristic_cost: float = 0.01
    # breaker in front of the full-service backend
    breaker_threshold: float = 0.5
    breaker_window: int = 8
    breaker_min_calls: int = 4
    breaker_cooldown: float = 5.0
    # delivery
    delivery_slots: int = 4
    delivery_timeout: float = 1.0
    normal_hold: float = 0.02

    def __post_init__(self) -> None:
        if not 0.0 < self.degrade_watermark <= 1.0:
            raise ServingError("degrade_watermark must be in (0, 1]")
        if self.queue_depth < 1:
            raise ServingError("queue_depth must be >= 1")
        if self.interactive_capacity <= 0 or self.batch_capacity <= 0:
            raise ServingError("per-class capacities must be > 0")
        if self.delivery_slots < 1:
            raise ServingError("delivery_slots must be >= 1")
        if self.delivery_timeout <= 0:
            raise ServingError("delivery_timeout must be > 0")
        if self.stale_max_age <= 0:
            raise ServingError("stale_max_age must be > 0")


@dataclass
class _QueueEntry:
    """Mutable per-request daemon state (requests stay immutable)."""

    request: Request
    enqueued_at: float


@dataclass
class ServingStats:
    """Counter block the smoke test and bench assert over."""

    submitted: int = 0
    admitted: int = 0
    shed: int = 0
    expired: int = 0
    completed_full: int = 0
    served_stale: int = 0
    served_heuristic: int = 0
    errors: int = 0
    batches: int = 0
    batched_requests: int = 0
    degraded_batches: int = 0
    slow_clients_aborted: int = 0
    delivery_waits: int = 0

    def to_dict(self) -> dict[str, int]:
        return dict(sorted(self.__dict__.items()))

    @property
    def answered(self) -> int:
        return self.completed_full + self.served_stale + self.served_heuristic

    @property
    def degraded_answers(self) -> int:
        return self.served_stale + self.served_heuristic


class ServingDaemon:
    """Single-node serving loop over an :class:`EventScheduler`.

    Parameters
    ----------
    scheduler:
        The simulation scheduler; all timing runs on its clock.
    backend:
        Object with ``execute_batch(kind, batch) -> BatchOutcome`` and
        ``degraded_answer(request)`` (see :mod:`repro.serving.backends`).
    config:
        Robustness knob bundle; ``config.hardened`` selects bare mode.
    cache:
        Warm response cache backing the stale tier.  When handed a cache
        still on its default wall clock, the daemon rebinds it to the
        simulation clock so entry ages stay deterministic.
    ledger:
        Shared resilience ledger; every shed/expired/degraded decision is
        priced into it.
    request_log:
        Optional journaled request log for crash-restart accounting.
    """

    def __init__(
        self,
        scheduler: EventScheduler,
        backend: Any,
        *,
        config: ServingConfig | None = None,
        cache: ArtifactCache | None = None,
        ledger: ResilienceLedger | None = None,
        request_log: Any = None,
    ) -> None:
        self.scheduler = scheduler
        self.clock = scheduler.clock
        self.backend = backend
        self.config = config or ServingConfig()
        self.ledger = ledger if ledger is not None else ResilienceLedger()
        self.cache = cache
        if cache is not None and getattr(cache, "_clock_is_default", False):
            cache.set_clock(lambda: self.clock.now)
        self.request_log = request_log
        self.stats = ServingStats()
        self.responses: list[Response] = []
        # Live metrics, stamped by the simulation clock so two same-seed
        # runs export byte-identical JSONL.  Pure observation: nothing in
        # the serving path reads these back.
        self.metrics = MetricsRegistry(clock=lambda: self.clock.now)
        self._m_requests = self.metrics.counter(
            "serving_requests_total",
            "Terminal responses by kind and status",
            labels=["kind", "status"],
        )
        self._m_shed = self.metrics.counter(
            "serving_shed_total", "Requests rejected at admission"
        )
        self._m_expired = self.metrics.counter(
            "serving_expired_total", "Requests cancelled in queue past deadline"
        )
        self._m_degraded = self.metrics.counter(
            "serving_degraded_total",
            "Degraded answers by fallback tier",
            labels=["tier"],
        )
        self._m_batches = self.metrics.counter(
            "serving_batches_total",
            "Executed micro-batches by service mode",
            labels=["mode"],
        )
        self._m_queue_depth = self.metrics.gauge(
            "serving_queue_depth",
            "Requests waiting, per class queue",
            labels=["klass"],
        )
        self._m_latency = self.metrics.histogram(
            "serving_latency_seconds",
            "Arrival-to-delivery latency of answered requests, per class",
            labels=["klass"],
            buckets=LATENCY_BUCKETS,
        )
        self._queues: dict[RequestClass, deque[_QueueEntry]] = {
            RequestClass.INTERACTIVE: deque(),
            RequestClass.BATCH: deque(),
        }
        self._queued_cost: dict[RequestClass, float] = {
            RequestClass.INTERACTIVE: 0.0,
            RequestClass.BATCH: 0.0,
        }
        self._busy_until = 0.0
        self._drain_scheduled = False
        self._delivery = Bulkhead(self.config.delivery_slots, name="delivery")
        self._delivery_queue: deque[tuple[Response, Request]] = deque()
        self.admission: AdmissionController | None = None
        self.breaker: CircuitBreaker | None = None
        if self.config.hardened:
            self.admission = AdmissionController(
                max_depth=self.config.queue_depth,
                interactive_capacity=self.config.interactive_capacity,
                batch_capacity=self.config.batch_capacity,
                interactive_slots=self.config.interactive_slots,
                batch_slots=self.config.batch_slots,
                ledger=self.ledger,
            )
            self.breaker = CircuitBreaker(
                scheduler,
                name="backend",
                failure_threshold=self.config.breaker_threshold,
                window=self.config.breaker_window,
                min_calls=self.config.breaker_min_calls,
                cooldown=self.config.breaker_cooldown,
                ledger=self.ledger,
            )

    # -- introspection ---------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        return sum(len(queue) for queue in self._queues.values())

    def queued_cost(self, klass: RequestClass | None = None) -> float:
        if klass is not None:
            return self._queued_cost[klass]
        return sum(self._queued_cost.values())

    @property
    def backlog(self) -> float:
        """Seconds until the executor frees up (0 when idle)."""
        return max(0.0, self._busy_until - self.clock.now)

    def pressure(self, klass: RequestClass) -> float:
        """Class queued-cost utilization; > watermark triggers degrade."""
        capacity = (
            self.config.interactive_capacity
            if klass is RequestClass.INTERACTIVE
            else self.config.batch_capacity
        )
        return self._queued_cost[klass] / capacity

    def _class_for(self, request: Request) -> RequestClass:
        """Bare mode collapses everything into one FIFO — no isolation."""
        if not self.config.hardened:
            return RequestClass.INTERACTIVE
        return request.klass

    def _drain_ahead(self, request: Request) -> float:
        """Seconds of work that runs before this request could: the busy
        residue, plus (for batch-class work) the whole interactive queue,
        which has strict priority."""
        ahead = self.backlog
        if request.klass is RequestClass.BATCH:
            ahead += self._queued_cost[RequestClass.INTERACTIVE]
        return ahead

    # -- intake ----------------------------------------------------------------
    def submit(self, request: Request) -> None:
        """Accept one request at the current simulated time."""
        now = self.clock.now
        self.stats.submitted += 1
        if self.admission is not None:
            verdict = self.admission.admit(
                request,
                now=now,
                depth=self.queue_depth,
                queued_cost=self._queued_cost[request.klass],
                backlog=self._drain_ahead(request),
            )
            if not verdict.admitted:
                self.stats.shed += 1
                self._m_shed.inc()
                if self.request_log is not None:
                    self.request_log.log_shed(request, verdict.reason)
                self._finalize(
                    request,
                    Response(
                        req_id=request.req_id,
                        kind=request.kind,
                        status=ResponseStatus.SHED,
                        tier=ServiceTier.NONE,
                        arrival=request.arrival,
                        completed=now,
                        retry_after=verdict.retry_after,
                        detail=verdict.reason,
                    ),
                )
                return
        self.stats.admitted += 1
        if self.request_log is not None:
            self.request_log.log_admit(request)
        klass = self._class_for(request)
        self._queues[klass].append(_QueueEntry(request, enqueued_at=now))
        self._queued_cost[klass] += request.cost().solo_cost
        self._observe_queues()
        self._schedule_drain()

    def _observe_queues(self) -> None:
        for klass, queue in self._queues.items():
            self._m_queue_depth.labels(klass=klass.value).set(len(queue))

    # -- the serving loop ------------------------------------------------------
    def _schedule_drain(self) -> None:
        if self._drain_scheduled or not self.queue_depth:
            return
        self._drain_scheduled = True
        self.scheduler.schedule_at(
            max(self.clock.now, self._busy_until), self._drain
        )

    def _drain(self) -> None:
        self._drain_scheduled = False
        if self.clock.now < self._busy_until:
            self._schedule_drain()
            return
        if self.config.hardened:
            self._cancel_expired()
        batch = self._form_batch()
        if not batch:
            return
        kind = batch[0].request.kind
        self.stats.batches += 1
        self.stats.batched_requests += len(batch)
        degrade = self._should_degrade(kind, batch)
        self._m_batches.labels(mode="degraded" if degrade else "full").inc()
        if degrade:
            self.stats.degraded_batches += 1
            cost = (self.config.cached_cost + self.config.heuristic_cost) * len(batch)
        else:
            cost = KIND_COSTS[kind].batch_cost(len(batch))
        self._busy_until = self.clock.now + cost
        self.scheduler.schedule_at(
            self._busy_until,
            lambda: self._complete(kind, batch, degraded=degrade),
        )

    def _cancel_expired(self) -> None:
        """Cancel queued work whose deadline already passed: the point of
        deadline propagation is to never finish an answer nobody can use."""
        now = self.clock.now
        for klass, queue in list(self._queues.items()):
            survivors: deque[_QueueEntry] = deque()
            while queue:
                entry = queue.popleft()
                request = entry.request
                if now < request.deadline:
                    survivors.append(entry)
                    continue
                self._queued_cost[klass] -= request.cost().solo_cost
                self._release_quota(request)
                self.stats.expired += 1
                self._m_expired.inc()
                waited = now - entry.enqueued_at
                self.ledger.record(
                    ResilienceEvent.GIVE_UP,
                    "deadline",
                    time=now,
                    detail=(
                        f"request {request.req_id} ({request.kind.value}) "
                        f"expired in queue after {waited:.2f}s; cancelled"
                    ),
                    trigger=Trigger.NETWORK_EVENTS,
                    symptom=Symptom.PERFORMANCE,
                    delay=waited,
                )
                if self.request_log is not None:
                    self.request_log.log_expired(request)
                self._finalize(
                    request,
                    Response(
                        req_id=request.req_id,
                        kind=request.kind,
                        status=ResponseStatus.EXPIRED,
                        tier=ServiceTier.NONE,
                        arrival=request.arrival,
                        completed=now,
                        latency=now - request.arrival,
                        detail=f"deadline passed in queue ({waited:.2f}s queued)",
                    ),
                )
            self._queues[klass] = survivors
            self._queued_cost[klass] = max(0.0, self._queued_cost[klass])
        self._observe_queues()

    def _form_batch(self) -> list[_QueueEntry]:
        """Take up to ``max_batch`` same-kind requests from the
        highest-priority non-empty class queue, preserving arrival order
        for everything left behind."""
        for klass in (RequestClass.INTERACTIVE, RequestClass.BATCH):
            queue = self._queues[klass]
            if not queue:
                continue
            kind = queue[0].request.kind
            limit = KIND_COSTS[kind].max_batch
            batch: list[_QueueEntry] = []
            rest: deque[_QueueEntry] = deque()
            while queue:
                entry = queue.popleft()
                if entry.request.kind is kind and len(batch) < limit:
                    batch.append(entry)
                else:
                    rest.append(entry)
            self._queues[klass] = rest
            for entry in batch:
                self._queued_cost[klass] -= entry.request.cost().solo_cost
            self._queued_cost[klass] = max(0.0, self._queued_cost[klass])
            self._observe_queues()
            return batch
        return []

    def _should_degrade(self, kind: RequestKind, batch: list[_QueueEntry]) -> bool:
        if not self.config.hardened:
            return False
        if self.breaker is not None and not self.breaker.allow():
            self._price_degradation(batch, "breaker open")
            return True
        klass = batch[0].request.klass
        if self.pressure(klass) > self.config.degrade_watermark:
            self._price_degradation(
                batch, f"{klass.value} pressure {self.pressure(klass):.2f}"
            )
            return True
        # Budget pressure: if the batch would blow its tightest remaining
        # deadline at full cost, degrade instead of expiring.
        full_cost = KIND_COSTS[kind].batch_cost(len(batch))
        tightest = min(e.request.deadline for e in batch) - self.clock.now
        if full_cost > tightest:
            self._price_degradation(batch, "budget pressure")
            return True
        return False

    def _price_degradation(self, batch: list[_QueueEntry], cause: str) -> None:
        self.ledger.record(
            ResilienceEvent.DEGRADATION,
            "degrade",
            time=self.clock.now,
            detail=f"{len(batch)} request(s) degraded: {cause}",
            trigger=Trigger.EXTERNAL_CALLS,
            symptom=Symptom.PERFORMANCE,
        )

    # -- completion ------------------------------------------------------------
    def _complete(
        self, kind: RequestKind, batch: list[_QueueEntry], *, degraded: bool
    ) -> None:
        if degraded:
            for entry in batch:
                self._serve_degraded(entry)
        else:
            outcome = self.backend.execute_batch(
                kind, [entry.request for entry in batch]
            )
            for entry, value, error in zip(batch, outcome.values, outcome.errors):
                if error is None:
                    self._record_backend(success=True)
                    self._serve_full(entry, value)
                else:
                    self._record_backend(success=False)
                    if self.config.hardened:
                        self._serve_degraded(entry, primary_error=error)
                    else:
                        self._serve_error(entry, error)
        self._schedule_drain()

    def _record_backend(self, *, success: bool) -> None:
        if self.breaker is None:
            return
        if success:
            self.breaker.record_success()
        else:
            self.breaker.record_failure(
                trigger=Trigger.EXTERNAL_CALLS, symptom=Symptom.FAIL_STOP
            )

    def _serve_full(self, entry: _QueueEntry, value: Any) -> None:
        request = entry.request
        if self.cache is not None:
            self.cache.put(
                RESPONSE_NAMESPACE, self._cache_params(request), value
            )
        self.stats.completed_full += 1
        self._release_quota(request)
        self._deliver(
            request,
            Response(
                req_id=request.req_id,
                kind=request.kind,
                status=ResponseStatus.OK,
                tier=ServiceTier.FULL,
                value=value,
                arrival=request.arrival,
            ),
        )

    def _serve_degraded(self, entry: _QueueEntry, primary_error: str = "") -> None:
        """Cache tier, then heuristic tier, then error — never silently."""
        request = entry.request
        self._release_quota(request)
        if self.cache is not None:
            params = self._cache_params(request)
            value, found = self.cache.lookup(RESPONSE_NAMESPACE, params)
            if found:
                info = self.cache.entry_info(RESPONSE_NAMESPACE, params)
                age = info.age if info is not None else None
                if age is None or age <= self.config.stale_max_age:
                    self.stats.served_stale += 1
                    self._m_degraded.labels(tier="cached").inc()
                    self._deliver(
                        request,
                        Response(
                            req_id=request.req_id,
                            kind=request.kind,
                            status=ResponseStatus.STALE,
                            tier=ServiceTier.CACHED,
                            value=value,
                            arrival=request.arrival,
                            age=age,
                            detail=primary_error or "warm-cache fallback",
                        ),
                    )
                    return
        try:
            value = self.backend.degraded_answer(request)
        except Exception as exc:  # noqa: BLE001 - the degradation boundary
            self._serve_error(
                entry, primary_error or f"{type(exc).__name__}: {exc}",
                quota_released=True,
            )
            return
        self.stats.served_heuristic += 1
        self._m_degraded.labels(tier="heuristic").inc()
        self._deliver(
            request,
            Response(
                req_id=request.req_id,
                kind=request.kind,
                status=ResponseStatus.DEGRADED,
                tier=ServiceTier.HEURISTIC,
                value=value,
                arrival=request.arrival,
                detail=primary_error or "heuristic fallback",
            ),
        )

    def _serve_error(
        self, entry: _QueueEntry, error: str, *, quota_released: bool = False
    ) -> None:
        request = entry.request
        if not quota_released:
            self._release_quota(request)
        self.stats.errors += 1
        self._deliver(
            request,
            Response(
                req_id=request.req_id,
                kind=request.kind,
                status=ResponseStatus.ERROR,
                tier=ServiceTier.NONE,
                arrival=request.arrival,
                detail=error,
            ),
        )

    def _release_quota(self, request: Request) -> None:
        if self.admission is not None:
            self.admission.release(request)

    def _cache_params(self, request: Request) -> dict[str, str]:
        return {"kind": request.kind.value, "payload": request.payload_digest()}

    # -- delivery --------------------------------------------------------------
    def _deliver(self, request: Request, response: Response) -> None:
        """Push the response at the client through a bulkheaded slot pool."""
        if self._delivery.available > 0:
            self._start_delivery(request, response)
        else:
            self.stats.delivery_waits += 1
            self._delivery_queue.append((response, request))

    def _start_delivery(self, request: Request, response: Response) -> None:
        self._delivery.acquire()
        hold = max(request.client_hold, self.config.normal_hold)
        if self.config.hardened and hold > self.config.delivery_timeout:
            self.stats.slow_clients_aborted += 1
            self.ledger.record(
                ResilienceEvent.GIVE_UP,
                "delivery",
                time=self.clock.now,
                detail=(
                    f"request {request.req_id}: slow client abandoned after "
                    f"{self.config.delivery_timeout:.2f}s (wanted {hold:.2f}s)"
                ),
                trigger=Trigger.EXTERNAL_CALLS,
                symptom=Symptom.PERFORMANCE,
                delay=self.config.delivery_timeout,
            )
            hold = self.config.delivery_timeout
        self.scheduler.schedule_at(
            self.clock.now + hold,
            lambda: self._finish_delivery(request, response),
        )

    def _finish_delivery(self, request: Request, response: Response) -> None:
        self._delivery.release()
        response.completed = self.clock.now
        response.latency = response.completed - request.arrival
        self._finalize(request, response)
        if self._delivery_queue:
            next_response, next_request = self._delivery_queue.popleft()
            self._start_delivery(next_request, next_response)

    def _finalize(self, request: Request, response: Response) -> None:
        if response.status in (ResponseStatus.SHED, ResponseStatus.EXPIRED):
            response.deadline_met = False
        else:
            response.deadline_met = response.completed <= request.deadline
        self._m_requests.labels(
            kind=request.kind.value, status=response.status.value
        ).inc()
        if response.status in ANSWERED:
            self._m_latency.labels(klass=request.klass.value).observe(
                response.latency
            )
        if self.request_log is not None and response.status not in (
            ResponseStatus.SHED, ResponseStatus.EXPIRED,
        ):
            self.request_log.log_complete(request, response)
        self.responses.append(response)

    # -- teardown --------------------------------------------------------------
    def run(self, *, until: float) -> None:
        """Drain the scheduler to ``until`` (arrivals must be scheduled)."""
        self.scheduler.run(until=until)

    def close(self) -> None:
        if self.request_log is not None:
            self.request_log.close()
