"""Execution backends for the serving daemon.

:class:`TriageBackend` is the real thing: a TF-IDF/SVM autoclassifier
(trained once at boot, checkpointable through the artifact cache), the
precomputed corpus analytics for queries, sdnlint for lint requests and
the STS-style ddmin minimizer for minimize requests.  Batch execution
shards over the PR-3 :class:`~repro.parallel.WorkPool` under its
deterministic-ordering contract, so the answers are independent of worker
count.

:class:`HeuristicClassifier` is the bottom degradation tier: a keyword
table distilled from the training labels that answers in ~1/10 of the
full model's simulated cost at reduced accuracy.  It exists so that the
daemon can *always* say something cheap rather than nothing at all.

:class:`StubBackend` is the deterministic test double — instant answers,
scriptable failures — used by unit tests that exercise queueing and
degradation mechanics without paying for model training.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Sequence

from repro.errors import BackendError, PoisonRequestError, ServingError
from repro.parallel import ArtifactCache, WorkPool
from repro.serving.request import Request, RequestKind

#: Keyword vocabulary for the heuristic symptom tier, in vote order.
_HEURISTIC_KEYWORDS: tuple[tuple[str, tuple[str, ...]], ...] = (
    ("fail_stop", ("crash", "abort", "exit", "dies", "killed", "restart",
                   "shut", "panic")),
    ("performance", ("slow", "latency", "cpu", "memory", "leak", "load",
                     "throughput", "degrad", "timeout")),
    ("error_message", ("error", "exception", "traceback", "warning", "log",
                       "message", "stack")),
    ("byzantine", ("wrong", "incorrect", "inconsistent", "stale", "flap",
                   "duplicate", "mismatch", "partial")),
)


class HeuristicClassifier:
    """Keyword-vote classifier: the cheapest tier that still answers.

    ``labels`` restricts votes to labels that actually occur in training
    data; ties and no-keyword texts fall back to the majority label, which
    is the best constant guess.
    """

    def __init__(self, labels: Sequence[str]) -> None:
        if not labels:
            raise ServingError("heuristic tier needs a non-empty label set")
        counts = Counter(labels)
        self.known = set(counts)
        self.fallback = max(sorted(counts), key=lambda lab: counts[lab])

    def classify(self, text: str) -> str:
        lowered = text.lower()
        votes: Counter[str] = Counter()
        for label, keywords in _HEURISTIC_KEYWORDS:
            if label not in self.known:
                continue
            votes[label] = sum(1 for kw in keywords if kw in lowered)
        if votes:
            best = max(sorted(votes), key=lambda lab: votes[lab])
            if votes[best] > 0:
                return best
        return self.fallback

    def classify_batch(self, texts: Sequence[str]) -> list[str]:
        return [self.classify(text) for text in texts]


@dataclass
class BatchOutcome:
    """Per-item results of one backend batch: value or error string."""

    values: list[Any] = field(default_factory=list)
    errors: list[str | None] = field(default_factory=list)

    @property
    def failures(self) -> int:
        return sum(1 for err in self.errors if err is not None)


def _check_poison(request: Request) -> None:
    if request.poison:
        raise PoisonRequestError(
            f"request {request.req_id}: poison payload crashed the backend"
        )


class TriageBackend:
    """The real serving backend over the repo's own analysis machinery."""

    #: Cache namespace for the trained classifier checkpoint.
    MODEL_NAMESPACE = "serving-model"

    def __init__(
        self,
        *,
        seed: int = 2020,
        dimension: str = "symptom",
        jobs: int = 1,
        cache: ArtifactCache | None = None,
        lint_workspace: str | Path | None = None,
    ) -> None:
        from repro.analysis import (
            determinism_rates,
            symptom_distribution,
            trigger_distribution,
        )
        from repro.corpus import CorpusGenerator

        self.seed = seed
        self.dimension = dimension
        self.pool = WorkPool(jobs, backend="thread")
        corpus = CorpusGenerator(seed=seed).generate()
        self.sample = corpus.manual_sample
        self.texts = self.sample.texts()
        labels = self.sample.labels(dimension)
        self.heuristic = HeuristicClassifier(labels)
        self._model = self._build_model(labels, cache)
        dataset = corpus.dataset
        self._queries: dict[str, Any] = {
            "symptoms": {k.value: round(v, 6) for k, v in
                         sorted(symptom_distribution(dataset).items(),
                                key=lambda kv: kv[0].value)},
            "triggers": {k.value: round(v, 6) for k, v in
                         sorted(trigger_distribution(dataset).items(),
                                key=lambda kv: kv[0].value)},
            "determinism": {k: round(v, 6) for k, v in
                            sorted(determinism_rates(dataset).items())},
        }
        self._lint_workspace = Path(lint_workspace) if lint_workspace else None

    # -- boot ------------------------------------------------------------------
    def _build_model(self, labels: Sequence[str], cache: ArtifactCache | None):
        from repro.pipeline.autoclassifier import AutoClassifier

        def _train():
            model = AutoClassifier(seed=self.seed, use_embeddings=False)
            model.fit(self.texts, labels)
            return model

        if cache is None:
            return _train()
        params = {
            "seed": self.seed,
            "dimension": self.dimension,
            "stage": "serving-classifier",
        }
        model, _hit = cache.get_or_compute(self.MODEL_NAMESPACE, params, _train)
        return model

    # -- execution -------------------------------------------------------------
    def execute_batch(self, kind: RequestKind, batch: Sequence[Request]) -> BatchOutcome:
        """Run one micro-batch; per-item faults become per-item errors."""
        if kind is RequestKind.CLASSIFY:
            return self._classify(batch)
        outcome = BatchOutcome()
        for request in batch:
            try:
                _check_poison(request)
                if kind is RequestKind.QUERY:
                    value = self.query(request.payload)
                elif kind is RequestKind.LINT:
                    value = self.lint(request.payload)
                elif kind is RequestKind.MINIMIZE:
                    value = self.minimize(request.payload)
                else:  # pragma: no cover - enum is closed
                    raise ServingError(f"unknown request kind {kind!r}")
                outcome.values.append(value)
                outcome.errors.append(None)
            except BackendError as exc:  # sdnlint: disable=dataflow.unpriced-exception (per-item errors flow to the daemon, which breakers/prices them)
                outcome.values.append(None)
                outcome.errors.append(f"{type(exc).__name__}: {exc}")
        return outcome

    def _classify(self, batch: Sequence[Request]) -> BatchOutcome:
        outcome = BatchOutcome()
        clean: list[tuple[int, str]] = []
        for index, request in enumerate(batch):
            try:
                _check_poison(request)
                if not isinstance(request.payload, str) or not request.payload:
                    raise BackendError(
                        f"request {request.req_id}: classify payload must be "
                        "a non-empty string"
                    )
                clean.append((index, request.payload))
                outcome.values.append(None)
                outcome.errors.append(None)
            except BackendError as exc:  # sdnlint: disable=dataflow.unpriced-exception (per-item errors flow to the daemon, which breakers/prices them)
                outcome.values.append(None)
                outcome.errors.append(f"{type(exc).__name__}: {exc}")
        if clean:
            texts = [text for _, text in clean]
            shards = self._shard(texts)
            predicted: list[str] = []
            for labels in self.pool.map(self._model.predict, shards):
                predicted.extend(labels)
            for (index, _), label in zip(clean, predicted):
                outcome.values[index] = label
        return outcome

    def _shard(self, texts: list[str]) -> list[list[str]]:
        jobs = max(1, self.pool.jobs)
        if jobs == 1 or len(texts) <= 1:
            return [texts]
        size = -(-len(texts) // jobs)
        return [texts[i:i + size] for i in range(0, len(texts), size)]

    # -- per-kind operations ---------------------------------------------------
    def query(self, name: Any) -> dict[str, Any]:
        if name not in self._queries:
            raise BackendError(
                f"unknown query {name!r} (known: {sorted(self._queries)})"
            )
        return self._queries[name]

    def lint(self, source: Any) -> dict[str, int]:
        from repro.staticanalysis import Analyzer

        if not isinstance(source, str):
            raise BackendError("lint payload must be Python source text")
        if self._lint_workspace is None:
            raise BackendError("lint requests need a backend lint workspace")
        self._lint_workspace.mkdir(parents=True, exist_ok=True)
        target = self._lint_workspace / "served_lint_input.py"
        target.write_text(source, encoding="utf-8")
        report = Analyzer().run([target])
        return {
            "findings": len(report.findings),
            "errors": sum(1 for f in report.findings
                          if f.severity.name == "ERROR"),
        }

    def minimize(self, schedule_seed: Any) -> dict[str, int]:
        from repro.adversary import minimize_schedule, random_schedule

        if not isinstance(schedule_seed, int):
            raise BackendError("minimize payload must be a schedule seed (int)")
        schedule = random_schedule(schedule_seed, events=8)
        result = minimize_schedule(schedule)
        return {
            "original_events": len(schedule),
            "minimized_events": len(result.minimized),
            "replays": result.replays,
        }

    # -- degraded tiers --------------------------------------------------------
    def degraded_answer(self, request: Request) -> Any:
        """The heuristic-tier answer (raises BackendError when impossible)."""
        _check_poison(request)
        if request.kind is RequestKind.CLASSIFY:
            if not isinstance(request.payload, str) or not request.payload:
                raise BackendError("classify payload must be a non-empty string")
            return self.heuristic.classify(request.payload)
        if request.kind is RequestKind.QUERY:
            return self.query(request.payload)
        raise BackendError(
            f"no heuristic tier for {request.kind.value} requests"
        )


class StubBackend:
    """Deterministic test double: echo answers, scriptable failures.

    ``fail_ids`` lists request ids whose *full-tier* execution fails;
    poison payloads fail every tier.  No training, no filesystem.
    """

    def __init__(self, *, fail_ids: Sequence[int] = ()) -> None:
        self.fail_ids = set(fail_ids)
        self.heuristic = HeuristicClassifier(["fail_stop", "byzantine"])
        self.executed_batches: list[tuple[RequestKind, tuple[int, ...]]] = []

    def execute_batch(self, kind: RequestKind, batch: Sequence[Request]) -> BatchOutcome:
        self.executed_batches.append(
            (kind, tuple(request.req_id for request in batch))
        )
        outcome = BatchOutcome()
        for request in batch:
            if request.poison or request.req_id in self.fail_ids:
                outcome.values.append(None)
                outcome.errors.append("PoisonRequestError: scripted failure")
            else:
                outcome.values.append(f"{kind.value}:{request.req_id}")
                outcome.errors.append(None)
        return outcome

    def degraded_answer(self, request: Request) -> Any:
        _check_poison(request)
        return f"heuristic:{request.req_id}"
