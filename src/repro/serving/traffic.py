"""Seeded synthetic traffic for the serving daemon.

The generator produces the workload shape that actually kills control
planes in the paper's bug corpus: a modest Poisson base load with
superimposed *bursts* (flash crowds at many times the base rate), a
heavy-tailed payload-size distribution (most classify texts are short,
a few are very long), and two injected client-side fault classes —
**slow clients** that hold a delivery slot far longer than normal, and
**poison requests** whose payload deterministically crashes the backend.

Everything is drawn from one ``random.Random(seed)``: the same seed
always yields the identical request sequence (ids, kinds, arrival times,
payloads, fault flags), which is what makes the A/B comparison and the
two-run determinism gate meaningful.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable

from repro.errors import ServingError
from repro.serving.request import Request, RequestFactory, RequestKind

#: Text fragments composed into synthetic classify payloads.  Drawn from
#: the taxonomy vocabulary so heuristic and full tiers both have signal.
_PHRASES: tuple[str, ...] = (
    "controller crashed after the config push",
    "switch reports inconsistent flow entries",
    "latency spikes under moderate load",
    "error message flood in the controller log",
    "cluster member restarts in a loop",
    "stale routes remain after failover",
    "memory leak grows until the process dies",
    "traceback on malformed REST request",
    "throughput degrades when links flap",
    "duplicate packets on the redundant path",
    "unexpected timeout talking to the datastore",
    "wrong VLAN applied after reboot",
)

_QUERY_NAMES: tuple[str, ...] = ("symptoms", "triggers", "determinism")


@dataclass(frozen=True)
class TrafficConfig:
    """Shape of one synthetic trace; every field feeds the seeded RNG."""

    seed: int = 2020
    duration: float = 60.0
    #: Poisson arrival rates (requests per simulated second).
    base_rate: float = 6.0
    burst_rate: float = 40.0
    bursts: int = 3
    burst_length: float = 4.0
    #: Request-kind mix (relative weights).
    classify_weight: float = 0.70
    query_weight: float = 0.20
    lint_weight: float = 0.06
    minimize_weight: float = 0.04
    #: Fault injection probabilities.
    slow_client_rate: float = 0.03
    poison_rate: float = 0.02
    #: A slow client holds its delivery slot this long (simulated seconds).
    slow_client_hold: float = 8.0
    #: Pareto shape for the heavy-tail payload length multiplier.
    tail_alpha: float = 1.5

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ServingError("duration must be > 0")
        if self.base_rate <= 0 or self.burst_rate <= 0:
            raise ServingError("arrival rates must be > 0")
        if self.bursts < 0:
            raise ServingError("bursts must be >= 0")
        weights = (self.classify_weight, self.query_weight,
                   self.lint_weight, self.minimize_weight)
        if any(w < 0 for w in weights) or sum(weights) <= 0:
            raise ServingError("kind weights must be >= 0 and sum > 0")
        for rate in (self.slow_client_rate, self.poison_rate):
            if not 0.0 <= rate <= 1.0:
                raise ServingError("fault rates must be in [0, 1]")


@dataclass
class Trace:
    """A fully materialized request sequence plus its fault inventory."""

    config: TrafficConfig
    requests: list[Request] = field(default_factory=list)

    @property
    def slow_clients(self) -> int:
        return sum(1 for r in self.requests if r.client_hold > 0)

    @property
    def poison(self) -> int:
        return sum(1 for r in self.requests if r.poison)

    def kind_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for request in self.requests:
            counts[request.kind.value] = counts.get(request.kind.value, 0) + 1
        return dict(sorted(counts.items()))


def _burst_windows(config: TrafficConfig, rng: random.Random) -> list[tuple[float, float]]:
    """Burst start/end times, drawn once and sorted for determinism."""
    windows = []
    for _ in range(config.bursts):
        start = rng.uniform(0.0, max(0.0, config.duration - config.burst_length))
        windows.append((start, start + config.burst_length))
    return sorted(windows)


def _rate_at(t: float, config: TrafficConfig, windows: list[tuple[float, float]]) -> float:
    for start, end in windows:
        if start <= t < end:
            return config.burst_rate
    return config.base_rate


def _payload_for(
    kind: RequestKind, rng: random.Random, config: TrafficConfig
):
    if kind is RequestKind.CLASSIFY:
        # Heavy tail: most texts are 1-3 phrases, a few are much longer.
        tail = rng.paretovariate(config.tail_alpha)
        phrases = max(1, min(40, int(tail)))
        return " ".join(rng.choice(_PHRASES) for _ in range(phrases))
    if kind is RequestKind.QUERY:
        return rng.choice(_QUERY_NAMES)
    if kind is RequestKind.LINT:
        name = f"handler_{rng.randrange(1000)}"
        return (
            f"import time\n\n\ndef {name}(event):\n"
            f"    start = time.time()\n"
            f"    return event, start\n"
        )
    # MINIMIZE: the payload is a schedule seed.
    return rng.randrange(10_000)


def generate_trace(config: TrafficConfig | None = None) -> Trace:
    """Materialize one seeded trace (thinned non-homogeneous Poisson).

    Arrivals are drawn by thinning against ``burst_rate`` (the maximum
    instantaneous rate), so burst windows genuinely arrive at burst rate
    and quiet periods at base rate, all from the single seeded stream.
    """
    config = config or TrafficConfig()
    rng = random.Random(config.seed)
    windows = _burst_windows(config, rng)
    factory = RequestFactory()
    trace = Trace(config=config)
    kinds = (RequestKind.CLASSIFY, RequestKind.QUERY,
             RequestKind.LINT, RequestKind.MINIMIZE)
    weights = (config.classify_weight, config.query_weight,
               config.lint_weight, config.minimize_weight)
    max_rate = max(config.base_rate, config.burst_rate)
    t = 0.0
    while True:
        t += rng.expovariate(max_rate)
        if t >= config.duration:
            break
        if rng.random() > _rate_at(t, config, windows) / max_rate:
            continue  # thinned: this candidate arrival does not occur
        kind = rng.choices(kinds, weights=weights)[0]
        payload = _payload_for(kind, rng, config)
        client_hold = 0.0
        if rng.random() < config.slow_client_rate:
            client_hold = config.slow_client_hold
        poison = rng.random() < config.poison_rate
        trace.requests.append(
            factory.make(
                kind,
                payload,
                arrival=round(t, 6),
                client_hold=client_hold,
                poison=poison,
            )
        )
    return trace


def replay(trace: Trace | Iterable[Request], daemon) -> None:
    """Schedule every request's arrival onto the daemon's event loop.

    Purely schedules — call ``daemon.run(until=...)`` to execute.  A
    trace replays identically into any daemon sharing a fresh scheduler.
    """
    requests = trace.requests if isinstance(trace, Trace) else list(trace)
    for request in requests:
        daemon.scheduler.schedule_at(
            request.arrival, lambda req=request: daemon.submit(req)
        )
