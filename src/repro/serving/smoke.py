"""CI smoke run for the serving daemon.

Boots the hardened daemon with the real :class:`TriageBackend`, replays a
seeded 30-simulated-second bursty trace with slow-client and poison
faults injected, and asserts the overload contract held:

* zero unhandled exceptions (every submitted request reached exactly one
  terminal response);
* the protections actually fired — shed > 0 and degraded-tier answers > 0
  under this deliberately overloading trace;
* every deliberate drop was priced into the resilience ledger.

Run as ``python -m repro.serving.smoke [--out summary.json]``.  Exits 0
on success, 1 with a one-line reason on violation.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path

from repro.observability.instrument import ledger_to_metrics
from repro.resilience.ledger import ResilienceLedger
from repro.sdnsim.clock import EventScheduler
from repro.serving.ab import _account_drops, fingerprint, goodput, percentile
from repro.serving.backends import TriageBackend
from repro.serving.daemon import ServingConfig, ServingDaemon
from repro.serving.requestlog import RequestLog, recover
from repro.serving.traffic import TrafficConfig, generate_trace, replay

#: The smoke trace: 30 simulated seconds, aggressive bursts and faults.
SMOKE_TRAFFIC = TrafficConfig(
    seed=2020,
    duration=30.0,
    base_rate=6.0,
    burst_rate=40.0,
    bursts=2,
    burst_length=4.0,
    slow_client_rate=0.05,
    poison_rate=0.04,
)


def run_smoke(out: str | None = None, workdir: str | None = None) -> int:
    base = Path(workdir) if workdir else Path(tempfile.mkdtemp(prefix="serve-smoke-"))
    base.mkdir(parents=True, exist_ok=True)
    journal_path = base / "requests.journal"
    trace = generate_trace(SMOKE_TRAFFIC)
    scheduler = EventScheduler()
    ledger = ResilienceLedger()
    backend = TriageBackend(seed=SMOKE_TRAFFIC.seed, lint_workspace=base / "lint")
    request_log = RequestLog(journal_path)
    daemon = ServingDaemon(
        scheduler,
        backend,
        config=ServingConfig(hardened=True),
        ledger=ledger,
        request_log=request_log,
    )
    replay(trace, daemon)
    failures: list[str] = []
    try:
        daemon.run(until=SMOKE_TRAFFIC.duration + 120.0)
    except Exception as exc:  # noqa: BLE001 - the smoke contract itself
        failures.append(f"unhandled exception escaped the daemon: {exc!r}")
    daemon.close()

    stats = daemon.stats
    if not failures:
        if len(daemon.responses) != len(trace.requests):
            failures.append(
                f"response accounting broken: {len(trace.requests)} requests "
                f"but {len(daemon.responses)} terminal responses"
            )
        if stats.shed == 0:
            failures.append("overload trace produced zero shed requests")
        if stats.degraded_answers == 0:
            failures.append("overload trace produced zero degraded answers")
        unaccounted = _account_drops(daemon.responses, ledger)
        if unaccounted:
            failures.append(
                f"{unaccounted} dropped request(s) have no priced ledger entry"
            )
        accounting = recover(journal_path)
        if accounting["inflight"]:
            failures.append(
                f"journal shows {len(accounting['inflight'])} request(s) "
                "admitted but never terminally recorded after a clean run"
            )

    # Full observability export alongside the summary: daemon metrics plus
    # the ledger bridge, in the registry JSONL format CI uploads.
    ledger_to_metrics(ledger, daemon.metrics)
    metrics_path = base / "serve_metrics.jsonl"
    metrics_path.write_text(daemon.metrics.export_jsonl(), encoding="utf-8")

    latencies = [r.latency for r in daemon.responses if r.answered]
    summary = {
        "trace_requests": len(trace.requests),
        "slow_clients": trace.slow_clients,
        "poison": trace.poison,
        "kind_counts": trace.kind_counts(),
        "goodput": round(goodput(daemon.responses, SMOKE_TRAFFIC.duration), 6),
        "p99": round(percentile(latencies, 99.0), 6),
        "stats": stats.to_dict(),
        "ledger": ledger.summary(),
        "fingerprint": fingerprint(daemon.responses),
        "metrics_file": str(metrics_path),
        "failures": failures,
    }
    if out:
        Path(out).parent.mkdir(parents=True, exist_ok=True)
        Path(out).write_text(json.dumps(summary, indent=2, sort_keys=True))
    print(json.dumps(summary, indent=2, sort_keys=True))
    if failures:
        for failure in failures:
            print(f"SMOKE FAILURE: {failure}", file=sys.stderr)
        return 1
    print("serve-smoke: all overload-contract assertions held")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.serving.smoke")
    parser.add_argument("--out", default=None, help="write summary JSON here")
    parser.add_argument("--workdir", default=None,
                        help="journal/lint workspace (default: temp dir)")
    args = parser.parse_args(argv)
    return run_smoke(out=args.out, workdir=args.workdir)


if __name__ == "__main__":
    raise SystemExit(main())
