"""Overload-robust triage serving: the paper's bug classes, inverted.

The DSN'21 study's overload findings — unbounded queues, missing
backpressure, head-of-line blocking behind slow peers, work completed
after its deadline — are each inverted into an explicit mechanism here:
bounded cost-aware admission (:mod:`admission`), deadline propagation
with in-queue cancellation and graceful degradation tiers
(:mod:`daemon`), micro-batched execution (:mod:`backends`), a journaled
request log (:mod:`requestlog`), seeded fault-injecting traffic
(:mod:`traffic`) and the A/B harness that proves the hardened daemon
beats the bare one under the same overload (:mod:`ab`).
"""

from repro.serving.ab import (
    ABReport,
    ArmReport,
    fingerprint,
    goodput,
    percentile,
    run_ab,
    run_arm,
)
from repro.serving.admission import AdmissionController, AdmissionVerdict
from repro.serving.backends import (
    BatchOutcome,
    HeuristicClassifier,
    StubBackend,
    TriageBackend,
)
from repro.serving.daemon import ServingConfig, ServingDaemon, ServingStats
from repro.serving.request import (
    ANSWERED,
    DEFAULT_BUDGETS,
    KIND_CLASS,
    KIND_COSTS,
    CostModel,
    Request,
    RequestClass,
    RequestFactory,
    RequestKind,
    Response,
    ResponseStatus,
    ServiceTier,
)
from repro.serving.requestlog import RequestLog, recover, recover_metrics
from repro.serving.traffic import Trace, TrafficConfig, generate_trace, replay

__all__ = [
    "ABReport",
    "ANSWERED",
    "AdmissionController",
    "AdmissionVerdict",
    "ArmReport",
    "BatchOutcome",
    "CostModel",
    "DEFAULT_BUDGETS",
    "HeuristicClassifier",
    "KIND_CLASS",
    "KIND_COSTS",
    "Request",
    "RequestClass",
    "RequestFactory",
    "RequestKind",
    "RequestLog",
    "Response",
    "ResponseStatus",
    "ServiceTier",
    "ServingConfig",
    "ServingDaemon",
    "ServingStats",
    "StubBackend",
    "Trace",
    "TrafficConfig",
    "TriageBackend",
    "fingerprint",
    "generate_trace",
    "goodput",
    "percentile",
    "recover",
    "recover_metrics",
    "replay",
    "run_ab",
    "run_arm",
]
