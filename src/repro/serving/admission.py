"""Admission control for the serving daemon: reject early, price every no.

Four gates run at submit time, cheapest first, so a request that is going
to be refused is refused before it consumes queue space, backend work, or
deadline budget — the inverse of the overload anti-pattern the paper
documents (accept everything, time out everything):

1. **depth** — a hard cap on queued requests;
2. **class quota** — per-class :class:`~repro.resilience.policies.Bulkhead`
   slots, so heavyweight batch work (lint/minimize) cannot starve
   interactive traffic and vice versa;
3. **cost capacity** — a cap on *queued simulated work*, the true measure
   of backlog (ten minimize requests are not ten queries);
4. **deadline feasibility** — if the backlog drain time already exceeds
   the request's whole budget, completing it would only produce a late,
   useless answer; reject now while the client can still retry elsewhere.

Every rejection carries a Retry-After hint computed from the backlog
(seconds until the queue has drained enough to admit an equivalent
request) and is priced into the :class:`ResilienceLedger` as a SHED with
that hint as its cost, so an A/B report can account for deliberately
dropped work instead of letting it vanish.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import BulkheadFullError, ServingError
from repro.resilience.ledger import ResilienceEvent, ResilienceLedger
from repro.resilience.policies import Bulkhead
from repro.serving.request import Request, RequestClass
from repro.taxonomy import Symptom, Trigger


@dataclass(frozen=True)
class AdmissionVerdict:
    """Outcome of one admission decision."""

    admitted: bool
    reason: str = ""
    retry_after: float = 0.0


class AdmissionController:
    """Bounded, class-quota'd, cost- and deadline-aware admission.

    The daemon reports queue state (``queued_cost``, ``backlog``) on every
    call; the controller owns only the policy and the per-class bulkheads.
    """

    def __init__(
        self,
        *,
        max_depth: int = 64,
        cost_capacity: float = 30.0,
        interactive_capacity: float | None = None,
        batch_capacity: float | None = None,
        interactive_slots: int = 48,
        batch_slots: int = 16,
        ledger: ResilienceLedger | None = None,
        name: str = "admission",
    ) -> None:
        if max_depth < 1:
            raise ServingError("max_depth must be >= 1")
        if cost_capacity <= 0:
            raise ServingError("cost_capacity must be > 0")
        self.max_depth = max_depth
        self.cost_capacity = cost_capacity
        # Per-class queued-cost budgets: a deep batch backlog must not eat
        # the capacity that admits cheap interactive work (and vice versa).
        self.capacities: dict[RequestClass, float] = {
            RequestClass.INTERACTIVE: (
                interactive_capacity
                if interactive_capacity is not None else cost_capacity
            ),
            RequestClass.BATCH: (
                batch_capacity if batch_capacity is not None else cost_capacity
            ),
        }
        if any(cap <= 0 for cap in self.capacities.values()):
            raise ServingError("per-class capacities must be > 0")
        self.ledger = ledger
        self.name = name
        self.quotas: dict[RequestClass, Bulkhead] = {
            RequestClass.INTERACTIVE: Bulkhead(
                interactive_slots, name=f"{name}:interactive"
            ),
            RequestClass.BATCH: Bulkhead(batch_slots, name=f"{name}:batch"),
        }
        self.shed_by_reason: dict[str, int] = {}

    # -- policy ---------------------------------------------------------------
    def admit(
        self,
        request: Request,
        *,
        now: float,
        depth: int,
        queued_cost: float,
        backlog: float,
    ) -> AdmissionVerdict:
        """Decide one request; on admit, a class slot is held until
        :meth:`release` is called for it.

        ``backlog`` is the drain-ahead residue (seconds of work that will
        run before this request's class queue position); ``queued_cost``
        the simulated cost already queued *in this request's class*.
        """
        estimate = request.cost().solo_cost
        drain_time = backlog + queued_cost
        if depth >= self.max_depth:
            return self._shed(request, now, "queue-full", drain_time)
        try:
            self.quotas[request.klass].acquire()
        except BulkheadFullError:
            return self._shed(request, now, "class-quota", drain_time)
        if queued_cost + estimate > self.capacities[request.klass]:
            self.quotas[request.klass].release()
            return self._shed(request, now, "cost-capacity", drain_time)
        remaining = request.deadline - now
        if drain_time + estimate > remaining:
            self.quotas[request.klass].release()
            return self._shed(request, now, "hopeless-deadline", drain_time)
        return AdmissionVerdict(admitted=True)

    def release(self, request: Request) -> None:
        """Free the class slot held since :meth:`admit` said yes."""
        self.quotas[request.klass].release()

    # -- pricing --------------------------------------------------------------
    def _shed(
        self, request: Request, now: float, reason: str, drain_time: float
    ) -> AdmissionVerdict:
        # Retry-After: once the current backlog has drained, an equivalent
        # request would clear every gate — never hint zero, a client that
        # retries instantly just gets shed again.
        retry_after = max(0.25, round(drain_time, 3))
        self.shed_by_reason[reason] = self.shed_by_reason.get(reason, 0) + 1
        if self.ledger is not None:
            self.ledger.record(
                ResilienceEvent.SHED,
                self.name,
                time=now,
                detail=(
                    f"request {request.req_id} ({request.kind.value}) "
                    f"shed: {reason}; retry after {retry_after:.2f}s"
                ),
                trigger=Trigger.NETWORK_EVENTS,
                symptom=Symptom.PERFORMANCE,
                delay=retry_after,
            )
        return AdmissionVerdict(
            admitted=False, reason=reason, retry_after=retry_after
        )

    @property
    def total_shed(self) -> int:
        return sum(self.shed_by_reason.values())
