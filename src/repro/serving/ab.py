"""A/B overload harness: hardened daemon vs. bare daemon, same trace.

Both arms run the *identical* daemon code path over the identical seeded
trace on fresh schedulers; the only difference is ``ServingConfig.hardened``
(bare = unbounded queue, no deadline cancellation, no degradation, no
breaker, no delivery timeout).  The report computes the metrics the bench
gates on:

* **goodput** — deadline-met answered responses per second, weighted so a
  degraded answer counts half (degrading everything cannot game the gate);
* **p99 latency** over answered responses;
* **accounting** — every shed/expired request must carry a priced ledger
  entry (nothing vanishes silently);
* **fingerprint** — sha256 over the canonical response stream, equal
  across same-seed runs (the determinism gate).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any

from repro.observability.instrument import ledger_to_metrics
from repro.resilience.ledger import ResilienceEvent, ResilienceLedger
from repro.sdnsim.clock import EventScheduler
from repro.serving.daemon import ServingConfig, ServingDaemon
from repro.serving.request import Response, ResponseStatus
from repro.serving.traffic import TrafficConfig, generate_trace, replay

#: Goodput weight per answered status: full answers count 1, degraded ½.
GOODPUT_WEIGHTS = {
    ResponseStatus.OK: 1.0,
    ResponseStatus.STALE: 0.5,
    ResponseStatus.DEGRADED: 0.5,
}


def percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation)."""
    if not values:
        return 0.0
    if not 0.0 < q <= 100.0:
        raise ValueError(f"percentile q out of range: {q}")
    ordered = sorted(values)
    rank = max(1, -(-len(ordered) * int(q * 100) // 10000))
    return ordered[min(rank, len(ordered)) - 1]


def goodput(responses: list[Response], duration: float) -> float:
    """Weighted deadline-met answers per simulated second."""
    if duration <= 0:
        return 0.0
    score = sum(
        GOODPUT_WEIGHTS[r.status]
        for r in responses
        if r.status in GOODPUT_WEIGHTS and r.deadline_met
    )
    return score / duration


def fingerprint(responses: list[Response]) -> str:
    """sha256 over the canonical response stream, id-ordered."""
    canon = [r.to_dict() for r in sorted(responses, key=lambda r: r.req_id)]
    blob = json.dumps(canon, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass
class ArmReport:
    """Metrics for one arm of the A/B run."""

    name: str
    goodput: float
    p50: float
    p99: float
    answered: int
    deadline_met: int
    status_counts: dict[str, int]
    stats: dict[str, int]
    ledger_events: dict[str, int]
    unaccounted_drops: int
    fingerprint: str
    #: Full observability export (daemon metrics + ledger bridge) in the
    #: registry JSONL format.  Deliberately absent from :meth:`to_dict`
    #: so summary JSON stays small; benches write it as an artifact.
    metrics_jsonl: str = field(default="", repr=False)

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "goodput": round(self.goodput, 6),
            "p50": round(self.p50, 6),
            "p99": round(self.p99, 6),
            "answered": self.answered,
            "deadline_met": self.deadline_met,
            "status_counts": self.status_counts,
            "stats": self.stats,
            "ledger_events": self.ledger_events,
            "unaccounted_drops": self.unaccounted_drops,
            "fingerprint": self.fingerprint,
        }


@dataclass
class ABReport:
    """Both arms plus the derived comparison."""

    trace_requests: int
    duration: float
    hardened: ArmReport
    bare: ArmReport
    extras: dict[str, Any] = field(default_factory=dict)

    @property
    def goodput_ratio(self) -> float:
        if self.bare.goodput == 0:
            return float("inf") if self.hardened.goodput > 0 else 1.0
        return self.hardened.goodput / self.bare.goodput

    def to_dict(self) -> dict[str, Any]:
        ratio = self.goodput_ratio
        return {
            "trace_requests": self.trace_requests,
            "duration": self.duration,
            "goodput_ratio": None if ratio == float("inf") else round(ratio, 6),
            "hardened": self.hardened.to_dict(),
            "bare": self.bare.to_dict(),
            **self.extras,
        }


def _account_drops(
    responses: list[Response], ledger: ResilienceLedger
) -> int:
    """Dropped responses (SHED/EXPIRED) without a priced ledger entry.

    Every deliberate drop must appear in the ledger with a nonzero delay
    (its price: the Retry-After hint or the wasted queue wait).  The gate
    requires this to be zero for the hardened arm.
    """
    priced = sum(
        1
        for entry in ledger.records
        if entry.event in (ResilienceEvent.SHED, ResilienceEvent.GIVE_UP)
        and entry.component in ("admission", "deadline")
        and entry.delay > 0
    )
    dropped = sum(
        1
        for r in responses
        if r.status in (ResponseStatus.SHED, ResponseStatus.EXPIRED)
    )
    return max(0, dropped - priced)


def run_arm(
    *,
    name: str,
    hardened: bool,
    backend: Any,
    traffic: TrafficConfig,
    config: ServingConfig | None = None,
    cache: Any = None,
    settle: float = 120.0,
) -> tuple[ArmReport, ServingDaemon]:
    """Run one arm: fresh scheduler + daemon, same-seed regenerated trace.

    ``settle`` is extra simulated time past the last arrival so queued
    work drains (the bare arm needs a lot of it — that is the finding).
    """
    trace = generate_trace(traffic)
    scheduler = EventScheduler()
    ledger = ResilienceLedger()
    if config is None:
        config = ServingConfig(hardened=hardened)
    elif config.hardened is not hardened:
        raise ValueError("config.hardened must match the arm")
    daemon = ServingDaemon(
        scheduler, backend, config=config, cache=cache, ledger=ledger
    )
    replay(trace, daemon)
    daemon.run(until=traffic.duration + settle)
    responses = daemon.responses
    latencies = [r.latency for r in responses if r.answered]
    status_counts: dict[str, int] = {}
    for r in responses:
        status_counts[r.status.value] = status_counts.get(r.status.value, 0) + 1
    event_counts: dict[str, int] = {}
    for entry in ledger.records:
        event_counts[entry.event.value] = event_counts.get(entry.event.value, 0) + 1
    report = ArmReport(
        name=name,
        goodput=goodput(responses, traffic.duration),
        p50=percentile(latencies, 50.0),
        p99=percentile(latencies, 99.0),
        answered=sum(1 for r in responses if r.answered),
        deadline_met=sum(1 for r in responses if r.deadline_met),
        status_counts=dict(sorted(status_counts.items())),
        stats=daemon.stats.to_dict(),
        ledger_events=dict(sorted(event_counts.items())),
        unaccounted_drops=_account_drops(responses, ledger),
        fingerprint=fingerprint(responses),
    )
    # Fold the ledger's priced actions into the daemon's live registry so
    # one JSONL artifact carries the whole arm (pure post-run projection).
    ledger_to_metrics(ledger, daemon.metrics)
    report.metrics_jsonl = daemon.metrics.export_jsonl()
    return report, daemon


def run_ab(
    backend_factory: Any,
    *,
    traffic: TrafficConfig | None = None,
    hardened_config: ServingConfig | None = None,
    bare_config: ServingConfig | None = None,
    settle: float = 120.0,
) -> ABReport:
    """Run both arms and assemble the comparison report.

    ``backend_factory`` is called once per arm so arms never share
    backend state (breaker history, caches, executed-batch logs).
    """
    traffic = traffic or TrafficConfig()
    trace = generate_trace(traffic)
    hardened_report, _ = run_arm(
        name="hardened",
        hardened=True,
        backend=backend_factory(),
        traffic=traffic,
        config=hardened_config,
        settle=settle,
    )
    bare_report, _ = run_arm(
        name="bare",
        hardened=False,
        backend=backend_factory(),
        traffic=traffic,
        config=bare_config or ServingConfig(hardened=False),
        settle=settle,
    )
    return ABReport(
        trace_requests=len(trace.requests),
        duration=traffic.duration,
        hardened=hardened_report,
        bare=bare_report,
    )
