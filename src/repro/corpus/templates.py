"""Bug-description text templates with category-specific vocabulary.

Each taxonomy category owns a distinct phrase pool.  This is deliberate and
faithful to the paper: SS VII-B observes that "specific classes of bugs have
unique topics or keywords in the bug description" (memory bugs mention null
pointers, concurrency fixes mention synchronization, third-party bugs name
libraries).  The pools below realize that structure, which is what lets the
from-scratch NLP pipeline reach paper-like accuracy — and, per the paper,
*fix* strategies are given almost no vocabulary of their own, reproducing the
finding that fixes cannot be predicted from descriptions.
"""

from __future__ import annotations

import random

from repro.taxonomy import (
    BugType,
    ByzantineMode,
    ConfigSubcategory,
    ExternalCallKind,
    RootCause,
    Symptom,
    Trigger,
)
from repro.taxonomy.label import BugLabel

# -- controller-specific component vocabulary --------------------------------
CONTROLLER_COMPONENTS: dict[str, list[str]] = {
    "FAUCET": [
        "valve pipeline", "gauge poller", "acl manager", "vlan table",
        "dp config parser", "stack topology module", "port manager",
        "mirroring interface", "bgp speaker integration", "prometheus exporter",
    ],
    "ONOS": [
        "intent subsystem", "cluster store", "flowrule manager",
        "mastership service", "raft partition store", "gui topology view",
        "packet service", "device subsystem", "link discovery provider",
        "segment routing app", "netcfg subsystem", "leadership elector",
    ],
    "CORD": [
        "xos orchestrator", "voltha adapter", "olt device handler",
        "onu activation workflow", "fabric crossconnect", "vtn service",
        "rcord subscriber pipeline", "multicast handler", "host handler",
        "dhcp l2 relay", "igmp proxy", "aaa authentication app",
    ],
}

_EXTERNAL_LIBRARIES: dict[str, list[str]] = {
    "FAUCET": ["ryu", "chewie", "influxdb client", "eventlet", "pyyaml", "beka",
               "prometheus_client", "msgpack"],
    "ONOS": ["karaf", "netty", "atomix", "ovsdb library", "grpc runtime",
             "snmp4j", "jackson"],
    "CORD": ["openstack nova client", "docker daemon api", "xos toscalib",
             "kafka client", "redis driver", "ansible runner"],
}

# -- trigger sentences --------------------------------------------------------
_TRIGGER_PHRASES: dict[Trigger, list[str]] = {
    Trigger.CONFIGURATION: [
        "After editing the {cfgword} and reloading, the {component} misbehaved.",
        "Pushing a new {cfgword} through the management interface exposed the fault.",
        "A change to the {cfgword} was applied at runtime and immediately surfaced this.",
        "Reloading the {cfgword} with an extra stanza for a new tenant caused it.",
        "The fault appears whenever the {cfgword} contains an interface range entry.",
    ],
    Trigger.EXTERNAL_CALLS: [
        "While invoking {library} the {component} received an unexpected result.",
        "The call into {library} returned a payload the {component} could not handle.",
        "After upgrading {library} to the latest release the {component} started failing.",
        "An rpc roundtrip to {library} surfaced the fault in the {component}.",
        "The {component} makes a function call into {library} and the contract changed.",
    ],
    Trigger.NETWORK_EVENTS: [
        "When a burst of packet_in openflow messages arrived, the {component} misstepped.",
        "A flood of port_status openflow events from the switch exposed the fault.",
        "On receiving a flow_removed openflow message the {component} mishandled state.",
        "A switch reconnect generated echo and features_reply messages that hit this path.",
        "Link flap events propagated to the {component} and triggered the fault.",
    ],
    Trigger.HARDWARE_REBOOTS: [
        "After the {hwdevice} rebooted unexpectedly, the {component} never recovered.",
        "A power cycle of the {hwdevice} left the {component} in a bad state.",
        "Rebooting the {hwdevice} during activation reproduces it reliably.",
        "The {hwdevice} restarted for firmware upgrade and the {component} lost its binding.",
    ],
}

_CFG_WORDS: dict[ConfigSubcategory, list[str]] = {
    ConfigSubcategory.CONTROLLER: [
        "controller yaml config", "faucet.yaml", "network-cfg.json",
        "cluster configuration file", "controller properties file",
    ],
    ConfigSubcategory.DATA_PLANE: [
        "switch datapath config", "openflow table pipeline config",
        "port vlan assignment config", "dataplane interface config",
    ],
    ConfigSubcategory.THIRD_PARTY: [
        "influxdb connection settings", "openstack service config",
        "docker compose manifest", "kafka topic configuration",
        "external database settings",
    ],
}

_HW_DEVICES = [
    "olt chassis", "onu terminal", "leaf switch", "spine switch",
    "optical line card", "whitebox tor switch",
]

# -- root-cause sentences -----------------------------------------------------
_ROOT_CAUSE_PHRASES: dict[RootCause, list[str]] = {
    RootCause.LOAD: [
        "Under heavy load with hundreds of switches the queue backlog grows without bound.",
        "At scale the request rate overwhelms the batching layer and backpressure never kicks in.",
        "High churn of events saturates the worker pool and requests pile up.",
        "Memory and cpu pressure under sustained load pushes the system past its limits.",
    ],
    RootCause.CONCURRENCY: [
        "Two interleaved threads race on the shared map without holding the lock.",
        "A race condition between the event loop and the writer thread corrupts ordering.",
        "The callback runs concurrently with teardown and observes a half initialized object.",
        "Lock contention on the global interpreter lock serializes the supposedly parallel workers.",
    ],
    RootCause.MEMORY: [
        "A null pointer exception is thrown because the reference was never initialized.",
        "The heap grows steadily and an out of memory error eventually kills the process.",
        "A leak in the cache retains every expired entry and exhausts memory.",
        "Dereferencing the stale object after eviction raises a null pointer exception.",
    ],
    RootCause.MISSING_LOGIC: [
        "There is no code path handling this edge case so the state machine falls through.",
        "The handler lacks a check for the empty list and proceeds with garbage.",
        "An unhandled edge case: the branch for mirrored ports was simply never written.",
        "Validation logic for this input shape is absent entirely.",
    ],
    RootCause.HUMAN_MISCONFIGURATION: [
        "The operator supplied a value with the wrong unit and nothing rejected it.",
        "A typo in the stanza name meant the intended section was silently ignored.",
        "The deployment used a copy pasted config with mismatched vlan ids.",
        "An administrator enabled both modes at once which the manual forbids.",
    ],
    RootCause.ECOSYSTEM_THIRD_PARTY: [
        "The third party service changed its wire format between releases.",
        "A datatype mismatch with the external database driver corrupts the write path.",
        "The upstream library deprecated the api we depend on.",
        "Version skew against the third party daemon breaks the handshake.",
    ],
    RootCause.ECOSYSTEM_APP_LIBRARY: [
        "The application library raises a new exception class the caller never expects.",
        "An argument order change in the helper library flips two parameters silently.",
        "The packaged library pins an incompatible transitive dependency.",
    ],
    RootCause.ECOSYSTEM_SYSTEM_CALL: [
        "The syscall returns eagain under cgroup limits and the wrapper treats it as fatal.",
        "A kernel timer fires late and the epoll wrapper misinterprets the timeout.",
        "File descriptor exhaustion makes the socket accept call fail in a new way.",
    ],
}

# -- symptom sentences ----------------------------------------------------------
_SYMPTOM_PHRASES: dict[Symptom, list[str]] = {
    Symptom.FAIL_STOP: [
        "The controller process crashed with a fatal traceback and had to be restarted.",
        "The whole controller exits immediately, taking the network control plane down.",
        "We observe a hard crash: the daemon aborts and systemd shows it dead.",
        "It core dumps and the cluster member is gone until manual restart.",
    ],
    Symptom.BYZANTINE: [],  # refined by mode below
    Symptom.ERROR_MESSAGE: [
        "A scary looking error message is logged repeatedly but forwarding is unaffected.",
        "The log fills with stack traces yet every feature keeps functioning normally.",
        "Only symptom is a spurious warning banner in the log output.",
        "An exception message appears once per reload with no operational impact.",
    ],
    Symptom.PERFORMANCE: [
        "Flow setup latency increased by an order of magnitude.",
        "Throughput of the api drops sharply and requests take seconds instead of millis.",
        "CPU sits at full utilization and event processing lags far behind.",
        "End to end provisioning time regressed badly after this point.",
    ],
}

_BYZANTINE_PHRASES: dict[ByzantineMode, list[str]] = {
    ByzantineMode.GRAY_FAILURE: [
        "Part of the functionality still works: unicast flows are fine but broadcast handling is broken.",
        "A partial outage: the rest api answers while topology updates silently stop.",
        "Some subsystems keep working, others are dead; health checks still pass.",
        "Gray failure: existing flows forward but no new host can be learned.",
    ],
    ByzantineMode.STALL: [
        "The controller freezes for minutes at a time and then resumes as if nothing happened.",
        "Processing stalls: the main loop stops consuming events until it is poked.",
        "Everything hangs waiting on the adapter and never times out.",
        "The api stops responding temporarily; threads are stuck in a wait.",
    ],
    ByzantineMode.INCORRECT_BEHAVIOR: [
        "Traffic is forwarded to the wrong port even though the policy says otherwise.",
        "The computed path is wrong: packets loop between two switches.",
        "It installs an incorrect flow match mask so the wrong packets are dropped.",
        "State shown in the ui disagrees with what is actually programmed on the switch.",
    ],
}

# -- determinism sentences ------------------------------------------------------
_DETERMINISM_PHRASES: dict[BugType, list[str]] = {
    BugType.DETERMINISTIC: [
        "Reproducible every single time with the steps above.",
        "Happens deterministically on every attempt in a clean environment.",
        "One hundred percent reproducible given the same input sequence.",
    ],
    BugType.NON_DETERMINISTIC: [
        "Happens intermittently; we could not reproduce it on demand.",
        "Occurs roughly once a week with no discernible pattern.",
        "Replaying the same events does not reproduce it; timing dependent.",
    ],
}

# -- external-call kind hints ---------------------------------------------------
_EXTERNAL_KIND_PHRASES: dict[ExternalCallKind, list[str]] = {
    ExternalCallKind.SYSTEM_CALLS: [
        "Strace shows the failing system call just before the fault.",
        "The kernel interface is involved: it reproduces only under that syscall path.",
    ],
    ExternalCallKind.THIRD_PARTY_CALLS: [
        "The third party service logs show the mismatched request arriving.",
        "Disabling the external service integration makes the problem vanish.",
    ],
    ExternalCallKind.APPLICATION_CALLS: [
        "The application library call site is where the stack trace originates.",
        "Pinning the application library to the previous minor release avoids it.",
    ],
}

#: Fix-hint sentences are deliberately generic and heavily overlapping across
#: strategies — the paper found "bug descriptions generally provide little
#: data about the fixes", and reproducing that requires a weak fix signal.
_FIX_HINT_PHRASES: list[str] = [
    "A patch is under review.",
    "We are discussing the right way to address this.",
    "A change has been proposed upstream.",
    "The team is looking into a resolution.",
]


def render_description(
    controller: str, label: BugLabel, rng: random.Random
) -> tuple[str, str]:
    """Render ``(title, description)`` for a bug with the given label.

    Sentence order is shuffled lightly and phrasing sampled, so no two bugs
    share identical text, while category keywords stay class-consistent.
    """
    component = rng.choice(CONTROLLER_COMPONENTS[controller])
    library = rng.choice(_EXTERNAL_LIBRARIES[controller])
    hw_device = rng.choice(_HW_DEVICES)
    cfg_sub = label.config_subcategory or ConfigSubcategory.CONTROLLER
    cfgword = rng.choice(_CFG_WORDS[cfg_sub])

    trigger_sentence = rng.choice(_TRIGGER_PHRASES[label.trigger]).format(
        component=component, library=library, hwdevice=hw_device, cfgword=cfgword
    )
    cause_sentence = rng.choice(_ROOT_CAUSE_PHRASES[label.root_cause])
    if label.symptom.value == "byzantine":
        assert label.byzantine_mode is not None
        symptom_sentence = rng.choice(_BYZANTINE_PHRASES[label.byzantine_mode])
    else:
        symptom_sentence = rng.choice(_SYMPTOM_PHRASES[label.symptom])
    determinism_sentence = rng.choice(_DETERMINISM_PHRASES[label.bug_type])

    sentences = [trigger_sentence, symptom_sentence, cause_sentence]
    rng.shuffle(sentences)
    sentences.append(determinism_sentence)
    if label.external_kind is not None:
        sentences.insert(
            rng.randrange(len(sentences)),
            rng.choice(_EXTERNAL_KIND_PHRASES[label.external_kind]),
        )
    if rng.random() < 0.4:
        sentences.append(rng.choice(_FIX_HINT_PHRASES))

    title = _render_title(component, label, rng)
    return title, " ".join(sentences)


_TITLE_VERBS: dict[Symptom, list[str]] = {
    Symptom.FAIL_STOP: ["crashes", "dies", "aborts"],
    Symptom.BYZANTINE: ["misbehaves", "partially fails", "acts up"],
    Symptom.ERROR_MESSAGE: ["logs spurious errors", "spams warnings"],
    Symptom.PERFORMANCE: ["slows down", "degrades badly"],
}

_TITLE_CONTEXT: dict[Trigger, list[str]] = {
    Trigger.CONFIGURATION: ["after config reload", "on new configuration"],
    Trigger.EXTERNAL_CALLS: ["when calling external service", "after dependency update"],
    Trigger.NETWORK_EVENTS: ["under openflow event burst", "on switch reconnect"],
    Trigger.HARDWARE_REBOOTS: ["after device reboot", "following power cycle"],
}


def _render_title(component: str, label: BugLabel, rng: random.Random) -> str:
    verb = rng.choice(_TITLE_VERBS[label.symptom])
    context = rng.choice(_TITLE_CONTEXT[label.trigger])
    return f"{component} {verb} {context}"
