"""Resolution-time model (Fig 7).

Resolution times are lognormal per trigger with controller-specific tail
multipliers, encoding the paper's observations:

  * configuration bugs have the longest tail of all trigger categories;
  * ONOS has a longer tail than CORD for configuration, external-call, and
    network-event bugs (more complex structure: LoC, classes);
  * CORD has a longer tail than ONOS for reboot-triggered bugs (specialized
    disaggregated-optical code: EPON/GPON state tracking).
"""

from __future__ import annotations

import math
import random

from repro.errors import CorpusError
from repro.taxonomy import Trigger

#: Lognormal location (mu, in log-days) per trigger.
_MU: dict[Trigger, float] = {
    Trigger.CONFIGURATION: 2.3,
    Trigger.EXTERNAL_CALLS: 2.0,
    Trigger.NETWORK_EVENTS: 1.8,
    Trigger.HARDWARE_REBOOTS: 1.6,
}

#: Lognormal scale (sigma) per trigger — configuration is the heaviest tail.
_SIGMA: dict[Trigger, float] = {
    Trigger.CONFIGURATION: 1.30,
    Trigger.EXTERNAL_CALLS: 1.10,
    Trigger.NETWORK_EVENTS: 1.00,
    Trigger.HARDWARE_REBOOTS: 0.90,
}

#: Per-controller multiplicative tail adjustment (applied to sigma).
_CONTROLLER_TAIL: dict[str, dict[Trigger, float]] = {
    "ONOS": {
        Trigger.CONFIGURATION: 1.25,
        Trigger.EXTERNAL_CALLS: 1.25,
        Trigger.NETWORK_EVENTS: 1.20,
        Trigger.HARDWARE_REBOOTS: 0.85,
    },
    "CORD": {
        Trigger.CONFIGURATION: 1.00,
        Trigger.EXTERNAL_CALLS: 1.00,
        Trigger.NETWORK_EVENTS: 1.00,
        Trigger.HARDWARE_REBOOTS: 1.45,
    },
    # FAUCET resolution times are never *observable* through the GitHub
    # substrate (SS VIII), but the model is defined so simulations that need a
    # ground-truth latency can still draw one.
    "FAUCET": {
        Trigger.CONFIGURATION: 0.90,
        Trigger.EXTERNAL_CALLS: 0.90,
        Trigger.NETWORK_EVENTS: 0.90,
        Trigger.HARDWARE_REBOOTS: 0.90,
    },
}

#: Minimum plausible resolution time (same-day fixes), in days.
_MIN_DAYS = 0.05


class ResolutionTimeModel:
    """Sample bug resolution times in days."""

    def __init__(
        self,
        mu: dict[Trigger, float] | None = None,
        sigma: dict[Trigger, float] | None = None,
        controller_tail: dict[str, dict[Trigger, float]] | None = None,
    ) -> None:
        self.mu = dict(mu or _MU)
        self.sigma = dict(sigma or _SIGMA)
        self.controller_tail = {
            name: dict(table) for name, table in (controller_tail or _CONTROLLER_TAIL).items()
        }
        for trigger in Trigger:
            if trigger not in self.mu or trigger not in self.sigma:
                raise CorpusError(f"resolution model missing trigger {trigger.value}")
            if self.sigma[trigger] <= 0:
                raise CorpusError("sigma must be positive")

    def parameters(self, controller: str, trigger: Trigger) -> tuple[float, float]:
        """The effective ``(mu, sigma)`` for a controller/trigger pair."""
        tail = self.controller_tail.get(controller, {}).get(trigger, 1.0)
        return self.mu[trigger], self.sigma[trigger] * tail

    def sample_days(
        self, controller: str, trigger: Trigger, rng: random.Random
    ) -> float:
        """One lognormal draw of resolution latency, in days."""
        mu, sigma = self.parameters(controller, trigger)
        return max(_MIN_DAYS, rng.lognormvariate(mu, sigma))

    def median_days(self, controller: str, trigger: Trigger) -> float:
        """Analytic median (= exp(mu)) of the latency distribution."""
        mu, _ = self.parameters(controller, trigger)
        return math.exp(mu)

    def quantile_days(
        self, controller: str, trigger: Trigger, q: float
    ) -> float:
        """Analytic q-quantile of the lognormal latency distribution."""
        if not 0.0 < q < 1.0:
            raise CorpusError("quantile must be in (0, 1)")
        mu, sigma = self.parameters(controller, trigger)
        # Inverse normal CDF via the Acklam rational approximation is
        # overkill here; use statistics.NormalDist for exactness.
        from statistics import NormalDist

        z = NormalDist().inv_cdf(q)
        return math.exp(mu + sigma * z)
