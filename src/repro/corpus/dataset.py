"""Labeled-bug dataset container used by analyses and the NLP pipeline."""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator

from repro.errors import CorpusError
from repro.taxonomy import BugLabel
from repro.trackers.models import BugReport


@dataclass(frozen=True)
class LabeledBug:
    """A bug report together with its ground-truth taxonomy label."""

    report: BugReport
    label: BugLabel

    @property
    def bug_id(self) -> str:
        return self.report.bug_id

    @property
    def controller(self) -> str:
        return self.report.controller


class BugDataset:
    """An ordered collection of :class:`LabeledBug` with query helpers."""

    def __init__(self, bugs: Iterable[LabeledBug]) -> None:
        self._bugs = list(bugs)
        seen: set[str] = set()
        for bug in self._bugs:
            if bug.bug_id in seen:
                raise CorpusError(f"duplicate bug id {bug.bug_id!r} in dataset")
            seen.add(bug.bug_id)

    def __len__(self) -> int:
        return len(self._bugs)

    def __iter__(self) -> Iterator[LabeledBug]:
        return iter(self._bugs)

    def __getitem__(self, index: int) -> LabeledBug:
        return self._bugs[index]

    @property
    def controllers(self) -> list[str]:
        """Distinct controller names, sorted."""
        return sorted({b.controller for b in self._bugs})

    def by_controller(self, controller: str) -> "BugDataset":
        """Subset for one controller."""
        return BugDataset(b for b in self._bugs if b.controller == controller)

    def filter(self, predicate: Callable[[LabeledBug], bool]) -> "BugDataset":
        """Subset matching an arbitrary predicate."""
        return BugDataset(b for b in self._bugs if predicate(b))

    def texts(self) -> list[str]:
        """Title+description text per bug, in dataset order."""
        return [b.report.text for b in self._bugs]

    def labels(self, dimension: str) -> list[str]:
        """Tag values for one taxonomy dimension, in dataset order.

        ``dimension`` is one of ``bug_type``, ``root_cause``, ``symptom``,
        ``fix``, ``trigger`` (or a refinement name).  Missing refinements
        raise — callers should filter first.
        """
        values = []
        for bug in self._bugs:
            tag = bug.label.to_dict().get(dimension)
            if tag is None:
                raise CorpusError(
                    f"bug {bug.bug_id} has no tag for dimension {dimension!r}; "
                    "filter the dataset before extracting refinements"
                )
            values.append(tag)
        return values

    def sample(self, n: int, *, seed: int = 0) -> "BugDataset":
        """Uniform random subset of size ``n`` (without replacement)."""
        if n > len(self._bugs):
            raise CorpusError(f"cannot sample {n} from {len(self._bugs)} bugs")
        rng = random.Random(seed)
        picked = rng.sample(self._bugs, n)
        return BugDataset(sorted(picked, key=lambda b: b.bug_id))

    def manual_sample(self, per_controller: int = 50, *, seed: int = 0) -> "BugDataset":
        """The paper's manual-analysis sample: ``per_controller`` random
        *closed* bugs from each controller (SS II-B)."""
        parts: list[LabeledBug] = []
        for controller in self.controllers:
            closed = self.by_controller(controller).filter(
                lambda b: b.report.status.is_closed
            )
            parts.extend(closed.sample(per_controller, seed=seed))
        return BugDataset(parts)

    def split_counts(self) -> dict[str, int]:
        """Bug count per controller."""
        counts: dict[str, int] = {}
        for bug in self._bugs:
            counts[bug.controller] = counts.get(bug.controller, 0) + 1
        return dict(sorted(counts.items()))

    def merged_with(self, other: "BugDataset") -> "BugDataset":
        """Union of two datasets (ids must not collide)."""
        return BugDataset(list(self._bugs) + list(other._bugs))
