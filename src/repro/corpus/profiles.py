"""Per-controller statistical profiles calibrated to the paper's numbers.

A profile is a generative model over :class:`~repro.taxonomy.BugLabel`:

    trigger ~ trigger_dist
    root_cause ~ root_cause_given_trigger[trigger]
    symptom ~ symptom_given_cause[root_cause]
    byzantine_mode ~ byzantine_mode_dist          (iff symptom is byzantine)
    fix ~ fix rules (trigger table + concurrency override)
    bug_type ~ Bernoulli(det_rate(root_cause))

The conditional tables below were tuned so that the implied *marginals*
reproduce the paper: trigger shares (SS V-A), symptom shares (SS IV),
per-controller determinism (SS III), configuration sub-categories
(Table III), FAUCET's 52.5% missing-logic share and the CORD 30% / ONOS 16%
load-bug split (SS VII-A).  ``expected_*_marginal`` methods expose the exact
implied marginals so tests can verify calibration analytically, without
sampling noise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime
from typing import Mapping

from repro.errors import CorpusError
from repro.taxonomy import (
    ByzantineMode,
    ConfigSubcategory,
    ExternalCallKind,
    FixStrategy,
    RootCause,
    Symptom,
    Trigger,
)

_TOLERANCE = 1e-6


def _check_distribution(name: str, dist: Mapping) -> None:
    total = sum(dist.values())
    if abs(total - 1.0) > 1e-6:
        raise CorpusError(f"{name} sums to {total}, expected 1.0")
    if any(p < 0 for p in dist.values()):
        raise CorpusError(f"{name} contains negative probabilities")


@dataclass(frozen=True)
class ControllerProfile:
    """Generative distribution over bug labels for one controller."""

    name: str
    critical_bug_count: int
    trigger_dist: dict[Trigger, float]
    root_cause_given_trigger: dict[Trigger, dict[RootCause, float]]
    symptom_given_cause: dict[RootCause, dict[Symptom, float]]
    byzantine_mode_dist: dict[ByzantineMode, float]
    config_subcategory_dist: dict[ConfigSubcategory, float]
    external_kind_dist: dict[ExternalCallKind, float]
    fix_given_trigger: dict[Trigger, dict[FixStrategy, float]]
    determinism_target: float
    #: Determinism rates pinned per root cause (SS VII-B: "memory bugs are
    #: highly deterministic"; concurrency bugs are the non-deterministic pool).
    pinned_determinism: dict[RootCause, float] = field(
        default_factory=lambda: {RootCause.MEMORY: 0.995, RootCause.CONCURRENCY: 0.60}
    )
    #: Release dates used to model bug bursts (SS II-B observation 2).
    release_dates: tuple[datetime, ...] = ()

    def __post_init__(self) -> None:
        _check_distribution(f"{self.name}.trigger_dist", self.trigger_dist)
        for trigger, dist in self.root_cause_given_trigger.items():
            _check_distribution(f"{self.name}.root_cause|{trigger.value}", dist)
        for cause, dist in self.symptom_given_cause.items():
            _check_distribution(f"{self.name}.symptom|{cause.value}", dist)
        _check_distribution(f"{self.name}.byzantine_mode", self.byzantine_mode_dist)
        _check_distribution(f"{self.name}.config_subcategory", self.config_subcategory_dist)
        _check_distribution(f"{self.name}.external_kind", self.external_kind_dist)
        for trigger, dist in self.fix_given_trigger.items():
            _check_distribution(f"{self.name}.fix|{trigger.value}", dist)
        if not 0.0 < self.determinism_target <= 1.0:
            raise CorpusError("determinism_target must be in (0, 1]")

    # -- implied marginals (analytic, no sampling) ---------------------------
    def expected_root_cause_marginal(self) -> dict[RootCause, float]:
        """P(root_cause) implied by trigger_dist x root_cause_given_trigger."""
        marginal: dict[RootCause, float] = {cause: 0.0 for cause in RootCause}
        for trigger, p_trigger in self.trigger_dist.items():
            for cause, p_cause in self.root_cause_given_trigger[trigger].items():
                marginal[cause] += p_trigger * p_cause
        return marginal

    def expected_symptom_marginal(self) -> dict[Symptom, float]:
        """P(symptom) implied by the full chain."""
        cause_marginal = self.expected_root_cause_marginal()
        marginal: dict[Symptom, float] = {s: 0.0 for s in Symptom}
        for cause, p_cause in cause_marginal.items():
            if p_cause == 0.0:
                continue
            for symptom, p_symptom in self.symptom_given_cause[cause].items():
                marginal[symptom] += p_cause * p_symptom
        return marginal

    def determinism_rate(self, cause: RootCause) -> float:
        """P(deterministic | root cause), solved so the weighted aggregate
        equals ``determinism_target`` with the pinned causes held fixed."""
        if cause in self.pinned_determinism:
            return self.pinned_determinism[cause]
        marginal = self.expected_root_cause_marginal()
        pinned_mass = sum(marginal[c] for c in self.pinned_determinism)
        pinned_det = sum(
            marginal[c] * rate for c, rate in self.pinned_determinism.items()
        )
        free_mass = 1.0 - pinned_mass
        if free_mass <= _TOLERANCE:
            return self.determinism_target
        rate = (self.determinism_target - pinned_det) / free_mass
        return min(1.0, max(0.0, rate))

    def expected_determinism(self) -> float:
        """Aggregate P(deterministic) implied by the solved rates."""
        marginal = self.expected_root_cause_marginal()
        return sum(p * self.determinism_rate(cause) for cause, p in marginal.items())

    def fix_distribution(self, trigger: Trigger, cause: RootCause) -> dict[FixStrategy, float]:
        """Fix distribution after applying the concurrency override.

        SS VII-B: concurrency bugs correlate strongly with the
        "add synchronization" fix; the override mixes 70% of the mass there.
        """
        base = dict(self.fix_given_trigger[trigger])
        if cause is RootCause.CONCURRENCY:
            mixed = {fix: 0.3 * p for fix, p in base.items()}
            mixed[FixStrategy.ADD_SYNCHRONIZATION] = (
                mixed.get(FixStrategy.ADD_SYNCHRONIZATION, 0.0) + 0.7
            )
            return mixed
        return base


# ---------------------------------------------------------------------------
# Shared fix tables (SS V-A):
#   * configuration-triggered bugs: only 25% fixed via configuration change;
#   * external-call bugs: 41.4% fixed by adding compatibility;
#   * network-event bugs: "often addressed by adding additional logic";
#   * reboot bugs: timeouts and state-tracking logic (VOL-549).
# ---------------------------------------------------------------------------
_FIX_TABLES: dict[Trigger, dict[FixStrategy, float]] = {
    Trigger.CONFIGURATION: {
        FixStrategy.FIX_CONFIGURATION: 0.25,
        FixStrategy.ADD_LOGIC: 0.36,
        FixStrategy.WORKAROUND: 0.14,
        FixStrategy.ADD_COMPATIBILITY: 0.13,
        FixStrategy.UPGRADE_PACKAGES: 0.06,
        FixStrategy.ROLLBACK_UPGRADES: 0.06,
    },
    Trigger.EXTERNAL_CALLS: {
        FixStrategy.ADD_COMPATIBILITY: 0.414,
        FixStrategy.UPGRADE_PACKAGES: 0.16,
        FixStrategy.ADD_LOGIC: 0.19,
        FixStrategy.WORKAROUND: 0.10,
        FixStrategy.ROLLBACK_UPGRADES: 0.056,
        FixStrategy.FIX_CONFIGURATION: 0.08,
    },
    Trigger.NETWORK_EVENTS: {
        FixStrategy.ADD_LOGIC: 0.68,
        FixStrategy.WORKAROUND: 0.14,
        FixStrategy.ADD_SYNCHRONIZATION: 0.10,
        FixStrategy.ROLLBACK_UPGRADES: 0.04,
        FixStrategy.ADD_COMPATIBILITY: 0.04,
    },
    Trigger.HARDWARE_REBOOTS: {
        FixStrategy.ADD_LOGIC: 0.55,
        FixStrategy.WORKAROUND: 0.23,
        FixStrategy.FIX_CONFIGURATION: 0.10,
        FixStrategy.ADD_SYNCHRONIZATION: 0.12,
    },
}

#: SS IV: byzantine refinement shares (they sum to 1 in the paper).
_BYZANTINE_MODES = {
    ByzantineMode.GRAY_FAILURE: 0.5217,
    ByzantineMode.STALL: 0.2065,
    ByzantineMode.INCORRECT_BEHAVIOR: 0.2718,
}

_EXTERNAL_KINDS = {
    ExternalCallKind.THIRD_PARTY_CALLS: 0.55,
    ExternalCallKind.APPLICATION_CALLS: 0.27,
    ExternalCallKind.SYSTEM_CALLS: 0.18,
}


def _faucet_profile() -> ControllerProfile:
    """FAUCET: monolithic Python controller on GitHub.

    Fig 2: fail-stop caused by human mistakes / ecosystem interactions (not
    controller logic); performance bugs come from ecosystem interactions.
    SS VII-A: 52.5% of all bugs are missing logic.
    """
    return ControllerProfile(
        name="FAUCET",
        critical_bug_count=251,
        determinism_target=0.96,
        trigger_dist={
            Trigger.CONFIGURATION: 0.40,
            Trigger.EXTERNAL_CALLS: 0.34,
            Trigger.NETWORK_EVENTS: 0.20,
            Trigger.HARDWARE_REBOOTS: 0.06,
        },
        root_cause_given_trigger={
            Trigger.CONFIGURATION: {
                RootCause.MISSING_LOGIC: 0.56,
                RootCause.HUMAN_MISCONFIGURATION: 0.25,
                RootCause.ECOSYSTEM_THIRD_PARTY: 0.14,
                RootCause.MEMORY: 0.05,
            },
            Trigger.EXTERNAL_CALLS: {
                RootCause.ECOSYSTEM_THIRD_PARTY: 0.38,
                RootCause.ECOSYSTEM_APP_LIBRARY: 0.18,
                RootCause.ECOSYSTEM_SYSTEM_CALL: 0.10,
                RootCause.MISSING_LOGIC: 0.26,
                RootCause.MEMORY: 0.05,
                RootCause.CONCURRENCY: 0.03,
            },
            Trigger.NETWORK_EVENTS: {
                RootCause.MISSING_LOGIC: 0.85,
                RootCause.CONCURRENCY: 0.08,
                RootCause.MEMORY: 0.07,
            },
            Trigger.HARDWARE_REBOOTS: {
                RootCause.MISSING_LOGIC: 0.66,
                RootCause.ECOSYSTEM_THIRD_PARTY: 0.16,
                RootCause.LOAD: 0.08,
                RootCause.CONCURRENCY: 0.10,
            },
        },
        symptom_given_cause={
            RootCause.LOAD: {
                Symptom.FAIL_STOP: 0.10,
                Symptom.BYZANTINE: 0.80,
                Symptom.ERROR_MESSAGE: 0.10,
            },
            RootCause.CONCURRENCY: {
                Symptom.BYZANTINE: 0.75,
                Symptom.FAIL_STOP: 0.05,
                Symptom.ERROR_MESSAGE: 0.10,
                Symptom.PERFORMANCE: 0.10,
            },
            RootCause.MEMORY: {
                Symptom.FAIL_STOP: 0.30,
                Symptom.BYZANTINE: 0.50,
                Symptom.ERROR_MESSAGE: 0.20,
            },
            RootCause.MISSING_LOGIC: {
                Symptom.FAIL_STOP: 0.08,
                Symptom.BYZANTINE: 0.72,
                Symptom.ERROR_MESSAGE: 0.19,
                Symptom.PERFORMANCE: 0.01,
            },
            RootCause.HUMAN_MISCONFIGURATION: {
                Symptom.FAIL_STOP: 0.45,
                Symptom.BYZANTINE: 0.40,
                Symptom.ERROR_MESSAGE: 0.15,
            },
            RootCause.ECOSYSTEM_THIRD_PARTY: {
                Symptom.FAIL_STOP: 0.38,
                Symptom.BYZANTINE: 0.35,
                Symptom.ERROR_MESSAGE: 0.17,
                Symptom.PERFORMANCE: 0.10,
            },
            RootCause.ECOSYSTEM_APP_LIBRARY: {
                Symptom.FAIL_STOP: 0.40,
                Symptom.BYZANTINE: 0.33,
                Symptom.ERROR_MESSAGE: 0.17,
                Symptom.PERFORMANCE: 0.10,
            },
            RootCause.ECOSYSTEM_SYSTEM_CALL: {
                Symptom.FAIL_STOP: 0.40,
                Symptom.BYZANTINE: 0.35,
                Symptom.ERROR_MESSAGE: 0.15,
                Symptom.PERFORMANCE: 0.10,
            },
        },
        byzantine_mode_dist=dict(_BYZANTINE_MODES),
        config_subcategory_dist={
            ConfigSubcategory.CONTROLLER: 0.529,
            ConfigSubcategory.DATA_PLANE: 0.117,
            ConfigSubcategory.THIRD_PARTY: 0.354,
        },
        external_kind_dist=dict(_EXTERNAL_KINDS),
        fix_given_trigger={t: dict(d) for t, d in _FIX_TABLES.items()},
        release_dates=(
            datetime(2016, 3, 15), datetime(2017, 2, 1), datetime(2017, 10, 10),
            datetime(2018, 6, 20), datetime(2019, 4, 2), datetime(2019, 12, 11),
        ),
    )


def _onos_profile() -> ControllerProfile:
    """ONOS: modular, distributed Java controller on JIRA.

    Fig 2: fail-stop mostly from controller logic (load, memory, missing
    logic); performance bugs from concurrency.  SS VII-A: 16% load bugs.
    """
    return ControllerProfile(
        name="ONOS",
        critical_bug_count=186,
        determinism_target=0.94,
        trigger_dist={
            Trigger.CONFIGURATION: 0.37,
            Trigger.EXTERNAL_CALLS: 0.33,
            Trigger.NETWORK_EVENTS: 0.21,
            Trigger.HARDWARE_REBOOTS: 0.09,
        },
        root_cause_given_trigger={
            Trigger.CONFIGURATION: {
                RootCause.HUMAN_MISCONFIGURATION: 0.33,
                RootCause.MISSING_LOGIC: 0.27,
                RootCause.ECOSYSTEM_THIRD_PARTY: 0.18,
                RootCause.LOAD: 0.11,
                RootCause.MEMORY: 0.11,
            },
            Trigger.EXTERNAL_CALLS: {
                RootCause.ECOSYSTEM_THIRD_PARTY: 0.40,
                RootCause.ECOSYSTEM_APP_LIBRARY: 0.15,
                RootCause.ECOSYSTEM_SYSTEM_CALL: 0.08,
                RootCause.MISSING_LOGIC: 0.12,
                RootCause.LOAD: 0.11,
                RootCause.MEMORY: 0.08,
                RootCause.CONCURRENCY: 0.06,
            },
            Trigger.NETWORK_EVENTS: {
                RootCause.MISSING_LOGIC: 0.33,
                RootCause.CONCURRENCY: 0.24,
                RootCause.LOAD: 0.25,
                RootCause.MEMORY: 0.18,
            },
            Trigger.HARDWARE_REBOOTS: {
                RootCause.MISSING_LOGIC: 0.38,
                RootCause.LOAD: 0.33,
                RootCause.CONCURRENCY: 0.17,
                RootCause.MEMORY: 0.12,
            },
        },
        symptom_given_cause={
            RootCause.LOAD: {
                Symptom.FAIL_STOP: 0.38,
                Symptom.BYZANTINE: 0.52,
                Symptom.ERROR_MESSAGE: 0.07,
                Symptom.PERFORMANCE: 0.03,
            },
            RootCause.CONCURRENCY: {
                Symptom.FAIL_STOP: 0.12,
                Symptom.BYZANTINE: 0.60,
                Symptom.ERROR_MESSAGE: 0.10,
                Symptom.PERFORMANCE: 0.18,
            },
            RootCause.MEMORY: {
                Symptom.FAIL_STOP: 0.40,
                Symptom.BYZANTINE: 0.44,
                Symptom.ERROR_MESSAGE: 0.13,
                Symptom.PERFORMANCE: 0.03,
            },
            RootCause.MISSING_LOGIC: {
                Symptom.FAIL_STOP: 0.22,
                Symptom.BYZANTINE: 0.63,
                Symptom.ERROR_MESSAGE: 0.14,
                Symptom.PERFORMANCE: 0.01,
            },
            RootCause.HUMAN_MISCONFIGURATION: {
                Symptom.FAIL_STOP: 0.08,
                Symptom.BYZANTINE: 0.62,
                Symptom.ERROR_MESSAGE: 0.30,
            },
            RootCause.ECOSYSTEM_THIRD_PARTY: {
                Symptom.FAIL_STOP: 0.08,
                Symptom.BYZANTINE: 0.62,
                Symptom.ERROR_MESSAGE: 0.28,
                Symptom.PERFORMANCE: 0.02,
            },
            RootCause.ECOSYSTEM_APP_LIBRARY: {
                Symptom.FAIL_STOP: 0.10,
                Symptom.BYZANTINE: 0.62,
                Symptom.ERROR_MESSAGE: 0.26,
                Symptom.PERFORMANCE: 0.02,
            },
            RootCause.ECOSYSTEM_SYSTEM_CALL: {
                Symptom.FAIL_STOP: 0.12,
                Symptom.BYZANTINE: 0.60,
                Symptom.ERROR_MESSAGE: 0.26,
                Symptom.PERFORMANCE: 0.02,
            },
        },
        byzantine_mode_dist=dict(_BYZANTINE_MODES),
        config_subcategory_dist={
            ConfigSubcategory.CONTROLLER: 0.60,
            ConfigSubcategory.DATA_PLANE: 0.15,
            ConfigSubcategory.THIRD_PARTY: 0.25,
        },
        external_kind_dist=dict(_EXTERNAL_KINDS),
        fix_given_trigger={t: dict(d) for t, d in _FIX_TABLES.items()},
        release_dates=(
            datetime(2017, 6, 8), datetime(2017, 12, 14), datetime(2018, 5, 17),
            datetime(2018, 10, 30), datetime(2019, 4, 16), datetime(2019, 9, 5),
            datetime(2019, 12, 20),
        ),
    )


def _cord_profile() -> ControllerProfile:
    """CORD: ONOS-derived Telco stack (XOS/VOLTHA/OpenStack) on JIRA.

    Fig 2: more "missing code logic" than ONOS (codebase immaturity);
    performance bugs from memory errors; SS VII-A: 30% load bugs; SS IV:
    best exception handling => fewest error-message bugs.
    """
    return ControllerProfile(
        name="CORD",
        critical_bug_count=358,
        determinism_target=0.94,
        trigger_dist={
            Trigger.CONFIGURATION: 0.39,
            Trigger.EXTERNAL_CALLS: 0.32,
            Trigger.NETWORK_EVENTS: 0.19,
            Trigger.HARDWARE_REBOOTS: 0.10,
        },
        root_cause_given_trigger={
            Trigger.CONFIGURATION: {
                RootCause.HUMAN_MISCONFIGURATION: 0.27,
                RootCause.MISSING_LOGIC: 0.33,
                RootCause.ECOSYSTEM_THIRD_PARTY: 0.14,
                RootCause.LOAD: 0.16,
                RootCause.MEMORY: 0.10,
            },
            Trigger.EXTERNAL_CALLS: {
                RootCause.ECOSYSTEM_THIRD_PARTY: 0.33,
                RootCause.ECOSYSTEM_APP_LIBRARY: 0.10,
                RootCause.ECOSYSTEM_SYSTEM_CALL: 0.05,
                RootCause.MISSING_LOGIC: 0.14,
                RootCause.LOAD: 0.30,
                RootCause.MEMORY: 0.08,
            },
            Trigger.NETWORK_EVENTS: {
                RootCause.MISSING_LOGIC: 0.30,
                RootCause.LOAD: 0.45,
                RootCause.CONCURRENCY: 0.10,
                RootCause.MEMORY: 0.15,
            },
            Trigger.HARDWARE_REBOOTS: {
                RootCause.MISSING_LOGIC: 0.30,
                RootCause.LOAD: 0.50,
                RootCause.CONCURRENCY: 0.10,
                RootCause.MEMORY: 0.10,
            },
        },
        symptom_given_cause={
            RootCause.LOAD: {
                Symptom.FAIL_STOP: 0.26,
                Symptom.BYZANTINE: 0.65,
                Symptom.ERROR_MESSAGE: 0.05,
                Symptom.PERFORMANCE: 0.04,
            },
            RootCause.CONCURRENCY: {
                Symptom.FAIL_STOP: 0.10,
                Symptom.BYZANTINE: 0.70,
                Symptom.ERROR_MESSAGE: 0.08,
                Symptom.PERFORMANCE: 0.12,
            },
            RootCause.MEMORY: {
                Symptom.FAIL_STOP: 0.36,
                Symptom.BYZANTINE: 0.44,
                Symptom.ERROR_MESSAGE: 0.08,
                Symptom.PERFORMANCE: 0.12,
            },
            RootCause.MISSING_LOGIC: {
                Symptom.FAIL_STOP: 0.21,
                Symptom.BYZANTINE: 0.68,
                Symptom.ERROR_MESSAGE: 0.10,
                Symptom.PERFORMANCE: 0.01,
            },
            RootCause.HUMAN_MISCONFIGURATION: {
                Symptom.FAIL_STOP: 0.15,
                Symptom.BYZANTINE: 0.70,
                Symptom.ERROR_MESSAGE: 0.15,
            },
            RootCause.ECOSYSTEM_THIRD_PARTY: {
                Symptom.FAIL_STOP: 0.12,
                Symptom.BYZANTINE: 0.70,
                Symptom.ERROR_MESSAGE: 0.16,
                Symptom.PERFORMANCE: 0.02,
            },
            RootCause.ECOSYSTEM_APP_LIBRARY: {
                Symptom.FAIL_STOP: 0.12,
                Symptom.BYZANTINE: 0.70,
                Symptom.ERROR_MESSAGE: 0.16,
                Symptom.PERFORMANCE: 0.02,
            },
            RootCause.ECOSYSTEM_SYSTEM_CALL: {
                Symptom.FAIL_STOP: 0.14,
                Symptom.BYZANTINE: 0.70,
                Symptom.ERROR_MESSAGE: 0.14,
                Symptom.PERFORMANCE: 0.02,
            },
        },
        byzantine_mode_dist=dict(_BYZANTINE_MODES),
        config_subcategory_dist={
            ConfigSubcategory.CONTROLLER: 0.642,
            ConfigSubcategory.DATA_PLANE: 0.142,
            ConfigSubcategory.THIRD_PARTY: 0.216,
        },
        external_kind_dist=dict(_EXTERNAL_KINDS),
        fix_given_trigger={t: dict(d) for t, d in _FIX_TABLES.items()},
        release_dates=(
            datetime(2016, 7, 29), datetime(2017, 1, 25), datetime(2017, 8, 15),
            datetime(2018, 3, 16), datetime(2018, 12, 10), datetime(2019, 8, 1),
        ),
    )


def default_profiles() -> dict[str, ControllerProfile]:
    """The three study controllers, keyed by name."""
    return {
        "FAUCET": _faucet_profile(),
        "ONOS": _onos_profile(),
        "CORD": _cord_profile(),
    }
