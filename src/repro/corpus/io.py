"""JSONL serialization for labeled bug datasets (whole-file and sharded).

All writers publish *atomically*: content lands in a temporary sibling
file, is fsync'd, and replaces the destination with ``os.replace``.  An
interrupted save therefore leaves either the previous file intact or the
new one complete — never a half-written dataset that a later load would
have to guess about.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import TYPE_CHECKING, Callable

from repro.corpus.dataset import BugDataset, LabeledBug
from repro.errors import CorpusError
from repro.taxonomy import BugLabel
from repro.trackers.models import BugReport

if TYPE_CHECKING:  # pragma: no cover
    from repro.parallel import WorkPool

#: Shard payload filename pattern and its manifest.
_SHARD_NAME = "shard-{index:04d}.jsonl"
_MANIFEST_NAME = "manifest.json"


def _atomic_write_text(path: Path, write: "Callable[..., None]") -> None:
    """Write through a tmp sibling + fsync + ``os.replace``.

    ``write(handle)`` produces the content.  If it raises, the destination
    is untouched and the tmp file is removed — a crashed or failing writer
    can never tear an existing dataset.
    """
    tmp = path.with_name(path.name + ".tmp")
    try:
        with tmp.open("w", encoding="utf-8") as handle:
            write(handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)


def save_dataset_jsonl(dataset: BugDataset, path: str | Path) -> None:
    """Write one ``{"report": ..., "label": ...}`` JSON object per line.

    The write is atomic: readers see the old file or the new file, never a
    prefix of the new one.
    """
    path = Path(path)

    def _write(handle) -> None:
        for bug in dataset:
            record = {"report": bug.report.to_dict(), "label": bug.label.to_dict()}
            handle.write(json.dumps(record, sort_keys=True) + "\n")

    _atomic_write_text(path, _write)


def load_dataset_jsonl(path: str | Path) -> BugDataset:
    """Read a dataset written by :func:`save_dataset_jsonl`.

    Files are decoded as ``utf-8-sig`` so a BOM prefix (editors and
    PowerShell redirects add one) cannot corrupt the first record; any
    malformed line — including a truncated final line from an interrupted
    writer — raises :class:`CorpusError` with the offending line number.
    """
    path = Path(path)
    if not path.exists():
        raise CorpusError(f"{path}: dataset file does not exist")
    bugs: list[LabeledBug] = []
    with path.open(encoding="utf-8-sig") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                bugs.append(
                    LabeledBug(
                        report=BugReport.from_dict(record["report"]),
                        label=BugLabel.from_dict(record["label"]),
                    )
                )
            except (KeyError, ValueError, TypeError, AttributeError) as exc:
                # TypeError/AttributeError cover structurally wrong records
                # (e.g. ``{"report": null}``) whose failure otherwise
                # surfaces deep inside from_dict without the line number.
                raise CorpusError(
                    f"{path}:{line_number}: malformed dataset record: {exc}"
                ) from exc
    return BugDataset(bugs)


def save_dataset_shards(
    dataset: BugDataset, directory: str | Path, *, n_shards: int
) -> list[Path]:
    """Split ``dataset`` into ``n_shards`` contiguous JSONL shards.

    Contiguous slicing (not round-robin) means concatenating the shards in
    index order reproduces the original dataset order exactly.  A
    ``manifest.json`` records the shard layout so loads can verify
    completeness.  Shards may be empty (e.g. more shards than records) —
    an empty shard is an empty file, not a missing one.
    """
    if n_shards < 1:
        raise CorpusError("n_shards must be >= 1")
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    bugs = list(dataset)
    base, remainder = divmod(len(bugs), n_shards)
    paths: list[Path] = []
    counts: list[int] = []
    digests: list[str] = []
    start = 0
    for index in range(n_shards):
        size = base + (1 if index < remainder else 0)
        shard = BugDataset(bugs[start:start + size])
        start += size
        path = directory / _SHARD_NAME.format(index=index)
        save_dataset_jsonl(shard, path)
        paths.append(path)
        counts.append(size)
        digests.append(hashlib.sha256(path.read_bytes()).hexdigest())
    manifest = {
        "n_shards": n_shards,
        "counts": counts,
        "total": len(bugs),
        "shards": [p.name for p in paths],
        # Per-shard content digests: loads verify bytes, not just record
        # counts, so a bit-flipped or hand-edited shard is refused by name
        # instead of silently feeding a corrupted dataset downstream.
        "digests": digests,
    }
    # The manifest is published last and atomically: a crash mid-layout
    # leaves either the previous manifest (still describing a complete old
    # layout) or no manifest — load_dataset_shards never sees a manifest
    # pointing at shards that were not fully written before it.
    _atomic_write_text(
        directory / _MANIFEST_NAME,
        lambda handle: handle.write(json.dumps(manifest, indent=2, sort_keys=True)),
    )
    return paths


def load_dataset_shards(
    directory: str | Path, *, pool: "WorkPool | None" = None
) -> BugDataset:
    """Reassemble a dataset written by :func:`save_dataset_shards`.

    Shards load independently (optionally through a
    :class:`~repro.parallel.WorkPool`) and are concatenated in manifest
    order, so the result is identical for any worker count.
    """
    directory = Path(directory)
    manifest_path = directory / _MANIFEST_NAME
    if not manifest_path.exists():
        raise CorpusError(f"{directory}: missing shard manifest {_MANIFEST_NAME}")
    try:
        manifest = json.loads(manifest_path.read_text(encoding="utf-8-sig"))
        shard_names = list(manifest["shards"])
        counts = list(manifest["counts"])
        total = int(manifest["total"])
        # Older manifests carry no digests; loads of those skip byte
        # verification (count checks still apply) instead of refusing.
        digests = [str(d) for d in manifest.get("digests", [])]
    except (KeyError, ValueError, TypeError) as exc:
        raise CorpusError(f"{manifest_path}: malformed manifest: {exc}") from exc
    paths = []
    for index, name in enumerate(shard_names):
        path = directory / name
        if not path.exists():
            raise CorpusError(
                f"{path}: shard file is missing but {manifest_path.name} "
                f"entry shards[{index}] ({name!r}) lists it"
            )
        if index < len(digests):
            actual = hashlib.sha256(path.read_bytes()).hexdigest()
            if actual != digests[index]:
                raise CorpusError(
                    f"{path}: shard digest mismatch — {manifest_path.name} "
                    f"entry digests[{index}] promises "
                    f"{digests[index][:12]}..., file hashes {actual[:12]}..."
                )
        paths.append(path)
    if pool is None:
        shards = [load_dataset_jsonl(path) for path in paths]
    else:
        shards = pool.map(load_dataset_jsonl, paths)
    for path, shard, expected in zip(paths, shards, counts):
        if len(shard) != expected:
            raise CorpusError(
                f"{path}: shard holds {len(shard)} records, manifest says {expected}"
            )
    bugs = [bug for shard in shards for bug in shard]
    if len(bugs) != total:
        raise CorpusError(
            f"{directory}: reassembled {len(bugs)} records, manifest says {total}"
        )
    return BugDataset(bugs)
