"""JSONL serialization for labeled bug datasets."""

from __future__ import annotations

import json
from pathlib import Path

from repro.corpus.dataset import BugDataset, LabeledBug
from repro.errors import CorpusError
from repro.taxonomy import BugLabel
from repro.trackers.models import BugReport


def save_dataset_jsonl(dataset: BugDataset, path: str | Path) -> None:
    """Write one ``{"report": ..., "label": ...}`` JSON object per line."""
    path = Path(path)
    with path.open("w") as handle:
        for bug in dataset:
            record = {"report": bug.report.to_dict(), "label": bug.label.to_dict()}
            handle.write(json.dumps(record, sort_keys=True) + "\n")


def load_dataset_jsonl(path: str | Path) -> BugDataset:
    """Read a dataset written by :func:`save_dataset_jsonl`."""
    path = Path(path)
    bugs: list[LabeledBug] = []
    with path.open() as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                bugs.append(
                    LabeledBug(
                        report=BugReport.from_dict(record["report"]),
                        label=BugLabel.from_dict(record["label"]),
                    )
                )
            except (KeyError, ValueError, TypeError, AttributeError) as exc:
                # TypeError/AttributeError cover structurally wrong records
                # (e.g. ``{"report": null}``) whose failure otherwise
                # surfaces deep inside from_dict without the line number.
                raise CorpusError(
                    f"{path}:{line_number}: malformed dataset record: {exc}"
                ) from exc
    return BugDataset(bugs)
