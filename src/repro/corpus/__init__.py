"""Synthetic bug-corpus generation (substitute for the live trackers).

The paper mines live JIRA/GitHub instances (April 2020 snapshot).  Offline,
we generate a corpus whose *every* reported distribution is calibrated to the
paper's numbers (:mod:`repro.paperdata`): trigger/symptom/root-cause/fix
marginals per controller, determinism rates, configuration sub-categories,
resolution-time tails, quarterly bug bursts around releases, and
category-specific description vocabulary (which is what makes the NLP
pipeline learnable, mirroring the paper's "unique topics per category"
observation, Fig 14).
"""

from repro.corpus.dataset import BugDataset, LabeledBug
from repro.corpus.generator import CorpusGenerator, StudyCorpus
from repro.corpus.io import (
    load_dataset_jsonl,
    load_dataset_shards,
    save_dataset_jsonl,
    save_dataset_shards,
)
from repro.corpus.profiles import ControllerProfile, default_profiles
from repro.corpus.resolution import ResolutionTimeModel

__all__ = [
    "BugDataset",
    "LabeledBug",
    "CorpusGenerator",
    "StudyCorpus",
    "load_dataset_jsonl",
    "load_dataset_shards",
    "save_dataset_jsonl",
    "save_dataset_shards",
    "ControllerProfile",
    "default_profiles",
    "ResolutionTimeModel",
]
