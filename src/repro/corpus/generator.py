"""The corpus generator: synthesizes the full study population.

Produces, for a fixed seed:

  * a JIRA tracker hosting ONOS + CORD with severities, timestamps,
    resolution times, and Gerrit fix links;
  * a GitHub tracker hosting FAUCET (no severity field, no resolution
    timestamps — exactly the information asymmetry the paper faced);
  * ground-truth :class:`~repro.taxonomy.BugLabel` for every bug (hidden
    from the NLP pipeline, used to score it);
  * the paper's manual-analysis sample (50 closed bugs per controller) as a
    :class:`~repro.taxonomy.LabelStore`.

Creation timestamps follow a mixture of uniform arrivals and bursts in the
weeks after each release date (SS II-B: "a burst of bugs occurs around
release dates").
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from datetime import datetime, timedelta
from typing import Mapping

from repro.corpus.dataset import BugDataset, LabeledBug
from repro.corpus.profiles import ControllerProfile, default_profiles
from repro.corpus.resolution import ResolutionTimeModel
from repro.corpus.templates import render_description
from repro.errors import CorpusError
from repro.taxonomy import (
    BugLabel,
    BugType,
    ByzantineMode,
    ConfigSubcategory,
    ExternalCallKind,
    FixStrategy,
    LabelStore,
    RootCause,
    Symptom,
    Trigger,
)
from repro.trackers.github import GithubTracker
from repro.trackers.jira import JiraTracker
from repro.trackers.models import (
    BugReport,
    GerritChange,
    IssueStatus,
    Severity,
)

#: Observation window of the study (bugs filed up to April 2020).
STUDY_START = datetime(2015, 6, 1)
STUDY_END = datetime(2020, 4, 1)

#: Fraction of bugs whose creation clusters after a release.
_BURST_FRACTION = 0.35
#: Burst window length after a release.
_BURST_DAYS = 45.0

#: Fraction of critical bugs closed by the snapshot date (most are).
_CLOSED_FRACTION = 0.87


@dataclass
class StudyCorpus:
    """Everything the study mines, bundled."""

    jira: JiraTracker
    github: GithubTracker
    dataset: BugDataset
    manual_sample: BugDataset
    manual_labels: LabelStore
    profiles: Mapping[str, ControllerProfile]

    @property
    def all_reports(self) -> list[BugReport]:
        return [bug.report for bug in self.dataset]


#: Per-fix-strategy patch shapes (SS II-C1: "to verify the fixes, we
#: manually analyzed the source code patches").  Fix strategies leave a
#: legible footprint in patch metadata even though bug *descriptions* do
#: not predict them: which files a change touches, its subject wording, and
#: its insertion/deletion balance all correlate with the strategy.
_GERRIT_SHAPES: dict[FixStrategy, dict] = {
    FixStrategy.ROLLBACK_UPGRADES: {
        "files": ("pom.xml", "requirements.txt", "deps/versions.lock"),
        "subjects": ("Revert dependency bump for", "Roll back library update for"),
        "insertions": (1, 20),
        "deletions": (10, 60),
    },
    FixStrategy.UPGRADE_PACKAGES: {
        "files": ("pom.xml", "requirements.txt", "deps/versions.lock"),
        "subjects": ("Bump dependency for", "Upgrade library to fix"),
        "insertions": (1, 15),
        "deletions": (1, 15),
    },
    FixStrategy.ADD_LOGIC: {
        "files": ("src/handler.java", "src/manager.java", "src/store.java"),
        "subjects": ("Add handling for", "Handle edge case in"),
        "insertions": (60, 400),
        "deletions": (0, 40),
    },
    FixStrategy.ADD_SYNCHRONIZATION: {
        "files": ("src/handler.java", "src/worker.java"),
        "subjects": ("Add locking around", "Synchronize access for"),
        "insertions": (15, 90),
        "deletions": (5, 50),
    },
    FixStrategy.FIX_CONFIGURATION: {
        "files": ("conf/network-cfg.json", "conf/cluster.yaml", "etc/defaults.yaml"),
        "subjects": ("Correct configuration for", "Fix default config value in"),
        "insertions": (1, 25),
        "deletions": (1, 25),
    },
    FixStrategy.ADD_COMPATIBILITY: {
        "files": ("src/adapter.java", "requirements.txt", "src/client.java"),
        "subjects": ("Adapt to new API of", "Match upstream signature for"),
        "insertions": (20, 150),
        "deletions": (15, 120),
    },
    FixStrategy.WORKAROUND: {
        "files": ("src/handler.java", "src/manager.java"),
        "subjects": ("Work around", "Guard against"),
        "insertions": (5, 40),
        "deletions": (0, 15),
    },
}


def _render_gerrit(
    label: BugLabel,
    bug_id: str,
    title: str,
    resolved_at: datetime,
    rng: random.Random,
) -> GerritChange:
    """A Gerrit change whose metadata reflects the fix strategy."""
    shape = _GERRIT_SHAPES[label.fix]
    n_files = rng.randint(1, min(3, len(shape["files"])))
    files = tuple(rng.sample(list(shape["files"]), n_files))
    subject = f"{rng.choice(shape['subjects'])} {bug_id}: {title[:40]}"
    return GerritChange(
        change_id=f"I{rng.getrandbits(40):010x}",
        subject=subject,
        merged_at=resolved_at,
        files_changed=files,
        insertions=rng.randint(*shape["insertions"]),
        deletions=rng.randint(*shape["deletions"]),
    )


def _weighted_choice(rng: random.Random, dist: Mapping) -> object:
    """Sample a key of ``dist`` proportionally to its value."""
    items = sorted(dist.items(), key=lambda kv: getattr(kv[0], "value", str(kv[0])))
    r = rng.random() * sum(p for _, p in items)
    acc = 0.0
    for key, p in items:
        acc += p
        if r <= acc:
            return key
    return items[-1][0]


class _ExtendedShardTask:
    """Picklable shard-generation task for :class:`~repro.parallel.WorkPool`."""

    def __init__(
        self, generator: "CorpusGenerator", n_shards: int, scale: float
    ) -> None:
        self.generator = generator
        self.n_shards = n_shards
        self.scale = scale

    def __call__(self, shard_index: int) -> "BugDataset":
        return self.generator.generate_extended_shard(
            shard_index, self.n_shards, scale=self.scale
        )


class CorpusGenerator:
    """Seeded generator for the full study corpus."""

    def __init__(
        self,
        profiles: Mapping[str, ControllerProfile] | None = None,
        *,
        resolution_model: ResolutionTimeModel | None = None,
        seed: int = 2020,
    ) -> None:
        self.profiles = dict(profiles or default_profiles())
        if not self.profiles:
            raise CorpusError("at least one controller profile is required")
        self.resolution_model = resolution_model or ResolutionTimeModel()
        self.seed = seed

    # -- label sampling ------------------------------------------------------
    def sample_label(self, profile: ControllerProfile, rng: random.Random) -> BugLabel:
        """Draw one ground-truth label from the profile's generative chain."""
        trigger = _weighted_choice(rng, profile.trigger_dist)
        root_cause = _weighted_choice(rng, profile.root_cause_given_trigger[trigger])
        symptom = _weighted_choice(rng, profile.symptom_given_cause[root_cause])
        byzantine_mode = None
        if symptom is Symptom.BYZANTINE:
            byzantine_mode = _weighted_choice(rng, profile.byzantine_mode_dist)
        fix = _weighted_choice(rng, profile.fix_distribution(trigger, root_cause))
        deterministic = rng.random() < profile.determinism_rate(root_cause)
        config_subcategory = None
        if trigger is Trigger.CONFIGURATION:
            config_subcategory = _weighted_choice(rng, profile.config_subcategory_dist)
        external_kind = None
        if trigger is Trigger.EXTERNAL_CALLS:
            external_kind = _weighted_choice(rng, profile.external_kind_dist)
        return BugLabel(
            bug_type=BugType.DETERMINISTIC if deterministic else BugType.NON_DETERMINISTIC,
            root_cause=root_cause,
            symptom=symptom,
            fix=fix,
            trigger=trigger,
            byzantine_mode=byzantine_mode,
            config_subcategory=config_subcategory,
            external_kind=external_kind,
        )

    # -- timestamp sampling ----------------------------------------------------
    def _sample_created_at(
        self, profile: ControllerProfile, rng: random.Random
    ) -> datetime:
        window = (STUDY_END - STUDY_START).total_seconds()
        if profile.release_dates and rng.random() < _BURST_FRACTION:
            release = rng.choice(profile.release_dates)
            offset = timedelta(days=rng.expovariate(1.0 / (_BURST_DAYS / 3.0)))
            candidate = release + offset
            if STUDY_START <= candidate < STUDY_END:
                return candidate
        return STUDY_START + timedelta(seconds=rng.random() * window)

    # -- full corpus -----------------------------------------------------------
    def generate(self) -> StudyCorpus:
        """Generate trackers + dataset + manual sample for the configured seed."""
        rng = random.Random(self.seed)
        # Gerrit patch synthesis draws from its own stream so that adding or
        # reshaping patch metadata never perturbs the label/timestamp draws
        # (which are calibrated and regression-tested).
        gerrit_rng = random.Random(self.seed ^ 0x5EED)
        jira_projects = [
            name for name in self.profiles if name.upper() not in ("FAUCET",)
        ]
        jira = JiraTracker(jira_projects or ["ONOS"])
        github = GithubTracker("FAUCET")
        labeled: list[LabeledBug] = []

        for name in sorted(self.profiles):
            profile = self.profiles[name]
            for index in range(1, profile.critical_bug_count + 1):
                label = self.sample_label(profile, rng)
                title, description = render_description(name, label, rng)
                created_at = self._sample_created_at(profile, rng)
                closed = rng.random() < _CLOSED_FRACTION
                bug_id = f"{name.upper()}-{index}"
                if name.upper() == "FAUCET":
                    report = BugReport(
                        bug_id=bug_id,
                        controller=name,
                        title=title,
                        description=description,
                        created_at=created_at,
                        labels=("bug",),
                        status=IssueStatus.CLOSED if closed else IssueStatus.OPEN,
                    )
                    github.add(report)
                else:
                    severity = (
                        Severity.BLOCKER if rng.random() < 0.25 else Severity.CRITICAL
                    )
                    report = BugReport(
                        bug_id=bug_id,
                        controller=name,
                        title=title,
                        description=description,
                        created_at=created_at,
                        severity=severity,
                    )
                    jira.add(report)
                    if closed:
                        days = self.resolution_model.sample_days(
                            name, label.trigger, rng
                        )
                        resolved_at = created_at + timedelta(days=days)
                        jira.resolve(bug_id, resolved_at)
                        jira.link_gerrit(
                            bug_id,
                            _render_gerrit(label, bug_id, title, resolved_at, gerrit_rng),
                        )
                labeled.append(LabeledBug(report=report, label=label))

        dataset = BugDataset(labeled)
        manual = dataset.manual_sample(per_controller=50, seed=self.seed)
        manual_labels = LabelStore(
            {bug.bug_id: bug.label for bug in manual}
        )
        return StudyCorpus(
            jira=jira,
            github=github,
            dataset=dataset,
            manual_sample=manual,
            manual_labels=manual_labels,
            profiles=dict(self.profiles),
        )

    # -- sharded generation ----------------------------------------------------
    def _generate_one_extended(self, name: str, index: int) -> LabeledBug:
        """One extended-population bug, from its own derived RNG stream.

        Seeding ``random.Random`` with the string ``"{seed}:{name}:{index}"``
        (hashed with SHA-512 internally, stable across processes) makes each
        bug a pure function of its coordinates: any partitioning of the
        index space over shards or workers reproduces identical bugs.
        """
        profile = self.profiles[name]
        rng = random.Random(f"{self.seed}:{name}:{index}")
        label = self.sample_label(profile, rng)
        title, description = render_description(name, label, rng)
        created_at = self._sample_created_at(profile, rng)
        report = BugReport(
            bug_id=f"{name.upper()}X-{index}",
            controller=name,
            title=title,
            description=description,
            created_at=created_at,
            severity=None if name.upper() == "FAUCET" else Severity.CRITICAL,
            status=IssueStatus.CLOSED,
        )
        return LabeledBug(report=report, label=label)

    def generate_extended_shard(
        self, shard_index: int, n_shards: int, *, scale: float = 5.0
    ) -> BugDataset:
        """The ``shard_index``-th of ``n_shards`` slices of the extended set.

        Bug indices are dealt round-robin (``index % n_shards``), so shard
        sizes stay balanced for any scale.  Concatenating all shards and
        sorting by ``(controller, index)`` is bit-for-bit
        :meth:`generate_extended_parallel` with ``n_shards=1``.
        """
        if scale <= 0:
            raise CorpusError("scale must be positive")
        if n_shards < 1:
            raise CorpusError("n_shards must be >= 1")
        if not 0 <= shard_index < n_shards:
            raise CorpusError(
                f"shard_index {shard_index} outside [0, {n_shards})"
            )
        labeled = [
            self._generate_one_extended(name, index)
            for name in sorted(self.profiles)
            for index in range(1, int(round(50 * scale)) + 1)
            if index % n_shards == shard_index
        ]
        return BugDataset(labeled)

    def generate_extended_parallel(
        self,
        *,
        scale: float = 5.0,
        n_shards: int = 1,
        pool: "WorkPool | None" = None,
    ) -> BugDataset:
        """Extended dataset built from ``n_shards`` independent shards.

        The reassembled dataset is identical for every ``(n_shards, pool)``
        combination: shards partition the per-bug RNG streams rather than
        splitting one sequential stream, and the merge re-sorts bugs into
        global ``(controller, index)`` order.
        """
        from repro.parallel import WorkPool

        if n_shards < 1:
            raise CorpusError("n_shards must be >= 1")
        pool = pool if pool is not None else WorkPool(1)
        shards = pool.map(
            _ExtendedShardTask(self, n_shards, scale), list(range(n_shards))
        )
        bugs = [bug for shard in shards for bug in shard]
        bugs.sort(
            key=lambda bug: (
                bug.report.controller,
                int(bug.report.bug_id.rsplit("-", 1)[1]),
            )
        )
        return BugDataset(bugs)

    def generate_extended(self, scale: float = 5.0) -> BugDataset:
        """An unlabeled-in-spirit extended dataset ~``scale``x the manual set.

        SS VII-B applies the trained NLP model to the whole critical dataset
        (~5x the manual sample).  The default :meth:`generate` corpus already
        *is* that population (795 bugs ~= 5 x 150); this helper generates an
        additional independent draw when an even larger evaluation set is
        wanted.
        """
        if scale <= 0:
            raise CorpusError("scale must be positive")
        rng = random.Random(self.seed + 1)
        labeled: list[LabeledBug] = []
        for name in sorted(self.profiles):
            profile = self.profiles[name]
            count = int(round(50 * scale))
            for index in range(1, count + 1):
                label = self.sample_label(profile, rng)
                title, description = render_description(name, label, rng)
                created_at = self._sample_created_at(profile, rng)
                report = BugReport(
                    bug_id=f"{name.upper()}X-{index}",
                    controller=name,
                    title=title,
                    description=description,
                    created_at=created_at,
                    severity=None if name.upper() == "FAUCET" else Severity.CRITICAL,
                    status=IssueStatus.CLOSED,
                )
                labeled.append(LabeledBug(report=report, label=label))
        return BugDataset(labeled)
