"""Log/metrics-based crash prediction (SS IV "New Research Directions").

The paper: "for the failures that are due to load and ecosystem
interactions, we may predict these crashes by analyzing metrics or existing
syslogs ... it would be interesting to evaluate the potential of extending
existing log-based failure prediction systems to SDNs".

This package is that evaluation: a telemetry-trace substrate emitting the
pre-crash signatures the simulator's fault models produce (memory ramps for
leaks, latency/queue ramps for load, *no* warning at all for logic/config
crashes), a windowed feature extractor, and a logistic-regression crash
predictor.  The headline result matches the paper's intuition: load- and
memory-driven crashes are predictable minutes in advance; missing-logic and
configuration crashes are not — they arrive without telemetry warning.
"""

from repro.prediction.traces import (
    CrashKind,
    TelemetrySample,
    TelemetryTrace,
    TraceGenerator,
)
from repro.prediction.predictor import (
    CrashPredictor,
    PredictionReport,
    evaluate_predictor,
)

__all__ = [
    "CrashKind",
    "TelemetrySample",
    "TelemetryTrace",
    "TraceGenerator",
    "CrashPredictor",
    "PredictionReport",
    "evaluate_predictor",
]
