"""Telemetry traces: what a monitoring stack sees before a controller dies.

Pre-crash signatures follow the fault models in :mod:`repro.faultinjection`:

* **memory-leak crashes** (ONOS-4859 class): heap usage ramps over minutes,
  GC log warnings accelerate, then the process dies;
* **load crashes**: event-queue depth and API latency climb, error rate
  follows, then collapse;
* **logic/config crashes** (CORD-2470 class): telemetry is flat and silent
  right up to the instant of death — the unguarded dereference gives no
  warning.  These are the provably-unpredictable class.
* **healthy runs**: stationary noise around the baselines.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field

from repro.errors import ReproError


class CrashKind(enum.Enum):
    """How (and whether) a trace ends in a crash."""

    NONE = "none"  # healthy run
    MEMORY_LEAK = "memory_leak"
    LOAD = "load"
    LOGIC = "logic"  # missing-logic / config crash: no telemetry warning


@dataclass(frozen=True)
class TelemetrySample:
    """One monitoring snapshot."""

    time: float  # seconds since run start
    heap_mb: float
    queue_depth: float
    api_latency_ms: float
    error_rate: float  # errors/minute in the last interval


@dataclass
class TelemetryTrace:
    """A whole run's telemetry, plus its ground truth."""

    crash_kind: CrashKind
    crash_time: float | None  # None for healthy runs
    samples: list[TelemetrySample] = field(default_factory=list)

    @property
    def crashed(self) -> bool:
        return self.crash_time is not None

    def window_before(self, t: float, width: float) -> list[TelemetrySample]:
        """Samples in ``[t - width, t)``."""
        return [s for s in self.samples if t - width <= s.time < t]


#: Steady-state baselines (healthy controller).
_BASE_HEAP = 800.0
_BASE_QUEUE = 20.0
_BASE_LATENCY = 10.0
_BASE_ERRORS = 0.3


class TraceGenerator:
    """Seeded generator of telemetry traces per crash kind."""

    def __init__(
        self,
        *,
        duration: float = 1800.0,
        sample_interval: float = 15.0,
        seed: int = 0,
    ) -> None:
        if duration <= 0 or sample_interval <= 0:
            raise ReproError("duration and sample_interval must be positive")
        self.duration = duration
        self.sample_interval = sample_interval
        self.seed = seed

    def _noise(self, rng: random.Random, scale: float) -> float:
        return rng.gauss(0.0, scale)

    def generate(self, kind: CrashKind, index: int = 0) -> TelemetryTrace:
        """One trace of the given kind (deterministic per (seed, index)).

        The stream is derived by *string* seeding (stable SHA-512 mixing),
        never builtin ``hash()``, which is salted per process by
        PYTHONHASHSEED and made traces differ across interpreter runs.
        """
        rng = random.Random(f"{self.seed}:{kind.value}:{index}")
        if kind is CrashKind.NONE:
            crash_time = None
            end = self.duration
        else:
            crash_time = rng.uniform(0.5 * self.duration, self.duration)
            end = crash_time
        #: Ramp onset for the predictable kinds: minutes before the crash.
        onset = None
        if kind is CrashKind.MEMORY_LEAK:
            onset = max(0.0, (crash_time or 0) - rng.uniform(300.0, 700.0))
        elif kind is CrashKind.LOAD:
            onset = max(0.0, (crash_time or 0) - rng.uniform(150.0, 400.0))

        samples: list[TelemetrySample] = []
        t = 0.0
        while t < end:
            heap = _BASE_HEAP + self._noise(rng, 25.0)
            queue = max(0.0, _BASE_QUEUE + self._noise(rng, 4.0))
            latency = max(1.0, _BASE_LATENCY + self._noise(rng, 1.5))
            errors = max(0.0, _BASE_ERRORS + self._noise(rng, 0.15))
            if onset is not None and t >= onset:
                progress = (t - onset) / max((crash_time or end) - onset, 1.0)
                if kind is CrashKind.MEMORY_LEAK:
                    heap += 2200.0 * progress**1.5
                    errors += 4.0 * progress**2  # GC warnings accelerate
                elif kind is CrashKind.LOAD:
                    queue += 500.0 * progress**1.3
                    latency += 180.0 * progress**1.2
                    errors += 6.0 * progress**2
            samples.append(
                TelemetrySample(
                    time=t,
                    heap_mb=heap,
                    queue_depth=queue,
                    api_latency_ms=latency,
                    error_rate=errors,
                )
            )
            t += self.sample_interval
        return TelemetryTrace(crash_kind=kind, crash_time=crash_time, samples=samples)

    def generate_mixed(
        self,
        *,
        per_kind: int = 20,
        kinds: tuple[CrashKind, ...] = (
            CrashKind.NONE,
            CrashKind.MEMORY_LEAK,
            CrashKind.LOAD,
            CrashKind.LOGIC,
        ),
    ) -> list[TelemetryTrace]:
        """A balanced corpus of traces across ``kinds``."""
        if per_kind < 1:
            raise ReproError("per_kind must be >= 1")
        traces = []
        for kind in kinds:
            for index in range(per_kind):
                traces.append(self.generate(kind, index))
        return traces
