"""The crash predictor: windowed telemetry features -> crash-within-horizon.

Training examples are sliding windows over telemetry traces: a window is
*positive* if the trace crashes within ``horizon`` seconds of the window's
end.  Features capture levels and slopes of heap, queue, latency, and error
rate — exactly what the metric/syslog-based predictors the paper cites
consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import NotFittedError, ReproError
from repro.ml.logistic import LogisticRegression
from repro.prediction.traces import CrashKind, TelemetrySample, TelemetryTrace

_FEATURE_NAMES = (
    "heap_mean", "heap_slope",
    "queue_mean", "queue_slope",
    "latency_mean", "latency_slope",
    "error_mean", "error_slope",
)


def _slope(times: np.ndarray, values: np.ndarray) -> float:
    if len(times) < 2:
        return 0.0
    t = times - times.mean()
    denom = float(t @ t)
    if denom == 0.0:
        return 0.0
    return float(t @ (values - values.mean()) / denom)


def window_features(samples: list[TelemetrySample]) -> np.ndarray:
    """Level + slope features for one telemetry window."""
    if not samples:
        raise ReproError("cannot featurize an empty window")
    times = np.array([s.time for s in samples])
    columns = {
        "heap": np.array([s.heap_mb for s in samples]),
        "queue": np.array([s.queue_depth for s in samples]),
        "latency": np.array([s.api_latency_ms for s in samples]),
        "error": np.array([s.error_rate for s in samples]),
    }
    features: list[float] = []
    for values in columns.values():
        features.append(float(values.mean()))
        features.append(_slope(times, values))
    return np.array(features)


class CrashPredictor:
    """Predict whether the controller will crash within ``horizon`` seconds.

    Parameters
    ----------
    window:
        Telemetry lookback used for features, in seconds.
    horizon:
        Prediction horizon: a positive example crashes within this many
        seconds after the window.
    threshold:
        Alarm threshold on the crash probability.
    """

    def __init__(
        self,
        *,
        window: float = 180.0,
        horizon: float = 240.0,
        threshold: float = 0.5,
        seed: int = 0,
    ) -> None:
        if window <= 0 or horizon <= 0:
            raise ReproError("window and horizon must be positive")
        self.window = window
        self.horizon = horizon
        self.threshold = threshold
        self.seed = seed
        self._model: LogisticRegression | None = None

    # -- dataset construction ----------------------------------------------------
    def _examples(
        self, traces: list[TelemetryTrace]
    ) -> tuple[np.ndarray, list[int]]:
        X: list[np.ndarray] = []
        y: list[int] = []
        for trace in traces:
            if not trace.samples:
                continue
            end_time = trace.samples[-1].time
            t = self.window
            while t <= end_time:
                window = trace.window_before(t, self.window)
                if window:
                    positive = (
                        trace.crash_time is not None
                        and t <= trace.crash_time <= t + self.horizon
                    )
                    X.append(window_features(window))
                    y.append(1 if positive else 0)
                t += self.window / 2.0  # 50% overlap
        if not X:
            raise ReproError("no training windows produced")
        return np.vstack(X), y

    def fit(self, traces: list[TelemetryTrace]) -> "CrashPredictor":
        X, y = self._examples(traces)
        self._model = LogisticRegression(
            learning_rate=0.3, n_iterations=800, positive_label=1
        )
        self._model.fit(X, y)
        return self

    # -- inference -----------------------------------------------------------------
    def crash_probability(self, samples: list[TelemetrySample]) -> float:
        """P(crash within horizon) given one window of telemetry."""
        if self._model is None:
            raise NotFittedError("CrashPredictor used before fit")
        return float(self._model.predict_proba(window_features(samples).reshape(1, -1))[0])

    def first_alarm(self, trace: TelemetryTrace) -> float | None:
        """Earliest time the alarm fires on a trace (None if never)."""
        if not trace.samples:
            return None
        end_time = trace.samples[-1].time
        t = self.window
        while t <= end_time:
            window = trace.window_before(t, self.window)
            if window and self.crash_probability(window) >= self.threshold:
                return t
            t += self.window / 2.0
        return None


@dataclass
class PredictionReport:
    """Evaluation of the predictor per crash kind."""

    #: Per kind: (crashes predicted in advance, total crashes).
    detected: dict[CrashKind, tuple[int, int]] = field(default_factory=dict)
    #: Mean warning lead time (s) for predicted crashes, per kind.
    lead_time: dict[CrashKind, float] = field(default_factory=dict)
    #: False-alarm rate on healthy traces.
    false_alarm_rate: float = 0.0

    def recall(self, kind: CrashKind) -> float:
        hits, total = self.detected.get(kind, (0, 0))
        return hits / total if total else 0.0


def evaluate_predictor(
    predictor: CrashPredictor, traces: list[TelemetryTrace]
) -> PredictionReport:
    """Score a fitted predictor on held-out traces."""
    report = PredictionReport()
    healthy_alarms = 0
    healthy_total = 0
    leads: dict[CrashKind, list[float]] = {}
    for trace in traces:
        alarm_at = predictor.first_alarm(trace)
        if trace.crash_kind is CrashKind.NONE:
            healthy_total += 1
            if alarm_at is not None:
                healthy_alarms += 1
            continue
        hits, total = report.detected.get(trace.crash_kind, (0, 0))
        assert trace.crash_time is not None
        predicted_in_time = alarm_at is not None and alarm_at <= trace.crash_time
        report.detected[trace.crash_kind] = (
            hits + (1 if predicted_in_time else 0),
            total + 1,
        )
        if predicted_in_time:
            leads.setdefault(trace.crash_kind, []).append(
                trace.crash_time - alarm_at
            )
    for kind, values in leads.items():
        report.lead_time[kind] = sum(values) / len(values)
    report.false_alarm_rate = (
        healthy_alarms / healthy_total if healthy_total else 0.0
    )
    return report
