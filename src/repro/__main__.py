"""Command-line interface: ``python -m repro <command>``.

Commands
--------
generate     Generate the study corpus and write it to JSONL.
analyze      Run RQ1-RQ3 analyses over a corpus (generated or from JSONL).
validate     Run the SS II-C NLP validation protocol.
pipeline     Run the NLP scaling pipeline (parallel workers + artifact cache).
inject       Execute the fault-injection campaign and the named case studies.
chaos        Run a Chaos-Monkey fuzzing campaign.
resilience   A/B fault campaign: bare scenarios vs the resilience runtime.
adversary    Control-plane adversary: violate an invariant, minimize the trace.
fuzz         Coverage-guided fault-schedule fuzzing over a parameterized topology.
ingest       Fault-tolerant streaming ingestion of tracker events.
lint         Run sdnlint: taxonomy-mapped AST bug-pattern checks + smells.
serve        Run the overload-robust triage serving daemon over a seeded trace.
metrics      Render an observability report (spans + metrics) from a run dir.
trajectory   Inspect or gate the persistent benchmark trajectory.
experiments  List every reproducible paper artifact and its bench.
"""

from __future__ import annotations

import argparse
import difflib
import re
import sys

from repro.errors import ReproError
from repro.reporting import ascii_table, format_percent, render_distribution


class CLIParser(argparse.ArgumentParser):
    """Argparse with friendlier failures: every bad invocation exits 2 with
    a one-line error (plus a did-you-mean hint for close misspellings) —
    never a traceback."""

    def error(self, message: str):
        self.print_usage(sys.stderr)
        hint = ""
        match = re.search(r"invalid choice: '([^']*)'.*\(choose from (.*)\)",
                          message)
        if match:
            choices = [c.strip().strip("'\"") for c in match.group(2).split(",")]
            close = difflib.get_close_matches(match.group(1), choices, n=1)
            if close:
                hint = f" (did you mean {close[0]!r}?)"
        print(f"{self.prog}: error: {message}{hint}", file=sys.stderr)
        raise SystemExit(2)


def _cmd_generate(args: argparse.Namespace) -> int:
    from repro.corpus import CorpusGenerator, save_dataset_jsonl

    corpus = CorpusGenerator(seed=args.seed).generate()
    save_dataset_jsonl(corpus.dataset, args.output)
    counts = corpus.dataset.split_counts()
    print(f"wrote {len(corpus.dataset)} labeled bugs to {args.output}")
    print(f"per controller: {counts}")
    return 0


def _load_dataset(args: argparse.Namespace):
    from repro.corpus import CorpusGenerator, load_dataset_jsonl

    if args.input:
        return load_dataset_jsonl(args.input)
    return CorpusGenerator(seed=args.seed).generate().dataset


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.analysis import (
        determinism_rates,
        symptom_distribution,
        trigger_distribution,
    )

    dataset = _load_dataset(args)
    print(ascii_table(
        ["controller", "deterministic"],
        [[c, format_percent(r)] for c, r in sorted(determinism_rates(dataset).items())],
        title="RQ1: determinism",
    ))
    print()
    print(render_distribution(symptom_distribution(dataset), title="RQ2: symptoms"))
    print()
    print(render_distribution(trigger_distribution(dataset), title="RQ3: triggers"))
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.corpus import CorpusGenerator
    from repro.pipeline.validation import validate_dimensions_resilient

    corpus = CorpusGenerator(seed=args.seed).generate()
    reports, execution = validate_dimensions_resilient(
        corpus.manual_sample, dimensions=args.dimensions, seed=0
    )
    for dimension in args.dimensions:
        if dimension in reports:
            print(reports[dimension].summary())
    for failure in execution.failures:
        print(f"{failure.item:12s} FAILED after {failure.attempts} attempt(s): "
              f"{failure.error}")
    if execution.degraded:
        print(f"degraded run: {len(execution.failures)}/{execution.total} "
              "dimension(s) failed")
    return 1 if execution.degraded else 0


def _cmd_pipeline(args: argparse.Namespace) -> int:
    from repro.parallel import ArtifactCache
    from repro.pipeline.scaling import run_pipeline

    # Journaled runs (--run-id / --resume) need checkpoints to recover from.
    want_cache = args.cache or args.run_id is not None or args.resume is not None
    cache = ArtifactCache(args.cache_root) if want_cache else None
    result = run_pipeline(
        seed=args.seed,
        jobs=args.jobs,
        cache=cache,
        dimensions=args.dimensions,
        n_topics=args.topics,
        nmf_restarts=args.restarts,
        run_id=args.run_id,
        resume=args.resume,
    )
    rows = [
        [t.stage, f"{t.seconds:8.3f}s", "hit" if t.cache_hit else "-"]
        for t in result.stages
    ]
    print(ascii_table(
        ["stage", "wall time", "cache"],
        rows,
        title=f"NLP scaling pipeline (jobs={result.jobs}, seed={result.seed})",
    ))
    print()
    for dimension, report in result.reports.items():
        print(report.summary())
    print(f"\ntopics ({len(result.topics)}): "
          + "; ".join(" ".join(topic[:4]) for topic in result.topics[:4]) + " ...")
    print(f"total {result.total_seconds:.3f}s over {result.n_documents} docs x "
          f"{result.n_features} features")
    if result.resumed:
        print(f"resumed run {result.run_id!r}: "
              f"{len(result.skipped_stages)} stage(s) skipped from journal "
              f"({', '.join(result.skipped_stages) or 'none'})")
    if cache is not None:
        stats = cache.stats()
        print(f"cache: {stats['hits']} hit(s), {stats['misses']} miss(es), "
              f"{stats['stored']} stored, {stats['quarantined']} quarantined "
              f"under {cache.root}")
    return 0


def _cmd_inject(args: argparse.Namespace) -> int:
    from repro.faultinjection import CASE_RUNNERS, FaultCampaign, run_case

    campaign = FaultCampaign(seeds_per_fault=args.seeds).run()
    rows = [
        [
            r.spec.fault_id,
            r.spec.trigger.value,
            f"{r.manifestation_rate:.0%}",
            "ok" if r.matches_expectation else "MISMATCH",
        ]
        for r in campaign.results
    ]
    print(ascii_table(["fault", "trigger", "manifestation", "taxonomy match"],
                      rows, title="Fault campaign"))
    print()
    for case_id in sorted(CASE_RUNNERS):
        outcome = run_case(case_id)
        status = "fix works" if outcome.fix_removes_symptom else "FIX FAILED"
        buggy = outcome.buggy.symptom.value if outcome.buggy.symptom else "healthy"
        print(f"  {case_id:12s} buggy={buggy:12s} {status}")
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.chaos import ChaosMonkey
    from repro.faultinjection.scenario import build_scenario

    factories = {
        "buggy": lambda: build_scenario(
            mirror_broadcast=False, multicast_guard=False,
            gauge_cast_types=False, adapter_timeout=None,
        ),
        "patched": build_scenario,
        "hardened": lambda: build_scenario(input_validation=True),
    }
    factory = factories[args.build]
    monkey = ChaosMonkey(factory, seed=args.seed, hardened=args.resilient)
    report = monkey.run_campaign(runs=args.runs)
    label = f"build={args.build}" + (" +resilience" if args.resilient else "")
    print(f"{label}: {len(report.findings)}/{report.runs} runs "
          f"surfaced a symptom")
    for finding in report.findings[: args.show]:
        symptom = finding.outcome.symptom.value
        print(f"  run {finding.run_index:3d} {finding.perturbations} -> "
              f"{symptom}: {finding.outcome.detail[:60]}")
    if report.ledger is not None:
        print(f"  resilience actions: {report.ledger.summary()}")
    return 0


def _cmd_resilience(args: argparse.Namespace) -> int:
    from repro.faultinjection import FaultCampaign

    report = FaultCampaign(seeds_per_fault=args.seeds).run_ab()
    rows = [
        [
            r.spec.fault_id,
            r.spec.bug_type.value,
            f"{r.baseline_symptom_rate:.0%}",
            f"{r.hardened_symptom_rate:.0%}",
            str(r.restarts),
            ", ".join(sorted(s.value for s in r.residual_symptoms)) or "-",
        ]
        for r in report.results
    ]
    print(ascii_table(
        ["fault", "determinism", "bare", "hardened", "restarts", "residual"],
        rows,
        title="A/B fault campaign: bare vs resilience runtime",
    ))
    print()
    summary = report.summary()
    print(f"symptom rate: {format_percent(report.baseline_symptom_rate)} bare -> "
          f"{format_percent(report.hardened_symptom_rate)} hardened "
          f"(reduction {format_percent(report.symptom_reduction)})")
    print(f"improved faults: {', '.join(summary['improved_faults']) or 'none'}")
    print(f"mean recovery latency: {report.mean_recovery_latency:.1f}s simulated")
    residual = report.residual_by_root_cause()
    if residual:
        total = sum(residual.values())
        print(render_distribution(
            {cause.value: count / total for cause, count in residual.items()},
            title="residual symptoms by root cause",
        ))
    return 0


def _cmd_adversary(args: argparse.Namespace) -> int:
    from repro.adversary import (
        find_violating_schedule,
        minimize_schedule,
        run_adversary,
    )

    if args.ab:
        from repro.faultinjection import FaultCampaign

        campaign = FaultCampaign(base_seed=args.seed, seeds_per_fault=args.schedules)
        report = campaign.run_adversarial_ab(events=args.events)
        rows = [
            [name, str(bare), str(hardened)]
            for name, (bare, hardened) in sorted(report.per_invariant().items())
        ]
        print(ascii_table(
            ["invariant", "bare", "hardened"],
            rows,
            title="Adversarial A/B: violating subjects per invariant",
        ))
        summary = report.summary()
        print(f"violating subjects: {summary['bare_violations']} bare -> "
              f"{summary['hardened_violations']} hardened "
              f"(reduction {summary['violation_reduction']}); "
              f"hardened spent {summary['hardened_retries']} retries")
        return 0

    seed, schedule, result = find_violating_schedule(
        args.seed, events=args.events, hardened=args.hardened
    )
    print(f"seed {seed}: {len(schedule)} events -> "
          f"{len(result.violations)} violation(s)")
    first = result.first_violation
    assert first is not None
    print(f"first violation: {first.invariant} on {first.subject} "
          f"at t={first.time:.3f} ({first.detail})")
    for name, count in sorted(result.by_invariant().items()):
        print(f"  {name}: {count}")

    minimized = minimize_schedule(schedule, hardened=args.hardened)
    print()
    print(minimized.summary())
    for event in minimized.minimized.events:
        print(f"  t={event.time:8.3f} {event.action.value:10s} "
              f"{event.target}" + (f" param={event.param}" if event.param else ""))
    replay = run_adversary(minimized.minimized, hardened=args.hardened)
    print(f"replay of minimized trace violates: {replay.violated} "
          f"({replay.first_violation.invariant if replay.first_violation else '-'})")
    if args.trace_out:
        import pathlib

        pathlib.Path(args.trace_out).write_text(minimized.minimized.to_json())
        print(f"minimized trace written to {args.trace_out}")
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.fuzzing import FuzzConfig, run_campaign

    config = FuzzConfig(
        controllers=args.controllers,
        switches=args.switches,
        flows=args.flows,
        topology=args.topology,
        budget=args.budget,
        batch=args.batch,
        seed=args.seed,
        horizon=args.horizon,
        hardened=args.hardened,
        guided=not args.random,
        minimize=not args.no_minimize,
    )
    report = run_campaign(
        config,
        args.run_dir,
        resume=args.resume,
        jobs=args.jobs,
        progress=lambda msg: print(f"  {msg}"),
    )
    print(f"topology: {report.config.topology} "
          f"({config.controllers} controllers x {config.switches} switches)")
    print(report.summary())
    by_origin: dict[str, int] = {}
    for entry in report.state.corpus:
        by_origin[entry.origin] = by_origin.get(entry.origin, 0) + 1
    rows = [[origin, str(count)] for origin, count in sorted(by_origin.items())]
    if rows:
        print(ascii_table(["origin", "corpus entries"], rows,
                          title="Corpus by producing operator"))
    for cls in sorted(report.state.reproducers):
        repro_entry = report.state.reproducers[cls]
        print(f"  reproducer {cls}: {len(repro_entry.original)} -> "
              f"{len(repro_entry.minimized)} events "
              f"({repro_entry.replays} replays / {repro_entry.probes} probes)")
    print(f"state fingerprint: {report.state.fingerprint()[:16]}...")
    print(f"coverage map + reproducers under {report.run_dir}")
    return 0


def _cmd_ingest(args: argparse.Namespace) -> int:
    from repro.stream import IngestConfig, replay_dlq, run_ingest

    if args.replay_dlq:
        outcome = replay_dlq(args.run_dir)
        print(f"DLQ replay: {outcome['recovered']} recovered "
              f"({outcome['applied']} applied, {outcome['deduped']} deduped), "
              f"{outcome['remaining']} irrecoverable entr(y/ies) kept")
        return 0

    config = IngestConfig(
        seed=args.seed,
        events=args.events,
        batch=args.batch,
        block=args.block,
        pool=args.pool,
        outage_rate=args.outage_rate,
        outage_depth=args.outage_depth,
        rate_limit_rate=args.rate_limit_rate,
        corrupt_rate=args.corrupt_rate,
        duplicate_rate=args.duplicate_rate,
        reorder_rate=args.reorder_rate,
        queue_capacity=args.queue_capacity,
        retry_attempts=args.retry_attempts,
        learn=not args.no_learn,
    )
    report = run_ingest(
        config,
        args.run_dir,
        resume=args.resume,
        progress=lambda msg: print(f"  {msg}"),
    )
    state = report.state
    print(report.summary())
    rows = [[etype, str(count)] for etype, count in sorted(state.by_type.items())]
    if rows:
        print(ascii_table(["event type", "applied"], rows,
                          title="Applied events by type"))
    window = state.dist.window()
    if window:
        top = sorted(window.items(), key=lambda kv: (-kv[1], kv[0]))[:5]
        print("rolling symptom|root-cause window (top 5): "
              + ", ".join(f"{key}={count}" for key, count in top))
    if state.model is not None:
        print(f"online model: {len(state.model.classes_)} classes over "
              f"{state.trained} labeled samples")
    print(f"resilience: {report.ledger.summary()}")
    print(f"DLQ depth {report.dlq_depth} "
          f"(replay with 'repro ingest --run-dir {report.run_dir} --replay-dlq')")
    print(f"state fingerprint: {state.fingerprint()[:16]}...")
    print(f"journal + snapshots + metrics under {report.run_dir}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    import pathlib

    import repro
    from repro.staticanalysis import (
        AnalysisReport,
        Analyzer,
        Finding,
        Severity,
        apply_baseline,
        load_baseline,
        to_json,
        to_text,
        write_baseline,
    )

    paths = [pathlib.Path(p) for p in args.paths]
    if not paths:
        paths = [pathlib.Path(repro.__file__).parent]
    report = Analyzer().run(paths)

    if args.interprocedural:
        from repro.staticanalysis.dataflow import run_interprocedural

        cache_root = (
            None
            if args.summary_cache == "none"
            else pathlib.Path(args.summary_cache)
        )
        result = run_interprocedural(
            paths, cache_root=cache_root, jobs=args.jobs
        )
        merged = sorted(
            report.findings + result.report.findings, key=Finding.sort_key
        )
        report = AnalysisReport(
            root=report.root,
            findings=merged,
            modules_scanned=report.modules_scanned,
        )
        stats = result.stats
        print(
            f"interprocedural: {stats['functions']} functions, "
            f"{stats['resolved_edges']} resolved edges, summary cache "
            f"{stats['cache_hits']} hit(s) / {stats['cache_misses']} "
            f"miss(es), jobs={stats['jobs']}",
            file=sys.stderr,
        )
        if args.spans_out:
            from repro.observability import spans_to_jsonl

            pathlib.Path(args.spans_out).write_text(
                spans_to_jsonl(result.spans), encoding="utf-8"
            )

    baseline_path = (
        None if args.baseline == "none" else pathlib.Path(args.baseline)
    )
    if args.write_baseline:
        if baseline_path is None:
            print("--write-baseline needs a baseline path, not 'none'",
                  file=sys.stderr)
            return 2
        written = write_baseline(report, baseline_path)
        print(f"baselined {written} finding(s) to {baseline_path}")
        return 0
    if baseline_path is not None:
        report = apply_baseline(report, load_baseline(baseline_path))

    rendered = to_json(report) if args.format == "json" else to_text(report)
    print(rendered)
    if args.output:
        pathlib.Path(args.output).write_text(to_json(report) + "\n",
                                             encoding="utf-8")

    if args.smells or args.smell_kinds:
        from repro.smells import SmellKind, analyze
        from repro.staticanalysis import extract_code_model

        kinds = (
            [SmellKind(value) for value in args.smell_kinds]
            if args.smell_kinds else None
        )
        model = extract_code_model(paths)
        smell_report = analyze(model, kinds=kinds)
        print()
        rows = [
            [inst.kind.value, inst.subject, inst.detail]
            for inst in smell_report.instances
        ] or [["-", "-", "no smells at current thresholds"]]
        print(ascii_table(
            ["smell", "subject", "detail"],
            rows,
            title=(f"Fig-8 smells over extracted model "
                   f"({len(model.classes)} classes, "
                   f"{len(model.packages)} packages)"),
        ))

    if args.fail_on == "never":
        return 0
    threshold = Severity.ERROR if args.fail_on == "error" else Severity.WARNING
    failing = [f for f in report.active if f.severity >= threshold]
    return 1 if failing else 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import pathlib

    from repro.serving import (
        RequestLog,
        ServingConfig,
        ServingDaemon,
        TrafficConfig,
        TriageBackend,
        generate_trace,
        goodput,
        percentile,
        replay,
        run_ab,
    )

    traffic = TrafficConfig(
        seed=args.seed,
        duration=args.duration,
        base_rate=args.base_rate,
        burst_rate=args.burst_rate,
        bursts=args.bursts,
    )
    workdir = pathlib.Path(args.workdir)
    workdir.mkdir(parents=True, exist_ok=True)

    def make_backend():
        return TriageBackend(seed=args.seed, lint_workspace=workdir / "lint")

    if args.ab:
        report = run_ab(make_backend, traffic=traffic)
        rows = [
            [
                arm.name,
                f"{arm.goodput:.3f}",
                f"{arm.p50:.3f}s",
                f"{arm.p99:.3f}s",
                str(arm.answered),
                str(arm.deadline_met),
                str(arm.stats["shed"]),
                str(arm.stats["expired"]),
            ]
            for arm in (report.hardened, report.bare)
        ]
        print(ascii_table(
            ["arm", "goodput", "p50", "p99", "answered", "in-deadline",
             "shed", "expired"],
            rows,
            title=(f"Overload A/B: {report.trace_requests} requests over "
                   f"{report.duration:.0f}s simulated"),
        ))
        ratio = report.goodput_ratio
        print(f"goodput ratio (hardened/bare): "
              f"{'inf' if ratio == float('inf') else f'{ratio:.2f}x'}")
        for arm in (report.hardened, report.bare):
            arm_path = workdir / f"{arm.name}_metrics.jsonl"
            arm_path.write_text(arm.metrics_jsonl, encoding="utf-8")
        print(f"metrics export: {workdir}/{{hardened,bare}}_metrics.jsonl "
              f"(render with 'repro metrics --run-dir {workdir}')")
        return 0

    from repro.resilience.ledger import ResilienceLedger
    from repro.sdnsim.clock import EventScheduler

    trace = generate_trace(traffic)
    scheduler = EventScheduler()
    ledger = ResilienceLedger()
    request_log = RequestLog(workdir / "requests.journal")
    daemon = ServingDaemon(
        scheduler,
        make_backend(),
        config=ServingConfig(hardened=not args.bare),
        ledger=ledger,
        request_log=request_log,
    )
    replay(trace, daemon)
    daemon.run(until=traffic.duration + args.settle)
    daemon.close()
    from repro.observability.instrument import ledger_to_metrics

    ledger_to_metrics(ledger, daemon.metrics)
    metrics_path = workdir / "serve_metrics.jsonl"
    metrics_path.write_text(daemon.metrics.export_jsonl(), encoding="utf-8")
    stats = daemon.stats
    latencies = [r.latency for r in daemon.responses if r.answered]
    mode = "bare" if args.bare else "hardened"
    print(f"{mode} daemon: {stats.submitted} submitted, "
          f"{stats.answered} answered "
          f"({stats.completed_full} full / {stats.served_stale} stale / "
          f"{stats.served_heuristic} heuristic), "
          f"{stats.shed} shed, {stats.expired} expired, {stats.errors} errors")
    print(f"goodput {goodput(daemon.responses, traffic.duration):.3f}/s, "
          f"p50 {percentile(latencies, 50.0):.3f}s, "
          f"p99 {percentile(latencies, 99.0):.3f}s")
    print(f"resilience ledger: {ledger.summary()}")
    print(f"request journal: {request_log.path}")
    print(f"metrics export: {metrics_path} (render with 'repro metrics "
          f"--run-dir {workdir}')")
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    from repro.observability import collect_run, render_json, render_text

    report = collect_run(args.run_dir)
    rendered = (
        render_json(report) if args.format == "json" else render_text(report)
    )
    print(rendered, end="")
    if args.output:
        import pathlib

        pathlib.Path(args.output).write_text(rendered, encoding="utf-8")
    return 0


def _cmd_trajectory(args: argparse.Namespace) -> int:
    from repro.observability.trajectory import (
        DEFAULT_GATES,
        GateRule,
        TrajectoryStore,
    )

    store = TrajectoryStore(args.file)
    gates = (
        [GateRule.parse(spec) for spec in args.gate]
        if args.gate
        else list(DEFAULT_GATES)
    )
    if args.check:
        # Raises TrajectoryGateError (a ReproError -> exit 2) on regression.
        results = store.check(args.candidate, gates=gates)
        for result in results:
            print(result.describe())
        print(f"trajectory check passed ({len(results)} gate(s) evaluated)")
        return 0
    entries = store.load()
    if not entries:
        print(f"{store.path}: no trajectory entries yet")
        return 0
    for entry in entries:
        bench = entry.get("bench", "?")
        metrics = ", ".join(
            f"{key}={entry[key]:g}"
            for key in sorted(entry)
            if key != "bench"
            and isinstance(entry[key], (int, float))
            and not isinstance(entry[key], bool)
        )
        print(f"{bench}: {metrics}")
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    from repro.reporting import EXPERIMENTS

    rows = [[e.exp_id, e.paper_artifact, e.bench] for e in EXPERIMENTS]
    print(ascii_table(["id", "paper artifact", "bench"], rows,
                      title="Reproducible experiments"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = CLIParser(
        prog="repro",
        description="Reproduction of 'A Comprehensive Study of Bugs in SDNs' (DSN'21)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("generate", help="generate the study corpus to JSONL")
    p.add_argument("--seed", type=int, default=2020)
    p.add_argument("--output", default="corpus.jsonl")
    p.set_defaults(fn=_cmd_generate)

    p = sub.add_parser("analyze", help="run RQ1-RQ3 analyses")
    p.add_argument("--seed", type=int, default=2020)
    p.add_argument("--input", help="JSONL corpus (default: generate fresh)")
    p.set_defaults(fn=_cmd_analyze)

    p = sub.add_parser("validate", help="run the NLP validation protocol")
    p.add_argument("--seed", type=int, default=2020)
    p.add_argument(
        "--dimensions", nargs="+",
        default=["bug_type", "symptom", "fix"],
        choices=["bug_type", "root_cause", "symptom", "fix", "trigger"],
    )
    p.set_defaults(fn=_cmd_validate)

    p = sub.add_parser(
        "pipeline",
        help="run the NLP scaling pipeline with parallel workers + artifact cache",
    )
    p.add_argument("--seed", type=int, default=2020)
    p.add_argument("--jobs", type=int, default=1, help="work-pool width")
    p.add_argument("--cache", action="store_true",
                   help="reuse artifacts keyed on seed + hyperparameters")
    p.add_argument("--cache-root", default="benchmarks/artifacts/cache",
                   help="artifact cache directory")
    p.add_argument(
        "--dimensions", nargs="+",
        default=["bug_type", "symptom", "fix"],
        choices=["bug_type", "root_cause", "symptom", "fix", "trigger"],
    )
    p.add_argument("--topics", type=int, default=8, help="NMF topic count")
    p.add_argument("--restarts", type=int, default=4, help="NMF restarts")
    p.add_argument("--run-id",
                   help="journal every stage under this id (implies caching) "
                        "so a killed run can be resumed")
    p.add_argument("--resume", metavar="RUN_ID",
                   help="resume a journaled run: committed stages are "
                        "digest-verified and skipped")
    p.set_defaults(fn=_cmd_pipeline)

    p = sub.add_parser("inject", help="run the fault-injection campaign")
    p.add_argument("--seeds", type=int, default=3, help="seeds per fault")
    p.set_defaults(fn=_cmd_inject)

    p = sub.add_parser("chaos", help="run a chaos fuzzing campaign")
    p.add_argument("--build", choices=["buggy", "patched", "hardened"],
                   default="patched")
    p.add_argument("--runs", type=int, default=20)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--show", type=int, default=10, help="findings to print")
    p.add_argument("--resilient", action="store_true",
                   help="build scenarios with the resilience runtime enabled")
    p.set_defaults(fn=_cmd_chaos)

    p = sub.add_parser(
        "resilience", help="A/B fault campaign: bare vs resilience runtime"
    )
    p.add_argument("--seeds", type=int, default=3, help="seeds per fault")
    p.set_defaults(fn=_cmd_resilience)

    p = sub.add_parser(
        "adversary",
        help="control-plane adversary: violate an invariant, minimize the trace",
    )
    p.add_argument("--seed", type=int, default=0, help="first schedule seed to try")
    p.add_argument("--events", type=int, default=20, help="events per schedule")
    p.add_argument("--hardened", action="store_true",
                   help="run against the hardened control plane")
    p.add_argument("--ab", action="store_true",
                   help="adversarial A/B: bare vs hardened over many schedules")
    p.add_argument("--schedules", type=int, default=5,
                   help="schedules for --ab mode")
    p.add_argument("--trace-out", help="write the minimized trace JSON here")
    p.set_defaults(fn=_cmd_adversary)

    p = sub.add_parser(
        "fuzz",
        help="coverage-guided fault-schedule fuzzing over a parameterized "
             "topology",
    )
    p.add_argument("--controllers", type=int, default=5)
    p.add_argument("--switches", type=int, default=20)
    p.add_argument("--flows", type=int, help="workload flows (default: one per switch)")
    p.add_argument("--topology", choices=["ring", "star", "fattree"],
                   default="ring")
    p.add_argument("--budget", type=int, default=200,
                   help="total schedules to execute")
    p.add_argument("--batch", type=int, default=20, help="schedules per batch")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--horizon", type=float, default=40.0,
                   help="simulated seconds per schedule")
    p.add_argument("--jobs", type=int, default=1, help="work-pool width")
    p.add_argument("--hardened", action="store_true",
                   help="fuzz the hardened control plane")
    p.add_argument("--random", action="store_true",
                   help="disable coverage guidance (pure-random baseline)")
    p.add_argument("--no-minimize", action="store_true",
                   help="skip ddmin reproducer minimization")
    p.add_argument("--run-dir", default="benchmarks/artifacts/fuzz",
                   help="journal + snapshots + coverage map live here")
    p.add_argument("--resume", action="store_true",
                   help="resume the journaled campaign in --run-dir")
    p.set_defaults(fn=_cmd_fuzz)

    p = sub.add_parser(
        "ingest",
        help="fault-tolerant streaming ingestion of tracker events "
             "(journaled, exactly-once, dead-lettered)",
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--events", type=int, default=20000,
                   help="base events in the synthetic stream")
    p.add_argument("--batch", type=int, default=2048,
                   help="base events per journaled batch")
    p.add_argument("--block", type=int, default=64,
                   help="base events per fetch block")
    p.add_argument("--pool", type=int, default=5000,
                   help="distinct synthetic bug ids")
    p.add_argument("--outage-rate", type=float, default=0.1,
                   help="per-block probability of an upstream outage")
    p.add_argument("--outage-depth", type=int, default=2,
                   help="max consecutive attempts an outage eats")
    p.add_argument("--rate-limit-rate", type=float, default=0.05,
                   help="per-block probability of throttling")
    p.add_argument("--corrupt-rate", type=float, default=0.01,
                   help="per-record probability of corruption")
    p.add_argument("--duplicate-rate", type=float, default=0.05,
                   help="per-record probability of duplicate delivery")
    p.add_argument("--reorder-rate", type=float, default=0.2,
                   help="per-block probability of delivery reordering")
    p.add_argument("--queue-capacity", type=int, default=256,
                   help="backpressure queue bound (records)")
    p.add_argument("--retry-attempts", type=int, default=4,
                   help="retries granted per block after the first attempt")
    p.add_argument("--no-learn", action="store_true",
                   help="disable the online partial_fit learner")
    p.add_argument("--run-dir", default="benchmarks/artifacts/ingest",
                   help="journal + snapshots + DLQ + metrics live here")
    p.add_argument("--resume", action="store_true",
                   help="resume the journaled run in --run-dir")
    p.add_argument("--replay-dlq", action="store_true",
                   help="leniently replay the dead-letter queue instead of "
                        "ingesting")
    p.set_defaults(fn=_cmd_ingest)

    p = sub.add_parser(
        "lint",
        help="run sdnlint: taxonomy-mapped AST bug-pattern checks",
    )
    p.add_argument("paths", nargs="*",
                   help="files/directories to scan (default: the repro package)")
    p.add_argument("--format", choices=["text", "json"], default="text")
    p.add_argument("--output", help="also write the JSON report to this file")
    p.add_argument("--baseline", default="lint-baseline.json",
                   help="known-debt file; 'none' disables suppression")
    p.add_argument("--write-baseline", action="store_true",
                   help="accept every current finding as debt and exit")
    p.add_argument("--fail-on", choices=["error", "warning", "never"],
                   default="error",
                   help="exit 1 if any unsuppressed finding is at or above "
                        "this severity")
    p.add_argument("--interprocedural", action="store_true",
                   help="also run the dataflow.* detectors over a "
                        "project-wide call graph with taint propagation")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes for summary extraction "
                        "(reports are byte-identical for any value)")
    p.add_argument("--summary-cache", default="benchmarks/artifacts/cache",
                   help="ArtifactCache root for content-keyed module "
                        "summaries; 'none' disables caching")
    p.add_argument("--spans-out",
                   help="write the per-phase/per-worker span tree of the "
                        "interprocedural run to this JSONL file")
    p.add_argument("--smells", action="store_true",
                   help="also extract a CodeModel and run the Fig-8 smell "
                        "detectors over it")
    p.add_argument("--smell-kinds", nargs="+",
                   choices=["god_component", "unstable_dependency",
                            "hub_like_modularization",
                            "insufficient_modularization",
                            "broken_hierarchy", "missing_hierarchy"],
                   help="run only these smell detectors (implies --smells)")
    p.set_defaults(fn=_cmd_lint)

    p = sub.add_parser(
        "serve",
        help="run the overload-robust triage serving daemon over a seeded "
             "synthetic trace",
    )
    p.add_argument("--seed", type=int, default=2020)
    p.add_argument("--duration", type=float, default=30.0,
                   help="simulated seconds of traffic")
    p.add_argument("--base-rate", type=float, default=6.0,
                   help="baseline arrivals per simulated second")
    p.add_argument("--burst-rate", type=float, default=40.0,
                   help="arrival rate inside burst windows")
    p.add_argument("--bursts", type=int, default=3,
                   help="number of burst windows")
    p.add_argument("--settle", type=float, default=120.0,
                   help="extra simulated seconds to drain queues")
    p.add_argument("--bare", action="store_true",
                   help="disable every protection (the collapse baseline)")
    p.add_argument("--ab", action="store_true",
                   help="run both arms and print the comparison")
    p.add_argument("--workdir", default="benchmarks/artifacts/serve",
                   help="request journal + lint workspace live here")
    p.set_defaults(fn=_cmd_serve)

    p = sub.add_parser(
        "metrics",
        help="render an observability report (journal spans + metrics "
             "exports) from a run directory",
    )
    p.add_argument("--run-dir", default="benchmarks/artifacts/serve",
                   help="directory (or single .jsonl file) to scan")
    p.add_argument("--format", choices=["text", "json"], default="text")
    p.add_argument("--output", help="also write the report to this file")
    p.set_defaults(fn=_cmd_metrics)

    p = sub.add_parser(
        "trajectory",
        help="inspect or gate the persistent benchmark trajectory",
    )
    p.add_argument("--file", default="benchmarks/BENCH_trajectory.json",
                   help="baseline trajectory file")
    p.add_argument("--check", action="store_true",
                   help="evaluate regression gates (exit 2 on regression)")
    p.add_argument("--candidate",
                   help="candidate trajectory to gate against --file "
                        "(default: the baseline gates itself)")
    p.add_argument("--gate", action="append", metavar="BENCH:METRIC:DIR:TOL",
                   help="override gates, e.g. "
                        "serving_overload_ab:goodput_hardened:higher:0.1 "
                        "(repeatable)")
    p.set_defaults(fn=_cmd_trajectory)

    p = sub.add_parser("experiments", help="list reproducible artifacts")
    p.set_defaults(fn=_cmd_experiments)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as exc:
        # Library failures become a one-line diagnostic, never a traceback:
        # the CLI's own §IV lesson about error-message symptoms.
        print(f"repro {args.command}: error: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        print(f"repro {args.command}: interrupted", file=sys.stderr)
        return 130


if __name__ == "__main__":
    sys.exit(main())
