"""Enumerations for every taxonomy dimension in Table I.

Each bug receives *at most one* tag from each dimension; that constraint is
enforced by :func:`repro.taxonomy.label.validate_label`.
"""

from __future__ import annotations

import enum


class Dimension(enum.Enum):
    """The five classification dimensions of Table I."""

    BUG_TYPE = "bug_type"
    ROOT_CAUSE = "root_cause"
    SYMPTOM = "symptom"
    FIX = "fix"
    TRIGGER = "trigger"


class BugType(enum.Enum):
    """Determinism of the bug (SS III).

    Deterministic bugs are reproducible from a fixed set of input actions;
    non-deterministic bugs cannot be reproduced by replaying the same events.
    """

    DETERMINISTIC = "deterministic"
    NON_DETERMINISTIC = "non_deterministic"


class RootCauseFamily(enum.Enum):
    """Whether the root cause lies in controller logic or outside it."""

    CONTROLLER_LOGIC = "controller_logic"
    NON_CONTROLLER_LOGIC = "non_controller_logic"


class RootCause(enum.Enum):
    """Root causes (Table I).

    Controller logic-bugs: load, concurrency, memory, missing logic.
    Non controller logic-bugs: human (misconfiguration) and ecosystem
    interaction (third-party services, application libraries, system calls).
    """

    LOAD = "load"
    CONCURRENCY = "concurrency"
    MEMORY = "memory"
    MISSING_LOGIC = "missing_logic"
    HUMAN_MISCONFIGURATION = "human_misconfiguration"
    ECOSYSTEM_THIRD_PARTY = "ecosystem_third_party"
    ECOSYSTEM_APP_LIBRARY = "ecosystem_app_library"
    ECOSYSTEM_SYSTEM_CALL = "ecosystem_system_call"

    @property
    def family(self) -> RootCauseFamily:
        """Controller-logic vs non-controller-logic split used by Fig 2."""
        if self in _CONTROLLER_LOGIC_CAUSES:
            return RootCauseFamily.CONTROLLER_LOGIC
        return RootCauseFamily.NON_CONTROLLER_LOGIC

    @property
    def is_ecosystem(self) -> bool:
        """True for the three ecosystem-interaction causes."""
        return self in (
            RootCause.ECOSYSTEM_THIRD_PARTY,
            RootCause.ECOSYSTEM_APP_LIBRARY,
            RootCause.ECOSYSTEM_SYSTEM_CALL,
        )


_CONTROLLER_LOGIC_CAUSES = frozenset(
    {
        RootCause.LOAD,
        RootCause.CONCURRENCY,
        RootCause.MEMORY,
        RootCause.MISSING_LOGIC,
    }
)


class Symptom(enum.Enum):
    """Operational symptom of the bug (SS IV)."""

    PERFORMANCE = "performance"
    FAIL_STOP = "fail_stop"
    ERROR_MESSAGE = "error_message"
    BYZANTINE = "byzantine"


class ByzantineMode(enum.Enum):
    """Refinement of :attr:`Symptom.BYZANTINE` (SS IV).

    Gray failures are partial outages; stalls are temporary freezes;
    incorrect behaviour produces wrong results without any alert.
    """

    GRAY_FAILURE = "gray_failure"
    STALL = "stall"
    INCORRECT_BEHAVIOR = "incorrect_behavior"


class FixCategory(enum.Enum):
    """The three families of fixes in Table I."""

    NO_LOGIC_CHANGES = "no_logic_changes"
    ADD_NEW_LOGIC = "add_new_logic"
    CHANGE_EXISTING_LOGIC = "change_existing_logic"


class FixStrategy(enum.Enum):
    """Concrete fix strategies (Table I), each under one fix family."""

    ROLLBACK_UPGRADES = "rollback_upgrades"
    UPGRADE_PACKAGES = "upgrade_packages"
    ADD_LOGIC = "add_logic"
    ADD_SYNCHRONIZATION = "add_synchronization"
    FIX_CONFIGURATION = "fix_configuration"
    ADD_COMPATIBILITY = "add_compatibility"
    WORKAROUND = "workaround"

    @property
    def category(self) -> FixCategory:
        """The Table I fix family this strategy belongs to."""
        return _FIX_FAMILY[self]


_FIX_FAMILY = {
    FixStrategy.ROLLBACK_UPGRADES: FixCategory.NO_LOGIC_CHANGES,
    FixStrategy.UPGRADE_PACKAGES: FixCategory.NO_LOGIC_CHANGES,
    FixStrategy.ADD_LOGIC: FixCategory.ADD_NEW_LOGIC,
    FixStrategy.ADD_SYNCHRONIZATION: FixCategory.CHANGE_EXISTING_LOGIC,
    FixStrategy.FIX_CONFIGURATION: FixCategory.CHANGE_EXISTING_LOGIC,
    FixStrategy.ADD_COMPATIBILITY: FixCategory.CHANGE_EXISTING_LOGIC,
    FixStrategy.WORKAROUND: FixCategory.CHANGE_EXISTING_LOGIC,
}


class Trigger(enum.Enum):
    """Event class that initiates the bug (Table I, Fig 1)."""

    CONFIGURATION = "configuration"
    EXTERNAL_CALLS = "external_calls"
    NETWORK_EVENTS = "network_events"
    HARDWARE_REBOOTS = "hardware_reboots"


class ConfigSubcategory(enum.Enum):
    """Sub-categories of configuration-triggered bugs (Table III)."""

    CONTROLLER = "controller"
    DATA_PLANE = "data_plane"
    THIRD_PARTY = "third_party"


class ExternalCallKind(enum.Enum):
    """Sub-kinds of external calls (Fig 13 splits external calls into
    system calls, third-party calls, and application calls)."""

    SYSTEM_CALLS = "system_calls"
    THIRD_PARTY_CALLS = "third_party_calls"
    APPLICATION_CALLS = "application_calls"
