"""Persistent store of manual bug labels keyed by bug id."""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Iterator, Mapping

from repro.errors import TaxonomyError
from repro.taxonomy.label import BugLabel


class LabelStore:
    """Maps bug ids (e.g. ``"ONOS-5992"``) to :class:`BugLabel` instances.

    Mirrors the paper's manually labeled dataset: the authors hand-label 50
    closed bugs per controller and keep the labels alongside the tracker data.
    """

    def __init__(self, labels: Mapping[str, BugLabel] | None = None) -> None:
        self._labels: dict[str, BugLabel] = dict(labels or {})

    def __len__(self) -> int:
        return len(self._labels)

    def __contains__(self, bug_id: str) -> bool:
        return bug_id in self._labels

    def __iter__(self) -> Iterator[str]:
        return iter(self._labels)

    def get(self, bug_id: str) -> BugLabel:
        """Return the label for ``bug_id`` or raise :class:`TaxonomyError`."""
        try:
            return self._labels[bug_id]
        except KeyError:
            raise TaxonomyError(f"no label recorded for bug {bug_id!r}") from None

    def add(self, bug_id: str, label: BugLabel, *, overwrite: bool = False) -> None:
        """Record a label.  Re-labeling requires ``overwrite=True``."""
        if bug_id in self._labels and not overwrite:
            raise TaxonomyError(f"bug {bug_id!r} is already labeled")
        self._labels[bug_id] = label

    def items(self) -> Iterable[tuple[str, BugLabel]]:
        return self._labels.items()

    def subset(self, bug_ids: Iterable[str]) -> "LabelStore":
        """A new store restricted to ``bug_ids`` (missing ids are errors)."""
        return LabelStore({bug_id: self.get(bug_id) for bug_id in bug_ids})

    def save(self, path: str | Path) -> None:
        """Write the store as a JSON object keyed by bug id."""
        payload = {bug_id: label.to_dict() for bug_id, label in self._labels.items()}
        Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True))

    @classmethod
    def load(cls, path: str | Path) -> "LabelStore":
        """Read a store previously written by :meth:`save`."""
        raw = json.loads(Path(path).read_text())
        if not isinstance(raw, dict):
            raise TaxonomyError(f"label file {path} must contain a JSON object")
        return cls({bug_id: BugLabel.from_dict(data) for bug_id, data in raw.items()})
