"""Bug labels: one tag per taxonomy dimension, with consistency checks."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro.errors import TaxonomyError
from repro.taxonomy.dimensions import (
    BugType,
    ByzantineMode,
    ConfigSubcategory,
    ExternalCallKind,
    FixStrategy,
    RootCause,
    Symptom,
    Trigger,
)


@dataclass(frozen=True)
class BugLabel:
    """A complete classification of one bug along Table I.

    ``byzantine_mode`` refines :attr:`Symptom.BYZANTINE`; ``config_subcategory``
    refines :attr:`Trigger.CONFIGURATION`; ``external_kind`` refines
    :attr:`Trigger.EXTERNAL_CALLS`.  Refinements must only be present when the
    parent tag is, which :func:`validate_label` enforces.
    """

    bug_type: BugType
    root_cause: RootCause
    symptom: Symptom
    fix: FixStrategy
    trigger: Trigger
    byzantine_mode: ByzantineMode | None = None
    config_subcategory: ConfigSubcategory | None = None
    external_kind: ExternalCallKind | None = None

    def __post_init__(self) -> None:
        validate_label(self)

    def to_dict(self) -> dict[str, str | None]:
        """Serialize to a flat, JSON-friendly mapping of tag values."""
        return {
            "bug_type": self.bug_type.value,
            "root_cause": self.root_cause.value,
            "symptom": self.symptom.value,
            "fix": self.fix.value,
            "trigger": self.trigger.value,
            "byzantine_mode": self.byzantine_mode.value if self.byzantine_mode else None,
            "config_subcategory": (
                self.config_subcategory.value if self.config_subcategory else None
            ),
            "external_kind": self.external_kind.value if self.external_kind else None,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "BugLabel":
        """Inverse of :meth:`to_dict`.

        Raises :class:`TaxonomyError` on unknown tag values.
        """
        try:
            return cls(
                bug_type=BugType(data["bug_type"]),
                root_cause=RootCause(data["root_cause"]),
                symptom=Symptom(data["symptom"]),
                fix=FixStrategy(data["fix"]),
                trigger=Trigger(data["trigger"]),
                byzantine_mode=(
                    ByzantineMode(data["byzantine_mode"])
                    if data.get("byzantine_mode")
                    else None
                ),
                config_subcategory=(
                    ConfigSubcategory(data["config_subcategory"])
                    if data.get("config_subcategory")
                    else None
                ),
                external_kind=(
                    ExternalCallKind(data["external_kind"])
                    if data.get("external_kind")
                    else None
                ),
            )
        except (KeyError, ValueError) as exc:
            raise TaxonomyError(f"invalid label data: {exc}") from exc

    def tags(self) -> dict[str, str]:
        """All non-empty tag values keyed by dimension/refinement name."""
        return {k: v for k, v in self.to_dict().items() if v is not None}


def validate_label(label: BugLabel) -> None:
    """Check taxonomy consistency; raise :class:`TaxonomyError` if violated.

    Rules:
      * refinements require their parent tag (byzantine mode needs a
        BYZANTINE symptom, and so on);
      * a BYZANTINE symptom must carry a mode — the paper always refines it;
      * a misconfiguration root cause is only sensible for configuration or
        external-call triggers (e.g. FAUCET-355's module miscommunication).
    """
    if label.byzantine_mode is not None and label.symptom is not Symptom.BYZANTINE:
        raise TaxonomyError(
            f"byzantine_mode={label.byzantine_mode.value} requires symptom=byzantine, "
            f"got {label.symptom.value}"
        )
    if label.symptom is Symptom.BYZANTINE and label.byzantine_mode is None:
        raise TaxonomyError("byzantine symptom requires a byzantine_mode refinement")
    if (
        label.config_subcategory is not None
        and label.trigger is not Trigger.CONFIGURATION
    ):
        raise TaxonomyError(
            "config_subcategory requires trigger=configuration, "
            f"got {label.trigger.value}"
        )
    if label.external_kind is not None and label.trigger is not Trigger.EXTERNAL_CALLS:
        raise TaxonomyError(
            f"external_kind requires trigger=external_calls, got {label.trigger.value}"
        )
    if label.root_cause is RootCause.HUMAN_MISCONFIGURATION and label.trigger not in (
        Trigger.CONFIGURATION,
        Trigger.EXTERNAL_CALLS,
    ):
        raise TaxonomyError(
            "human_misconfiguration root cause requires a configuration or "
            f"external_calls trigger, got {label.trigger.value}"
        )
