"""The paper's five-dimension bug taxonomy (Table I).

Dimensions: bug type (determinism), root cause, symptom, fix, and trigger,
plus the sub-categories the paper uses for configuration bugs (Table III)
and external calls (Fig 13).
"""

from repro.taxonomy.dimensions import (
    ByzantineMode,
    BugType,
    ConfigSubcategory,
    Dimension,
    ExternalCallKind,
    FixCategory,
    FixStrategy,
    RootCause,
    RootCauseFamily,
    Symptom,
    Trigger,
)
from repro.taxonomy.label import BugLabel, validate_label
from repro.taxonomy.store import LabelStore

__all__ = [
    "BugType",
    "ByzantineMode",
    "ConfigSubcategory",
    "Dimension",
    "ExternalCallKind",
    "FixCategory",
    "FixStrategy",
    "RootCause",
    "RootCauseFamily",
    "Symptom",
    "Trigger",
    "BugLabel",
    "validate_label",
    "LabelStore",
]
