"""Validation protocol for the autoclassifier (SS II-C2).

The paper splits the manually labeled set 2/3 train / 1/3 test and reports
per-dimension accuracies (SVM best: bug type 96%, symptom 86%; fixes were
not predictable).  :func:`validate_pipeline` reproduces exactly that
protocol against ground-truth labels.
"""

from __future__ import annotations

import hashlib
import pickle
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.corpus.dataset import BugDataset
from repro.ml import accuracy_score, confusion_matrix, precision_recall_f1
from repro.ml.model_selection import train_test_split
from repro.pipeline.autoclassifier import AutoClassifier, ClassifierKind


@dataclass
class ValidationReport:
    """Accuracy and per-class metrics for one dimension x classifier."""

    dimension: str
    classifier: ClassifierKind
    accuracy: float
    per_class: Mapping[str, Mapping[str, float]]
    n_train: int
    n_test: int
    confusion: list[list[int]] = field(default_factory=list)
    confusion_labels: list[str] = field(default_factory=list)
    #: sha256 over the trained classifier's parameters — lets equivalence
    #: and crash-recovery harnesses compare *weights* bit for bit without
    #: shipping the arrays around.
    weights_digest: str = ""

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.dimension:12s} {self.classifier.value:14s} "
            f"accuracy={self.accuracy:6.1%}  (train={self.n_train}, test={self.n_test})"
        )


def _weights_digest(model) -> str:
    """sha256 of the trained classifier's parameters.

    Prefers raw weight/bias bytes (LinearSVM); any other classifier kind
    digests its pickled trained state instead.
    """
    classifier = getattr(model, "_classifier", model)
    digest = hashlib.sha256()
    weights = getattr(classifier, "weights_", None)
    bias = getattr(classifier, "bias_", None)
    if weights is not None:
        digest.update(np.ascontiguousarray(weights).tobytes())
        if bias is not None:
            digest.update(np.ascontiguousarray(bias).tobytes())
    else:
        try:
            digest.update(
                pickle.dumps(classifier, protocol=pickle.HIGHEST_PROTOCOL)
            )
        except (pickle.PicklingError, AttributeError, TypeError):
            return ""  # unknown rather than unstable
    return digest.hexdigest()


def validate_pipeline(
    dataset: BugDataset,
    dimension: str,
    *,
    kind: ClassifierKind = ClassifierKind.SVM,
    train_fraction: float = 2.0 / 3.0,
    seed: int = 0,
    classifier_factory=None,
    n_jobs: int = 1,
) -> ValidationReport:
    """Train on 2/3 of ``dataset``, test on 1/3, report accuracy.

    ``dimension`` is a taxonomy dimension name (``bug_type``, ``symptom``,
    ``trigger``, ``root_cause``, ``fix``).
    """
    texts = dataset.texts()
    labels = dataset.labels(dimension)
    X = np.arange(len(texts)).reshape(-1, 1)  # split indices, not features
    X_train, X_test, y_train, y_test = train_test_split(
        X, labels, train_fraction=train_fraction, seed=seed, stratify=True
    )
    train_texts = [texts[int(i)] for i in X_train[:, 0]]
    test_texts = [texts[int(i)] for i in X_test[:, 0]]

    if classifier_factory is not None:
        model = classifier_factory()
    else:
        model = AutoClassifier(kind=kind, seed=seed, n_jobs=n_jobs)
    model.fit(train_texts, y_train)
    predictions = model.predict(test_texts)

    matrix, matrix_labels = confusion_matrix(y_test, predictions)
    return ValidationReport(
        dimension=dimension,
        classifier=kind,
        accuracy=accuracy_score(y_test, predictions),
        per_class=precision_recall_f1(y_test, predictions),
        n_train=len(train_texts),
        n_test=len(test_texts),
        confusion=matrix.tolist(),
        confusion_labels=[str(label) for label in matrix_labels],
        weights_digest=_weights_digest(model),
    )


def validate_all_dimensions(
    dataset: BugDataset,
    *,
    dimensions: Sequence[str] = ("bug_type", "symptom", "trigger", "root_cause", "fix"),
    kind: ClassifierKind = ClassifierKind.SVM,
    seed: int = 0,
) -> dict[str, ValidationReport]:
    """Run :func:`validate_pipeline` across the standard dimensions."""
    return {
        dim: validate_pipeline(dataset, dim, kind=kind, seed=seed)
        for dim in dimensions
    }


def validate_dimensions_resilient(
    dataset: BugDataset,
    *,
    dimensions: Sequence[str] = ("bug_type", "symptom", "trigger", "root_cause", "fix"),
    kind: ClassifierKind = ClassifierKind.SVM,
    seed: int = 0,
    abort_threshold: float | None = None,
) -> tuple[dict[str, "ValidationReport"], "ExecutionReport"]:
    """:func:`validate_all_dimensions` behind a per-dimension fault boundary.

    A dimension that cannot be validated (degenerate label distribution,
    bad ground truth, a classifier blow-up) no longer aborts the whole run:
    it lands in the :class:`~repro.resilience.executor.ExecutionReport`'s
    failure ledger and the remaining dimensions still produce reports, with
    ``degraded=True`` flagging the partial result.
    """
    from repro.resilience.executor import ExecutionReport, ResilientExecutor

    executor = ResilientExecutor(abort_threshold=abort_threshold)
    execution = executor.map(
        lambda dim: validate_pipeline(dataset, dim, kind=kind, seed=seed),
        dimensions,
    )
    reports = {
        dimensions[index]: report for index, report in execution.results.items()
    }
    return reports, execution
