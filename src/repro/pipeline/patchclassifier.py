"""Fix classification from patch metadata (SS II-C1).

The paper could not predict fix strategies from bug *descriptions* ("bug
descriptions generally provide little data about the fixes") and instead
verified fixes by "manually analyzing the source code patches".  This
module automates that manual step: a rule-based classifier over Gerrit
change metadata — files touched, subject wording, insertion/deletion
balance — recovers the fix strategy that text classification cannot.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.corpus.dataset import BugDataset
from repro.taxonomy import FixCategory, FixStrategy
from repro.trackers.models import GerritChange

#: Subject keywords per strategy, checked in priority order (first match
#: wins); chosen to mirror how developers actually title such changes.
_SUBJECT_RULES: tuple[tuple[FixStrategy, tuple[str, ...]], ...] = (
    (FixStrategy.ROLLBACK_UPGRADES, ("revert", "roll back", "rollback")),
    (FixStrategy.ADD_SYNCHRONIZATION, ("lock", "synchroniz", "race", "mutex")),
    (FixStrategy.ADD_COMPATIBILITY, ("adapt", "compat", "signature", "api of")),
    (FixStrategy.UPGRADE_PACKAGES, ("bump", "upgrade", "update dependency")),
    (FixStrategy.WORKAROUND, ("work around", "workaround", "guard against")),
    (FixStrategy.FIX_CONFIGURATION, ("config", "default value")),
    (FixStrategy.ADD_LOGIC, ("add handling", "handle", "add support")),
)

_DEPENDENCY_FILES = ("pom.xml", "requirements.txt", "versions.lock", "build.gradle")
_CONFIG_SUFFIXES = (".yaml", ".yml", ".json", ".conf", ".ini", ".properties")


@dataclass(frozen=True)
class PatchPrediction:
    """Predicted fix strategy with the rule that produced it."""

    strategy: FixStrategy
    rule: str

    @property
    def category(self) -> FixCategory:
        return self.strategy.category


class PatchFixClassifier:
    """Rule-based fix-strategy classification from a Gerrit change."""

    def classify(self, change: GerritChange) -> PatchPrediction:
        subject = change.subject.lower()
        files = [f.lower() for f in change.files_changed]
        dependency_only = bool(files) and all(
            any(f.endswith(dep) for dep in _DEPENDENCY_FILES) for f in files
        )
        config_only = bool(files) and all(
            f.endswith(_CONFIG_SUFFIXES) for f in files
        )

        # File-shape rules first: they are the strongest signal.
        if dependency_only:
            if any(k in subject for k in ("revert", "roll back", "rollback")):
                return PatchPrediction(
                    FixStrategy.ROLLBACK_UPGRADES, "dependency files + revert subject"
                )
            return PatchPrediction(
                FixStrategy.UPGRADE_PACKAGES, "only dependency manifests touched"
            )
        if config_only:
            return PatchPrediction(
                FixStrategy.FIX_CONFIGURATION, "only configuration files touched"
            )

        # Subject keyword rules.
        for strategy, keywords in _SUBJECT_RULES:
            if any(keyword in subject for keyword in keywords):
                return PatchPrediction(strategy, f"subject keyword ({keywords[0]})")

        # Diff-shape fallback: big additive changes are new logic; balanced
        # medium changes with a manifest in the mix are compatibility work.
        touches_deps = any(
            any(f.endswith(dep) for dep in _DEPENDENCY_FILES) for f in files
        )
        if touches_deps:
            return PatchPrediction(
                FixStrategy.ADD_COMPATIBILITY, "source + manifest co-change"
            )
        if change.insertions >= 3 * max(change.deletions, 1):
            return PatchPrediction(FixStrategy.ADD_LOGIC, "strongly additive diff")
        return PatchPrediction(FixStrategy.WORKAROUND, "small balanced source diff")


@dataclass
class PatchEvaluation:
    """Accuracy of patch-based fix classification on a labeled dataset."""

    n_bugs: int
    strategy_accuracy: float
    category_accuracy: float
    per_strategy: dict[FixStrategy, tuple[int, int]]  # (hits, total)


def evaluate_patch_classifier(dataset: BugDataset) -> PatchEvaluation:
    """Score the classifier on every bug carrying a Gerrit change."""
    classifier = PatchFixClassifier()
    strategy_hits = 0
    category_hits = 0
    per_strategy: dict[FixStrategy, list[int]] = {}
    n = 0
    for bug in dataset:
        if not bug.report.gerrit_changes:
            continue
        n += 1
        prediction = classifier.classify(bug.report.gerrit_changes[0])
        truth = bug.label.fix
        hit = prediction.strategy is truth
        strategy_hits += hit
        category_hits += prediction.category is truth.category
        stats = per_strategy.setdefault(truth, [0, 0])
        stats[0] += hit
        stats[1] += 1
    if n == 0:
        raise ValueError("dataset has no bugs with Gerrit changes")
    return PatchEvaluation(
        n_bugs=n,
        strategy_accuracy=strategy_hits / n,
        category_accuracy=category_hits / n,
        per_strategy={k: (v[0], v[1]) for k, v in per_strategy.items()},
    )
