"""The bug autoclassifier: text -> Euclidean vector -> taxonomy tag.

Mirrors SS II-C:

1. tokenize + TF-IDF features (NMF is available for keyword extraction);
2. optionally train Word2Vec on the corpus and embed each bug description
   (IDF-weighted average of word vectors);
3. train a classic ML classifier.  The paper found "SVM with normalization"
   the most accurate — here that is a linear SVM over L2-normalized TF-IDF
   rows (plus the normalized embedding block).  Decision Tree, AdaBoost and
   Naive Bayes are available for the comparison experiments, and a PCA
   projection of the TF-IDF block can be enabled to reproduce the paper's
   PCA variant.
"""

from __future__ import annotations

import enum
from typing import Sequence

import numpy as np

from repro.embeddings import DocumentVectorizer, Word2Vec
from repro.errors import NotFittedError
from repro.ml import (
    AdaBoostClassifier,
    DecisionTreeClassifier,
    GaussianNB,
    LinearSVM,
    PCA,
)
from repro.textmining import TfidfVectorizer, Tokenizer


class ClassifierKind(enum.Enum):
    """Classifier families explored in the paper's validation."""

    SVM = "svm"
    DECISION_TREE = "decision_tree"
    ADABOOST = "adaboost"
    NAIVE_BAYES = "naive_bayes"


def _make_classifier(kind: ClassifierKind, seed: int, n_jobs: int = 1):
    if kind is ClassifierKind.SVM:
        return LinearSVM(regularization=1e-3, epochs=40, seed=seed, n_jobs=n_jobs)
    if kind is ClassifierKind.DECISION_TREE:
        return DecisionTreeClassifier(max_depth=12, min_samples_leaf=2)
    if kind is ClassifierKind.ADABOOST:
        return AdaBoostClassifier(n_estimators=80)
    if kind is ClassifierKind.NAIVE_BAYES:
        return GaussianNB()
    raise ValueError(f"unknown classifier kind {kind!r}")


def _l2_rows(matrix: np.ndarray) -> np.ndarray:
    norms = np.linalg.norm(matrix, axis=1, keepdims=True)
    norms[norms == 0.0] = 1.0
    return matrix / norms


class AutoClassifier:
    """Text classifier for one taxonomy dimension.

    Parameters
    ----------
    kind:
        Classifier family (default: SVM, the paper's best).
    use_embeddings:
        Append a Word2Vec document-vector block to the TF-IDF features.
    pca_dim:
        If set, replace the raw TF-IDF block with its ``pca_dim``-component
        PCA projection (the paper's PCA variant; hurts accuracy on small
        training sets, which is why the paper settled on SVM+normalization).
    embedding_dim / word2vec_epochs:
        Word2Vec hyper-parameters for the embedding block.
    seed:
        Controls Word2Vec init/shuffling and SVM shuffling.
    n_jobs:
        Workers for the SVM's per-class one-vs-rest training (other
        classifier kinds train serially).  Results are independent of
        ``n_jobs`` bit-for-bit.
    """

    def __init__(
        self,
        *,
        kind: ClassifierKind = ClassifierKind.SVM,
        use_embeddings: bool = True,
        pca_dim: int | None = None,
        embedding_dim: int = 48,
        word2vec_epochs: int = 3,
        seed: int = 0,
        n_jobs: int = 1,
    ) -> None:
        self.kind = kind
        self.use_embeddings = use_embeddings
        self.pca_dim = pca_dim
        self.embedding_dim = embedding_dim
        self.word2vec_epochs = word2vec_epochs
        self.seed = seed
        self.n_jobs = n_jobs
        self.tokenizer = Tokenizer()
        self._tfidf: TfidfVectorizer | None = None
        self._pca: PCA | None = None
        self._word2vec: Word2Vec | None = None
        self._docvec: DocumentVectorizer | None = None
        self._classifier = None

    # -- feature construction -------------------------------------------------
    def _featurize(self, token_docs: list[list[str]], *, fit: bool) -> np.ndarray:
        if fit:
            self._tfidf = TfidfVectorizer(min_count=2)
            tfidf_block = self._tfidf.fit_transform(token_docs)
            if self.pca_dim is not None:
                self._pca = PCA(n_components=self.pca_dim)
                tfidf_block = _l2_rows(self._pca.fit_transform(tfidf_block))
        else:
            if self._tfidf is None:
                raise NotFittedError("AutoClassifier used before fit")
            tfidf_block = self._tfidf.transform(token_docs)
            if self._pca is not None:
                tfidf_block = _l2_rows(self._pca.transform(tfidf_block))
        blocks = [tfidf_block]
        if self.use_embeddings:
            if fit:
                self._word2vec = Word2Vec(
                    vector_size=self.embedding_dim,
                    epochs=self.word2vec_epochs,
                    min_count=2,
                    seed=self.seed,
                )
                self._word2vec.fit(token_docs)
                self._docvec = DocumentVectorizer(self._word2vec)
            if self._docvec is None:
                raise NotFittedError("AutoClassifier used before fit")
            blocks.append(_l2_rows(self._docvec.transform(token_docs)))
        return np.hstack(blocks)

    # -- training / prediction --------------------------------------------------
    def fit(self, texts: Sequence[str], labels: Sequence[str]) -> "AutoClassifier":
        """Train end-to-end on raw bug texts and their dimension tags."""
        if len(texts) != len(labels):
            raise ValueError("texts and labels have different lengths")
        token_docs = self.tokenizer.tokenize_all(texts)
        features = self._featurize(token_docs, fit=True)
        self._classifier = _make_classifier(self.kind, self.seed, self.n_jobs)
        self._classifier.fit(features, list(labels))
        return self

    def predict(self, texts: Sequence[str]) -> list[str]:
        """Predict the dimension tag for each raw text."""
        if self._classifier is None:
            raise NotFittedError("AutoClassifier.predict called before fit")
        token_docs = self.tokenizer.tokenize_all(texts)
        features = self._featurize(token_docs, fit=False)
        return self._classifier.predict(features)

    def embed(self, texts: Sequence[str]) -> np.ndarray:
        """The Euclidean representation of each text (the feature rows)."""
        if self._classifier is None:
            raise NotFittedError("AutoClassifier.embed called before fit")
        token_docs = self.tokenizer.tokenize_all(texts)
        return self._featurize(token_docs, fit=False)
