"""Robustness ablations for the threats to validity (SS VIII).

Three questions the paper's threats section raises, made measurable:

* **Annotator noise** — "our manual analysis's validity is predicated on
  the fact that the bugs are accurately described and reported".  How fast
  does classifier accuracy degrade as training labels are corrupted?
* **Sample size** — is 50 manually labeled bugs per controller enough?
* **Generalizability** — "we believe that our analysis generalizes to
  future controllers".  Does a model trained on two controllers transfer to
  the third (whose vocabulary it has never seen)?
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import numpy as np

from repro.corpus.dataset import BugDataset
from repro.ml import accuracy_score
from repro.ml.model_selection import train_test_split
from repro.pipeline.autoclassifier import AutoClassifier


def _split_texts(dataset: BugDataset, dimension: str, *, seed: int):
    texts = dataset.texts()
    labels = dataset.labels(dimension)
    index = np.arange(len(texts)).reshape(-1, 1)
    X_train, X_test, y_train, y_test = train_test_split(
        index, labels, seed=seed, stratify=True
    )
    train_texts = [texts[int(i)] for i in X_train[:, 0]]
    test_texts = [texts[int(i)] for i in X_test[:, 0]]
    return train_texts, test_texts, y_train, y_test


def accuracy_under_label_noise(
    dataset: BugDataset,
    dimension: str,
    noise_rate: float,
    *,
    seed: int = 0,
) -> float:
    """Test accuracy after flipping ``noise_rate`` of *training* labels to a
    uniformly random different tag (test labels stay clean)."""
    if not 0.0 <= noise_rate < 1.0:
        raise ValueError("noise_rate must be in [0, 1)")
    train_texts, test_texts, y_train, y_test = _split_texts(
        dataset, dimension, seed=seed
    )
    rng = random.Random(seed + 1)
    tags = sorted(set(y_train))
    noisy = list(y_train)
    flip_count = int(round(noise_rate * len(noisy)))
    for i in rng.sample(range(len(noisy)), flip_count):
        alternatives = [t for t in tags if t != noisy[i]]
        if alternatives:
            noisy[i] = rng.choice(alternatives)
    model = AutoClassifier(seed=seed).fit(train_texts, noisy)
    return accuracy_score(y_test, model.predict(test_texts))


def accuracy_vs_sample_size(
    dataset: BugDataset,
    dimension: str,
    per_controller_sizes: list[int],
    *,
    seed: int = 0,
) -> dict[int, float]:
    """Held-out accuracy as a function of the manual-sample size.

    For each size, a fresh manual sample of that many *closed* bugs per
    controller is drawn and validated with the standard 2/3-1/3 protocol.
    """
    results: dict[int, float] = {}
    for size in per_controller_sizes:
        sample = dataset.manual_sample(per_controller=size, seed=seed)
        train_texts, test_texts, y_train, y_test = _split_texts(
            sample, dimension, seed=seed
        )
        model = AutoClassifier(seed=seed).fit(train_texts, y_train)
        results[size] = accuracy_score(y_test, model.predict(test_texts))
    return results


@dataclass(frozen=True)
class TransferResult:
    """Leave-one-controller-out transfer result."""

    held_out: str
    accuracy: float
    n_train: int
    n_test: int


def cross_controller_transfer(
    dataset: BugDataset, dimension: str, *, seed: int = 0
) -> list[TransferResult]:
    """Train on two controllers' bugs, test on the third, for each fold."""
    results: list[TransferResult] = []
    for held_out in dataset.controllers:
        train_set = dataset.filter(lambda b: b.controller != held_out)
        test_set = dataset.by_controller(held_out)
        model = AutoClassifier(seed=seed)
        model.fit(train_set.texts(), train_set.labels(dimension))
        predictions = model.predict(test_set.texts())
        results.append(
            TransferResult(
                held_out=held_out,
                accuracy=accuracy_score(test_set.labels(dimension), predictions),
                n_train=len(train_set),
                n_test=len(test_set),
            )
        )
    return results
