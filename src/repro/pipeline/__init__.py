"""End-to-end NLP autoclassification pipeline (SS II-C).

Feature extraction (TF-IDF + NMF keywords), Word2Vec document embedding,
and classical classifiers (SVM / DT / PCA+SVM / AdaBoost), with the paper's
2/3-1/3 validation protocol.
"""

from repro.pipeline.autoclassifier import AutoClassifier, ClassifierKind
from repro.pipeline.scaling import PipelineResult, StageTiming, run_pipeline
from repro.pipeline.validation import (
    ValidationReport,
    validate_all_dimensions,
    validate_dimensions_resilient,
    validate_pipeline,
)

__all__ = [
    "AutoClassifier",
    "ClassifierKind",
    "PipelineResult",
    "StageTiming",
    "ValidationReport",
    "run_pipeline",
    "validate_all_dimensions",
    "validate_dimensions_resilient",
    "validate_pipeline",
]
