"""The NLP scaling pipeline: corpus -> TF-IDF -> NMF -> per-dimension SVM.

This is the paper's §IV hot path (TF-IDF → NMF → SVM/Tree/AdaBoost) run
end-to-end the way tracker-mining studies actually run it: repeatedly,
with varied parameters.  Two levers make repeats fast by default:

* a :class:`~repro.parallel.WorkPool` fans out every independent unit
  (corpus shards, TF-IDF row shards, NMF restarts, per-class SVM
  problems) under the deterministic-ordering contract, and
* an :class:`~repro.parallel.ArtifactCache` keyed on corpus seed +
  vectorizer/model hyperparameters skips stages whose configuration has
  not changed.

Worker count and cache state are *performance* knobs only: every stage is
bit-for-bit identical for jobs=1, jobs=N, and warm-cache runs (enforced
by ``tests/test_parallel_equivalence.py``).  Worker counts therefore never
appear in cache keys.

A third lever makes long runs *durable*: pass ``run_id=`` to journal every
stage through a :class:`~repro.recovery.RunJournal` (begin/commit WAL over
the cache's atomic checkpoints), and ``resume=`` to restart a killed run —
committed stages are skipped after digest verification, execution restarts
at the first uncommitted stage, and the result is bit-for-bit identical to
an uninterrupted run (enforced by ``tests/test_crash_resume.py``).
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

from repro.parallel import ArtifactCache, WorkPool, canonicalize
from repro.pipeline.autoclassifier import ClassifierKind
from repro.pipeline.validation import ValidationReport, validate_pipeline
from repro.recovery.checkpoint import (
    CheckpointManager,
    RecoveryError,
    open_run_journal,
)
from repro.recovery.journal import EVENT_RUN_END, JournalEvent, RunJournal

#: Hyperparameters of the pipeline's TF-IDF stage, part of its cache key.
_TFIDF_PARAMS = {"min_count": 2, "sublinear_tf": False, "normalize": True}
#: SVM hyperparameters baked into AutoClassifier, part of validation keys.
_SVM_PARAMS = {"regularization": 1e-3, "epochs": 40, "class_weight": "balanced"}


@dataclass
class StageTiming:
    """Wall-clock and cache outcome for one pipeline stage."""

    stage: str
    seconds: float
    cache_hit: bool = False


@dataclass
class PipelineResult:
    """Everything one pipeline run produced, plus how long each stage took."""

    seed: int
    jobs: int
    stages: list[StageTiming] = field(default_factory=list)
    reports: dict[str, ValidationReport] = field(default_factory=dict)
    topics: list[list[str]] = field(default_factory=list)
    topic_errors: dict[int, float] = field(default_factory=dict)
    n_documents: int = 0
    n_features: int = 0
    #: Journal identity of this run (``None`` for unjournaled runs).
    run_id: str | None = None
    #: True when this result came from ``resume=``.
    resumed: bool = False
    #: Stages satisfied straight from journal-committed checkpoints.
    skipped_stages: list[str] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        return sum(stage.seconds for stage in self.stages)

    def accuracies(self) -> dict[str, float]:
        """Per-dimension accuracy — the equivalence-test comparison unit."""
        return {dim: report.accuracy for dim, report in self.reports.items()}

    def stage(self, name: str) -> StageTiming:
        for timing in self.stages:
            if timing.stage == name:
                return timing
        raise KeyError(name)


def result_metrics(result: PipelineResult, registry=None):
    """Project a finished :class:`PipelineResult` onto a registry.

    Stage outcomes become ``pipeline_stages_total{outcome}`` (computed vs
    cache-hit vs journal-skip), stage wall times feed the
    ``pipeline_stage_seconds{stage}`` histogram, and corpus dimensions
    become gauges.  Returns the registry.
    """
    from repro.observability.metrics import MetricsRegistry

    registry = registry if registry is not None else MetricsRegistry()
    outcomes = registry.counter(
        "pipeline_stages_total",
        "Pipeline stages by execution outcome",
        labels=["outcome"],
    )
    seconds = registry.histogram(
        "pipeline_stage_seconds",
        "Wall-clock seconds per pipeline stage",
        labels=["stage"],
        buckets=(0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0),
    )
    skipped = set(result.skipped_stages)
    for timing in result.stages:
        if timing.stage in skipped:
            outcome = "journal_skip"
        elif timing.cache_hit:
            outcome = "cache_hit"
        else:
            outcome = "computed"
        outcomes.labels(outcome=outcome).inc()
        seconds.labels(stage=timing.stage).observe(timing.seconds)
    registry.gauge(
        "pipeline_documents", "Documents vectorized"
    ).set(result.n_documents)
    registry.gauge(
        "pipeline_features", "TF-IDF vocabulary size"
    ).set(result.n_features)
    return registry


class _Timer:
    def __init__(self, result: PipelineResult, stage: str) -> None:
        self.result = result
        self.stage = stage
        self.cache_hit = False

    def __enter__(self) -> "_Timer":
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        self.result.stages.append(
            StageTiming(
                stage=self.stage,
                seconds=time.perf_counter() - self.start,
                cache_hit=self.cache_hit,
            )
        )


def pipeline_config_digest(
    *,
    seed: int,
    dimensions: Sequence[str],
    kind: ClassifierKind,
    n_topics: int,
    nmf_restarts: int,
    split_seed: int,
) -> str:
    """Digest of everything that determines a pipeline run's outputs.

    ``jobs`` and cache state are deliberately absent — they are performance
    knobs under the equivalence contract, so a run may legally resume with
    a different worker count.
    """
    config = canonicalize({
        "seed": seed,
        "dimensions": list(dimensions),
        "classifier": kind,
        "n_topics": n_topics,
        "nmf_restarts": nmf_restarts,
        "split_seed": split_seed,
        "tfidf": _TFIDF_PARAMS,
        "svm": _SVM_PARAMS,
    })
    payload = json.dumps(config, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _open_pipeline_journal(
    cache: ArtifactCache | None,
    run_id: str,
    resume: bool,
    journal_root: str | Path | None,
    config_digest: str,
    on_journal_event: Callable[[JournalEvent], None] | None,
) -> tuple[RunJournal, dict[str, JournalEvent]]:
    """Open (or replay-then-reopen) the journal for one pipeline run."""
    if cache is None:
        raise RecoveryError(
            "journaled pipeline runs require an artifact cache "
            "(checkpoints are what resume recovers from)"
        )
    root = Path(journal_root) if journal_root is not None else cache.root / ".journal"
    return open_run_journal(
        root / f"{run_id}.jsonl", run_id,
        resume=resume, config_digest=config_digest, on_event=on_journal_event,
    )


def run_pipeline(
    *,
    seed: int = 2020,
    jobs: int = 1,
    cache: ArtifactCache | None = None,
    dimensions: Sequence[str] = ("bug_type", "symptom", "fix"),
    kind: ClassifierKind = ClassifierKind.SVM,
    n_topics: int = 8,
    nmf_restarts: int = 4,
    split_seed: int = 0,
    run_id: str | None = None,
    resume: str | None = None,
    journal_root: str | Path | None = None,
    on_journal_event: Callable[[JournalEvent], None] | None = None,
    metrics=None,
) -> PipelineResult:
    """Run the full NLP scaling pipeline once.

    ``jobs`` sets the :class:`WorkPool` width for every stage; ``cache``
    (optional) skips stages whose full configuration is already stored.
    ``run_id`` journals every stage begin/commit so a killed run can be
    continued with ``resume=run_id``: committed stages are verified against
    the journal's digests and skipped, the rest re-execute.  ``metrics``
    (an observability ``MetricsRegistry``) receives the stage-outcome
    projection from :func:`result_metrics` when the run finishes.
    """
    from repro.corpus import CorpusGenerator
    from repro.ml.nmf import nmf_multi_restart
    from repro.textmining import TfidfVectorizer, Tokenizer

    if resume is not None:
        if run_id is not None and run_id != resume:
            raise RecoveryError(
                f"conflicting run ids: run_id={run_id!r}, resume={resume!r}"
            )
        run_id = resume

    journal: RunJournal | None = None
    manager: CheckpointManager | None = None
    if run_id is not None:
        config_digest = pipeline_config_digest(
            seed=seed, dimensions=dimensions, kind=kind, n_topics=n_topics,
            nmf_restarts=nmf_restarts, split_seed=split_seed,
        )
        journal, committed = _open_pipeline_journal(
            cache, run_id, resume is not None, journal_root,
            config_digest, on_journal_event,
        )
        manager = CheckpointManager(cache, journal, committed=committed)

    pool = WorkPool(jobs)
    result = PipelineResult(
        seed=seed, jobs=jobs, run_id=run_id, resumed=resume is not None
    )

    def _stage(timer, name, namespace, params, compute):
        if manager is not None:
            value, outcome = manager.run_stage(name, namespace, params, compute)
            timer.cache_hit = outcome.hit
            return value
        if cache is not None:
            value, timer.cache_hit = cache.get_or_compute(
                namespace, params, compute
            )
            return value
        return compute()

    try:
        corpus_params = {"seed": seed, "stage": "study-corpus"}
        with _Timer(result, "corpus") as timer:
            corpus = _stage(
                timer, "corpus", "corpus", corpus_params,
                CorpusGenerator(seed=seed).generate,
            )

        sample = corpus.manual_sample
        texts = sample.texts()

        tfidf_params = {"seed": seed, **_TFIDF_PARAMS}
        with _Timer(result, "tfidf") as timer:
            def _build_tfidf():
                token_docs = Tokenizer().tokenize_all(texts)
                vectorizer = TfidfVectorizer(min_count=_TFIDF_PARAMS["min_count"])
                matrix = vectorizer.fit_transform(token_docs, pool=pool)
                return matrix, vectorizer.feature_names

            matrix, feature_names = _stage(
                timer, "tfidf", "tfidf", tfidf_params, _build_tfidf
            )
        result.n_documents, result.n_features = matrix.shape

        nmf_params = {
            "seed": seed,
            "n_topics": n_topics,
            "restarts": nmf_restarts,
            "tfidf": _TFIDF_PARAMS,
        }
        with _Timer(result, "nmf") as timer:
            def _build_topics():
                restart = nmf_multi_restart(
                    matrix, n_topics, restarts=nmf_restarts, pool=pool
                )
                return restart.model.top_terms(feature_names, 8), restart.errors

            topics, errors = _stage(timer, "nmf", "nmf", nmf_params, _build_topics)
        result.topics = topics
        result.topic_errors = errors

        for dimension in dimensions:
            params = {
                "seed": seed,
                "split_seed": split_seed,
                "dimension": dimension,
                "classifier": kind,
                "svm": _SVM_PARAMS if kind is ClassifierKind.SVM else None,
            }
            with _Timer(result, f"validate:{dimension}") as timer:
                def _validate(dimension: str = dimension):
                    return validate_pipeline(
                        sample, dimension, kind=kind, seed=split_seed, n_jobs=jobs
                    )

                report = _stage(
                    timer, f"validate:{dimension}",
                    f"validation-{kind.value}", params, _validate,
                )
            result.reports[dimension] = report

        if journal is not None:
            journal.append(EVENT_RUN_END)
    finally:
        if journal is not None:
            journal.close()
    if manager is not None:
        result.skipped_stages = manager.skipped_stages()
    if metrics is not None:
        result_metrics(result, metrics)
    return result
