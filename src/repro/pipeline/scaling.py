"""The NLP scaling pipeline: corpus -> TF-IDF -> NMF -> per-dimension SVM.

This is the paper's §IV hot path (TF-IDF → NMF → SVM/Tree/AdaBoost) run
end-to-end the way tracker-mining studies actually run it: repeatedly,
with varied parameters.  Two levers make repeats fast by default:

* a :class:`~repro.parallel.WorkPool` fans out every independent unit
  (corpus shards, TF-IDF row shards, NMF restarts, per-class SVM
  problems) under the deterministic-ordering contract, and
* an :class:`~repro.parallel.ArtifactCache` keyed on corpus seed +
  vectorizer/model hyperparameters skips stages whose configuration has
  not changed.

Worker count and cache state are *performance* knobs only: every stage is
bit-for-bit identical for jobs=1, jobs=N, and warm-cache runs (enforced
by ``tests/test_parallel_equivalence.py``).  Worker counts therefore never
appear in cache keys.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

from repro.parallel import ArtifactCache, WorkPool
from repro.pipeline.autoclassifier import ClassifierKind
from repro.pipeline.validation import ValidationReport, validate_pipeline

#: Hyperparameters of the pipeline's TF-IDF stage, part of its cache key.
_TFIDF_PARAMS = {"min_count": 2, "sublinear_tf": False, "normalize": True}
#: SVM hyperparameters baked into AutoClassifier, part of validation keys.
_SVM_PARAMS = {"regularization": 1e-3, "epochs": 40, "class_weight": "balanced"}


@dataclass
class StageTiming:
    """Wall-clock and cache outcome for one pipeline stage."""

    stage: str
    seconds: float
    cache_hit: bool = False


@dataclass
class PipelineResult:
    """Everything one pipeline run produced, plus how long each stage took."""

    seed: int
    jobs: int
    stages: list[StageTiming] = field(default_factory=list)
    reports: dict[str, ValidationReport] = field(default_factory=dict)
    topics: list[list[str]] = field(default_factory=list)
    topic_errors: dict[int, float] = field(default_factory=dict)
    n_documents: int = 0
    n_features: int = 0

    @property
    def total_seconds(self) -> float:
        return sum(stage.seconds for stage in self.stages)

    def accuracies(self) -> dict[str, float]:
        """Per-dimension accuracy — the equivalence-test comparison unit."""
        return {dim: report.accuracy for dim, report in self.reports.items()}

    def stage(self, name: str) -> StageTiming:
        for timing in self.stages:
            if timing.stage == name:
                return timing
        raise KeyError(name)


class _Timer:
    def __init__(self, result: PipelineResult, stage: str) -> None:
        self.result = result
        self.stage = stage
        self.cache_hit = False

    def __enter__(self) -> "_Timer":
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        self.result.stages.append(
            StageTiming(
                stage=self.stage,
                seconds=time.perf_counter() - self.start,
                cache_hit=self.cache_hit,
            )
        )


def run_pipeline(
    *,
    seed: int = 2020,
    jobs: int = 1,
    cache: ArtifactCache | None = None,
    dimensions: Sequence[str] = ("bug_type", "symptom", "fix"),
    kind: ClassifierKind = ClassifierKind.SVM,
    n_topics: int = 8,
    nmf_restarts: int = 4,
    split_seed: int = 0,
) -> PipelineResult:
    """Run the full NLP scaling pipeline once.

    ``jobs`` sets the :class:`WorkPool` width for every stage; ``cache``
    (optional) skips stages whose full configuration is already stored.
    """
    from repro.corpus import CorpusGenerator
    from repro.ml.nmf import nmf_multi_restart
    from repro.textmining import TfidfVectorizer, Tokenizer

    pool = WorkPool(jobs)
    result = PipelineResult(seed=seed, jobs=jobs)

    corpus_params = {"seed": seed, "stage": "study-corpus"}
    with _Timer(result, "corpus") as timer:
        if cache is not None:
            corpus, timer.cache_hit = cache.get_or_compute(
                "corpus", corpus_params, CorpusGenerator(seed=seed).generate
            )
        else:
            corpus = CorpusGenerator(seed=seed).generate()

    sample = corpus.manual_sample
    texts = sample.texts()

    tfidf_params = {"seed": seed, **_TFIDF_PARAMS}
    with _Timer(result, "tfidf") as timer:
        def _build_tfidf():
            token_docs = Tokenizer().tokenize_all(texts)
            vectorizer = TfidfVectorizer(min_count=_TFIDF_PARAMS["min_count"])
            matrix = vectorizer.fit_transform(token_docs, pool=pool)
            return matrix, vectorizer.feature_names

        if cache is not None:
            (matrix, feature_names), timer.cache_hit = cache.get_or_compute(
                "tfidf", tfidf_params, _build_tfidf
            )
        else:
            matrix, feature_names = _build_tfidf()
    result.n_documents, result.n_features = matrix.shape

    nmf_params = {
        "seed": seed,
        "n_topics": n_topics,
        "restarts": nmf_restarts,
        "tfidf": _TFIDF_PARAMS,
    }
    with _Timer(result, "nmf") as timer:
        def _build_topics():
            restart = nmf_multi_restart(
                matrix, n_topics, restarts=nmf_restarts, pool=pool
            )
            return restart.model.top_terms(feature_names, 8), restart.errors

        if cache is not None:
            (topics, errors), timer.cache_hit = cache.get_or_compute(
                "nmf", nmf_params, _build_topics
            )
        else:
            topics, errors = _build_topics()
    result.topics = topics
    result.topic_errors = errors

    for dimension in dimensions:
        params = {
            "seed": seed,
            "split_seed": split_seed,
            "dimension": dimension,
            "classifier": kind,
            "svm": _SVM_PARAMS if kind is ClassifierKind.SVM else None,
        }
        with _Timer(result, f"validate:{dimension}") as timer:
            def _validate(dimension: str = dimension):
                return validate_pipeline(
                    sample, dimension, kind=kind, seed=split_seed, n_jobs=jobs
                )

            if cache is not None:
                report, timer.cache_hit = cache.get_or_compute(
                    f"validation-{kind.value}", params, _validate
                )
            else:
                report = _validate()
        result.reports[dimension] = report
    return result
