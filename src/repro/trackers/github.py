"""GitHub-like issue tracker substrate (FAUCET).

Deliberately *less* informative than JIRA, matching SS VIII: issues have
free-form labels but no structured severity field, and closing an issue does
not expose a resolution timestamp to the miner.  Severity must be recovered
with the keyword approach (:mod:`repro.trackers.severity`).
"""

from __future__ import annotations

from datetime import datetime
from typing import Callable, Iterator

from repro.errors import TrackerError
from repro.trackers.models import BugReport, IssueStatus


class GithubTracker:
    """In-memory GitHub repository issue list.

    Issue ids are ``<repo>-<n>`` with a repo-wide sequence (GitHub numbers
    issues and pull requests from one counter; we model issues only).
    """

    def __init__(self, repo: str) -> None:
        if not repo:
            raise TrackerError("repo name must be non-empty")
        self.repo = repo
        self._issues: dict[str, BugReport] = {}
        self._sequence = 0

    def __len__(self) -> int:
        return len(self._issues)

    def __iter__(self) -> Iterator[BugReport]:
        return iter(self._issues.values())

    def open_issue(
        self,
        *,
        title: str,
        description: str,
        created_at: datetime,
        labels: tuple[str, ...] = (),
        reporter: str = "unknown",
    ) -> BugReport:
        """File a new issue.  No severity — GitHub has no such field."""
        self._sequence += 1
        bug_id = f"{self.repo}-{self._sequence}"
        report = BugReport(
            bug_id=bug_id,
            controller=self.repo,
            title=title,
            description=description,
            created_at=created_at,
            labels=labels,
            reporter=reporter,
        )
        self._issues[bug_id] = report
        return report

    def add(self, report: BugReport) -> None:
        """Register a pre-built report (used by the corpus generator).

        Enforces the GitHub information model: no structured severity and no
        resolution timestamp.
        """
        if not report.bug_id.startswith(self.repo + "-"):
            raise TrackerError(
                f"issue {report.bug_id!r} does not belong to repo {self.repo!r}"
            )
        if report.severity is not None:
            raise TrackerError("GitHub issues carry no structured severity")
        if report.resolved_at is not None:
            raise TrackerError(
                "GitHub tracker does not expose resolution timestamps (SS VIII)"
            )
        if report.bug_id in self._issues:
            raise TrackerError(f"duplicate issue id {report.bug_id!r}")
        self._issues[report.bug_id] = report
        seq = int(report.bug_id.rsplit("-", 1)[1])
        self._sequence = max(self._sequence, seq)

    def get(self, bug_id: str) -> BugReport:
        try:
            return self._issues[bug_id]
        except KeyError:
            raise TrackerError(f"no such issue {bug_id!r}") from None

    def close(self, bug_id: str) -> None:
        """Close an issue.  Note: no resolution timestamp is recorded."""
        self.get(bug_id).status = IssueStatus.CLOSED

    def search(
        self,
        *,
        label: str | None = None,
        status: IssueStatus | None = None,
        predicate: Callable[[BugReport], bool] | None = None,
    ) -> list[BugReport]:
        """Filter issues; criteria are conjunctive."""
        results = []
        for report in self._issues.values():
            if label is not None and label not in report.labels:
                continue
            if status is not None and report.status is not status:
                continue
            if predicate is not None and not predicate(report):
                continue
            results.append(report)
        return sorted(results, key=lambda r: (r.created_at, r.bug_id))
