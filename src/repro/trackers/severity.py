"""Keyword-based severity extraction for GitHub issues (SS II-B).

FAUCET's GitHub tracker has no severity field; the paper recovers severity
"using a keyword approach" over title + body + labels.  This extractor scores
weighted keyword hits and maps the score to the JIRA severity ladder.
"""

from __future__ import annotations

import re
from typing import Mapping

from repro.trackers.models import BugReport, Severity

#: Default keyword weights.  Higher total score => more severe.
DEFAULT_KEYWORDS: Mapping[str, float] = {
    # Catastrophic signals.
    "crash": 3.0,
    "crashed": 3.0,
    "crashes": 3.0,
    "outage": 3.0,
    "down": 1.5,
    "unusable": 3.0,
    "data loss": 3.5,
    "security": 3.0,
    "vulnerability": 3.0,
    "dos": 2.5,
    "denial of service": 3.0,
    "deadlock": 3.0,
    "panic": 3.0,
    "fatal": 3.0,
    "traceback": 2.0,
    "exception": 1.5,
    "segfault": 3.5,
    # Serious-but-contained signals.
    "critical": 2.5,
    "severe": 2.5,
    "blocker": 3.0,
    "broken": 2.0,
    "fails": 1.5,
    "failure": 1.5,
    "wrong": 1.0,
    "incorrect": 1.0,
    "regression": 2.0,
    "stuck": 2.0,
    "hang": 2.5,
    "hangs": 2.5,
    "freeze": 2.5,
    "leak": 2.0,
    # Fail-stop phrasing variants.
    "crashed": 3.0,
    "core dumps": 3.0,
    "aborts": 2.5,
    "exits": 2.5,
    "dies": 2.5,
    "restart": 1.5,
    "null pointer": 2.5,
    "out of memory": 3.0,
    # Byzantine / gray-failure phrasing.
    "partial outage": 2.5,
    "gray failure": 2.5,
    "misbehaves": 2.0,
    "partially fails": 2.5,
    "silently": 1.0,
    "blackhole": 2.5,
    "loop": 1.5,
    "disagrees": 1.5,
    "dropped": 1.5,
    # Stall phrasing.
    "freezes": 2.5,
    "stalls": 2.5,
    "stops responding": 2.5,
    "unresponsive": 2.5,
    "blocked": 1.5,
    "waiting": 1.0,
    # Performance phrasing.
    "latency": 1.5,
    "throughput": 1.5,
    "regressed": 2.0,
    "lags": 1.5,
    "degrades": 1.5,
    "race": 1.5,
    # Mild signals.
    "slow": 1.0,
    "degraded": 1.0,
    "warning": 0.5,
    "typo": -1.0,
    "cosmetic": -1.5,
    "documentation": -1.0,
}

#: Labels that force a severity regardless of text.
LABEL_OVERRIDES: Mapping[str, Severity] = {
    "critical": Severity.CRITICAL,
    "blocker": Severity.BLOCKER,
    "p0": Severity.BLOCKER,
    "p1": Severity.CRITICAL,
    "enhancement": Severity.TRIVIAL,
}


class KeywordSeverityExtractor:
    """Estimate a :class:`Severity` for unlabeled (GitHub) bug reports."""

    def __init__(
        self,
        keywords: Mapping[str, float] | None = None,
        *,
        blocker_threshold: float = 5.0,
        critical_threshold: float = 2.5,
        major_threshold: float = 1.0,
        minor_threshold: float = 0.0,
    ) -> None:
        if not (
            blocker_threshold > critical_threshold > major_threshold >= minor_threshold
        ):
            raise ValueError("thresholds must be strictly decreasing")
        self.keywords = dict(keywords or DEFAULT_KEYWORDS)
        self.blocker_threshold = blocker_threshold
        self.critical_threshold = critical_threshold
        self.major_threshold = major_threshold
        self.minor_threshold = minor_threshold
        # Pre-compile one pattern per keyword, word-bounded, case-insensitive.
        self._patterns = {
            kw: re.compile(rf"\b{re.escape(kw)}\b", re.IGNORECASE)
            for kw in self.keywords
        }

    def score(self, report: BugReport) -> float:
        """Weighted keyword hit score over title + description.

        Each keyword counts once per report (presence, not frequency), so a
        long stack trace doesn't inflate severity.
        """
        text = report.text
        total = 0.0
        for keyword, weight in self.keywords.items():
            if self._patterns[keyword].search(text):
                total += weight
        return total

    def extract(self, report: BugReport) -> Severity:
        """Severity estimate for ``report`` (labels override text)."""
        for label in report.labels:
            override = LABEL_OVERRIDES.get(label.lower())
            if override is not None:
                return override
        value = self.score(report)
        if value >= self.blocker_threshold:
            return Severity.BLOCKER
        if value >= self.critical_threshold:
            return Severity.CRITICAL
        if value >= self.major_threshold:
            return Severity.MAJOR
        if value >= self.minor_threshold:
            return Severity.MINOR
        return Severity.TRIVIAL

    def is_critical(self, report: BugReport) -> bool:
        """True if the estimated severity is blocker or critical."""
        return self.extract(report).is_critical
