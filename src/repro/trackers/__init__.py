"""Issue-tracker substrates (SS II-B).

ONOS and CORD use JIRA (with Gerrit for fixes); FAUCET uses GitHub.  These
in-memory substrates model exactly the fields the paper mines: severity,
status, timestamps, descriptions, and fix links.  GitHub issues carry *no*
structured severity or resolution timestamps — the paper works around both
(keyword severity extraction; no FAUCET resolution-time analysis), and so
does this library.
"""

from repro.trackers.models import (
    BugReport,
    Comment,
    GerritChange,
    IssueStatus,
    Severity,
)
from repro.trackers.jira import JiraTracker
from repro.trackers.github import GithubTracker
from repro.trackers.severity import KeywordSeverityExtractor

__all__ = [
    "BugReport",
    "Comment",
    "GerritChange",
    "IssueStatus",
    "Severity",
    "JiraTracker",
    "GithubTracker",
    "KeywordSeverityExtractor",
]
