"""JIRA-like tracker substrate (ONOS, CORD).

Supports the query surface the paper's mining needs: filter by project,
severity, status, time window; link Gerrit changes; compute per-quarter
creation histograms (the "burst of bugs around release dates" observation).
"""

from __future__ import annotations

from datetime import datetime
from typing import Callable, Iterable, Iterator

from repro.errors import TrackerError
from repro.trackers.models import BugReport, GerritChange, IssueStatus, Severity


class JiraTracker:
    """In-memory JIRA instance hosting one or more projects.

    Issue keys follow JIRA convention ``<PROJECT>-<n>``; the tracker assigns
    sequence numbers per project on :meth:`file`.
    """

    def __init__(self, projects: Iterable[str]) -> None:
        # Sorted tuple, not a set: trackers travel inside pickled corpus
        # checkpoints, and set iteration order depends on PYTHONHASHSEED —
        # a hash-ordered container would make checkpoint bytes differ
        # across processes.
        self._projects = tuple(sorted({p.upper() for p in projects}))
        if not self._projects:
            raise TrackerError("a JIRA tracker needs at least one project")
        self._issues: dict[str, BugReport] = {}
        self._sequence: dict[str, int] = {p: 0 for p in self._projects}

    @property
    def projects(self) -> frozenset[str]:
        return frozenset(self._projects)

    def __len__(self) -> int:
        return len(self._issues)

    def __iter__(self) -> Iterator[BugReport]:
        return iter(self._issues.values())

    def file(
        self,
        project: str,
        *,
        title: str,
        description: str,
        created_at: datetime,
        severity: Severity,
        controller: str | None = None,
        reporter: str = "unknown",
        components: tuple[str, ...] = (),
    ) -> BugReport:
        """Create a new issue and return it.  JIRA requires a severity."""
        project = project.upper()
        if project not in self._projects:
            raise TrackerError(f"unknown project {project!r}")
        self._sequence[project] += 1
        bug_id = f"{project}-{self._sequence[project]}"
        report = BugReport(
            bug_id=bug_id,
            controller=controller or project,
            title=title,
            description=description,
            created_at=created_at,
            severity=severity,
            reporter=reporter,
            components=components,
        )
        self._issues[bug_id] = report
        return report

    def add(self, report: BugReport) -> None:
        """Register a pre-built report (used by the corpus generator)."""
        project = report.bug_id.rsplit("-", 1)[0].upper()
        if project not in self._projects:
            raise TrackerError(
                f"issue {report.bug_id!r} does not belong to any project of this "
                f"tracker ({sorted(self._projects)})"
            )
        if report.severity is None:
            raise TrackerError("JIRA issues must carry a severity")
        if report.bug_id in self._issues:
            raise TrackerError(f"duplicate issue id {report.bug_id!r}")
        self._issues[report.bug_id] = report
        seq = int(report.bug_id.rsplit("-", 1)[1])
        self._sequence[project] = max(self._sequence[project], seq)

    def get(self, bug_id: str) -> BugReport:
        try:
            return self._issues[bug_id]
        except KeyError:
            raise TrackerError(f"no such issue {bug_id!r}") from None

    def resolve(
        self, bug_id: str, resolved_at: datetime, *, status: IssueStatus = IssueStatus.CLOSED
    ) -> None:
        """Mark an issue resolved/closed with a resolution timestamp."""
        report = self.get(bug_id)
        if resolved_at < report.created_at:
            raise TrackerError(
                f"{bug_id}: resolution {resolved_at} precedes creation "
                f"{report.created_at}"
            )
        if not status.is_closed:
            raise TrackerError(f"resolve() requires a closed status, got {status}")
        report.resolved_at = resolved_at
        report.status = status

    def link_gerrit(self, bug_id: str, change: GerritChange) -> None:
        """Attach a Gerrit change to an issue."""
        self.get(bug_id).gerrit_changes.append(change)

    # -- query surface ------------------------------------------------------
    def search(
        self,
        *,
        project: str | None = None,
        min_severity: Severity | None = None,
        status: IssueStatus | None = None,
        created_after: datetime | None = None,
        created_before: datetime | None = None,
        predicate: Callable[[BugReport], bool] | None = None,
    ) -> list[BugReport]:
        """Filter issues; all criteria are conjunctive."""
        severity_rank = {s: i for i, s in enumerate(Severity)}  # BLOCKER=0 ...
        results = []
        for report in self._issues.values():
            if project is not None and not report.bug_id.startswith(project.upper() + "-"):
                continue
            if min_severity is not None:
                assert report.severity is not None
                if severity_rank[report.severity] > severity_rank[min_severity]:
                    continue
            if status is not None and report.status is not status:
                continue
            if created_after is not None and report.created_at < created_after:
                continue
            if created_before is not None and report.created_at >= created_before:
                continue
            if predicate is not None and not predicate(report):
                continue
            results.append(report)
        return sorted(results, key=lambda r: (r.created_at, r.bug_id))

    def critical_bugs(self, project: str | None = None) -> list[BugReport]:
        """Blocker + critical issues, the paper's study population."""
        return self.search(project=project, min_severity=Severity.CRITICAL)

    def closed_critical_bugs(self, project: str | None = None) -> list[BugReport]:
        """Closed critical bugs — the pool the manual sample is drawn from."""
        return [r for r in self.critical_bugs(project) if r.status.is_closed]

    def quarterly_histogram(self, project: str | None = None) -> dict[str, int]:
        """Issue counts per calendar quarter, e.g. ``{"2017-Q1": 31, ...}``."""
        histogram: dict[str, int] = {}
        for report in self.search(project=project):
            quarter = (report.created_at.month - 1) // 3 + 1
            key = f"{report.created_at.year}-Q{quarter}"
            histogram[key] = histogram.get(key, 0) + 1
        return dict(sorted(histogram.items()))
