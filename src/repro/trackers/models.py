"""Data models shared by the JIRA-like and GitHub-like trackers."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from datetime import datetime, timedelta
from typing import Any, Mapping


class Severity(enum.Enum):
    """JIRA-style severity ladder.  The paper studies BLOCKER+CRITICAL."""

    BLOCKER = "blocker"
    CRITICAL = "critical"
    MAJOR = "major"
    MINOR = "minor"
    TRIVIAL = "trivial"

    @property
    def is_critical(self) -> bool:
        """True for the severities the paper counts as 'critical'."""
        return self in (Severity.BLOCKER, Severity.CRITICAL)


class IssueStatus(enum.Enum):
    """Issue lifecycle states common to both trackers."""

    OPEN = "open"
    IN_PROGRESS = "in_progress"
    RESOLVED = "resolved"
    CLOSED = "closed"

    @property
    def is_closed(self) -> bool:
        return self in (IssueStatus.RESOLVED, IssueStatus.CLOSED)


@dataclass(frozen=True)
class Comment:
    """A discussion comment on an issue."""

    author: str
    created_at: datetime
    body: str


@dataclass(frozen=True)
class GerritChange:
    """A Gerrit code-review change linked to a JIRA issue.

    ``files_changed`` records paths touched by the fix; ``insertions`` /
    ``deletions`` give the patch size.  The paper uses these links to verify
    fixes manually.
    """

    change_id: str
    subject: str
    merged_at: datetime | None
    files_changed: tuple[str, ...] = ()
    insertions: int = 0
    deletions: int = 0

    @property
    def is_merged(self) -> bool:
        return self.merged_at is not None


@dataclass
class BugReport:
    """One bug report, tracker-agnostic.

    ``severity`` is ``None`` for GitHub issues (no structured field);
    ``resolved_at`` is ``None`` while the bug is open *and* for GitHub issues
    where the tracker does not expose resolution timestamps (SS VIII).
    """

    bug_id: str
    controller: str
    title: str
    description: str
    created_at: datetime
    status: IssueStatus = IssueStatus.OPEN
    severity: Severity | None = None
    resolved_at: datetime | None = None
    reporter: str = "unknown"
    assignee: str | None = None
    components: tuple[str, ...] = ()
    labels: tuple[str, ...] = ()
    comments: list[Comment] = field(default_factory=list)
    gerrit_changes: list[GerritChange] = field(default_factory=list)
    metadata: dict[str, Any] = field(default_factory=dict)

    @property
    def text(self) -> str:
        """Title + description, the text the NLP pipeline consumes."""
        return f"{self.title}\n{self.description}"

    @property
    def resolution_time(self) -> timedelta | None:
        """Wall-clock time from creation to resolution, if known."""
        if self.resolved_at is None:
            return None
        return self.resolved_at - self.created_at

    @property
    def resolution_days(self) -> float | None:
        """Resolution time in days (fractional), if known."""
        delta = self.resolution_time
        if delta is None:
            return None
        return delta.total_seconds() / 86400.0

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly representation (comments/gerrit flattened)."""
        return {
            "bug_id": self.bug_id,
            "controller": self.controller,
            "title": self.title,
            "description": self.description,
            "created_at": self.created_at.isoformat(),
            "status": self.status.value,
            "severity": self.severity.value if self.severity else None,
            "resolved_at": self.resolved_at.isoformat() if self.resolved_at else None,
            "reporter": self.reporter,
            "assignee": self.assignee,
            "components": list(self.components),
            "labels": list(self.labels),
            "comments": [
                {
                    "author": c.author,
                    "created_at": c.created_at.isoformat(),
                    "body": c.body,
                }
                for c in self.comments
            ],
            "gerrit_changes": [
                {
                    "change_id": g.change_id,
                    "subject": g.subject,
                    "merged_at": g.merged_at.isoformat() if g.merged_at else None,
                    "files_changed": list(g.files_changed),
                    "insertions": g.insertions,
                    "deletions": g.deletions,
                }
                for g in self.gerrit_changes
            ],
            "metadata": dict(self.metadata),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "BugReport":
        """Inverse of :meth:`to_dict`."""
        return cls(
            bug_id=data["bug_id"],
            controller=data["controller"],
            title=data["title"],
            description=data["description"],
            created_at=datetime.fromisoformat(data["created_at"]),
            status=IssueStatus(data["status"]),
            severity=Severity(data["severity"]) if data.get("severity") else None,
            resolved_at=(
                datetime.fromisoformat(data["resolved_at"])
                if data.get("resolved_at")
                else None
            ),
            reporter=data.get("reporter", "unknown"),
            assignee=data.get("assignee"),
            components=tuple(data.get("components", ())),
            labels=tuple(data.get("labels", ())),
            comments=[
                Comment(
                    author=c["author"],
                    created_at=datetime.fromisoformat(c["created_at"]),
                    body=c["body"],
                )
                for c in data.get("comments", [])
            ],
            gerrit_changes=[
                GerritChange(
                    change_id=g["change_id"],
                    subject=g["subject"],
                    merged_at=(
                        datetime.fromisoformat(g["merged_at"])
                        if g.get("merged_at")
                        else None
                    ),
                    files_changed=tuple(g.get("files_changed", ())),
                    insertions=g.get("insertions", 0),
                    deletions=g.get("deletions", 0),
                )
                for g in data.get("gerrit_changes", [])
            ],
            metadata=dict(data.get("metadata", {})),
        )
