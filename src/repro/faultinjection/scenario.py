"""Standard test scenario: a small leaf network under a full app stack.

One switch with four host ports plus a mirror port, an L2 learning switch,
ACL, mirroring, multicast, a stats gauge wired to a TSDB, an auth service,
and an OLT behind a VOLTHA adapter.  ``run_workload`` drives representative
traffic and collects forwarding/feature correctness checks; faults perturb
the scenario before or during the run.
"""

from __future__ import annotations

import random
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Mapping

from repro.resilience.breaker import CircuitBreaker
from repro.resilience.ledger import ResilienceLedger
from repro.resilience.policies import ResilienceConfig

from repro.sdnsim.apps import (
    AclApp,
    InputValidatorApp,
    L2LearningSwitch,
    MirrorApp,
    MulticastHandler,
    StatsGauge,
)
from repro.sdnsim.clock import EventScheduler
from repro.sdnsim.config import ControllerConfig
from repro.sdnsim.controller import ControllerRuntime
from repro.sdnsim.datapath import Switch
from repro.sdnsim.messages import BROADCAST_MAC, Packet
from repro.sdnsim.observers import Observation, Outcome, OutcomeClassifier, observe
from repro.sdnsim.optical import OltDevice, OnuDevice, VolthaAdapter
from repro.sdnsim.services import AuthService, GuardedTimeSeriesDB, TimeSeriesDB

HOSTS = {
    1: "aa:00:00:00:00:01",
    2: "aa:00:00:00:00:02",
    3: "aa:00:00:00:00:03",
}
MIRROR_PORT = 4
MONITORED_PORT = 1
MULTICAST_GROUP = "01:00:5e:00:00:01"

#: Northbound API latency of a healthy single-worker controller, used as the
#: regression baseline for performance classification.
BASELINE_API_LATENCY = 0.010


def default_config() -> dict[str, Any]:
    """The healthy configuration every scenario starts from."""
    return {
        "vlans": {"office": {"vid": 100}},
        "acls": [],
        "mirror": {1: {"source_port": MONITORED_PORT, "mirror_port": MIRROR_PORT}},
        "multicast": {"groups": {MULTICAST_GROUP: [2, 3]}},
        "stats": {"interval": 5.0},
        "workers": 1,
    }


#: Active (config, ledger) pair installed by :func:`resilience_context`;
#: lets the A/B campaign harden every scenario a fault builder constructs
#: without threading a parameter through each of the catalog's builders.
_ACTIVE_RESILIENCE: tuple[ResilienceConfig, ResilienceLedger | None] | None = None


@contextmanager
def resilience_context(
    config: ResilienceConfig, ledger: ResilienceLedger | None = None
) -> Iterator[None]:
    """Make every :func:`build_scenario` in the block resilience-hardened."""
    global _ACTIVE_RESILIENCE
    previous = _ACTIVE_RESILIENCE
    _ACTIVE_RESILIENCE = (config, ledger)
    try:
        yield
    finally:
        _ACTIVE_RESILIENCE = previous


@dataclass
class ScenarioResult:
    """Everything a fault or a check might need to inspect."""

    scheduler: EventScheduler
    runtime: ControllerRuntime
    switch: Switch
    tsdb: TimeSeriesDB
    auth: AuthService
    adapter: VolthaAdapter
    olt: OltDevice
    checks: list[tuple[str, bool]] = field(default_factory=list)
    #: Set when the scenario was built hardened (resilience enabled).
    guarded_tsdb: GuardedTimeSeriesDB | None = None
    ledger: ResilienceLedger | None = None

    def observation(self) -> Observation:
        return observe(
            self.runtime,
            stalled=self.adapter.core_blocked,
            checks=self.checks,
            baseline_latency=BASELINE_API_LATENCY,
        )

    def outcome(self) -> Outcome:
        return OutcomeClassifier().classify(self.observation())


def build_scenario(
    *,
    config_overrides: Mapping[str, Any] | None = None,
    drop_config_keys: tuple[str, ...] = (),
    tsdb_api_version: int = 2,
    tsdb_available: bool = True,
    auth_api_version: int = 1,
    gauge_cast_types: bool = True,
    mirror_broadcast: bool = True,
    multicast_guard: bool = True,
    adapter_timeout: float | None = 30.0,
    global_lock: bool = True,
    input_validation: bool = False,
    resilience: ResilienceConfig | None = None,
    resilience_ledger: ResilienceLedger | None = None,
) -> ScenarioResult:
    """Assemble the standard scenario.

    The defaults are the *fixed* variants of every named bug; fault
    injectors flip individual knobs back to the buggy configuration.
    With ``resilience`` set (explicitly, or ambiently through
    :func:`resilience_context`) the TSDB is wrapped in a
    :class:`GuardedTimeSeriesDB` — breaker + retry on the sim clock — and
    every resilience action lands in the scenario's ledger.
    """
    if resilience is None and _ACTIVE_RESILIENCE is not None:
        resilience, ambient_ledger = _ACTIVE_RESILIENCE
        if resilience_ledger is None:
            resilience_ledger = ambient_ledger
    raw = default_config()
    for key in drop_config_keys:
        raw.pop(key, None)
    if config_overrides:
        raw.update(config_overrides)
    # Faulty configs intentionally bypass validation: the paper's point is
    # that latent misconfigurations reach runtime code.
    config = ControllerConfig.load(raw, validate=False)

    scheduler = EventScheduler()
    runtime = ControllerRuntime(
        scheduler, config, api_base_latency=BASELINE_API_LATENCY, global_lock=global_lock
    )
    switch = Switch(1, [1, 2, 3, MIRROR_PORT])
    switch.exclude_from_flood = {MIRROR_PORT}
    switch.connect(runtime)
    for port, mac in HOSTS.items():
        switch.attach_host(port, mac)

    tsdb = TimeSeriesDB(api_version=tsdb_api_version, available=tsdb_available)
    auth = AuthService(api_version=auth_api_version)

    gauge_sink: TimeSeriesDB | GuardedTimeSeriesDB = tsdb
    guarded: GuardedTimeSeriesDB | None = None
    ledger: ResilienceLedger | None = None
    if resilience is not None:
        ledger = resilience_ledger if resilience_ledger is not None else ResilienceLedger()
        breaker = CircuitBreaker(
            scheduler,
            name="tsdb",
            failure_threshold=resilience.breaker_threshold,
            window=resilience.breaker_window,
            min_calls=resilience.breaker_min_calls,
            cooldown=resilience.breaker_cooldown,
            ledger=ledger,
        )
        guarded = GuardedTimeSeriesDB(
            tsdb, scheduler, retry=resilience.retry, breaker=breaker, ledger=ledger
        )
        gauge_sink = guarded

    if input_validation:
        # The validator must run first so it can veto malformed events.
        runtime.add_app(InputValidatorApp())
    runtime.add_app(L2LearningSwitch())
    runtime.add_app(AclApp())
    runtime.add_app(MirrorApp(mirror_broadcast=mirror_broadcast))
    runtime.add_app(MulticastHandler(guard_config=multicast_guard))
    runtime.add_app(
        StatsGauge(gauge_sink, interval=5.0, cast_types=gauge_cast_types)
    )
    runtime.start()

    adapter = VolthaAdapter(scheduler, connect_timeout=adapter_timeout)
    olt = OltDevice("olt-1")
    olt.attach_onu(OnuDevice(serial="onu-1", olt_port=1))
    adapter.manage(olt)
    adapter.activate("olt-1")

    return ScenarioResult(
        scheduler=scheduler,
        runtime=runtime,
        switch=switch,
        tsdb=tsdb,
        auth=auth,
        adapter=adapter,
        olt=olt,
        guarded_tsdb=guarded,
        ledger=ledger,
    )


def run_workload(
    scenario: ScenarioResult,
    *,
    duration: float = 60.0,
    api_calls: int = 20,
    extra_events: Callable[[ScenarioResult], None] | None = None,
    seed: int = 0,
) -> ScenarioResult:
    """Drive representative traffic and record correctness checks.

    Workload: each host ARPs (broadcast) then sends unicast to its
    neighbour; a multicast frame targets the configured group; the gauge
    polls on its timer; ``api_calls`` northbound calls model operator load.
    ``extra_events`` lets a fault inject mid-run events.
    """
    rng = random.Random(seed)
    switch = scenario.switch
    runtime = scenario.runtime
    scheduler = scenario.scheduler

    macs = list(HOSTS.values())
    # ARP-style discovery broadcasts.
    for port, mac in HOSTS.items():
        switch.receive(port, Packet(src_mac=mac, dst_mac=BROADCAST_MAC, payload="arp"))
    # Unicast mesh.
    for i, (port, mac) in enumerate(HOSTS.items()):
        dst = macs[(i + 1) % len(macs)]
        switch.receive(port, Packet(src_mac=mac, dst_mac=dst, payload="data"))
    # Multicast traffic toward the configured group.
    switch.receive(
        2, Packet(src_mac=HOSTS[2], dst_mac=MULTICAST_GROUP, payload="mcast")
    )
    if extra_events is not None:
        extra_events(scenario)
    for _ in range(api_calls):
        if not runtime.crashed:
            runtime.api_call("list_devices")
    scheduler.run(until=duration)

    # -- correctness checks -------------------------------------------------
    delivered = scenario.switch.delivered
    host1_got_unicast = any(
        port == 1 and pkt.dst_mac == HOSTS[1] for port, pkt in delivered
    )
    broadcast_reached_others = any(
        port in (2, 3) and pkt.is_broadcast for port, pkt in delivered
    )
    unicast_mirrored = any(
        port == MIRROR_PORT and pkt.dst_mac == HOSTS[1] for port, pkt in delivered
    )
    broadcast_mirrored = any(
        port == MIRROR_PORT and pkt.is_broadcast for port, pkt in delivered
    )
    multicast_delivered = any(
        port in (2, 3) and pkt.dst_mac == MULTICAST_GROUP for port, pkt in delivered
    )
    scenario.checks.extend(
        [
            ("forward: unicast reaches host 1", host1_got_unicast),
            ("forward: broadcast floods to hosts", broadcast_reached_others),
            ("feature: unicast mirrored to monitor", unicast_mirrored),
            ("feature: broadcast mirrored to monitor", broadcast_mirrored),
            ("feature: multicast delivered to group", multicast_delivered or runtime.crashed),
            ("feature: stats exported to tsdb", scenario.tsdb.count() > 0 or runtime.crashed),
        ]
    )
    return scenario
