"""Named case studies from the paper, each runnable as buggy vs fixed.

``run_case("FAUCET-1623")`` returns the classified outcome of the buggy
variant and of the patched variant, demonstrating that the fix actually
removes the symptom inside the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import InjectionError
from repro.faultinjection.scenario import ScenarioResult, build_scenario, run_workload
from repro.sdnsim.observers import Outcome


@dataclass(frozen=True)
class CaseOutcome:
    """Buggy-vs-fixed comparison for one named bug."""

    case_id: str
    buggy: Outcome
    fixed: Outcome

    @property
    def fix_removes_symptom(self) -> bool:
        """True when the fix downgrades the bug to (at most) a log message.

        The paper treats error-message outcomes as having "no direct
        operational impact" (SS IV), and several real fixes — e.g.
        CORD-2470's guard — deliberately log instead of crashing.
        """
        from repro.taxonomy import Symptom

        return self.buggy.symptom is not None and self.fixed.symptom in (
            None,
            Symptom.ERROR_MESSAGE,
        )


def _mirror_case(fixed: bool) -> ScenarioResult:
    return run_workload(build_scenario(mirror_broadcast=fixed))


def _multicast_case(fixed: bool) -> ScenarioResult:
    return run_workload(
        build_scenario(drop_config_keys=("multicast",), multicast_guard=fixed)
    )


def _gauge_case(fixed: bool) -> ScenarioResult:
    return run_workload(build_scenario(gauge_cast_types=fixed, tsdb_api_version=2))


def _voltha_case(fixed: bool) -> ScenarioResult:
    scenario = build_scenario(adapter_timeout=30.0 if fixed else None)

    def reboot(result: ScenarioResult) -> None:
        result.scheduler.schedule(10.0, lambda: result.adapter.notify_reboot("olt-1"))

    return run_workload(scenario, extra_events=reboot, duration=120.0)


def _contention_case(fixed: bool) -> ScenarioResult:
    # The CORD-1734 fix reduced the worker pool to 1.
    return run_workload(
        build_scenario(config_overrides={"workers": 1 if fixed else 8})
    )


class _ClusterScenario:
    """Adapter exposing ``outcome()`` for the cluster case study."""

    def __init__(self, fixed: bool) -> None:
        from repro.sdnsim.clock import EventScheduler
        from repro.sdnsim.cluster import ControllerCluster
        from repro.sdnsim.observers import Outcome
        from repro.taxonomy import ByzantineMode, Symptom

        scheduler = EventScheduler()
        cluster = ControllerCluster(
            ["onos-1", "onos-2", "onos-3"],
            scheduler,
            quorum_counts_live_members=fixed,
        )
        for dpid in range(1, 7):
            cluster.assign_mastership(dpid)
        cluster.kill_instance("onos-1")
        scheduler.run(until=30.0)
        self.cluster = cluster
        if cluster.is_wedged() or cluster.orphaned_devices():
            self._outcome = Outcome(
                symptom=Symptom.BYZANTINE,
                byzantine_mode=ByzantineMode.GRAY_FAILURE,
                detail=(
                    f"cluster wedged={cluster.is_wedged()}, orphaned devices: "
                    f"{cluster.orphaned_devices()}"
                ),
            )
        else:
            self._outcome = Outcome(symptom=None, detail="failover completed")

    def outcome(self):
        return self._outcome


def _cluster_case(fixed: bool) -> _ClusterScenario:
    """ONOS-5992: killing one instance fails the whole cluster.

    The buggy quorum computation counts configured members, wedging all
    mastership operations after a single death; the fix counts live members
    and fails the dead node's devices over.
    """
    return _ClusterScenario(fixed)


CASE_RUNNERS: dict[str, Callable[[bool], "ScenarioResult | _ClusterScenario"]] = {
    "FAUCET-1623": _mirror_case,
    "CORD-2470": _multicast_case,
    "FAUCET-355": _gauge_case,
    "VOL-549": _voltha_case,
    "CORD-1734": _contention_case,
    "ONOS-5992": _cluster_case,
}


def run_case(case_id: str) -> CaseOutcome:
    """Execute one named case study in both variants."""
    runner = CASE_RUNNERS.get(case_id)
    if runner is None:
        raise InjectionError(
            f"unknown case {case_id!r}; known: {sorted(CASE_RUNNERS)}"
        )
    return CaseOutcome(
        case_id=case_id,
        buggy=runner(False).outcome(),
        fixed=runner(True).outcome(),
    )
