"""Taxonomy-driven fault injection (the paper's motivating application).

The study's stated purpose for its taxonomy is to provide "the building
blocks for designing representative and informed fault-injectors".  This
package is that injector: a catalog of executable faults, one per
(trigger, root-cause) cell the paper's corpus exhibits, each reproducing a
representative failure inside :mod:`repro.sdnsim` — several of them the
*named* bugs the paper discusses (FAUCET-1623, CORD-2470, FAUCET-355,
VOL-549, CORD-1734).
"""

from repro.faultinjection.scenario import (
    ScenarioResult,
    build_scenario,
    resilience_context,
    run_workload,
)
from repro.faultinjection.faults import FaultSpec, default_catalog
from repro.faultinjection.campaign import (
    AbFaultResult,
    AbReport,
    CampaignResult,
    FaultCampaign,
)
from repro.faultinjection.cases import CASE_RUNNERS, run_case

__all__ = [
    "ScenarioResult",
    "build_scenario",
    "resilience_context",
    "run_workload",
    "FaultSpec",
    "default_catalog",
    "AbFaultResult",
    "AbReport",
    "CampaignResult",
    "FaultCampaign",
    "CASE_RUNNERS",
    "run_case",
]
