"""The fault catalog: one executable fault per taxonomy cell.

Each :class:`FaultSpec` knows its Table I coordinates (trigger, root cause,
determinism, expected symptom) and how to build-and-run a scenario with the
fault active.  Non-deterministic faults manifest only for some seeds, which
is what lets the framework evaluation distinguish replay-style recovery
(works on non-deterministic bugs) from input transformation (needed for
deterministic ones).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from repro.errors import InjectionError
from repro.faultinjection.scenario import (
    HOSTS,
    ScenarioResult,
    build_scenario,
    run_workload,
)
from repro.sdnsim.messages import BROADCAST_MAC, Packet, PortStatus
from repro.sdnsim.observers import Outcome
from repro.taxonomy import BugType, ByzantineMode, RootCause, Symptom, Trigger


@dataclass(frozen=True)
class FaultSpec:
    """An executable fault with its taxonomy coordinates."""

    fault_id: str
    description: str
    trigger: Trigger
    root_cause: RootCause
    bug_type: BugType
    expected_symptom: Symptom
    expected_mode: ByzantineMode | None
    run: Callable[[int], ScenarioResult]
    #: Paper bug id when this fault reproduces a named case study.
    paper_reference: str | None = None
    #: Whether the triggering event is an *input* a filter could suppress
    #: (a malformed frame is; a link dying is a state change and is not).
    filterable: bool = True

    def execute(self, seed: int = 0) -> Outcome:
        """Run the fault scenario and classify the outcome."""
        return self.run(seed).outcome()


# ---------------------------------------------------------------------------
# Individual fault builders.  Defaults in build_scenario are the FIXED
# variants; each fault flips exactly the knob(s) that re-introduce the bug.
# ---------------------------------------------------------------------------

def _fault_misconfigured_acl(seed: int) -> ScenarioResult:
    """An operator ACL typo drops legitimate traffic to host 1."""
    scenario = build_scenario(
        config_overrides={
            # Intended to block a guest MAC; the typo blocks host 1 instead.
            "acls": [{"src_mac": "any", "dst_mac": HOSTS[1]}],
        }
    )
    return run_workload(scenario, seed=seed)


def _fault_missing_multicast_config(seed: int) -> ScenarioResult:
    """CORD-2470: multicast section absent, handler dereferences it."""
    scenario = build_scenario(
        drop_config_keys=("multicast",), multicast_guard=False
    )
    return run_workload(scenario, seed=seed)


def _fault_config_type_confusion(seed: int) -> ScenarioResult:
    """A config value with the wrong type reaches the worker pool sizing."""
    scenario = build_scenario(config_overrides={"workers": "sixteen"})
    try:
        return run_workload(scenario, seed=seed)
    except (TypeError, ValueError) as exc:
        scenario.runtime.crashed = True
        scenario.runtime.crash_reason = f"{type(exc).__name__}: {exc}"
        return scenario


def _fault_tsdb_type_mismatch(seed: int) -> ScenarioResult:
    """FAUCET-355: gauge writes stringly-typed counters to a v2 TSDB."""
    scenario = build_scenario(gauge_cast_types=False, tsdb_api_version=2)
    return run_workload(scenario, seed=seed)


def _fault_auth_argument_flip(seed: int) -> ScenarioResult:
    """The auth library flipped its argument order between versions; the
    controller still passes (mac, secret) and authorizes the secret string."""
    scenario = build_scenario(auth_api_version=2)
    result = run_workload(scenario, seed=seed)
    granted = scenario.auth.authenticate(HOSTS[2], "s3cret:zz")
    result.checks.append(
        (
            "forward: only valid MACs are authorized",
            not (granted and scenario.auth.is_authorized("s3cret:zz")),
        )
    )
    return result


def _fault_tsdb_flaky(seed: int) -> ScenarioResult:
    """The external TSDB flaps; writes fail intermittently with scary logs.

    Non-deterministic: whether a poll lands in a down window depends on
    timing (the seed).  Forwarding is unaffected either way.
    """
    scenario = build_scenario()
    rng = random.Random(seed)

    def flap(result: ScenarioResult) -> None:
        # Two short outage windows that may or may not cover a gauge poll.
        def down() -> None:
            result.tsdb.available = False

        def up() -> None:
            result.tsdb.available = True

        for _ in range(2):
            down_at = rng.uniform(0.0, 50.0)
            up_at = down_at + rng.uniform(0.5, 3.0)
            result.scheduler.schedule(down_at, down)
            result.scheduler.schedule(up_at, up)

    return run_workload(scenario, extra_events=flap, seed=seed)


def _fault_mirror_broadcast_missing(seed: int) -> ScenarioResult:
    """FAUCET-1623: the mirror app lacks the broadcast-output case."""
    scenario = build_scenario(mirror_broadcast=False)
    return run_workload(scenario, seed=seed)


def _fault_packet_in_storm(seed: int) -> ScenarioResult:
    """A packet-in storm saturates the control plane; API latency balloons.

    Load is modeled through the worker-contention path: the storm forces a
    wide worker pool (auto-scaling gone wrong) behind the global lock.
    """
    scenario = build_scenario(config_overrides={"workers": 12}, global_lock=True)

    def storm(result: ScenarioResult) -> None:
        rng = random.Random(seed)
        for i in range(300):
            mac = f"de:ad:{rng.randrange(256):02x}:{rng.randrange(256):02x}:00:{i % 256:02x}"
            result.switch.receive(
                2, Packet(src_mac=mac, dst_mac=BROADCAST_MAC, payload="storm")
            )

    return run_workload(scenario, extra_events=storm, seed=seed)


def _fault_port_flap_race(seed: int) -> ScenarioResult:
    """A port-down races with flow installation for a learned host.

    Non-deterministic: depending on event interleaving (seed) the stale
    flow forwards traffic into a downed port, blackholing host 1.
    """
    scenario = build_scenario()
    injected = {"migrated": False}

    def race(result: ScenarioResult) -> None:
        rng = random.Random(seed)
        if rng.random() < 0.55:
            # The losing interleaving: host 1 migrates to port 3 while the
            # flow installed toward port 1 is still live.  The controller
            # learns the new location (MAC table), but nobody invalidates
            # the stale switch flow entry, which keeps blackholing traffic
            # into the downed port.
            result.switch.set_port_state(1, False)
            result.runtime.handle_message(PortStatus(dpid=1, port=1, is_up=False))
            result.switch.attach_host(3, HOSTS[1])
            result.switch.receive(
                3, Packet(src_mac=HOSTS[1], dst_mac=BROADCAST_MAC, payload="gratuitous")
            )
            result.switch.receive(
                2, Packet(src_mac=HOSTS[2], dst_mac=HOSTS[1], payload="late")
            )
            injected["migrated"] = True

    result = run_workload(scenario, extra_events=race, seed=seed)
    if injected["migrated"]:
        reached_new_port = any(
            port == 3 and pkt.payload == "late"
            for port, pkt in result.switch.delivered
        )
        result.checks.append(
            ("forward: traffic follows the migrated host", reached_new_port)
        )
    return result


def _fault_malformed_frame(seed: int) -> ScenarioResult:
    """A frame with missing ethernet fields reaches an unvalidated handler.

    The multicast handler calls ``dst_mac.startswith`` without checking the
    header was parsed — a missing-validation crash triggered purely by a
    network event (the class Ravana/LegoSDN/Bouncer target).
    """
    scenario = build_scenario()

    def send_malformed(result: ScenarioResult) -> None:
        result.switch.receive(
            2, Packet(src_mac=HOSTS[2], dst_mac=None, payload="fuzz")  # type: ignore[arg-type]
        )

    return run_workload(scenario, extra_events=send_malformed, seed=seed)


class _FragileSyncApp:
    """A cluster-sync app whose store initializes asynchronously.

    Handling an event before the store is ready dereferences a
    half-initialized structure — a classic startup race.  Whether the first
    post-start event beats the initialization depends on timing.
    """

    name = "cluster_sync"
    critical = True

    def __init__(self, ready_delay: float) -> None:
        self.ready_delay = ready_delay
        self.ready = False

    def on_start(self, runtime) -> None:
        def initialize() -> None:
            self.ready = True

        runtime.scheduler.schedule(self.ready_delay, initialize)

    def on_packet_in(self, runtime, event) -> None:
        if event.packet.payload != "probe":
            return  # the sync app only reacts to cluster beacon frames
        if not self.ready:
            raise RuntimeError("sync store accessed before initialization")


def _fault_startup_race_crash(seed: int) -> ScenarioResult:
    """Non-deterministic: an event races the cluster-sync store init."""
    rng = random.Random(seed)
    scenario = build_scenario()
    app = _FragileSyncApp(ready_delay=rng.uniform(0.2, 2.0))
    scenario.runtime.add_app(app)
    app.on_start(scenario.runtime)

    def late_event(result: ScenarioResult) -> None:
        def deliver() -> None:
            result.switch.receive(
                3, Packet(src_mac=HOSTS[3], dst_mac=BROADCAST_MAC, payload="probe")
            )

        result.scheduler.schedule(1.0, deliver)

    return run_workload(scenario, extra_events=late_event, seed=seed)


def _fault_olt_reboot_no_timeout(seed: int) -> ScenarioResult:
    """VOL-549: OLT reboots after activation; adapter waits forever."""
    scenario = build_scenario(adapter_timeout=None)

    def reboot(result: ScenarioResult) -> None:
        result.scheduler.schedule(
            10.0, lambda: result.adapter.notify_reboot("olt-1")
        )

    return run_workload(scenario, extra_events=reboot, seed=seed)


def _fault_reboot_storm(seed: int) -> ScenarioResult:
    """Repeated OLT reboot cycles churn the adapter and the API slows down."""
    scenario = build_scenario(
        adapter_timeout=5.0, config_overrides={"workers": 10}, global_lock=True
    )

    def storm(result: ScenarioResult) -> None:
        for i in range(5):
            result.scheduler.schedule(
                8.0 + 4.0 * i, lambda: result.adapter.notify_reboot("olt-1")
            )

    return run_workload(scenario, extra_events=storm, seed=seed)


def _fault_global_lock_contention(seed: int) -> ScenarioResult:
    """CORD-1734: a wide worker pool serializes on the global lock; every
    API call slows down.  The fix is workers=1."""
    scenario = build_scenario(config_overrides={"workers": 8}, global_lock=True)
    return run_workload(scenario, seed=seed)


def _fault_stats_buffer_leak(seed: int) -> ScenarioResult:
    """A leaky stats buffer grows without bound until the process dies."""
    scenario = build_scenario()
    leak: list[str] = []

    def leaky_poll(result: ScenarioResult) -> None:
        def tick() -> None:
            if result.runtime.crashed:
                return
            leak.extend("x" * 64 for _ in range(512))
            if len(leak) > 4096:
                # The allocator gives up: model the OOM kill.
                result.runtime.crashed = True
                result.runtime.crash_reason = "MemoryError: stats buffer exhausted heap"
                return
            result.scheduler.schedule(3.0, tick)

        result.scheduler.schedule(3.0, tick)

    return run_workload(scenario, extra_events=leaky_poll, seed=seed)


class _FabricScenario:
    """Adapter exposing ``outcome()`` for fabric-level (multi-switch) faults."""

    def __init__(self, checks: list[tuple[str, bool]]) -> None:
        from repro.sdnsim.observers import Observation, OutcomeClassifier

        observation = Observation(
            crashed=False,
            crash_reason=None,
            failed_components=[],
            healthy_components=["forwarding"],
            error_count=0,
            stalled=False,
            checks=checks,
        )
        self._outcome = OutcomeClassifier().classify(observation)

    def outcome(self):
        return self._outcome


def _fault_stale_topology(seed: int) -> "_FabricScenario":
    """Global-visibility loss: a link dies but discovery hasn't refreshed.

    The paper: bugs triggered by network events significantly lower the
    global visibility that is SDN's key advantage.  Here routing installs a
    path over a link that died inside the discovery staleness window, so
    traffic blackholes even though an alternate path exists.
    """
    from repro.sdnsim import (
        EventScheduler,
        Fabric,
        Link,
        LinkDiscovery,
        ShortestPathRouter,
        Switch,
    )

    h1, h2 = "aa:00:00:00:00:01", "aa:00:00:00:00:02"
    fabric = Fabric()
    for dpid in (1, 2, 3):
        fabric.add_switch(Switch(dpid, [1, 2, 3]))
    fabric.add_link(Link(1, 2, 2, 2))
    fabric.add_link(Link(2, 3, 3, 2))
    fabric.add_link(Link(1, 3, 3, 3))
    fabric.switches[1].attach_host(1, h1)
    fabric.switches[3].attach_host(1, h2)
    scheduler = EventScheduler()
    discovery = LinkDiscovery(fabric, scheduler, refresh_interval=30.0)
    router = ShortestPathRouter(discovery)

    # The direct s1-s3 link dies *after* the discovery snapshot...
    fabric.switches[1].set_port_state(3, False)
    fabric.switches[3].set_port_state(3, False)
    # ...and routing then programs the (stale) shortest path across it.
    path = router.install_path(h2, dst_dpid=3, dst_port=1, src_dpid=1)
    fabric.inject(1, 1, Packet(src_mac=h1, dst_mac=h2, payload="data"))
    delivered = any(
        port == 1 and pkt.payload == "data"
        for port, pkt in fabric.switches[3].delivered
    )
    return _FabricScenario(
        checks=[
            (
                "forward: traffic reaches host despite the link failure "
                f"(stale path {path})",
                delivered,
            )
        ]
    )


def default_catalog() -> list[FaultSpec]:
    """The representative fault per taxonomy cell, paper references included."""
    return [
        FaultSpec(
            fault_id="config-acl-typo",
            description="operator ACL typo blackholes legitimate traffic",
            trigger=Trigger.CONFIGURATION,
            root_cause=RootCause.HUMAN_MISCONFIGURATION,
            bug_type=BugType.DETERMINISTIC,
            expected_symptom=Symptom.BYZANTINE,
            expected_mode=ByzantineMode.INCORRECT_BEHAVIOR,
            run=_fault_misconfigured_acl,
        ),
        FaultSpec(
            fault_id="config-missing-multicast",
            description="missing multicast config dereferenced (null pointer)",
            trigger=Trigger.CONFIGURATION,
            root_cause=RootCause.MISSING_LOGIC,
            bug_type=BugType.DETERMINISTIC,
            expected_symptom=Symptom.FAIL_STOP,
            expected_mode=None,
            run=_fault_missing_multicast_config,
            paper_reference="CORD-2470",
        ),
        FaultSpec(
            fault_id="config-type-confusion",
            description="stringly-typed worker count crashes pool sizing",
            trigger=Trigger.CONFIGURATION,
            root_cause=RootCause.MEMORY,
            bug_type=BugType.DETERMINISTIC,
            expected_symptom=Symptom.FAIL_STOP,
            expected_mode=None,
            run=_fault_config_type_confusion,
        ),
        FaultSpec(
            fault_id="external-tsdb-type",
            description="gauge/TSDB data-type mismatch kills the gauge",
            trigger=Trigger.EXTERNAL_CALLS,
            root_cause=RootCause.ECOSYSTEM_THIRD_PARTY,
            bug_type=BugType.DETERMINISTIC,
            expected_symptom=Symptom.BYZANTINE,
            expected_mode=ByzantineMode.GRAY_FAILURE,
            run=_fault_tsdb_type_mismatch,
            paper_reference="FAUCET-355",
        ),
        FaultSpec(
            fault_id="external-auth-argflip",
            description="auth library argument order flip authorizes garbage",
            trigger=Trigger.EXTERNAL_CALLS,
            root_cause=RootCause.ECOSYSTEM_APP_LIBRARY,
            bug_type=BugType.DETERMINISTIC,
            expected_symptom=Symptom.BYZANTINE,
            expected_mode=ByzantineMode.INCORRECT_BEHAVIOR,
            run=_fault_auth_argument_flip,
        ),
        FaultSpec(
            fault_id="external-tsdb-flaky",
            description="flapping TSDB causes intermittent scary error logs",
            trigger=Trigger.EXTERNAL_CALLS,
            root_cause=RootCause.ECOSYSTEM_SYSTEM_CALL,
            bug_type=BugType.NON_DETERMINISTIC,
            expected_symptom=Symptom.ERROR_MESSAGE,
            expected_mode=None,
            run=_fault_tsdb_flaky,
        ),
        FaultSpec(
            fault_id="external-lock-contention",
            description="worker pool serializes on global lock; APIs slow",
            trigger=Trigger.EXTERNAL_CALLS,
            root_cause=RootCause.CONCURRENCY,
            bug_type=BugType.DETERMINISTIC,
            expected_symptom=Symptom.PERFORMANCE,
            expected_mode=None,
            run=_fault_global_lock_contention,
            paper_reference="CORD-1734",
        ),
        FaultSpec(
            fault_id="external-stats-leak",
            description="stats buffer leak grows until the process is OOM-killed",
            trigger=Trigger.EXTERNAL_CALLS,
            root_cause=RootCause.MEMORY,
            bug_type=BugType.DETERMINISTIC,
            expected_symptom=Symptom.FAIL_STOP,
            expected_mode=None,
            run=_fault_stats_buffer_leak,
            paper_reference="ONOS-4859",
        ),
        FaultSpec(
            fault_id="network-mirror-broadcast",
            description="mirror app misses the broadcast-output case",
            trigger=Trigger.NETWORK_EVENTS,
            root_cause=RootCause.MISSING_LOGIC,
            bug_type=BugType.DETERMINISTIC,
            expected_symptom=Symptom.BYZANTINE,
            expected_mode=ByzantineMode.GRAY_FAILURE,
            run=_fault_mirror_broadcast_missing,
            paper_reference="FAUCET-1623",
        ),
        FaultSpec(
            fault_id="network-packetin-storm",
            description="packet-in storm saturates the control plane",
            trigger=Trigger.NETWORK_EVENTS,
            root_cause=RootCause.LOAD,
            bug_type=BugType.DETERMINISTIC,
            expected_symptom=Symptom.PERFORMANCE,
            expected_mode=None,
            run=_fault_packet_in_storm,
        ),
        FaultSpec(
            fault_id="network-malformed-frame",
            description="unvalidated malformed frame crashes the controller",
            trigger=Trigger.NETWORK_EVENTS,
            root_cause=RootCause.MISSING_LOGIC,
            bug_type=BugType.DETERMINISTIC,
            expected_symptom=Symptom.FAIL_STOP,
            expected_mode=None,
            run=_fault_malformed_frame,
        ),
        FaultSpec(
            fault_id="network-startup-race",
            description="event races the cluster-sync store initialization",
            trigger=Trigger.NETWORK_EVENTS,
            root_cause=RootCause.CONCURRENCY,
            bug_type=BugType.NON_DETERMINISTIC,
            expected_symptom=Symptom.FAIL_STOP,
            expected_mode=None,
            run=_fault_startup_race_crash,
            paper_reference="ONOS-5992",
        ),
        FaultSpec(
            fault_id="network-portflap-race",
            description="port-down races flow install; traffic blackholes",
            trigger=Trigger.NETWORK_EVENTS,
            root_cause=RootCause.CONCURRENCY,
            bug_type=BugType.NON_DETERMINISTIC,
            expected_symptom=Symptom.BYZANTINE,
            expected_mode=ByzantineMode.INCORRECT_BEHAVIOR,
            run=_fault_port_flap_race,
        ),
        FaultSpec(
            fault_id="network-stale-topology",
            description="link dies in discovery staleness window; path blackholes",
            trigger=Trigger.NETWORK_EVENTS,
            root_cause=RootCause.MISSING_LOGIC,
            bug_type=BugType.DETERMINISTIC,
            expected_symptom=Symptom.BYZANTINE,
            expected_mode=ByzantineMode.INCORRECT_BEHAVIOR,
            run=_fault_stale_topology,
            filterable=False,  # a link death is not a suppressible input
        ),
        FaultSpec(
            fault_id="reboot-olt-no-timeout",
            description="OLT reboot leaves VOLTHA core waiting forever",
            trigger=Trigger.HARDWARE_REBOOTS,
            root_cause=RootCause.MISSING_LOGIC,
            bug_type=BugType.DETERMINISTIC,
            expected_symptom=Symptom.BYZANTINE,
            expected_mode=ByzantineMode.STALL,
            run=_fault_olt_reboot_no_timeout,
            paper_reference="VOL-549",
        ),
        FaultSpec(
            fault_id="reboot-storm-load",
            description="OLT reboot storm churns the adapter; APIs degrade",
            trigger=Trigger.HARDWARE_REBOOTS,
            root_cause=RootCause.LOAD,
            bug_type=BugType.DETERMINISTIC,
            expected_symptom=Symptom.PERFORMANCE,
            expected_mode=None,
            run=_fault_reboot_storm,
        ),
    ]


def catalog_by_id() -> dict[str, FaultSpec]:
    """The default catalog indexed by fault id."""
    return {spec.fault_id: spec for spec in default_catalog()}


def find_fault(fault_id: str) -> FaultSpec:
    """Look up one fault; raises :class:`InjectionError` if unknown."""
    catalog = catalog_by_id()
    if fault_id not in catalog:
        raise InjectionError(
            f"unknown fault {fault_id!r}; known: {sorted(catalog)}"
        )
    return catalog[fault_id]
