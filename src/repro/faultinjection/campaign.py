"""Campaign runner: execute the fault catalog, compare against expectations.

Campaigns are *journaled* when given a ``run_id``: each spec's outcomes
commit through a :class:`~repro.recovery.CheckpointManager` (begin/commit
WAL over digest-verified cache checkpoints), so a campaign killed mid-flight
resumes with ``resume=run_id`` and re-executes only the specs whose commits
never landed.  Worker-crash containment by the :class:`WorkPool` is priced
into the campaign's :class:`ResilienceLedger` — recovery is measured, not
asserted, per the paper's §VII complaint.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Mapping

from repro.faultinjection.faults import FaultSpec, default_catalog
from repro.parallel import ArtifactCache, WorkPool, canonicalize
from repro.recovery.checkpoint import (
    CheckpointManager,
    RecoveryError,
    open_run_journal,
)
from repro.recovery.journal import EVENT_RUN_END, JournalEvent
from repro.resilience.ledger import ResilienceEvent, ResilienceLedger
from repro.resilience.policies import ResilienceConfig
from repro.resilience.supervisor import RestartRun, SupervisedRestart
from repro.sdnsim.observers import Outcome
from repro.taxonomy import BugType, RootCause, Symptom

if TYPE_CHECKING:  # pragma: no cover
    from repro.adversary.schedule import FaultSchedule
    from repro.adversary.world import AdversaryResult


def _price_containment(pool: WorkPool, ledger: ResilienceLedger) -> None:
    """Ledger the pool's worker-crash containment events as recovery cost."""
    for entry in pool.containment:
        recovered = entry["outcome"] == "recovered"
        ledger.record(
            ResilienceEvent.RESTART if recovered else ResilienceEvent.GIVE_UP,
            "workpool",
            detail=(
                f"worker crash on task {entry['index']}: {entry['outcome']}"
            ),
            attempt=entry["attempts"],
        )


def _run_spec_task(
    task: tuple[FaultSpec, int, int],
) -> "FaultResult":
    """Outcomes for one fault spec over its seed range (pure per spec)."""
    spec, base_seed, seeds_per_fault = task
    outcomes = [spec.execute(base_seed + i) for i in range(seeds_per_fault)]
    return FaultResult(spec=spec, outcomes=outcomes)


def _run_ab_spec_task(
    task: tuple[FaultSpec, int, int, ResilienceConfig],
) -> "tuple[AbFaultResult, ResilienceLedger]":
    """Bare + hardened arms for one spec, with a private ledger.

    Self-contained per spec so the campaign can fan specs out across
    worker processes: ``resilience_context`` installs module-global state,
    which is only safe when each task owns its interpreter (or runs
    serially).  The caller merges the returned ledgers in catalog order,
    which reproduces exactly the record sequence of the serial run.
    """
    from repro.faultinjection.scenario import resilience_context

    spec, base_seed, seeds_per_fault, config = task
    ledger = ResilienceLedger()
    baseline = [spec.execute(base_seed + i) for i in range(seeds_per_fault)]
    restarter = SupervisedRestart(
        backoff=config.restart_backoff, ledger=ledger, component=spec.fault_id
    )
    with resilience_context(config, ledger):
        hardened = [
            restarter.run(spec.execute, base_seed + i, trigger=spec.trigger)
            for i in range(seeds_per_fault)
        ]
    return AbFaultResult(spec=spec, baseline=baseline, hardened=hardened), ledger


def _run_adversarial_schedule_task(
    schedule: "FaultSchedule",
) -> "tuple[AdversaryResult, ResilienceLedger, AdversaryResult, ResilienceLedger]":
    """Bare + hardened adversary replays of one schedule, private ledgers."""
    from repro.adversary.world import run_adversary

    bare_ledger = ResilienceLedger()
    hardened_ledger = ResilienceLedger()
    bare = run_adversary(schedule, hardened=False, ledger=bare_ledger)
    hardened = run_adversary(schedule, hardened=True, ledger=hardened_ledger)
    return bare, bare_ledger, hardened, hardened_ledger


@dataclass
class FaultResult:
    """Outcome of one fault execution (possibly over several seeds)."""

    spec: FaultSpec
    outcomes: list[Outcome]

    @property
    def manifested(self) -> bool:
        """Did the fault produce any non-healthy outcome?"""
        return any(o.symptom is not None for o in self.outcomes)

    @property
    def manifestation_rate(self) -> float:
        hits = sum(1 for o in self.outcomes if o.symptom is not None)
        return hits / len(self.outcomes)

    @property
    def observed_symptoms(self) -> set[Symptom]:
        return {o.symptom for o in self.outcomes if o.symptom is not None}

    @property
    def matches_expectation(self) -> bool:
        """True when the expected symptom (and mode) was observed."""
        for outcome in self.outcomes:
            if outcome.symptom is not self.spec.expected_symptom:
                continue
            if (
                self.spec.expected_mode is not None
                and outcome.byzantine_mode is not self.spec.expected_mode
            ):
                continue
            return True
        return False


@dataclass
class CampaignResult:
    """All fault results from one campaign."""

    results: list[FaultResult] = field(default_factory=list)
    #: Recovery-cost accounting (worker-crash containment, restarts).
    ledger: ResilienceLedger = field(default_factory=ResilienceLedger)
    #: Fault ids satisfied from journal-committed checkpoints on resume.
    skipped: list[str] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.results)

    def result_for(self, fault_id: str) -> FaultResult:
        for result in self.results:
            if result.spec.fault_id == fault_id:
                return result
        raise KeyError(fault_id)

    @property
    def expectation_match_rate(self) -> float:
        matched = sum(1 for r in self.results if r.matches_expectation)
        return matched / len(self.results)

    def deterministic_results(self) -> list[FaultResult]:
        return [
            r for r in self.results if r.spec.bug_type is BugType.DETERMINISTIC
        ]

    def nondeterministic_results(self) -> list[FaultResult]:
        return [
            r for r in self.results if r.spec.bug_type is BugType.NON_DETERMINISTIC
        ]


class FaultCampaign:
    """Run every catalog fault over ``seeds_per_fault`` seeds.

    Deterministic faults should manifest on every seed; non-deterministic
    ones only on some — the campaign verifies the taxonomy's determinism
    dimension mechanically.
    """

    def __init__(
        self,
        catalog: list[FaultSpec] | None = None,
        *,
        seeds_per_fault: int = 3,
        base_seed: int = 0,
        jobs: int = 1,
    ) -> None:
        if seeds_per_fault < 1:
            raise ValueError("seeds_per_fault must be >= 1")
        self.catalog = list(catalog) if catalog is not None else default_catalog()
        self.seeds_per_fault = seeds_per_fault
        self.base_seed = base_seed
        self.jobs = jobs

    # -- journaling ------------------------------------------------------------
    @staticmethod
    def _resolve_run_id(run_id: str | None, resume: str | None) -> str | None:
        if resume is not None:
            if run_id is not None and run_id != resume:
                raise RecoveryError(
                    f"conflicting run ids: run_id={run_id!r}, resume={resume!r}"
                )
            return resume
        return run_id

    def config_digest(
        self, *, arm: str, extra: Mapping[str, Any] | None = None
    ) -> str:
        """Digest of everything that determines this campaign's outcomes.

        ``jobs`` is deliberately absent — worker count is a performance
        knob, so a campaign may legally resume at a different width.
        """
        config = canonicalize({
            "arm": arm,
            "fault_ids": [spec.fault_id for spec in self.catalog],
            "base_seed": self.base_seed,
            "seeds_per_fault": self.seeds_per_fault,
            **(extra or {}),
        })
        payload = json.dumps(config, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def _journaled_spec_values(
        self,
        pool: WorkPool,
        task_fn: Callable[[Any], Any],
        task_for: Callable[[FaultSpec], Any],
        params_for: Callable[[FaultSpec], Mapping[str, Any]],
        *,
        namespace: str,
        config_digest: str,
        cache: ArtifactCache | None,
        run_id: str,
        resume: bool,
        journal_root: str | Path | None,
        on_journal_event: Callable[[JournalEvent], None] | None,
        ledger: ResilienceLedger,
    ) -> tuple[list[Any], list[str]]:
        """Run every catalog spec under begin/commit journaling.

        Specs execute in waves of ``jobs`` so a kill between waves loses at
        most one wave of work; within a wave every spec is journaled
        ``begin`` before the fan-out and ``commit`` as its checkpoint
        publishes.  Returns catalog-ordered values plus the fault ids
        satisfied straight from journal-committed checkpoints.
        """
        if cache is None:
            raise RecoveryError(
                "journaled campaigns require an artifact cache "
                "(checkpoints are what resume recovers from)"
            )
        root = (
            Path(journal_root) if journal_root is not None
            else cache.root / ".journal"
        )
        journal, committed = open_run_journal(
            root / f"{run_id}.jsonl", run_id,
            resume=resume, config_digest=config_digest,
            on_event=on_journal_event,
        )
        manager = CheckpointManager(cache, journal, committed=committed)
        values: dict[str, Any] = {}
        skipped: list[str] = []
        try:
            pending: list[FaultSpec] = []
            for spec in self.catalog:
                stage = f"spec:{spec.fault_id}"
                value, outcome = manager.peek(stage, namespace, params_for(spec))
                if outcome is not None:
                    values[spec.fault_id] = value
                    if outcome.skipped:
                        skipped.append(spec.fault_id)
                else:
                    pending.append(spec)
            width = max(self.jobs, 1)
            for start in range(0, len(pending), width):
                wave = pending[start:start + width]
                for spec in wave:
                    manager.begin(
                        f"spec:{spec.fault_id}", namespace, params_for(spec)
                    )
                wave_values = pool.map(task_fn, [task_for(spec) for spec in wave])
                _price_containment(pool, ledger)
                for spec, value in zip(wave, wave_values):
                    manager.commit_value(
                        f"spec:{spec.fault_id}", namespace,
                        params_for(spec), value,
                    )
                    values[spec.fault_id] = value
            journal.append(EVENT_RUN_END)
        finally:
            journal.close()
        return [values[spec.fault_id] for spec in self.catalog], skipped

    def run(
        self,
        *,
        cache: ArtifactCache | None = None,
        run_id: str | None = None,
        resume: str | None = None,
        journal_root: str | Path | None = None,
        on_journal_event: Callable[[JournalEvent], None] | None = None,
    ) -> CampaignResult:
        """Execute the catalog; specs fan out across ``jobs`` workers.

        Each spec's outcomes are a pure function of ``(spec, base_seed)``,
        and results are collected in catalog order, so the report is
        identical for every ``jobs`` value.  With ``run_id=`` every spec
        commits through a journal and ``resume=`` continues a killed
        campaign, re-executing only uncommitted specs.
        """
        run_id = self._resolve_run_id(run_id, resume)
        pool = WorkPool(self.jobs)
        result = CampaignResult()
        if run_id is None:
            result.results = pool.map(
                _run_spec_task,
                [
                    (spec, self.base_seed, self.seeds_per_fault)
                    for spec in self.catalog
                ],
            )
            _price_containment(pool, result.ledger)
            return result

        def _params(spec: FaultSpec) -> dict[str, Any]:
            return {
                "arm": "bare",
                "fault_id": spec.fault_id,
                "base_seed": self.base_seed,
                "seeds_per_fault": self.seeds_per_fault,
            }

        result.results, result.skipped = self._journaled_spec_values(
            pool,
            _run_spec_task,
            lambda spec: (spec, self.base_seed, self.seeds_per_fault),
            _params,
            namespace="faultcampaign",
            config_digest=self.config_digest(arm="bare"),
            cache=cache,
            run_id=run_id,
            resume=resume is not None,
            journal_root=journal_root,
            on_journal_event=on_journal_event,
            ledger=result.ledger,
        )
        return result

    def run_ab(
        self,
        *,
        resilience: ResilienceConfig | None = None,
        cache: ArtifactCache | None = None,
        run_id: str | None = None,
        resume: str | None = None,
        journal_root: str | Path | None = None,
        on_journal_event: Callable[[JournalEvent], None] | None = None,
    ) -> AbReport:
        """Run every fault twice — bare, then hardened — and pair the results.

        The hardened arm runs inside :func:`resilience_context` (so every
        scenario gets the guarded TSDB) under a :class:`SupervisedRestart`
        harness (so detectable fail-stop/stall outcomes get restarted within
        the intensity budget).  The report quantifies the paper's §VII
        lesson: restart-style recovery pays off only against
        non-deterministic bugs; deterministic ones re-manifest and remain as
        residual symptoms.
        """
        config = resilience if resilience is not None else ResilienceConfig.default()
        run_id = self._resolve_run_id(run_id, resume)
        ledger = ResilienceLedger()
        report = AbReport(config=config, ledger=ledger)
        # The process backend is required for jobs > 1: resilience_context
        # installs module-global state, so concurrent threads would cross
        # arms.  Each task runs with a private ledger; merging the per-spec
        # ledgers in catalog order reproduces the serial record sequence.
        pool = WorkPool(self.jobs, backend="serial" if self.jobs == 1 else "process")
        if run_id is None:
            outcomes = pool.map(
                _run_ab_spec_task,
                [
                    (spec, self.base_seed, self.seeds_per_fault, config)
                    for spec in self.catalog
                ],
            )
            _price_containment(pool, ledger)
        else:
            def _params(spec: FaultSpec) -> dict[str, Any]:
                return {
                    "arm": "ab",
                    "fault_id": spec.fault_id,
                    "base_seed": self.base_seed,
                    "seeds_per_fault": self.seeds_per_fault,
                    "resilience": repr(config),
                }

            outcomes, report.skipped = self._journaled_spec_values(
                pool,
                _run_ab_spec_task,
                lambda spec: (spec, self.base_seed, self.seeds_per_fault, config),
                _params,
                namespace="faultcampaign-ab",
                config_digest=self.config_digest(
                    arm="ab", extra={"resilience": repr(config)}
                ),
                cache=cache,
                run_id=run_id,
                resume=resume is not None,
                journal_root=journal_root,
                on_journal_event=on_journal_event,
                ledger=ledger,
            )
        for result, spec_ledger in outcomes:
            report.results.append(result)
            ledger.records.extend(spec_ledger.records)
        return report

    def run_adversarial_ab(
        self,
        *,
        schedules: "list[FaultSchedule] | None" = None,
        events: int = 20,
        horizon: float = 60.0,
    ) -> "AdversarialAbReport":
        """Message-level A/B: replay fault schedules bare vs hardened.

        Each schedule (one per configured seed, or an explicit list) is
        replayed twice against the adversary world: bare — buggy ONOS-5992
        quorum accounting, last-writer-wins mastership views, no
        retransmission — and hardened, the PR-1-style build (fixed quorum,
        term-checked views, retry with ledger pricing, anti-entropy on
        heal).  The report compares *per-invariant* violating-subject
        counts between the arms.
        """
        from repro.adversary.schedule import random_schedule

        if schedules is None:
            schedules = [
                random_schedule(self.base_seed + i, events=events, horizon=horizon)
                for i in range(self.seeds_per_fault)
            ]
        bare_ledger = ResilienceLedger()
        hardened_ledger = ResilienceLedger()
        report = AdversarialAbReport(
            bare_ledger=bare_ledger, hardened_ledger=hardened_ledger
        )
        # Thread backend: AdversaryResult holds closures the process
        # backend cannot pickle, and run_adversary takes explicit ledgers
        # (no module globals), so threads are safe.  Each schedule records
        # into private ledgers, merged below in schedule order.
        pool = WorkPool(self.jobs, backend="serial" if self.jobs == 1 else "thread")
        outcomes = pool.map(_run_adversarial_schedule_task, list(schedules))
        for schedule, (bare, bare_led, hardened, hardened_led) in zip(
            schedules, outcomes
        ):
            report.schedules.append(schedule)
            report.bare.append(bare)
            bare_ledger.records.extend(bare_led.records)
            report.hardened.append(hardened)
            hardened_ledger.records.extend(hardened_led.records)
        return report


@dataclass
class AdversarialAbReport:
    """Paired bare/hardened adversary runs over the same schedules.

    The comparison unit is the *violating subject* — a distinct
    (invariant, device-or-cluster) pair that broke at least once — which
    keeps flapping liveness properties from over-counting either arm.
    """

    bare_ledger: ResilienceLedger
    hardened_ledger: ResilienceLedger
    schedules: "list[FaultSchedule]" = field(default_factory=list)
    bare: "list[AdversaryResult]" = field(default_factory=list)
    hardened: "list[AdversaryResult]" = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.schedules)

    @staticmethod
    def _counts(results: "list[AdversaryResult]") -> dict[str, int]:
        counts: dict[str, int] = {}
        for result in results:
            for invariant, n in result.distinct_by_invariant().items():
                counts[invariant] = counts.get(invariant, 0) + n
        return counts

    def per_invariant(self) -> dict[str, tuple[int, int]]:
        """``invariant -> (bare, hardened)`` violating-subject counts."""
        bare = self._counts(self.bare)
        hardened = self._counts(self.hardened)
        return {
            name: (bare.get(name, 0), hardened.get(name, 0))
            for name in sorted(set(bare) | set(hardened))
        }

    @property
    def bare_violation_count(self) -> int:
        return sum(len(r.violated_subjects()) for r in self.bare)

    @property
    def hardened_violation_count(self) -> int:
        return sum(len(r.violated_subjects()) for r in self.hardened)

    @property
    def violation_reduction(self) -> int:
        """Violating subjects the hardened build absorbed."""
        return self.bare_violation_count - self.hardened_violation_count

    def summary(self) -> dict[str, object]:
        return {
            "schedules": len(self.schedules),
            "events_per_schedule": [len(s) for s in self.schedules],
            "bare_violations": self.bare_violation_count,
            "hardened_violations": self.hardened_violation_count,
            "violation_reduction": self.violation_reduction,
            "hardened_retries": self.hardened_ledger.count(ResilienceEvent.RETRY),
        }


@dataclass
class AbFaultResult:
    """Paired bare/hardened outcomes for one fault over the same seeds."""

    spec: FaultSpec
    baseline: list[Outcome]
    hardened: list[RestartRun]

    @staticmethod
    def _symptom_rate(outcomes: list[Outcome]) -> float:
        hits = sum(1 for o in outcomes if o.symptom is not None)
        return hits / len(outcomes) if outcomes else 0.0

    @property
    def baseline_symptom_rate(self) -> float:
        return self._symptom_rate(self.baseline)

    @property
    def hardened_symptom_rate(self) -> float:
        return self._symptom_rate([run.outcome for run in self.hardened])

    @property
    def improved(self) -> bool:
        return self.hardened_symptom_rate < self.baseline_symptom_rate

    @property
    def restarts(self) -> int:
        return sum(run.restarts for run in self.hardened)

    @property
    def recovery_latency(self) -> float:
        """Total backoff seconds spent by runs that actually recovered."""
        return sum(run.recovery_latency for run in self.hardened if run.recovered)

    @property
    def residual_symptoms(self) -> set[Symptom]:
        """Symptoms the hardening failed to absorb."""
        return {
            run.outcome.symptom
            for run in self.hardened
            if run.outcome.symptom is not None
        }


@dataclass
class AbReport:
    """Campaign-level A/B comparison plus the shared resilience ledger."""

    config: ResilienceConfig
    ledger: ResilienceLedger
    results: list[AbFaultResult] = field(default_factory=list)
    #: Fault ids satisfied from journal-committed checkpoints on resume.
    skipped: list[str] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.results)

    def result_for(self, fault_id: str) -> AbFaultResult:
        for result in self.results:
            if result.spec.fault_id == fault_id:
                return result
        raise KeyError(fault_id)

    def _runs(self) -> int:
        return sum(len(r.baseline) for r in self.results)

    @property
    def baseline_symptom_rate(self) -> float:
        """Fraction of all bare runs that surfaced a symptom."""
        runs = self._runs()
        hits = sum(
            1 for r in self.results for o in r.baseline if o.symptom is not None
        )
        return hits / runs if runs else 0.0

    @property
    def hardened_symptom_rate(self) -> float:
        runs = self._runs()
        hits = sum(
            1
            for r in self.results
            for run in r.hardened
            if run.outcome.symptom is not None
        )
        return hits / runs if runs else 0.0

    @property
    def symptom_reduction(self) -> float:
        """Absolute drop in the per-run symptom rate bought by hardening."""
        return self.baseline_symptom_rate - self.hardened_symptom_rate

    @property
    def mean_recovery_latency(self) -> float:
        """Mean backoff seconds per recovered restart run."""
        recovered = [
            run for r in self.results for run in r.hardened if run.recovered
        ]
        if not recovered:
            return 0.0
        return sum(run.recovery_latency for run in recovered) / len(recovered)

    def improved_results(self) -> list[AbFaultResult]:
        return [r for r in self.results if r.improved]

    def residual_by_root_cause(self) -> dict[RootCause, int]:
        """Hardened runs still symptomatic, grouped by the fault's root cause.

        This is the campaign's punchline table: what survives retry,
        breaker, and supervised restart is dominated by deterministic root
        causes (missing logic, misconfiguration) that demand input-level
        fixes, not another restart.
        """
        breakdown: dict[RootCause, int] = {}
        for result in self.results:
            residual = sum(
                1 for run in result.hardened if run.outcome.symptom is not None
            )
            if residual:
                breakdown[result.spec.root_cause] = (
                    breakdown.get(result.spec.root_cause, 0) + residual
                )
        return breakdown

    def summary(self) -> dict[str, object]:
        """The headline numbers, ready for reporting/benchmark tables."""
        return {
            "faults": len(self.results),
            "runs_per_arm": self._runs(),
            "baseline_symptom_rate": round(self.baseline_symptom_rate, 4),
            "hardened_symptom_rate": round(self.hardened_symptom_rate, 4),
            "symptom_reduction": round(self.symptom_reduction, 4),
            "improved_faults": [
                r.spec.fault_id for r in self.improved_results()
            ],
            "mean_recovery_latency": round(self.mean_recovery_latency, 3),
            "ledger_events": len(self.ledger),
        }
