"""Campaign runner: execute the fault catalog, compare against expectations."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.faultinjection.faults import FaultSpec, default_catalog
from repro.sdnsim.observers import Outcome
from repro.taxonomy import BugType, Symptom


@dataclass
class FaultResult:
    """Outcome of one fault execution (possibly over several seeds)."""

    spec: FaultSpec
    outcomes: list[Outcome]

    @property
    def manifested(self) -> bool:
        """Did the fault produce any non-healthy outcome?"""
        return any(o.symptom is not None for o in self.outcomes)

    @property
    def manifestation_rate(self) -> float:
        hits = sum(1 for o in self.outcomes if o.symptom is not None)
        return hits / len(self.outcomes)

    @property
    def observed_symptoms(self) -> set[Symptom]:
        return {o.symptom for o in self.outcomes if o.symptom is not None}

    @property
    def matches_expectation(self) -> bool:
        """True when the expected symptom (and mode) was observed."""
        for outcome in self.outcomes:
            if outcome.symptom is not self.spec.expected_symptom:
                continue
            if (
                self.spec.expected_mode is not None
                and outcome.byzantine_mode is not self.spec.expected_mode
            ):
                continue
            return True
        return False


@dataclass
class CampaignResult:
    """All fault results from one campaign."""

    results: list[FaultResult] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.results)

    def result_for(self, fault_id: str) -> FaultResult:
        for result in self.results:
            if result.spec.fault_id == fault_id:
                return result
        raise KeyError(fault_id)

    @property
    def expectation_match_rate(self) -> float:
        matched = sum(1 for r in self.results if r.matches_expectation)
        return matched / len(self.results)

    def deterministic_results(self) -> list[FaultResult]:
        return [
            r for r in self.results if r.spec.bug_type is BugType.DETERMINISTIC
        ]

    def nondeterministic_results(self) -> list[FaultResult]:
        return [
            r for r in self.results if r.spec.bug_type is BugType.NON_DETERMINISTIC
        ]


class FaultCampaign:
    """Run every catalog fault over ``seeds_per_fault`` seeds.

    Deterministic faults should manifest on every seed; non-deterministic
    ones only on some — the campaign verifies the taxonomy's determinism
    dimension mechanically.
    """

    def __init__(
        self,
        catalog: list[FaultSpec] | None = None,
        *,
        seeds_per_fault: int = 3,
        base_seed: int = 0,
    ) -> None:
        if seeds_per_fault < 1:
            raise ValueError("seeds_per_fault must be >= 1")
        self.catalog = list(catalog) if catalog is not None else default_catalog()
        self.seeds_per_fault = seeds_per_fault
        self.base_seed = base_seed

    def run(self) -> CampaignResult:
        campaign = CampaignResult()
        for spec in self.catalog:
            outcomes = [
                spec.execute(self.base_seed + i)
                for i in range(self.seeds_per_fault)
            ]
            campaign.results.append(FaultResult(spec=spec, outcomes=outcomes))
        return campaign
