"""RQ3 (SS V-A, Table III, Fig 13): what events trigger bugs."""

from __future__ import annotations

from repro.corpus.dataset import BugDataset
from repro.taxonomy import (
    ConfigSubcategory,
    ExternalCallKind,
    FixStrategy,
    Trigger,
)


def trigger_distribution(dataset: BugDataset) -> dict[Trigger, float]:
    """Share of each trigger across ``dataset`` (sums to 1)."""
    if len(dataset) == 0:
        raise ValueError("empty dataset")
    counts = {t: 0 for t in Trigger}
    for bug in dataset:
        counts[bug.label.trigger] += 1
    return {t: c / len(dataset) for t, c in counts.items()}


def config_subcategory_distribution(
    dataset: BugDataset,
) -> dict[str, dict[ConfigSubcategory, float]]:
    """Table III: per controller, sub-categories of configuration bugs."""
    result: dict[str, dict[ConfigSubcategory, float]] = {}
    for controller in dataset.controllers:
        config_bugs = dataset.by_controller(controller).filter(
            lambda b: b.label.trigger is Trigger.CONFIGURATION
        )
        if len(config_bugs) == 0:
            result[controller] = {}
            continue
        counts = {sub: 0 for sub in ConfigSubcategory}
        for bug in config_bugs:
            assert bug.label.config_subcategory is not None
            counts[bug.label.config_subcategory] += 1
        result[controller] = {
            sub: count / len(config_bugs) for sub, count in counts.items()
        }
    return result


def config_fixed_by_config_share(dataset: BugDataset) -> float:
    """SS V-A: share of configuration-triggered bugs whose fix is a
    configuration change (paper: only 25%)."""
    config_bugs = dataset.filter(lambda b: b.label.trigger is Trigger.CONFIGURATION)
    if len(config_bugs) == 0:
        raise ValueError("dataset contains no configuration-triggered bugs")
    fixed_by_config = sum(
        1 for bug in config_bugs if bug.label.fix is FixStrategy.FIX_CONFIGURATION
    )
    return fixed_by_config / len(config_bugs)


def external_compatibility_fix_share(dataset: BugDataset) -> float:
    """SS V-A: share of external-call bugs fixed by making the controller
    compatible (add-compatibility or package upgrade; paper: 41.4% for the
    add-compatibility strategy alone, which is what we count)."""
    external = dataset.filter(lambda b: b.label.trigger is Trigger.EXTERNAL_CALLS)
    if len(external) == 0:
        raise ValueError("dataset contains no external-call bugs")
    compatibility = sum(
        1 for bug in external if bug.label.fix is FixStrategy.ADD_COMPATIBILITY
    )
    return compatibility / len(external)


def fine_trigger_distribution(dataset: BugDataset) -> dict[str, float]:
    """Fig 13: triggers with external calls split into system / third-party /
    application calls.

    Keys: ``configuration``, ``system_calls``, ``third_party_calls``,
    ``application_calls``, ``network_events``, ``hardware_reboots``.
    """
    if len(dataset) == 0:
        raise ValueError("empty dataset")
    counts: dict[str, int] = {
        "configuration": 0,
        "system_calls": 0,
        "third_party_calls": 0,
        "application_calls": 0,
        "network_events": 0,
        "hardware_reboots": 0,
    }
    for bug in dataset:
        trigger = bug.label.trigger
        if trigger is Trigger.EXTERNAL_CALLS:
            kind = bug.label.external_kind or ExternalCallKind.THIRD_PARTY_CALLS
            counts[kind.value] += 1
        else:
            counts[trigger.value] += 1
    return {k: v / len(dataset) for k, v in counts.items()}
