"""Statistical analyses over labeled bug datasets (RQ1-RQ4).

Each module maps to a paper section/figure:

* :mod:`repro.analysis.determinism` — SS III (RQ1)
* :mod:`repro.analysis.symptoms` — SS IV / Fig 2 / Table VII
* :mod:`repro.analysis.triggers` — SS V-A / Table III / Fig 13
* :mod:`repro.analysis.resolution` — SS V-B / Fig 7
* :mod:`repro.analysis.correlation` — SS VII-B / Fig 12
* :mod:`repro.analysis.topics` — SS VII-B / Fig 14
"""

from repro.analysis.correlation import (
    CategoryCorrelation,
    correlation_cdf,
    pairwise_correlations,
    strongly_correlated_pairs,
)
from repro.analysis.determinism import determinism_rates
from repro.analysis.resolution import EmpiricalCDF, resolution_cdfs
from repro.analysis.symptoms import (
    byzantine_mode_distribution,
    root_cause_by_symptom,
    symptom_distribution,
)
from repro.analysis.topics import topic_uniqueness
from repro.analysis.triggers import (
    config_fixed_by_config_share,
    config_subcategory_distribution,
    external_compatibility_fix_share,
    fine_trigger_distribution,
    trigger_distribution,
)

__all__ = [
    "CategoryCorrelation",
    "correlation_cdf",
    "pairwise_correlations",
    "strongly_correlated_pairs",
    "determinism_rates",
    "EmpiricalCDF",
    "resolution_cdfs",
    "byzantine_mode_distribution",
    "root_cause_by_symptom",
    "symptom_distribution",
    "topic_uniqueness",
    "config_fixed_by_config_share",
    "config_subcategory_distribution",
    "external_compatibility_fix_share",
    "fine_trigger_distribution",
    "trigger_distribution",
]
