"""Statistical significance helpers for the distributional claims.

The paper states its Fig 7 tail contrasts qualitatively; these helpers let
the benches back them with two-sample Kolmogorov-Smirnov tests (scipy) and
bootstrap confidence intervals for share estimates.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from scipy import stats


@dataclass(frozen=True)
class KsResult:
    """Two-sample KS test result."""

    statistic: float
    p_value: float

    def significant(self, alpha: float = 0.05) -> bool:
        return self.p_value < alpha


def ks_two_sample(a: Sequence[float], b: Sequence[float]) -> KsResult:
    """Two-sample Kolmogorov-Smirnov test (are the distributions different?)."""
    if not a or not b:
        raise ValueError("both samples must be non-empty")
    result = stats.ks_2samp(list(a), list(b))
    return KsResult(statistic=float(result.statistic), p_value=float(result.pvalue))


def mann_whitney_greater(a: Sequence[float], b: Sequence[float]) -> KsResult:
    """One-sided Mann-Whitney U test: is ``a`` stochastically greater than
    ``b``?  Returned in the same (statistic, p_value) shape as the KS test."""
    if not a or not b:
        raise ValueError("both samples must be non-empty")
    result = stats.mannwhitneyu(list(a), list(b), alternative="greater")
    return KsResult(statistic=float(result.statistic), p_value=float(result.pvalue))


def bootstrap_share_ci(
    flags: Sequence[bool],
    *,
    confidence: float = 0.95,
    n_resamples: int = 2000,
    seed: int = 0,
) -> tuple[float, float]:
    """Bootstrap confidence interval for a binary share (e.g. "38.8% of bugs
    are configuration-triggered")."""
    if not flags:
        raise ValueError("empty sample")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    rng = random.Random(seed)
    n = len(flags)
    values = [1.0 if f else 0.0 for f in flags]
    shares = sorted(
        sum(rng.choice(values) for _ in range(n)) / n for _ in range(n_resamples)
    )
    lo_index = int((1.0 - confidence) / 2.0 * n_resamples)
    hi_index = min(n_resamples - 1, n_resamples - 1 - lo_index)
    return shares[lo_index], shares[hi_index]
