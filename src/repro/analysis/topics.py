"""SS VII-B / Fig 14: topic uniqueness per bug category.

For a given taxonomy tag (e.g. symptom=byzantine), extract NMF topics from
the descriptions of bugs carrying the tag and from those that do not, then
measure what fraction of the tag's top topic terms never appear among the
complement's top terms.  High uniqueness means the category is identifiable
from keywords alone — the property the paper exploits for diagnosis.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.corpus.dataset import BugDataset
from repro.ml import NMF
from repro.textmining import TfidfVectorizer, Tokenizer


@dataclass(frozen=True)
class TopicUniqueness:
    """Uniqueness result for one category tag."""

    dimension: str
    tag: str
    unique_share: float
    top_terms: tuple[str, ...]
    overlapping_terms: tuple[str, ...]


def _top_topic_terms(
    texts: list[str],
    *,
    n_topics: int,
    terms_per_topic: int,
    seed: int,
) -> list[str]:
    tokenizer = Tokenizer()
    docs = tokenizer.tokenize_all(texts)
    vectorizer = TfidfVectorizer(min_count=2)
    matrix = vectorizer.fit_transform(docs)
    if matrix.shape[1] == 0:
        return []
    nmf = NMF(n_components=min(n_topics, matrix.shape[0]), seed=seed)
    nmf.fit(matrix)
    terms: list[str] = []
    for topic in nmf.top_terms(vectorizer.feature_names, terms_per_topic):
        terms.extend(topic)
    # Deduplicate, preserving order.
    seen: set[str] = set()
    unique: list[str] = []
    for term in terms:
        if term not in seen:
            seen.add(term)
            unique.append(term)
    return unique


def topic_uniqueness(
    dataset: BugDataset,
    dimension: str,
    tag: str,
    *,
    n_topics: int = 4,
    terms_per_topic: int = 8,
    seed: int = 0,
) -> TopicUniqueness:
    """Measure the topic uniqueness of one category tag (Fig 14)."""
    values = dataset.labels(dimension)
    in_texts = [
        bug.report.text for bug, value in zip(dataset, values) if value == tag
    ]
    out_texts = [
        bug.report.text for bug, value in zip(dataset, values) if value != tag
    ]
    if not in_texts:
        raise ValueError(f"no bugs carry {dimension}={tag}")
    if not out_texts:
        raise ValueError(f"all bugs carry {dimension}={tag}; uniqueness undefined")
    in_terms = _top_topic_terms(
        in_texts, n_topics=n_topics, terms_per_topic=terms_per_topic, seed=seed
    )
    out_terms = set(
        _top_topic_terms(
            out_texts, n_topics=n_topics, terms_per_topic=terms_per_topic, seed=seed
        )
    )
    unique = [t for t in in_terms if t not in out_terms]
    overlapping = [t for t in in_terms if t in out_terms]
    share = len(unique) / len(in_terms) if in_terms else 0.0
    return TopicUniqueness(
        dimension=dimension,
        tag=tag,
        unique_share=share,
        top_terms=tuple(in_terms),
        overlapping_terms=tuple(overlapping),
    )


def uniqueness_ranking(
    dataset: BugDataset,
    pairs: list[tuple[str, str]],
    *,
    seed: int = 0,
) -> list[TopicUniqueness]:
    """Fig 14: uniqueness for a list of ``(dimension, tag)`` pairs, sorted
    most-unique first."""
    results = [
        topic_uniqueness(dataset, dim, tag, seed=seed) for dim, tag in pairs
    ]
    return sorted(results, key=lambda r: -r.unique_share)
