"""RQ2 (SS IV, Fig 2, Table VII): operational impact of bugs."""

from __future__ import annotations

from repro.corpus.dataset import BugDataset
from repro.paperdata import CROSS_DOMAIN_SYMPTOMS
from repro.taxonomy import ByzantineMode, RootCause, Symptom


def symptom_distribution(dataset: BugDataset) -> dict[Symptom, float]:
    """Share of each symptom across ``dataset`` (sums to 1)."""
    if len(dataset) == 0:
        raise ValueError("empty dataset")
    counts = {s: 0 for s in Symptom}
    for bug in dataset:
        counts[bug.label.symptom] += 1
    return {s: c / len(dataset) for s, c in counts.items()}


def byzantine_mode_distribution(dataset: BugDataset) -> dict[ByzantineMode, float]:
    """Distribution of modes *within* the byzantine class (SS IV)."""
    byzantine = dataset.filter(lambda b: b.label.symptom is Symptom.BYZANTINE)
    if len(byzantine) == 0:
        raise ValueError("dataset contains no byzantine bugs")
    counts = {m: 0 for m in ByzantineMode}
    for bug in byzantine:
        assert bug.label.byzantine_mode is not None
        counts[bug.label.byzantine_mode] += 1
    return {m: c / len(byzantine) for m, c in counts.items()}


def root_cause_by_symptom(
    dataset: BugDataset, symptom: Symptom
) -> dict[str, dict[RootCause, float]]:
    """Fig 2: per controller, the root-cause distribution of one symptom.

    Returns ``{controller: {root_cause: share}}``; controllers with no bugs
    showing ``symptom`` map to an empty dict.
    """
    result: dict[str, dict[RootCause, float]] = {}
    for controller in dataset.controllers:
        subset = dataset.by_controller(controller).filter(
            lambda b: b.label.symptom is symptom
        )
        if len(subset) == 0:
            result[controller] = {}
            continue
        counts: dict[RootCause, int] = {}
        for bug in subset:
            counts[bug.label.root_cause] = counts.get(bug.label.root_cause, 0) + 1
        result[controller] = {
            cause: count / len(subset) for cause, count in sorted(
                counts.items(), key=lambda kv: -kv[1]
            )
        }
    return result


def controller_logic_share_of_symptom(
    dataset: BugDataset, symptom: Symptom
) -> dict[str, float]:
    """Per controller, the share of ``symptom`` bugs rooted in controller
    logic (vs human/ecosystem).  Encodes Fig 2's FAUCET-vs-ONOS/CORD
    fail-stop contrast as a single number per controller."""
    shares: dict[str, float] = {}
    for controller, dist in root_cause_by_symptom(dataset, symptom).items():
        if not dist:
            continue
        shares[controller] = sum(
            share
            for cause, share in dist.items()
            if cause.family.value == "controller_logic"
        )
    return shares


def cross_domain_table(dataset: BugDataset) -> dict[str, dict[str, float | None]]:
    """Table VII: measured SDN symptom shares next to the paper's Cloud/BGP
    comparison values."""
    measured = symptom_distribution(dataset)
    table: dict[str, dict[str, float | None]] = {}
    for symptom_name, row in CROSS_DOMAIN_SYMPTOMS.items():
        symptom = Symptom(symptom_name)
        table[symptom_name] = {
            "SDN (measured)": measured[symptom],
            "SDN (paper)": row["SDN"],
            "Cloud": row["Cloud"],
            "BGP": row["BGP"],
        }
    return table
