"""SS V-B / Fig 7: resolution-time CDFs by trigger.

Only bugs with an observable ``resolved_at`` participate — in practice that
excludes all FAUCET bugs, exactly as in the paper ("we could not analyze
FAUCET's resolution times because their GitHub repository does not provide
this information").
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass
from typing import Sequence

from repro.corpus.dataset import BugDataset
from repro.taxonomy import Trigger


@dataclass(frozen=True)
class EmpiricalCDF:
    """Empirical cumulative distribution over a sorted sample."""

    values: tuple[float, ...]

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "EmpiricalCDF":
        if not samples:
            raise ValueError("cannot build a CDF from an empty sample")
        return cls(values=tuple(sorted(samples)))

    def __len__(self) -> int:
        return len(self.values)

    def cdf(self, x: float) -> float:
        """P(X <= x)."""
        return bisect.bisect_right(self.values, x) / len(self.values)

    def quantile(self, q: float) -> float:
        """Inverse CDF with the nearest-rank method (ceil(q*n)-th order
        statistic)."""
        if not 0.0 < q <= 1.0:
            raise ValueError("q must be in (0, 1]")
        rank = max(1, math.ceil(q * len(self.values)))
        return self.values[rank - 1]

    @property
    def median(self) -> float:
        return self.quantile(0.5)

    @property
    def p90(self) -> float:
        return self.quantile(0.9)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)

    @property
    def max(self) -> float:
        return self.values[-1]

    def series(self, points: int = 50) -> list[tuple[float, float]]:
        """Evenly spaced (value, cumulative-probability) pairs for plotting."""
        if points < 2:
            raise ValueError("points must be >= 2")
        lo, hi = self.values[0], self.values[-1]
        if hi == lo:
            return [(lo, 1.0)]
        step = (hi - lo) / (points - 1)
        return [(lo + i * step, self.cdf(lo + i * step)) for i in range(points)]


def resolution_cdfs(
    dataset: BugDataset,
) -> dict[str, dict[Trigger, EmpiricalCDF]]:
    """Fig 7: per controller, per trigger, the CDF of resolution days.

    Controllers/triggers with no *resolved* bugs are omitted (FAUCET never
    appears because its tracker exposes no resolution timestamps).
    """
    result: dict[str, dict[Trigger, EmpiricalCDF]] = {}
    for controller in dataset.controllers:
        subset = dataset.by_controller(controller)
        per_trigger: dict[Trigger, list[float]] = {}
        for bug in subset:
            days = bug.report.resolution_days
            if days is None:
                continue
            per_trigger.setdefault(bug.label.trigger, []).append(days)
        if per_trigger:
            result[controller] = {
                trigger: EmpiricalCDF.from_samples(days)
                for trigger, days in per_trigger.items()
            }
    return result


def tail_comparison(
    dataset: BugDataset, *, quantile: float = 0.9
) -> dict[Trigger, dict[str, float]]:
    """Tail (default p90) resolution days per trigger per controller —
    the quantity behind the paper's 'ONOS has a longer tail than CORD except
    for reboots' observation."""
    cdfs = resolution_cdfs(dataset)
    comparison: dict[Trigger, dict[str, float]] = {}
    for controller, per_trigger in cdfs.items():
        for trigger, cdf in per_trigger.items():
            comparison.setdefault(trigger, {})[controller] = cdf.quantile(quantile)
    return comparison
