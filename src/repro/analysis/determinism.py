"""RQ1 (SS III): determinism of critical bugs.

The paper's headline: all frameworks are dominated by deterministic bugs —
FAUCET 96%, ONOS 94%, CORD 94% — so record-and-replay recovery has limited
applicability to SDN controllers.
"""

from __future__ import annotations

from repro.corpus.dataset import BugDataset
from repro.taxonomy import BugType


def determinism_rates(dataset: BugDataset) -> dict[str, float]:
    """Fraction of deterministic bugs per controller.

    Returns ``{controller: rate}``; controllers with no bugs are omitted.
    """
    rates: dict[str, float] = {}
    for controller in dataset.controllers:
        subset = dataset.by_controller(controller)
        deterministic = sum(
            1 for bug in subset if bug.label.bug_type is BugType.DETERMINISTIC
        )
        rates[controller] = deterministic / len(subset)
    return rates


def overall_determinism_rate(dataset: BugDataset) -> float:
    """Aggregate fraction of deterministic bugs across the dataset."""
    if len(dataset) == 0:
        raise ValueError("empty dataset")
    deterministic = sum(
        1 for bug in dataset if bug.label.bug_type is BugType.DETERMINISTIC
    )
    return deterministic / len(dataset)
