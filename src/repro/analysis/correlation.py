"""SS VII-B / Fig 12: correlation between bug categories.

For every pair of tags drawn from *different* taxonomy dimensions (e.g.
root-cause ``memory`` x bug-type ``deterministic``), we measure association
with the phi coefficient of their 2x2 contingency table.  Fig 12 plots the
CDF of these correlations: most pairs are only fairly correlated (93.72%)
with a strongly-correlated tail (6.28%).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.analysis.resolution import EmpiricalCDF
from repro.corpus.dataset import BugDataset

#: The taxonomy dimensions whose tags participate in the pairing.
_DIMENSIONS = ("bug_type", "root_cause", "symptom", "fix", "trigger")


@dataclass(frozen=True)
class CategoryCorrelation:
    """Association between two category tags from different dimensions."""

    dimension_a: str
    tag_a: str
    dimension_b: str
    tag_b: str
    phi: float
    support: int  # bugs carrying both tags

    @property
    def strength(self) -> float:
        """Absolute association strength in [0, 1]."""
        return abs(self.phi)

    def describe(self) -> str:
        return (
            f"{self.dimension_a}={self.tag_a} x {self.dimension_b}={self.tag_b}: "
            f"phi={self.phi:+.3f} (n={self.support})"
        )


def _phi(n11: int, n10: int, n01: int, n00: int) -> float:
    """Phi coefficient of a 2x2 table; 0 when a margin is degenerate."""
    n1x = n11 + n10
    n0x = n01 + n00
    nx1 = n11 + n01
    nx0 = n10 + n00
    denominator = math.sqrt(float(n1x) * n0x * nx1 * nx0)
    if denominator == 0:
        return 0.0
    return (n11 * n00 - n10 * n01) / denominator


def pairwise_correlations(dataset: BugDataset) -> list[CategoryCorrelation]:
    """All cross-dimension tag-pair correlations, sorted by |phi| desc."""
    if len(dataset) == 0:
        raise ValueError("empty dataset")
    # Collect per-dimension tag vectors.
    tag_vectors: dict[str, list[str]] = {
        dim: dataset.labels(dim) for dim in _DIMENSIONS
    }
    n = len(dataset)
    results: list[CategoryCorrelation] = []
    dims = list(_DIMENSIONS)
    for i, dim_a in enumerate(dims):
        tags_a = sorted(set(tag_vectors[dim_a]))
        for dim_b in dims[i + 1 :]:
            tags_b = sorted(set(tag_vectors[dim_b]))
            for tag_a in tags_a:
                in_a = [v == tag_a for v in tag_vectors[dim_a]]
                for tag_b in tags_b:
                    in_b = [v == tag_b for v in tag_vectors[dim_b]]
                    n11 = sum(1 for a, b in zip(in_a, in_b) if a and b)
                    n10 = sum(1 for a, b in zip(in_a, in_b) if a and not b)
                    n01 = sum(1 for a, b in zip(in_a, in_b) if not a and b)
                    n00 = n - n11 - n10 - n01
                    results.append(
                        CategoryCorrelation(
                            dimension_a=dim_a,
                            tag_a=tag_a,
                            dimension_b=dim_b,
                            tag_b=tag_b,
                            phi=_phi(n11, n10, n01, n00),
                            support=n11,
                        )
                    )
    return sorted(results, key=lambda c: (-c.strength, c.tag_a, c.tag_b))


def correlation_cdf(dataset: BugDataset) -> EmpiricalCDF:
    """Fig 12: the CDF of |phi| over all category pairs."""
    correlations = pairwise_correlations(dataset)
    return EmpiricalCDF.from_samples([c.strength for c in correlations])


def strongly_correlated_pairs(
    dataset: BugDataset, *, threshold: float = 0.4
) -> list[CategoryCorrelation]:
    """The long tail of Fig 12: pairs with |phi| >= ``threshold``."""
    return [c for c in pairwise_correlations(dataset) if c.strength >= threshold]


def strongly_correlated_share(
    dataset: BugDataset, *, threshold: float = 0.4
) -> float:
    """Fraction of category pairs in the strongly-correlated tail."""
    correlations = pairwise_correlations(dataset)
    strong = sum(1 for c in correlations if c.strength >= threshold)
    return strong / len(correlations)
