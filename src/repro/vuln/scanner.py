"""Dependency scanner (OWASP dependency-check analogue) + ONOS manifests.

``onos_release_manifests`` models how ONOS's dependency set grows across
releases — each release adds libraries and only occasionally upgrades old
pins — which is what produces Table III-b's "vulnerability count grows over
time" trend when scanned.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.paperdata import ONOS_RELEASES
from repro.vuln.database import CveEntry, VulnerabilityDatabase, default_database
from repro.vuln.versions import Version


@dataclass(frozen=True)
class ScanFinding:
    """One vulnerable dependency in one manifest."""

    package: str
    version: str
    cve: CveEntry


class DependencyScanner:
    """Match dependency manifests against a vulnerability database."""

    def __init__(self, database: VulnerabilityDatabase | None = None) -> None:
        self.database = database or default_database()

    def scan(self, manifest: Mapping[str, str]) -> list[ScanFinding]:
        """All findings for a ``{package: version}`` manifest."""
        findings: list[ScanFinding] = []
        for package, version_text in sorted(manifest.items()):
            version = Version.parse(version_text)
            for cve in self.database.lookup(package, version):
                findings.append(
                    ScanFinding(package=package, version=version_text, cve=cve)
                )
        return findings

    def scan_releases(
        self, manifests: Mapping[str, Mapping[str, str]]
    ) -> dict[str, list[ScanFinding]]:
        """Scan a ``{release: manifest}`` family (Table III-b)."""
        return {
            release: self.scan(manifest) for release, manifest in manifests.items()
        }


#: Dependency manifests per ONOS release.  Later releases accumulate more
#: third-party libraries (the paper: "ONOS' vulnerability increased over
#: time as more dependencies were added with version updates").
_BASE_MANIFEST: dict[str, str] = {
    "netty": "4.0.5",
    "jackson-databind": "2.8.6",
    "zookeeper": "3.4.8",
    "ovsdb": "2.8.1",
    "log4j": "2.11.0",
}

_RELEASE_ADDITIONS: dict[str, dict[str, str]] = {
    "1.12": {},
    "1.13": {"karaf": "4.2.1"},
    "1.14": {"snakeyaml": "1.23"},
    "1.15": {"cxf": "3.2.7"},
    "2.0": {"grpc-java": "1.19.0", "ovsdb": "2.9.0"},
    "2.1": {"velocity": "2.0"},
    "2.2": {"openssl-java": "1.0.2"},
    "2.3": {"netty": "4.1.40"},
}


def onos_release_manifests() -> dict[str, dict[str, str]]:
    """Cumulative dependency manifests per ONOS release."""
    manifests: dict[str, dict[str, str]] = {}
    current = dict(_BASE_MANIFEST)
    for release in ONOS_RELEASES:
        current = {**current, **_RELEASE_ADDITIONS.get(release, {})}
        manifests[release] = dict(current)
    return manifests
