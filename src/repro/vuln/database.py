"""NVD-like vulnerability database.

The default database contains the real CVE the paper cites
(CVE-2018-1000615: an outdated OVSDB library enabling a DoS on ONOS) plus a
synthetic entry set shaped so that ONOS's exposure grows across releases as
dependencies accumulate (Table III-b's observation).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import VersionError
from repro.vuln.versions import Version, VersionRange


@dataclass(frozen=True)
class CveEntry:
    """One CVE: the affected package, version range, and severity score."""

    cve_id: str
    package: str
    affected: VersionRange
    cvss: float  # 0.0 - 10.0
    summary: str

    def __post_init__(self) -> None:
        if not 0.0 <= self.cvss <= 10.0:
            raise VersionError(f"{self.cve_id}: cvss {self.cvss} out of range")

    def affects(self, package: str, version: Version) -> bool:
        return package == self.package and self.affected.contains(version)


class VulnerabilityDatabase:
    """Queryable CVE collection indexed by package."""

    def __init__(self, entries: list[CveEntry]) -> None:
        self._by_package: dict[str, list[CveEntry]] = {}
        ids = set()
        for entry in entries:
            if entry.cve_id in ids:
                raise VersionError(f"duplicate CVE id {entry.cve_id}")
            ids.add(entry.cve_id)
            self._by_package.setdefault(entry.package, []).append(entry)

    def __len__(self) -> int:
        return sum(len(v) for v in self._by_package.values())

    def lookup(self, package: str, version: str | Version) -> list[CveEntry]:
        """All CVEs affecting ``package`` at ``version``."""
        if isinstance(version, str):
            version = Version.parse(version)
        return [
            entry
            for entry in self._by_package.get(package, [])
            if entry.affected.contains(version)
        ]

    def packages(self) -> list[str]:
        return sorted(self._by_package)


def _r(expr: str) -> VersionRange:
    return VersionRange.parse(expr)


def default_database() -> VulnerabilityDatabase:
    """The database used by the Table III-b reproduction."""
    return VulnerabilityDatabase(
        [
            # The CVE the paper names (SS V-A).
            CveEntry(
                "CVE-2018-1000615",
                "ovsdb",
                _r("[, 2.9.2)"),
                7.5,
                "OVSDB implementation allows remote DoS against ONOS",
            ),
            CveEntry(
                "CVE-2017-1000081",
                "netty",
                _r("[4.0.0, 4.1.12)"),
                6.5,
                "HTTP/2 frame handling allows resource exhaustion",
            ),
            CveEntry(
                "CVE-2018-0732",
                "openssl-java",
                _r("[1.0.0, 1.1.1)"),
                5.3,
                "Large DH parameter causes client hang",
            ),
            CveEntry(
                "CVE-2019-16869",
                "netty",
                _r("[, 4.1.42)"),
                7.5,
                "HTTP request smuggling via whitespace-prefixed headers",
            ),
            CveEntry(
                "CVE-2018-7489",
                "jackson-databind",
                _r("[, 2.8.11.1)"),
                9.8,
                "Deserialization of untrusted data enables RCE",
            ),
            CveEntry(
                "CVE-2019-12384",
                "jackson-databind",
                _r("[, 2.9.9.1)"),
                5.9,
                "Polymorphic typing gadget enables RCE under conditions",
            ),
            CveEntry(
                "CVE-2019-0201",
                "zookeeper",
                _r("[, 3.4.14)"),
                5.9,
                "Insufficient ACL check on getACL request",
            ),
            CveEntry(
                "CVE-2020-1945",
                "karaf",
                _r("[, 4.2.9)"),
                6.3,
                "Shell command injection via crafted config",
            ),
            CveEntry(
                "CVE-2019-17573",
                "cxf",
                _r("[, 3.3.5)"),
                6.1,
                "Reflected XSS in services listing page",
            ),
            CveEntry(
                "CVE-2020-9488",
                "log4j",
                _r("[, 2.13.2)"),
                3.7,
                "Improper certificate validation in SMTP appender",
            ),
            CveEntry(
                "CVE-2019-10202",
                "snakeyaml",
                _r("[, 1.26)"),
                8.1,
                "Unbounded alias expansion (billion laughs)",
            ),
            CveEntry(
                "CVE-2020-13936",
                "velocity",
                _r("[, 2.3)"),
                8.8,
                "Sandbox bypass enables arbitrary code execution",
            ),
            CveEntry(
                "CVE-2019-20444",
                "grpc-java",
                _r("[, 1.27.0)"),
                7.0,
                "Header parsing allows request smuggling",
            ),
            CveEntry(
                "CVE-2018-8012",
                "zookeeper",
                _r("[, 3.4.10)"),
                7.5,
                "No authentication enforced for quorum joins",
            ),
            CveEntry(
                "CVE-2020-11612",
                "netty",
                _r("[, 4.1.46)"),
                7.5,
                "Decompression bomb in ZlibDecoders",
            ),
        ]
    )
