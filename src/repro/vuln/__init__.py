"""Dependency vulnerability scanning (SS V-A, Table III-b).

A from-scratch OWASP-dependency-check analogue: semantic-version parsing and
ranges, an NVD-like CVE database (shipped with a synthetic-but-plausible
entry set including CVE-2018-1000615), and a scanner that matches a release's
dependency manifest against vulnerable ranges.
"""

from repro.vuln.versions import Version, VersionRange
from repro.vuln.database import CveEntry, VulnerabilityDatabase, default_database
from repro.vuln.scanner import DependencyScanner, ScanFinding, onos_release_manifests

__all__ = [
    "Version",
    "VersionRange",
    "CveEntry",
    "VulnerabilityDatabase",
    "default_database",
    "DependencyScanner",
    "ScanFinding",
    "onos_release_manifests",
]
