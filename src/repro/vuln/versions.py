"""Semantic-version parsing, ordering, and ranges."""

from __future__ import annotations

import re
from dataclasses import dataclass
from functools import total_ordering

from repro.errors import VersionError

_VERSION_RE = re.compile(
    r"^v?(?P<major>\d+)(?:\.(?P<minor>\d+))?(?:\.(?P<patch>\d+))?"
    r"(?:[-.](?P<pre>[0-9A-Za-z][0-9A-Za-z.-]*))?$"
)


@total_ordering
@dataclass(frozen=True)
class Version:
    """A (major, minor, patch, prerelease) version.

    Missing minor/patch parse as 0.  A pre-release sorts *before* the same
    numeric version, per semver.
    """

    major: int
    minor: int = 0
    patch: int = 0
    prerelease: str | None = None

    @classmethod
    def parse(cls, text: str) -> "Version":
        match = _VERSION_RE.match(text.strip())
        if match is None:
            raise VersionError(f"unparseable version {text!r}")
        return cls(
            major=int(match.group("major")),
            minor=int(match.group("minor") or 0),
            patch=int(match.group("patch") or 0),
            prerelease=match.group("pre"),
        )

    def _key(self) -> tuple:
        # Release (no prerelease) sorts after any prerelease of same triple.
        return (
            self.major,
            self.minor,
            self.patch,
            self.prerelease is None,
            self.prerelease or "",
        )

    def __lt__(self, other: object) -> bool:
        if not isinstance(other, Version):
            return NotImplemented
        return self._key() < other._key()

    def __str__(self) -> str:
        base = f"{self.major}.{self.minor}.{self.patch}"
        return f"{base}-{self.prerelease}" if self.prerelease else base


@dataclass(frozen=True)
class VersionRange:
    """A half-open-by-default version interval.

    ``low``/``high`` bound the range; ``None`` means unbounded on that side.
    ``include_low`` defaults True, ``include_high`` defaults False — the
    common "affected >= 1.2.0, fixed in 1.4.1" CVE shape is
    ``VersionRange(low=1.2.0, high=1.4.1)``.
    """

    low: Version | None = None
    high: Version | None = None
    include_low: bool = True
    include_high: bool = False

    def __post_init__(self) -> None:
        if self.low is not None and self.high is not None and self.high < self.low:
            raise VersionError(f"empty range: {self.low} .. {self.high}")

    @classmethod
    def parse(cls, text: str) -> "VersionRange":
        """Parse ``"[1.2.0, 1.4.1)"``-style interval notation, or a bare
        version for an exact match."""
        text = text.strip()
        if not text:
            raise VersionError("empty range expression")
        if text[0] in "[(" and text[-1] in ")]":
            include_low = text[0] == "["
            include_high = text[-1] == "]"
            body = text[1:-1]
            parts = [p.strip() for p in body.split(",")]
            if len(parts) != 2:
                raise VersionError(f"range {text!r} must have two endpoints")
            low = Version.parse(parts[0]) if parts[0] else None
            high = Version.parse(parts[1]) if parts[1] else None
            return cls(low=low, high=high, include_low=include_low, include_high=include_high)
        exact = Version.parse(text)
        return cls(low=exact, high=exact, include_low=True, include_high=True)

    def contains(self, version: Version) -> bool:
        if self.low is not None:
            if version < self.low:
                return False
            if version == self.low and not self.include_low:
                return False
        if self.high is not None:
            if self.high < version:
                return False
            if version == self.high and not self.include_high:
                return False
        return True

    def __str__(self) -> str:
        lo = "[" if self.include_low else "("
        hi = "]" if self.include_high else ")"
        return f"{lo}{self.low or ''}, {self.high or ''}{hi}"
