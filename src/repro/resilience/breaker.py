"""A circuit breaker driven by the simulated clock.

Closed → open when the failure rate over a sliding window of recent calls
crosses a threshold; open → half-open after a cool-down scheduled on the
simulation :class:`EventScheduler`; half-open admits a bounded number of
probe calls and closes on success or re-opens on failure.  While open,
calls are shed (:class:`CircuitOpenError`) instead of hammering a backend
that is already down — the anti-pattern behind several of the paper's
external-call cascade bugs.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import TYPE_CHECKING, Callable

from repro.errors import CircuitOpenError, ResilienceError
from repro.resilience.ledger import ResilienceEvent, ResilienceLedger
from repro.taxonomy import Symptom, Trigger

if TYPE_CHECKING:  # pragma: no cover
    from repro.sdnsim.clock import EventScheduler


class BreakerState(enum.Enum):
    """The classic three-state breaker lifecycle."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class CircuitBreaker:
    """Failure-rate breaker with sim-clock cool-down.

    Parameters
    ----------
    scheduler:
        The simulation scheduler; cool-downs are events on its clock.
    failure_threshold:
        Open when ``failures / window_calls`` reaches this rate.
    window:
        Number of most-recent calls the failure rate is computed over.
    min_calls:
        No tripping before this many calls are in the window (avoids
        opening on the very first hiccup).
    cooldown:
        Simulated seconds to stay open before probing (half-open).
    half_open_probes:
        Probe calls admitted while half-open.
    """

    def __init__(
        self,
        scheduler: "EventScheduler",
        *,
        name: str = "breaker",
        failure_threshold: float = 0.5,
        window: int = 6,
        min_calls: int = 3,
        cooldown: float = 10.0,
        half_open_probes: int = 1,
        ledger: ResilienceLedger | None = None,
    ) -> None:
        if not 0.0 < failure_threshold <= 1.0:
            raise ResilienceError("failure_threshold must be in (0, 1]")
        if window < 1 or min_calls < 1:
            raise ResilienceError("window and min_calls must be >= 1")
        if min_calls > window:
            raise ResilienceError("min_calls cannot exceed window")
        if cooldown <= 0:
            raise ResilienceError("cooldown must be > 0")
        if half_open_probes < 1:
            raise ResilienceError("half_open_probes must be >= 1")
        self.scheduler = scheduler
        self.name = name
        self.failure_threshold = failure_threshold
        self.window = window
        self.min_calls = min_calls
        self.cooldown = cooldown
        self.half_open_probes = half_open_probes
        self.ledger = ledger
        self.state = BreakerState.CLOSED
        self.trips = 0
        self.shed_calls = 0
        self._results: deque[bool] = deque(maxlen=window)
        self._probes_inflight = 0

    # -- rate bookkeeping -----------------------------------------------------
    @property
    def failure_rate(self) -> float:
        if not self._results:
            return 0.0
        return sum(1 for ok in self._results if not ok) / len(self._results)

    def allow(self) -> bool:
        """May a call proceed right now?"""
        if self.state is BreakerState.CLOSED:
            return True
        if self.state is BreakerState.HALF_OPEN:
            return self._probes_inflight < self.half_open_probes
        return False

    @property
    def probes_inflight(self) -> int:
        """Half-open probes currently outstanding."""
        return self._probes_inflight

    def begin_probe(self) -> None:
        """Mark a half-open probe as started.

        Callers that run work asynchronously (e.g. on an event scheduler)
        pair this with a later :meth:`record_success` /
        :meth:`record_failure`, which retires the probe.  Outside
        half-open this is a no-op — ordinary closed-state calls are not
        probes.
        """
        if self.state is BreakerState.HALF_OPEN:
            self._probes_inflight += 1

    def record_success(self) -> None:
        if self.state is BreakerState.HALF_OPEN:
            self._probes_inflight = max(0, self._probes_inflight - 1)
            self._close()
            return
        self._results.append(True)

    def record_failure(
        self,
        *,
        trigger: Trigger | None = None,
        symptom: Symptom | None = None,
    ) -> None:
        if self.state is BreakerState.HALF_OPEN:
            self._probes_inflight = max(0, self._probes_inflight - 1)
            self._open(trigger=trigger, symptom=symptom, detail="probe failed")
            return
        self._results.append(False)
        if (
            self.state is BreakerState.CLOSED
            and len(self._results) >= self.min_calls
            and self.failure_rate >= self.failure_threshold
        ):
            self._open(
                trigger=trigger,
                symptom=symptom,
                detail=f"failure rate {self.failure_rate:.0%} over "
                f"{len(self._results)} calls",
            )

    # -- state transitions -----------------------------------------------------
    def _open(
        self,
        *,
        trigger: Trigger | None,
        symptom: Symptom | None,
        detail: str,
    ) -> None:
        self.state = BreakerState.OPEN
        self.trips += 1
        self._results.clear()
        self._probes_inflight = 0
        if self.ledger is not None:
            self.ledger.record(
                ResilienceEvent.BREAKER_OPEN,
                self.name,
                time=self.scheduler.clock.now,
                detail=detail,
                trigger=trigger,
                symptom=symptom,
                delay=self.cooldown,
            )
        self.scheduler.schedule(self.cooldown, self._half_open)

    def _half_open(self) -> None:
        if self.state is not BreakerState.OPEN:
            return
        self.state = BreakerState.HALF_OPEN
        self._probes_inflight = 0
        if self.ledger is not None:
            self.ledger.record(
                ResilienceEvent.BREAKER_HALF_OPEN,
                self.name,
                time=self.scheduler.clock.now,
                detail="cool-down elapsed; probing",
            )

    def _close(self) -> None:
        self.state = BreakerState.CLOSED
        self._results.clear()
        self._probes_inflight = 0
        if self.ledger is not None:
            self.ledger.record(
                ResilienceEvent.BREAKER_CLOSE,
                self.name,
                time=self.scheduler.clock.now,
                detail="probe succeeded; backend healthy again",
            )

    # -- convenience wrapper ---------------------------------------------------
    def call(self, fn: Callable, *args, **kwargs):
        """Run ``fn`` through the breaker.

        Raises :class:`CircuitOpenError` without calling when open; any
        exception from ``fn`` counts as a failure and propagates.
        """
        if not self.allow():
            self.shed_calls += 1
            if self.ledger is not None:
                self.ledger.record(
                    ResilienceEvent.SHED,
                    self.name,
                    time=self.scheduler.clock.now,
                    detail="call rejected while open",
                )
            raise CircuitOpenError(f"breaker {self.name!r} is {self.state.value}")
        self.begin_probe()
        try:
            result = fn(*args, **kwargs)
        except Exception:
            self.record_failure()
            raise
        self.record_success()
        return result
