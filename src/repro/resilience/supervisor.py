"""A supervision tree with restart-intensity limits and escalation.

Modeled on the ONOS-5992 failover path: a supervisor watches long-lived
children (controller-cluster members, external services, device adapters),
restarts a failed child after a backoff delay (one-for-one), escalates to
restarting *every* child when one keeps dying faster than the intensity
budget allows (all-for-one), and finally gives up — recording each step in
the :class:`ResilienceLedger` so campaigns can price the recovery.

:class:`SupervisedRestart` is the scenario-granularity harness built on the
same budget/backoff machinery: it drives detect-and-restart cycles against a
fault execution, which is how the A/B campaign and the
``supervised_restart`` framework strategy measure what supervision actually
buys (spoiler, per the paper: nothing against deterministic bugs).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.errors import ResilienceError, SupervisionError
from repro.resilience.ledger import ResilienceEvent, ResilienceLedger
from repro.resilience.policies import RetryPolicy
from repro.sdnsim.observers import Outcome
from repro.taxonomy import ByzantineMode, Symptom, Trigger

if TYPE_CHECKING:  # pragma: no cover
    from repro.sdnsim.clock import EventScheduler


class SupervisionStrategy(enum.Enum):
    """How widely a restart propagates."""

    ONE_FOR_ONE = "one_for_one"
    ALL_FOR_ONE = "all_for_one"


@dataclass
class ChildSpec:
    """One supervised child: a name and a factory that (re)starts it."""

    name: str
    factory: Callable[[], object]


class Supervisor:
    """Restart children within an intensity budget; escalate beyond it.

    Parameters
    ----------
    max_restarts / intensity_window:
        A child may be restarted at most ``max_restarts`` times within any
        ``intensity_window`` simulated seconds; the next failure escalates.
    restart_delay:
        Backoff before a scheduled restart (seconds on the sim clock).
    strategy:
        Initial propagation mode.  ``ONE_FOR_ONE`` escalates to
        ``ALL_FOR_ONE`` once, then gives up; ``ALL_FOR_ONE`` gives up
        directly when the budget is exhausted.
    """

    def __init__(
        self,
        scheduler: "EventScheduler",
        *,
        name: str = "supervisor",
        strategy: SupervisionStrategy = SupervisionStrategy.ONE_FOR_ONE,
        max_restarts: int = 3,
        intensity_window: float = 60.0,
        restart_delay: float = 1.0,
        ledger: ResilienceLedger | None = None,
    ) -> None:
        if max_restarts < 1:
            raise ResilienceError("max_restarts must be >= 1")
        if intensity_window <= 0 or restart_delay < 0:
            raise ResilienceError("invalid intensity_window/restart_delay")
        self.scheduler = scheduler
        self.name = name
        self.strategy = strategy
        self.max_restarts = max_restarts
        self.intensity_window = intensity_window
        self.restart_delay = restart_delay
        self.ledger = ledger
        self.failed = False
        self.escalations = 0
        self._specs: dict[str, ChildSpec] = {}
        self.children: dict[str, object] = {}
        self._restart_times: dict[str, list[float]] = {}

    # -- wiring ----------------------------------------------------------------
    def supervise(self, name: str, factory: Callable[[], object]) -> object:
        """Register and immediately start a child; returns the instance."""
        if name in self._specs:
            raise ResilienceError(f"child {name!r} already supervised")
        spec = ChildSpec(name=name, factory=factory)
        self._specs[name] = spec
        self._restart_times[name] = []
        instance = factory()
        self.children[name] = instance
        return instance

    def child(self, name: str) -> object:
        try:
            return self.children[name]
        except KeyError:
            raise ResilienceError(f"unknown child {name!r}") from None

    def restart_count(self, name: str) -> int:
        return len(self._restart_times.get(name, []))

    # -- failure handling --------------------------------------------------------
    def notify_failure(
        self,
        name: str,
        reason: str = "",
        *,
        trigger: Trigger | None = None,
        symptom: Symptom | None = None,
    ) -> None:
        """A child died; restart it, escalate, or give up.

        Raises :class:`SupervisionError` once the tree has given up —
        further failures have nowhere to go.
        """
        if name not in self._specs:
            raise ResilienceError(f"unknown child {name!r}")
        if self.failed:
            raise SupervisionError(
                f"supervisor {self.name!r} already gave up; {name} failure "
                f"({reason or 'unspecified'}) is unrecoverable"
            )
        now = self.scheduler.clock.now
        recent = [
            t for t in self._restart_times[name] if now - t <= self.intensity_window
        ]
        self._restart_times[name] = recent
        if len(recent) < self.max_restarts:
            self._schedule_restart(
                name, reason, trigger=trigger, symptom=symptom,
                attempt=len(recent) + 1,
            )
            return
        # Intensity budget exhausted for this child: escalate.
        if self.strategy is SupervisionStrategy.ONE_FOR_ONE:
            self.escalations += 1
            self.strategy = SupervisionStrategy.ALL_FOR_ONE
            if self.ledger is not None:
                self.ledger.record(
                    ResilienceEvent.ESCALATION,
                    self.name,
                    time=now,
                    detail=f"{name} exceeded {self.max_restarts} restarts/"
                    f"{self.intensity_window:.0f}s; one-for-one -> all-for-one",
                    trigger=trigger,
                    symptom=symptom,
                )
            for child_name in sorted(self._specs):
                self._restart_times[child_name] = []
                self._schedule_restart(
                    child_name,
                    f"all-for-one sweep after {name} failure",
                    trigger=trigger,
                    symptom=symptom,
                    attempt=1,
                )
            return
        # Already all-for-one: nothing stronger left.
        self.failed = True
        if self.ledger is not None:
            self.ledger.record(
                ResilienceEvent.GIVE_UP,
                self.name,
                time=now,
                detail=f"{name} still failing after all-for-one escalation",
                trigger=trigger,
                symptom=symptom,
            )

    def _schedule_restart(
        self,
        name: str,
        reason: str,
        *,
        trigger: Trigger | None,
        symptom: Symptom | None,
        attempt: int,
    ) -> None:
        now = self.scheduler.clock.now
        self._restart_times[name].append(now)
        if self.ledger is not None:
            self.ledger.record(
                ResilienceEvent.RESTART,
                name,
                time=now,
                detail=reason or "child failure",
                trigger=trigger,
                symptom=symptom,
                attempt=attempt,
                delay=self.restart_delay,
            )
        spec = self._specs[name]

        def restart() -> None:
            if not self.failed:
                self.children[name] = spec.factory()

        self.scheduler.schedule(self.restart_delay, restart)


@dataclass(frozen=True)
class RestartRun:
    """The result of one supervised detect-and-restart cycle."""

    outcome: Outcome
    detected: bool
    restarts: int
    recovered: bool
    #: Total backoff seconds spent before the final outcome.
    recovery_latency: float


class SupervisedRestart:
    """Detect-and-restart harness over a re-executable fault scenario.

    Detection combines a heartbeat (fail-stop crashes) with a liveness
    watchdog (stalled core threads) — the supervisor's view of a child.
    Recovery re-executes the scenario with fresh timing after each backoff
    delay, up to the restart-intensity budget in ``backoff.max_attempts``.
    The environment (configuration, library versions, device state) is
    untouched by a restart, so deterministic bugs re-manifest every time —
    the §VII gap this harness exists to quantify.
    """

    def __init__(
        self,
        *,
        backoff: RetryPolicy | None = None,
        ledger: ResilienceLedger | None = None,
        component: str = "controller",
    ) -> None:
        self.backoff = backoff or RetryPolicy(
            max_attempts=2, base_delay=2.0, multiplier=2.0
        )
        self.ledger = ledger
        self.component = component

    @staticmethod
    def detects(outcome: Outcome) -> bool:
        """Heartbeat sees crashes; the liveness watchdog sees stalls."""
        return outcome.symptom is Symptom.FAIL_STOP or (
            outcome.byzantine_mode is ByzantineMode.STALL
        )

    def run(
        self,
        execute: Callable[[int], Outcome],
        seed: int,
        *,
        trigger: Trigger | None = None,
    ) -> RestartRun:
        """One detect-and-restart cycle against ``execute``."""
        outcome = execute(seed)
        if outcome.symptom is None or not self.detects(outcome):
            return RestartRun(
                outcome=outcome,
                detected=False,
                restarts=0,
                recovered=False,
                recovery_latency=0.0,
            )
        latency = 0.0
        for attempt in range(1, self.backoff.max_attempts + 1):
            delay = self.backoff.delay_for(attempt)
            latency += delay
            if self.ledger is not None:
                self.ledger.record(
                    ResilienceEvent.RESTART,
                    self.component,
                    detail=f"supervised restart after {outcome.detail[:60]}",
                    trigger=trigger,
                    symptom=outcome.symptom,
                    attempt=attempt,
                    delay=delay,
                )
            # New timing (new seed component), identical environment.
            outcome = execute(seed + attempt)
            if outcome.symptom is None:
                return RestartRun(
                    outcome=outcome,
                    detected=True,
                    restarts=attempt,
                    recovered=True,
                    recovery_latency=latency,
                )
        if self.ledger is not None:
            self.ledger.record(
                ResilienceEvent.GIVE_UP,
                self.component,
                detail="restart-intensity budget exhausted; fault persists",
                trigger=trigger,
                symptom=outcome.symptom,
            )
        return RestartRun(
            outcome=outcome,
            detected=True,
            restarts=self.backoff.max_attempts,
            recovered=False,
            recovery_latency=latency,
        )
