"""A per-item fault boundary for pipeline stages.

The NLP/analysis pipeline historically aborted a whole corpus run when any
single item raised.  :class:`ResilientExecutor` isolates each item: failures
land in an error ledger, exception types declared transient are retried
within a :class:`RetryPolicy` budget, and the run completes with partial
results and a ``degraded=True`` flag instead of an exception.

No wall-clock sleeping happens here — pipeline code runs outside the
simulator, so backoff delays are *accounted* (in the ledger, as recovery
cost) rather than waited out.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from repro.errors import ResilienceError
from repro.resilience.ledger import ResilienceEvent, ResilienceLedger
from repro.resilience.policies import RetryPolicy


@dataclass(frozen=True)
class ItemFailure:
    """One item that could not be processed."""

    index: int
    item: Any
    error: str
    attempts: int
    transient: bool


@dataclass
class ExecutionReport:
    """Partial results plus the error ledger for one executor run."""

    results: dict[int, Any] = field(default_factory=dict)
    failures: list[ItemFailure] = field(default_factory=list)
    degraded: bool = False
    retries: int = 0

    @property
    def total(self) -> int:
        return len(self.results) + len(self.failures)

    @property
    def success_rate(self) -> float:
        return len(self.results) / self.total if self.total else 1.0

    def values(self) -> list[Any]:
        """Successful results in input order."""
        return [self.results[i] for i in sorted(self.results)]


class ResilientExecutor:
    """Map a function over items without letting one failure sink the run.

    Parameters
    ----------
    retry:
        Budget for re-running items that raised a *transient* exception.
    transient:
        Exception types worth retrying; anything else fails the item
        immediately (a deterministic error re-raises identically, so
        retrying it just burns budget — the paper's restart lesson applied
        at item granularity).
    abort_threshold:
        If set, abort (raise :class:`ResilienceError`) when the failure
        fraction exceeds it; by default the run always completes degraded.
    """

    def __init__(
        self,
        *,
        retry: RetryPolicy | None = None,
        transient: tuple[type[BaseException], ...] = (),
        abort_threshold: float | None = None,
        ledger: ResilienceLedger | None = None,
        component: str = "pipeline",
    ) -> None:
        if abort_threshold is not None and not 0.0 < abort_threshold <= 1.0:
            raise ResilienceError("abort_threshold must be in (0, 1]")
        self.retry = retry or RetryPolicy(max_attempts=1, base_delay=0.0)
        self.transient = transient
        self.abort_threshold = abort_threshold
        self.ledger = ledger
        self.component = component

    def map(
        self, fn: Callable[[Any], Any], items: Iterable[Any]
    ) -> ExecutionReport:
        """Run ``fn`` over ``items`` behind the per-item fault boundary."""
        report = ExecutionReport()
        for index, item in enumerate(items):
            self._run_item(fn, index, item, report)
        report.degraded = bool(report.failures)
        if (
            self.abort_threshold is not None
            and report.total
            and (1.0 - report.success_rate) > self.abort_threshold
        ):
            raise ResilienceError(
                f"{len(report.failures)}/{report.total} items failed, above "
                f"the {self.abort_threshold:.0%} abort threshold"
            )
        return report

    def _run_item(
        self, fn: Callable[[Any], Any], index: int, item: Any, report: ExecutionReport
    ) -> None:
        attempts = 0
        while True:
            attempts += 1
            try:
                report.results[index] = fn(item)
                return
            except self.transient as exc:
                if attempts <= self.retry.max_attempts:
                    report.retries += 1
                    if self.ledger is not None:
                        self.ledger.record(
                            ResilienceEvent.RETRY,
                            self.component,
                            detail=f"item {index}: {type(exc).__name__}: {exc}",
                            attempt=attempts,
                            delay=self.retry.delay_for(attempts),
                        )
                    continue
                self._fail(report, index, item, exc, attempts, transient=True)
                return
            except Exception as exc:  # noqa: BLE001 - the fault boundary
                self._fail(report, index, item, exc, attempts, transient=False)
                return

    def _fail(
        self,
        report: ExecutionReport,
        index: int,
        item: Any,
        exc: BaseException,
        attempts: int,
        *,
        transient: bool,
    ) -> None:
        report.failures.append(
            ItemFailure(
                index=index,
                item=item,
                error=f"{type(exc).__name__}: {exc}",
                attempts=attempts,
                transient=transient,
            )
        )
        if self.ledger is not None:
            self.ledger.record(
                ResilienceEvent.DEGRADATION,
                self.component,
                detail=f"item {index} dropped after {attempts} attempt(s): "
                f"{type(exc).__name__}: {exc}",
                attempt=attempts,
            )
