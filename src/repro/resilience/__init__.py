"""The resilience runtime: the taxonomy's operational counterpart.

Where :mod:`repro.taxonomy` names what goes wrong and
:mod:`repro.faultinjection` makes it happen, this package is the layer that
*absorbs* it: retry/backoff policies, deadlines and bulkheads
(:mod:`policies`), a circuit breaker (:mod:`breaker`), a supervision tree
with restart-intensity limits and escalation (:mod:`supervisor`), a
per-item pipeline fault boundary (:mod:`executor`), and a ledger that
prices every recovery action against the taxonomy cell it addressed
(:mod:`ledger`).

Everything runs on the simulated clock — policies compute delays, the
simulator's ``EventScheduler`` spends them — so hardened scenarios stay
deterministic, and ``FaultCampaign.run_ab`` can measure exactly what the
hardening buys (and what it cannot: deterministic bugs shrug off
restart-style recovery, per the paper's §VII).
"""

from repro.resilience.breaker import BreakerState, CircuitBreaker
from repro.resilience.executor import ExecutionReport, ItemFailure, ResilientExecutor
from repro.resilience.ledger import LedgerRecord, ResilienceEvent, ResilienceLedger
from repro.resilience.policies import (
    Bulkhead,
    Deadline,
    ResilienceConfig,
    RetryPolicy,
)
from repro.resilience.supervisor import (
    ChildSpec,
    RestartRun,
    SupervisedRestart,
    Supervisor,
    SupervisionStrategy,
)

__all__ = [
    "BreakerState",
    "CircuitBreaker",
    "ExecutionReport",
    "ItemFailure",
    "ResilientExecutor",
    "LedgerRecord",
    "ResilienceEvent",
    "ResilienceLedger",
    "Bulkhead",
    "Deadline",
    "ResilienceConfig",
    "RetryPolicy",
    "ChildSpec",
    "RestartRun",
    "SupervisedRestart",
    "Supervisor",
    "SupervisionStrategy",
]
