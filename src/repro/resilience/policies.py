"""Composable resilience policies: retry/backoff, deadlines, bulkheads.

Every policy is deterministic and clock-agnostic: a :class:`RetryPolicy`
*computes* delays (with seeded jitter) and leaves the scheduling to callers,
which drive the simulation :class:`~repro.sdnsim.clock.EventScheduler` —
nothing here ever touches wall-clock time, so hardened scenarios stay
exactly as reproducible as unhardened ones.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import BulkheadFullError, DeadlineExceededError, ResilienceError
from repro.resilience.ledger import ResilienceEvent, ResilienceLedger

if TYPE_CHECKING:  # pragma: no cover
    from repro.sdnsim.clock import SimClock


class RetryPolicy:
    """A deterministic retry schedule.

    Parameters
    ----------
    max_attempts:
        Retries granted *after* the initial attempt (0 disables retrying).
    base_delay:
        Delay before the first retry, in simulated seconds.
    multiplier:
        Backoff factor between consecutive retries; ``1.0`` is a fixed
        schedule, ``> 1`` exponential.
    max_delay:
        Cap applied to every computed delay (before jitter).
    jitter:
        Fractional jitter amplitude in ``[0, 1)``: each delay is scaled by a
        factor drawn uniformly from ``[1 - jitter, 1 + jitter]`` using a RNG
        seeded from ``(seed, attempt)``, so the schedule is reproducible and
        independent of call order.
    """

    def __init__(
        self,
        *,
        max_attempts: int = 3,
        base_delay: float = 0.5,
        multiplier: float = 2.0,
        max_delay: float = 30.0,
        jitter: float = 0.0,
        seed: int = 0,
    ) -> None:
        if max_attempts < 0:
            raise ResilienceError(f"max_attempts must be >= 0, got {max_attempts}")
        if base_delay < 0:
            raise ResilienceError(f"base_delay must be >= 0, got {base_delay}")
        if multiplier < 1.0:
            raise ResilienceError(f"multiplier must be >= 1, got {multiplier}")
        if max_delay < base_delay:
            raise ResilienceError("max_delay must be >= base_delay")
        if not 0.0 <= jitter < 1.0:
            raise ResilienceError(f"jitter must be in [0, 1), got {jitter}")
        self.max_attempts = max_attempts
        self.base_delay = base_delay
        self.multiplier = multiplier
        self.max_delay = max_delay
        self.jitter = jitter
        self.seed = seed

    @classmethod
    def fixed(cls, delay: float, *, max_attempts: int = 3, **kwargs) -> "RetryPolicy":
        """A fixed-interval schedule: every retry waits ``delay`` seconds."""
        return cls(
            max_attempts=max_attempts,
            base_delay=delay,
            multiplier=1.0,
            max_delay=max(delay, kwargs.pop("max_delay", delay)),
            **kwargs,
        )

    @classmethod
    def exponential(
        cls, base_delay: float = 0.5, *, max_attempts: int = 3, **kwargs
    ) -> "RetryPolicy":
        """The conventional doubling schedule."""
        return cls(max_attempts=max_attempts, base_delay=base_delay, **kwargs)

    def delay_for(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (1-based)."""
        if attempt < 1:
            raise ResilienceError(f"attempt is 1-based, got {attempt}")
        raw = min(self.base_delay * self.multiplier ** (attempt - 1), self.max_delay)
        if self.jitter:
            rng = random.Random((self.seed << 16) ^ attempt)
            raw *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return raw

    def delays(self) -> list[float]:
        """The full schedule, one delay per granted retry."""
        return [self.delay_for(i) for i in range(1, self.max_attempts + 1)]

    @property
    def total_delay(self) -> float:
        """Worst-case seconds spent backing off if every retry is used."""
        return sum(self.delays())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RetryPolicy(max_attempts={self.max_attempts}, "
            f"base_delay={self.base_delay}, multiplier={self.multiplier})"
        )


class Deadline:
    """A time budget measured against a :class:`SimClock` (never wall-clock).

    Policies compose: an operation can carry a deadline while its retries
    back off — :meth:`check` raises once the simulated clock passes the
    budget, bounding how much recovery latency a caller will tolerate.
    """

    def __init__(self, clock: "SimClock", budget: float) -> None:
        if budget <= 0:
            raise ResilienceError(f"deadline budget must be > 0, got {budget}")
        self.clock = clock
        self.budget = budget
        self.expires_at = clock.now + budget

    @property
    def remaining(self) -> float:
        return max(0.0, self.expires_at - self.clock.now)

    @property
    def expired(self) -> bool:
        return self.clock.now >= self.expires_at

    def check(self, what: str = "operation") -> None:
        """Raise :class:`DeadlineExceededError` once the budget is spent."""
        if self.expired:
            raise DeadlineExceededError(
                f"{what} exceeded its {self.budget:.1f}s deadline "
                f"(now {self.clock.now:.1f}, expired {self.expires_at:.1f})"
            )


class Bulkhead:
    """A concurrency cap isolating one resource pool from overload.

    ``acquire`` raises :class:`BulkheadFullError` once ``capacity`` callers
    hold the bulkhead; rejected calls are recorded (and ledgered as sheds)
    so campaigns can account for deliberately dropped work.  Usable as a
    context manager.
    """

    def __init__(
        self,
        capacity: int,
        *,
        name: str = "bulkhead",
        ledger: ResilienceLedger | None = None,
    ) -> None:
        if capacity < 1:
            raise ResilienceError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.name = name
        self.ledger = ledger
        self.in_use = 0
        self.peak_in_use = 0
        self.rejected = 0

    @property
    def available(self) -> int:
        return self.capacity - self.in_use

    def acquire(self) -> None:
        if self.in_use >= self.capacity:
            self.rejected += 1
            if self.ledger is not None:
                self.ledger.record(
                    ResilienceEvent.SHED,
                    self.name,
                    detail=f"concurrency cap {self.capacity} reached",
                )
            raise BulkheadFullError(
                f"bulkhead {self.name!r} is full ({self.capacity} in use)"
            )
        self.in_use += 1
        self.peak_in_use = max(self.peak_in_use, self.in_use)

    def release(self) -> None:
        if self.in_use == 0:
            raise ResilienceError(f"bulkhead {self.name!r} released while empty")
        self.in_use -= 1

    def __enter__(self) -> "Bulkhead":
        self.acquire()
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()


@dataclass(frozen=True)
class ResilienceConfig:
    """The knob bundle a hardened scenario or A/B campaign applies.

    ``retry`` guards transient external calls (TSDB writes); the breaker
    fields shape the :class:`~repro.resilience.breaker.CircuitBreaker` in
    front of those calls; ``restart_backoff`` is the supervised-restart
    schedule (its ``max_attempts`` is the restart-intensity budget).
    """

    retry: RetryPolicy = field(
        default_factory=lambda: RetryPolicy(
            max_attempts=3, base_delay=1.0, multiplier=2.0, jitter=0.1
        )
    )
    restart_backoff: RetryPolicy = field(
        default_factory=lambda: RetryPolicy(
            max_attempts=2, base_delay=2.0, multiplier=2.0
        )
    )
    breaker_threshold: float = 0.5
    breaker_window: int = 6
    breaker_min_calls: int = 3
    breaker_cooldown: float = 10.0

    @staticmethod
    def default() -> "ResilienceConfig":
        """The stock hardening profile used by ``hardened=True`` knobs."""
        return ResilienceConfig()
