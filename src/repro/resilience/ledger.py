"""Structured accounting of every resilience action the runtime takes.

The paper's §VII complaint about fault-tolerance frameworks is that their
benefit is asserted, not measured.  The ledger makes the resilience layer
measurable: every retry, breaker trip, supervised restart, load-shed and
degradation is recorded with the simulated time it happened, the backoff or
cool-down cost it spent, and — where known — the taxonomy ``Trigger`` it was
reacting to and the ``Symptom`` it absorbed.  A/B campaigns read the ledger
to account for recovery cost alongside symptom-rate reduction.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.taxonomy import Symptom, Trigger


class ResilienceEvent(enum.Enum):
    """The action classes the resilience runtime can take."""

    RETRY = "retry"
    BREAKER_OPEN = "breaker_open"
    BREAKER_HALF_OPEN = "breaker_half_open"
    BREAKER_CLOSE = "breaker_close"
    SHED = "shed"
    RESTART = "restart"
    ESCALATION = "escalation"
    GIVE_UP = "give_up"
    DEGRADATION = "degradation"
    #: An invariant monitor observed a property violation (adversary runs).
    VIOLATION = "violation"


@dataclass(frozen=True)
class LedgerRecord:
    """One resilience action, tagged with the taxonomy cell it addressed."""

    time: float
    event: ResilienceEvent
    component: str
    detail: str = ""
    trigger: Trigger | None = None
    symptom: Symptom | None = None
    #: 1-based attempt number for retries/restarts (0 when not applicable).
    attempt: int = 0
    #: Backoff / cool-down seconds this action spent (the recovery cost).
    delay: float = 0.0

    def to_dict(self) -> dict[str, object]:
        """Flat JSON-safe form; enum fields become their values."""
        return {
            "time": self.time,
            "event": self.event.value,
            "component": self.component,
            "detail": self.detail,
            "trigger": self.trigger.value if self.trigger is not None else None,
            "symptom": self.symptom.value if self.symptom is not None else None,
            "attempt": self.attempt,
            "delay": self.delay,
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "LedgerRecord":
        return cls(
            time=float(data["time"]),  # type: ignore[arg-type]
            event=ResilienceEvent(data["event"]),
            component=str(data["component"]),
            detail=str(data.get("detail", "")),
            trigger=Trigger(data["trigger"]) if data.get("trigger") else None,
            symptom=Symptom(data["symptom"]) if data.get("symptom") else None,
            attempt=int(data.get("attempt", 0)),  # type: ignore[arg-type]
            delay=float(data.get("delay", 0.0)),  # type: ignore[arg-type]
        )


@dataclass
class ResilienceLedger:
    """Append-only record of resilience actions across one campaign or run."""

    records: list[LedgerRecord] = field(default_factory=list)

    def record(
        self,
        event: ResilienceEvent,
        component: str,
        *,
        time: float = 0.0,
        detail: str = "",
        trigger: Trigger | None = None,
        symptom: Symptom | None = None,
        attempt: int = 0,
        delay: float = 0.0,
    ) -> LedgerRecord:
        entry = LedgerRecord(
            time=time,
            event=event,
            component=component,
            detail=detail,
            trigger=trigger,
            symptom=symptom,
            attempt=attempt,
            delay=delay,
        )
        self.records.append(entry)
        return entry

    def __len__(self) -> int:
        return len(self.records)

    def by_event(self, event: ResilienceEvent) -> list[LedgerRecord]:
        return [r for r in self.records if r.event is event]

    def count(self, event: ResilienceEvent | None = None) -> int:
        if event is None:
            return len(self.records)
        return sum(1 for r in self.records if r.event is event)

    def recovery_cost(self) -> float:
        """Total backoff/cool-down seconds spent across all actions."""
        return sum(r.delay for r in self.records)

    def by_trigger(self) -> dict[Trigger, int]:
        """Action counts per taxonomy trigger the runtime reacted to."""
        counts: dict[Trigger, int] = {}
        for record in self.records:
            if record.trigger is not None:
                counts[record.trigger] = counts.get(record.trigger, 0) + 1
        return counts

    def absorbed_symptoms(self) -> dict[Symptom, int]:
        """Symptom counts tagged on retry/restart/shed records — the symptom
        classes the runtime actively worked against."""
        counts: dict[Symptom, int] = {}
        for record in self.records:
            if record.symptom is not None:
                counts[record.symptom] = counts.get(record.symptom, 0) + 1
        return counts

    # -- serialization ----------------------------------------------------------
    def to_dicts(self) -> list[dict[str, object]]:
        return [record.to_dict() for record in self.records]

    def to_json(self) -> str:
        import json

        return json.dumps(self.to_dicts())

    @classmethod
    def from_dicts(cls, rows: list[dict[str, object]]) -> "ResilienceLedger":
        return cls(records=[LedgerRecord.from_dict(row) for row in rows])

    @classmethod
    def from_json(cls, text: str) -> "ResilienceLedger":
        import json

        return cls.from_dicts(json.loads(text))

    def summary(self) -> str:
        """One-line human-readable tally."""
        parts = [
            f"{event.value}={count}"
            for event in ResilienceEvent
            if (count := self.count(event))
        ]
        return (
            f"{len(self.records)} actions "
            f"({', '.join(parts) or 'none'}), "
            f"recovery cost {self.recovery_cost():.1f}s"
        )
