"""Control-plane adversary: message-level fault injection with an oracle.

The paper's hardest bug classes — nondeterministic races, coordination
failures, controller-state inconsistency — live in the control-plane
*message stream*, and the frameworks it evaluates (STS, Ravana) work there.
This package supplies that layer for the repro:

* :mod:`repro.adversary.schedule` — replayable ``FaultSchedule`` of
  ``(time, target, action)`` events, the adversary's deterministic input;
* :mod:`repro.adversary.interposer` — drop / duplicate / delay / reorder /
  corrupt rules in front of every control channel, plus partition cuts;
* :mod:`repro.adversary.world` — a replicated control plane (mastership
  views, echo liveness, reactive flow installs) the schedule perturbs;
* :mod:`repro.adversary.invariants` — runtime monitors for mastership
  uniqueness, quorum safety, orphaned devices, echo liveness, and flow
  convergence, mapped onto the Table I symptom taxonomy;
* :mod:`repro.adversary.minimizer` — STS-style ddmin shrinking a violating
  schedule to a minimal reproducer by deterministic replay.
"""

from repro.adversary.interposer import InterposerLog, MessageInterposer
from repro.adversary.invariants import (
    Invariant,
    InvariantViolation,
    MonitorSet,
    default_invariants,
)
from repro.adversary.minimizer import MinimizationResult, minimize_schedule
from repro.adversary.schedule import (
    CHANNEL_ACTIONS,
    FaultAction,
    FaultEvent,
    FaultSchedule,
    random_schedule,
)
from repro.adversary.world import (
    AdversaryResult,
    AdversaryWorld,
    DeviceState,
    MastershipAnnouncement,
    find_violating_schedule,
    run_adversary,
)

__all__ = [
    "CHANNEL_ACTIONS",
    "FaultAction",
    "FaultEvent",
    "FaultSchedule",
    "random_schedule",
    "MessageInterposer",
    "InterposerLog",
    "Invariant",
    "InvariantViolation",
    "MonitorSet",
    "default_invariants",
    "MinimizationResult",
    "minimize_schedule",
    "AdversaryResult",
    "AdversaryWorld",
    "DeviceState",
    "MastershipAnnouncement",
    "find_violating_schedule",
    "run_adversary",
]
